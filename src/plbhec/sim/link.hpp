#pragma once
/// \file link.hpp
/// Affine transfer-time model for a communication hop: latency plus bytes
/// over bandwidth. The master-to-unit path of a processing unit composes a
/// network hop with (for GPUs) a PCIe hop; the composition is again affine,
/// which is exactly the paper's G_p(x) = a1 x + a2 assumption (Eq. 2).

#include "plbhec/common/contracts.hpp"

namespace plbhec::sim {

struct LinkModel {
  double latency_s = 0.0;
  double bandwidth_bps = 1.0;  ///< bytes per second

  [[nodiscard]] double transfer_seconds(double bytes) const {
    PLBHEC_EXPECTS(bytes >= 0.0);
    return latency_s + bytes / bandwidth_bps;
  }

  /// Serial composition of two hops (store-and-forward).
  [[nodiscard]] LinkModel then(const LinkModel& next) const {
    // Effective bandwidth of two serial hops is the harmonic composition.
    const double inv_bw = 1.0 / bandwidth_bps + 1.0 / next.bandwidth_bps;
    return LinkModel{latency_s + next.latency_s, 1.0 / inv_bw};
  }
};

/// Common presets.
[[nodiscard]] inline LinkModel gigabit_ethernet() {
  return {50e-6, 118e6};  // ~50 us, ~118 MB/s effective
}
[[nodiscard]] inline LinkModel pcie2_x16() {
  return {10e-6, 6.0e9};  // ~10 us, ~6 GB/s effective
}
[[nodiscard]] inline LinkModel pcie3_x16() {
  return {8e-6, 12.0e9};
}
[[nodiscard]] inline LinkModel local_memory_bus() {
  return {1e-6, 20.0e9};  // CPU PU: NUMA-ish staging copy
}

}  // namespace plbhec::sim
