#pragma once
/// \file device.hpp
/// Analytic performance models for the simulated processing units. The
/// models are deliberately *not* of the fitted form used by PLB-HeC: the
/// GPU model quantizes work into SM waves and has saturating efficiency,
/// so the load balancer has to genuinely learn the curve from samples.

#include <memory>
#include <string>

#include "plbhec/sim/workload_profile.hpp"

namespace plbhec::sim {

enum class DeviceKind { kCpu, kGpu };

/// Base class for per-device timing models.
class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  [[nodiscard]] virtual DeviceKind kind() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;

  /// Noise-free seconds to process `grains` grains of workload `w`.
  [[nodiscard]] virtual double execution_seconds(const WorkloadProfile& w,
                                                 double grains) const = 0;

  /// Noise-free seconds with a unit speed factor applied (chaos slowdowns,
  /// heterogeneous unit scaling). The factor models the unit's *compute*
  /// capability — clock throttling, co-tenant core stealing — so it scales
  /// the arithmetic and overhead terms but NOT the memory roof: halving a
  /// unit's compute speed does not halve its memory bus, and a
  /// bandwidth-bound family (spmv, stencil) must not speed up or slow down
  /// as if it did. The base implementation keeps the legacy
  /// whole-time-divided-by-speed approximation for external models; the
  /// built-in models override it with the term-exact form.
  [[nodiscard]] virtual double execution_seconds(const WorkloadProfile& w,
                                                 double grains,
                                                 double speed_factor) const;

  /// Peak flop rate (for reporting only).
  [[nodiscard]] virtual double peak_flops() const = 0;
};

/// GPU model: kernel-launch overhead, wave quantization over the SMs, a
/// saturating-occupancy efficiency ramp and a roofline memory bound.
///
/// T(g) = launch + max(compute(g), memory(g))
///   threads(g)   = g * threads_per_grain
///   capacity     = sm_count * resident_threads_per_sm
///   waves(g)     = ceil(threads(g) / capacity)
///   occupancy(g) = min(1, threads(g) / capacity)
///   eff(g)       = gpu_efficiency * (0.35 + 0.65 * occupancy(g))
///   compute(g)   = waves(g) * capacity * flops_per_thread / (peak * eff(g))
///   memory(g)    = g * device_bytes_per_grain / mem_bandwidth
class GpuModel final : public DeviceModel {
 public:
  struct Params {
    std::string name;
    std::size_t cores = 0;
    std::size_t sm_count = 0;
    std::size_t resident_threads_per_sm = 2048;
    double clock_ghz = 1.0;
    double mem_bandwidth_bps = 100e9;
    double launch_overhead_s = 30e-6;
    double flops_per_core_per_cycle = 2.0;  ///< FMA
  };

  explicit GpuModel(Params p);

  [[nodiscard]] DeviceKind kind() const override { return DeviceKind::kGpu; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] double execution_seconds(const WorkloadProfile& w,
                                         double grains) const override;
  [[nodiscard]] double execution_seconds(const WorkloadProfile& w,
                                         double grains,
                                         double speed_factor) const override;
  [[nodiscard]] double peak_flops() const override;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

/// CPU model: thread-dispatch overhead, Amdahl-limited multicore speedup
/// and a roofline memory bound.
class CpuModel final : public DeviceModel {
 public:
  struct Params {
    std::string name;
    std::size_t cores = 1;
    double clock_ghz = 3.0;
    double flops_per_core_per_cycle = 8.0;  ///< SIMD width x FMA
    double mem_bandwidth_bps = 30e9;
    double dispatch_overhead_s = 5e-6;
  };

  explicit CpuModel(Params p);

  [[nodiscard]] DeviceKind kind() const override { return DeviceKind::kCpu; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] double execution_seconds(const WorkloadProfile& w,
                                         double grains) const override;
  [[nodiscard]] double execution_seconds(const WorkloadProfile& w,
                                         double grains,
                                         double speed_factor) const override;
  [[nodiscard]] double peak_flops() const override;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace plbhec::sim
