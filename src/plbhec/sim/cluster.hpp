#pragma once
/// \file cluster.hpp
/// The simulated cluster: the flattened list of processing units across all
/// machines, plus per-unit availability/QoS timelines for the paper's
/// future-work scenarios (cloud QoS changes, machine failures).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plbhec/sim/machine.hpp"
#include "plbhec/sim/noise.hpp"

namespace plbhec::sim {

/// A step change of a unit's effective speed at a given simulated time.
/// factor 1.0 = nominal, 0.5 = half speed (QoS degradation), 0.0 = failed.
struct SpeedEvent {
  double time_s = 0.0;
  double factor = 1.0;
};

/// A step change of a unit's master-to-device path at a given simulated
/// time, expressed relative to the nominal path (last event <= t wins, and
/// events do not compound): extra latency is added, bandwidth is scaled.
/// bandwidth_factor 1.0 + extra_latency_s 0.0 restores the nominal link.
struct LinkEvent {
  double time_s = 0.0;
  double extra_latency_s = 0.0;
  double bandwidth_factor = 1.0;
};

/// Runtime state of one simulated processing unit.
struct SimUnit {
  std::string name;
  std::size_t machine_index = 0;
  std::shared_ptr<const DeviceModel> device;
  LinkModel path;
  std::vector<SpeedEvent> speed_events;  ///< sorted by time
  std::vector<LinkEvent> link_events;    ///< sorted by time

  /// Effective speed factor at simulated time `t` (last event <= t wins).
  [[nodiscard]] double speed_factor(double t) const;
  /// Effective master-to-device path at simulated time `t`: the nominal
  /// `path` adjusted by the last link event at or before `t`, if any.
  [[nodiscard]] LinkModel link_at(double t) const;
  /// True when speed_factor(t) == 0 (unit failed / withdrawn).
  [[nodiscard]] bool failed_at(double t) const {
    return speed_factor(t) <= 0.0;
  }
  /// Time of the first event with factor <= 0, if any.
  [[nodiscard]] std::optional<double> failure_time() const;
};

class SimCluster {
 public:
  explicit SimCluster(const std::vector<MachineConfig>& machines);

  [[nodiscard]] std::size_t size() const { return units_.size(); }
  [[nodiscard]] const SimUnit& unit(std::size_t i) const;
  [[nodiscard]] SimUnit& unit(std::size_t i);
  [[nodiscard]] const std::vector<SimUnit>& units() const { return units_; }

  /// Registers a speed change (QoS event) for unit `i`.
  void add_speed_event(std::size_t i, double time_s, double factor);
  /// Registers a link change for unit `i` from `time_s` on: `extra_latency_s`
  /// is added to the nominal path latency and the nominal bandwidth is
  /// multiplied by `bandwidth_factor` (> 0).
  void add_link_event(std::size_t i, double time_s, double extra_latency_s,
                      double bandwidth_factor);
  /// Registers a permanent failure of unit `i` at `time_s`.
  void fail_unit(std::size_t i, double time_s) {
    add_speed_event(i, time_s, 0.0);
  }

 private:
  std::vector<SimUnit> units_;
};

}  // namespace plbhec::sim
