#include "plbhec/sim/cluster.hpp"

#include <algorithm>

#include "plbhec/common/contracts.hpp"

namespace plbhec::sim {

double SimUnit::speed_factor(double t) const {
  double factor = 1.0;
  for (const auto& e : speed_events) {
    if (e.time_s <= t)
      factor = e.factor;
    else
      break;
  }
  return factor;
}

LinkModel SimUnit::link_at(double t) const {
  const LinkEvent* active = nullptr;
  for (const auto& e : link_events) {
    if (e.time_s <= t)
      active = &e;
    else
      break;
  }
  if (active == nullptr) return path;
  return LinkModel{path.latency_s + active->extra_latency_s,
                   path.bandwidth_bps * active->bandwidth_factor};
}

std::optional<double> SimUnit::failure_time() const {
  for (const auto& e : speed_events)
    if (e.factor <= 0.0) return e.time_s;
  return std::nullopt;
}

SimCluster::SimCluster(const std::vector<MachineConfig>& machines) {
  for (std::size_t m = 0; m < machines.size(); ++m) {
    for (const auto& u : machines[m].units) {
      SimUnit su;
      su.name = u.name;
      su.machine_index = m;
      su.device = u.device;
      su.path = u.path;
      units_.push_back(std::move(su));
    }
  }
  PLBHEC_ENSURES(!units_.empty());
}

const SimUnit& SimCluster::unit(std::size_t i) const {
  PLBHEC_EXPECTS(i < units_.size());
  return units_[i];
}

SimUnit& SimCluster::unit(std::size_t i) {
  PLBHEC_EXPECTS(i < units_.size());
  return units_[i];
}

void SimCluster::add_speed_event(std::size_t i, double time_s, double factor) {
  PLBHEC_EXPECTS(i < units_.size());
  PLBHEC_EXPECTS(factor >= 0.0);
  auto& events = units_[i].speed_events;
  events.push_back({time_s, factor});
  std::sort(events.begin(), events.end(),
            [](const SpeedEvent& a, const SpeedEvent& b) {
              return a.time_s < b.time_s;
            });
}

void SimCluster::add_link_event(std::size_t i, double time_s,
                                double extra_latency_s,
                                double bandwidth_factor) {
  PLBHEC_EXPECTS(i < units_.size());
  PLBHEC_EXPECTS(extra_latency_s >= 0.0);
  PLBHEC_EXPECTS(bandwidth_factor > 0.0);
  auto& events = units_[i].link_events;
  events.push_back({time_s, extra_latency_s, bandwidth_factor});
  std::sort(events.begin(), events.end(),
            [](const LinkEvent& a, const LinkEvent& b) {
              return a.time_s < b.time_s;
            });
}

}  // namespace plbhec::sim
