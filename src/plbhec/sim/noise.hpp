#pragma once
/// \file noise.hpp
/// Measurement-noise model applied to simulated execution and transfer
/// times: a multiplicative log-normal factor (system noise scales with task
/// duration) plus a small additive OS jitter.

#include <cmath>

#include "plbhec/common/rng.hpp"

namespace plbhec::sim {

struct NoiseModel {
  double exec_sigma = 0.02;      ///< log-normal sigma on execution times
  double transfer_sigma = 0.03;  ///< log-normal sigma on transfer times
  double jitter_s = 20e-6;       ///< mean of additive exponential jitter

  [[nodiscard]] double perturb_exec(double seconds, Rng& rng) const {
    return apply(seconds, exec_sigma, rng);
  }
  [[nodiscard]] double perturb_transfer(double seconds, Rng& rng) const {
    return apply(seconds, transfer_sigma, rng);
  }

  /// Noise-free configuration (used by deterministic unit tests).
  [[nodiscard]] static NoiseModel none() { return {0.0, 0.0, 0.0}; }

 private:
  [[nodiscard]] double apply(double seconds, double sigma, Rng& rng) const {
    double s = seconds * rng.lognormal_factor(sigma);
    if (jitter_s > 0.0) {
      // Exponential jitter with mean jitter_s.
      const double u = rng.uniform();
      s += -jitter_s * std::log(1.0 - u);
    }
    return s;
  }
};

}  // namespace plbhec::sim
