#include "plbhec/sim/machine.hpp"

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/table.hpp"

namespace plbhec::sim {
namespace {

UnitConfig make_cpu_unit(const std::string& machine, CpuModel::Params p) {
  UnitConfig u;
  u.name = machine + ".cpu";
  u.device = std::make_shared<CpuModel>(std::move(p));
  u.path = gigabit_ethernet().then(local_memory_bus());
  return u;
}

UnitConfig make_gpu_unit(const std::string& machine, int index,
                         GpuModel::Params p, const LinkModel& pcie) {
  UnitConfig u;
  u.name = machine + ".gpu" + std::to_string(index);
  u.device = std::make_shared<GpuModel>(std::move(p));
  u.path = gigabit_ethernet().then(pcie);
  return u;
}

}  // namespace

MachineConfig machine_a() {
  MachineConfig m;
  m.name = "A";
  m.cpu_info = "Intel Xeon E5-2690V2, 10 cores @ 3.0 GHz, 25 MB cache";
  m.gpu_info = "Tesla K20c, 2496 cores / 13 SMs, 205 GB/s, 6 GB";
  m.units.push_back(make_cpu_unit(
      m.name, {.name = "Xeon E5-2690V2",
               .cores = 10,
               .clock_ghz = 3.0,
               .flops_per_core_per_cycle = 16.0,  // AVX, add+mul ports
               .mem_bandwidth_bps = 50e9,
               .dispatch_overhead_s = 8e-6}));
  m.units.push_back(make_gpu_unit(
      m.name, 0,
      {.name = "Tesla K20c",
       .cores = 2496,
       .sm_count = 13,
       .resident_threads_per_sm = 2048,
       .clock_ghz = 0.706,
       .mem_bandwidth_bps = 205e9,
       .launch_overhead_s = 25e-6},
      pcie3_x16()));
  return m;
}

MachineConfig machine_b(bool dual_gpu_boards) {
  MachineConfig m;
  m.name = "B";
  m.cpu_info = "Intel i7-920, 4 cores @ 2.67 GHz, 8 MB cache";
  m.gpu_info = "GTX 295, 2 x 240 cores / 30 SMs, 223.8 GB/s, 896 MB";
  m.units.push_back(make_cpu_unit(
      m.name, {.name = "i7-920",
               .cores = 4,
               .clock_ghz = 2.67,
               .flops_per_core_per_cycle = 8.0,  // SSE
               .mem_bandwidth_bps = 25e9,
               .dispatch_overhead_s = 10e-6}));
  // GTX 295: Tesla microarchitecture -- 1024 resident threads/SM, no cache,
  // high launch cost. Each half: 240 cores / 15 SMs.
  const GpuModel::Params half = {.name = "GTX 295 (half)",
                                 .cores = 240,
                                 .sm_count = 15,
                                 .resident_threads_per_sm = 1024,
                                 .clock_ghz = 1.242,
                                 .mem_bandwidth_bps = 111.9e9,
                                 .launch_overhead_s = 45e-6};
  const int gpus = dual_gpu_boards ? 2 : 1;
  for (int g = 0; g < gpus; ++g)
    m.units.push_back(make_gpu_unit(m.name, g, half, pcie2_x16()));
  return m;
}

MachineConfig machine_c(bool dual_gpu_boards) {
  MachineConfig m;
  m.name = "C";
  m.cpu_info = "Intel i7-4930K, 6 cores @ 3.4 GHz, 12 MB cache";
  m.gpu_info = "GTX 680, 2 x 1536 cores / 8 SMs, 192.2 GB/s, 2 GB";
  m.units.push_back(make_cpu_unit(
      m.name, {.name = "i7-4930K",
               .cores = 6,
               .clock_ghz = 3.4,
               .flops_per_core_per_cycle = 16.0,
               .mem_bandwidth_bps = 40e9,
               .dispatch_overhead_s = 8e-6}));
  const GpuModel::Params gpu = {.name = "GTX 680",
                                .cores = 1536,
                                .sm_count = 8,
                                .resident_threads_per_sm = 2048,
                                .clock_ghz = 1.058,
                                .mem_bandwidth_bps = 192.2e9,
                                .launch_overhead_s = 30e-6};
  const int gpus = dual_gpu_boards ? 2 : 1;
  for (int g = 0; g < gpus; ++g)
    m.units.push_back(make_gpu_unit(m.name, g, gpu, pcie3_x16()));
  return m;
}

MachineConfig machine_d() {
  MachineConfig m;
  m.name = "D";
  m.cpu_info = "Intel i7-3930K, 6 cores @ 3.2 GHz, 12 MB cache";
  m.gpu_info = "GTX Titan, 2688 cores / 14 SMs, 223.8 GB/s, 6 GB";
  m.units.push_back(make_cpu_unit(
      m.name, {.name = "i7-3930K",
               .cores = 6,
               .clock_ghz = 3.2,
               .flops_per_core_per_cycle = 16.0,
               .mem_bandwidth_bps = 40e9,
               .dispatch_overhead_s = 8e-6}));
  m.units.push_back(make_gpu_unit(
      m.name, 0,
      {.name = "GTX Titan",
       .cores = 2688,
       .sm_count = 14,
       .resident_threads_per_sm = 2048,
       .clock_ghz = 0.837,
       .mem_bandwidth_bps = 223.8e9,
       .launch_overhead_s = 25e-6},
      pcie3_x16()));
  return m;
}

std::vector<MachineConfig> scenario(std::size_t machines,
                                    bool dual_gpu_boards) {
  PLBHEC_EXPECTS(machines >= 1 && machines <= 4);
  std::vector<MachineConfig> result;
  result.push_back(machine_a());
  if (machines >= 2) result.push_back(machine_b(dual_gpu_boards));
  if (machines >= 3) result.push_back(machine_c(dual_gpu_boards));
  if (machines >= 4) result.push_back(machine_d());
  return result;
}

std::string table1_string(const std::vector<MachineConfig>& machines) {
  Table t({"Machine", "CPU", "GPU", "Units"});
  for (const auto& m : machines) {
    t.row()
        .add(m.name)
        .add(m.cpu_info)
        .add(m.gpu_info)
        .add(std::to_string(m.units.size()));
  }
  return t.render();
}

}  // namespace plbhec::sim
