#include "plbhec/sim/device.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "plbhec/common/contracts.hpp"

namespace plbhec::sim {

double DeviceModel::execution_seconds(const WorkloadProfile& w, double grains,
                                      double speed_factor) const {
  PLBHEC_EXPECTS(speed_factor > 0.0);
  return execution_seconds(w, grains) / speed_factor;
}

GpuModel::GpuModel(Params p) : params_(std::move(p)) {
  PLBHEC_EXPECTS(params_.cores > 0);
  PLBHEC_EXPECTS(params_.sm_count > 0);
  PLBHEC_EXPECTS(params_.clock_ghz > 0.0);
}

std::string GpuModel::description() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (%zu cores / %zu SMs @ %.2f GHz)",
                params_.name.c_str(), params_.cores, params_.sm_count,
                params_.clock_ghz);
  return buf;
}

double GpuModel::peak_flops() const {
  return static_cast<double>(params_.cores) * params_.clock_ghz * 1e9 *
         params_.flops_per_core_per_cycle;
}

double GpuModel::execution_seconds(const WorkloadProfile& w,
                                   double grains) const {
  return execution_seconds(w, grains, 1.0);
}

double GpuModel::execution_seconds(const WorkloadProfile& w, double grains,
                                   double speed_factor) const {
  PLBHEC_EXPECTS(grains >= 0.0);
  PLBHEC_EXPECTS(speed_factor > 0.0);
  if (grains == 0.0) return 0.0;

  const double threads = grains * w.gpu_threads_per_grain;
  const double capacity = static_cast<double>(
      params_.sm_count * params_.resident_threads_per_sm);
  const double waves = std::ceil(threads / capacity);
  // The speed factor throttles the arithmetic rate (clock, contended
  // cores) and stretches the launch/warmup overheads with it; the memory
  // roof below deliberately stays at full bandwidth (see DeviceModel).
  const double effective_rate =
      peak_flops() * w.gpu_efficiency * speed_factor;

  // Full-wave charge: a partially filled wave occupies every SM for the
  // duration of its slowest thread, so the idle lanes are paid for. This
  // makes small-block time flat within a wave and quantized across waves —
  // and is non-decreasing in the block size by construction.
  const double flops_per_thread =
      w.flops_per_grain / std::max(w.gpu_threads_per_grain, 1e-300);
  const double compute_s =
      waves * capacity * flops_per_thread / effective_rate;
  const double memory_s =
      grains * w.device_bytes_per_grain / params_.mem_bandwidth_bps;

  // Pipeline/tiling warmup: kernels approach peak only on large blocks
  // (tile quantization, epilogue overheads, wave load imbalance). Modeled
  // as an additive saturating cost worth ~`saturation_grains` of work, so
  // small blocks pay a disproportionate share and the curve stays
  // monotone.
  double warmup_s = 0.0;
  if (w.gpu_saturation_grains > 0.0) {
    const double full_warmup =
        w.gpu_saturation_grains * w.flops_per_grain / effective_rate;
    warmup_s = full_warmup * grains / (grains + w.gpu_saturation_grains);
  }

  return params_.launch_overhead_s / speed_factor +
         std::max(compute_s, memory_s) + warmup_s;
}

CpuModel::CpuModel(Params p) : params_(std::move(p)) {
  PLBHEC_EXPECTS(params_.cores > 0);
  PLBHEC_EXPECTS(params_.clock_ghz > 0.0);
}

std::string CpuModel::description() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (%zu cores @ %.2f GHz)",
                params_.name.c_str(), params_.cores, params_.clock_ghz);
  return buf;
}

double CpuModel::peak_flops() const {
  return static_cast<double>(params_.cores) * params_.clock_ghz * 1e9 *
         params_.flops_per_core_per_cycle;
}

double CpuModel::execution_seconds(const WorkloadProfile& w,
                                   double grains) const {
  return execution_seconds(w, grains, 1.0);
}

double CpuModel::execution_seconds(const WorkloadProfile& w, double grains,
                                   double speed_factor) const {
  PLBHEC_EXPECTS(grains >= 0.0);
  PLBHEC_EXPECTS(speed_factor > 0.0);
  if (grains == 0.0) return 0.0;

  const double cores = static_cast<double>(params_.cores);
  const double p = std::clamp(w.cpu_parallel_fraction, 0.0, 1.0);
  const double speedup = 1.0 / ((1.0 - p) + p / cores);
  const double single_core_flops =
      params_.clock_ghz * 1e9 * params_.flops_per_core_per_cycle;

  const double flops = grains * w.flops_per_grain;
  // As in GpuModel: speed throttles arithmetic and overhead, not the
  // memory roof.
  const double compute_s =
      flops / (single_core_flops * speedup * w.cpu_efficiency * speed_factor);
  const double memory_s =
      grains * w.device_bytes_per_grain / params_.mem_bandwidth_bps;

  return params_.dispatch_overhead_s / speed_factor +
         std::max(compute_s, memory_s);
}

}  // namespace plbhec::sim
