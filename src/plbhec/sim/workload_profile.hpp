#pragma once
/// \file workload_profile.hpp
/// Cost-model description of a data-parallel application, consumed by the
/// simulated device models. A "grain" is the application's smallest valid
/// block unit (one matrix line, one gene, one option); schedulers hand out
/// blocks measured in grains.

#include <string>

namespace plbhec::sim {

struct WorkloadProfile {
  std::string name;

  /// Useful floating-point work per grain (flops). For matrix
  /// multiplication of n x n blocks split by lines this is 2 n^2 per line.
  double flops_per_grain = 1.0;

  /// Input bytes that must reach the device per grain.
  double bytes_per_grain = 1.0;

  /// Memory traffic on the device per grain (bytes) — used for the
  /// roofline blend (compute-bound vs bandwidth-bound).
  double device_bytes_per_grain = 1.0;

  /// GPU threads launched per grain (domain decomposition granularity).
  double gpu_threads_per_grain = 1.0;

  /// Fraction of the per-block work that parallelizes across CPU cores
  /// (Amdahl). 1.0 = embarrassingly parallel.
  double cpu_parallel_fraction = 1.0;

  /// Fraction of device peak flops a tuned kernel reaches at saturation.
  double gpu_efficiency = 0.6;
  double cpu_efficiency = 0.7;

  /// Block size (in grains) at which a GPU kernel reaches half of its
  /// pipeline/tiling efficiency: eff *= (0.25 + 0.75 * g / (g + sat)).
  /// Real kernels (CUBLAS GEMM slices, batched pricing) genuinely ramp
  /// with block size well past full occupancy — this is what makes the
  /// per-unit performance curves nonlinear over the operating range
  /// (paper Fig. 1) and single-number weight models lossy. 0 disables.
  double gpu_saturation_grains = 0.0;
};

}  // namespace plbhec::sim
