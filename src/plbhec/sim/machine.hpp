#pragma once
/// \file machine.hpp
/// Machine configurations mirroring Table I of the paper. Each machine
/// contributes one CPU processing unit (all cores together, as the paper
/// creates one thread per virtual core and treats the CPU as one unit) and
/// one or two GPU processing units (GTX 295 and GTX 680 boards expose two
/// GPU processors).

#include <memory>
#include <string>
#include <vector>

#include "plbhec/sim/device.hpp"
#include "plbhec/sim/link.hpp"

namespace plbhec::sim {

/// One processing unit inside a machine: a device model plus the full
/// master-to-device transfer path (network, and PCIe for GPUs).
struct UnitConfig {
  std::string name;  ///< e.g. "A.cpu", "B.gpu0"
  std::shared_ptr<const DeviceModel> device;
  LinkModel path;  ///< composed master -> host -> device link
};

struct MachineConfig {
  std::string name;        ///< "A".."D"
  std::string cpu_info;    ///< human-readable CPU line of Table I
  std::string gpu_info;    ///< human-readable GPU line of Table I
  std::vector<UnitConfig> units;
};

/// Table I machines. `dual_gpu_boards` controls whether the GTX 295 / GTX
/// 680 boards contribute two GPU units (execution-time experiments) or one
/// (block-distribution and idleness experiments, "one GPU per machine").
[[nodiscard]] MachineConfig machine_a();
[[nodiscard]] MachineConfig machine_b(bool dual_gpu_boards = false);
[[nodiscard]] MachineConfig machine_c(bool dual_gpu_boards = false);
[[nodiscard]] MachineConfig machine_d();

/// The paper's scenarios: 1 machine = {A}, 2 = {A,B}, 3 = {A,B,C},
/// 4 = {A,B,C,D}.
[[nodiscard]] std::vector<MachineConfig> scenario(std::size_t machines,
                                                  bool dual_gpu_boards = false);

/// Renders Table I for the bench headers.
[[nodiscard]] std::string table1_string(
    const std::vector<MachineConfig>& machines);

}  // namespace plbhec::sim
