#include "plbhec/solver/equal_time.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"

namespace plbhec::solver {
namespace {

/// Monotone non-decreasing envelope of E(x) on [x_min, 1].
class MonotoneEnvelope {
 public:
  MonotoneEnvelope(const fit::PerfModel& model, double x_min, double x_max,
                   std::size_t grid) {
    PLBHEC_EXPECTS(grid >= 2);
    PLBHEC_EXPECTS(x_max > x_min);
    xs_.resize(grid);
    ts_.resize(grid);
    for (std::size_t i = 0; i < grid; ++i) {
      const double f = static_cast<double>(i) / static_cast<double>(grid - 1);
      xs_[i] = x_min + f * (x_max - x_min);
      double t = model.total_time(xs_[i]);
      if (!std::isfinite(t)) t = i ? ts_[i - 1] : 0.0;
      ts_[i] = std::max(t, i ? ts_[i - 1] : t);
    }
  }

  [[nodiscard]] double min_time() const { return ts_.front(); }
  [[nodiscard]] double max_time() const { return ts_.back(); }

  /// Largest x with envelope(x) <= T (clamped to [x_min, 1]).
  [[nodiscard]] double inverse(double t) const {
    if (t <= ts_.front()) return xs_.front();
    if (t >= ts_.back()) return xs_.back();
    auto it = std::upper_bound(ts_.begin(), ts_.end(), t);
    const std::size_t hi = static_cast<std::size_t>(it - ts_.begin());
    const std::size_t lo = hi - 1;
    const double span_t = ts_[hi] - ts_[lo];
    if (span_t <= 0.0) return xs_[hi];
    const double f = (t - ts_[lo]) / span_t;
    return xs_[lo] + f * (xs_[hi] - xs_[lo]);
  }

 private:
  std::vector<double> xs_;
  std::vector<double> ts_;
};

}  // namespace

EqualTimeResult solve_equal_time(std::span<const fit::PerfModel> models,
                                 const EqualTimeOptions& opt) {
  EqualTimeResult result;
  const std::size_t n = models.size();
  const double target = opt.target;
  PLBHEC_EXPECTS(target > 0.0 && target <= 1.0);
  if (n == 0) return result;
  if (n == 1) {
    result.ok = true;
    result.fractions = {target};
    result.common_time = models[0].total_time(target);
    return result;
  }
  PLBHEC_EXPECTS(opt.x_min > 0.0 &&
                 opt.x_min * static_cast<double>(n) < target);

  std::vector<MonotoneEnvelope> envelopes;
  envelopes.reserve(n);
  for (const auto& m : models) {
    if (!m.valid()) return result;
    envelopes.emplace_back(m, opt.x_min, target, opt.grid);
  }

  auto total_fraction = [&](double t) {
    double s = 0.0;
    for (const auto& e : envelopes) s += e.inverse(t);
    return s;
  };

  double t_lo = envelopes[0].min_time();
  double t_hi = envelopes[0].max_time();
  for (const auto& e : envelopes) {
    t_lo = std::min(t_lo, e.min_time());
    t_hi = std::max(t_hi, e.max_time());
  }
  // At t_hi every unit takes the whole window, so the sum reaches
  // n * target >= target; at t_lo it is about n * x_min < target. Bisect.
  if (total_fraction(t_hi) < target) {
    // Degenerate flat curves; fall back to proportional-to-speed split.
    result.fractions.assign(n, 0.0);
    double wsum = 0.0;
    for (std::size_t g = 0; g < n; ++g) {
      const double t = std::max(
          models[g].total_time(target / static_cast<double>(n)), 1e-12);
      result.fractions[g] = 1.0 / t;
      wsum += result.fractions[g];
    }
    for (double& f : result.fractions) f *= target / wsum;
    result.common_time = t_hi;
    result.ok = true;
    return result;
  }

  for (std::size_t it = 0; it < opt.max_bisect; ++it) {
    const double mid = 0.5 * (t_lo + t_hi);
    if (total_fraction(mid) >= target)
      t_hi = mid;
    else
      t_lo = mid;
    if (std::fabs(total_fraction(t_hi) - target) <= opt.tolerance) break;
  }

  result.common_time = t_hi;
  result.fractions.resize(n);
  double sum = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    result.fractions[g] = envelopes[g].inverse(t_hi);
    sum += result.fractions[g];
  }
  PLBHEC_ASSERT(sum > 0.0);
  for (double& f : result.fractions) f *= target / sum;  // exact projection
  result.ok = true;
  return result;
}

}  // namespace plbhec::solver
