#pragma once
/// \file equal_time.hpp
/// Analytic solver for the equal-time block distribution: find the common
/// finish time T and fractions x_g with E_g(x_g) = T and sum x_g = 1.
///
/// Because each fitted E_g may be locally non-monotone (small negative
/// coefficients on some basis terms), the solver works on the monotone
/// non-decreasing envelope of each curve sampled on a grid, inverts the
/// envelopes, and bisects on T (sum_g E_g^{-1}(T) is non-decreasing in T).
///
/// This serves as (a) the feasibility-restoration / fallback path of the
/// interior-point block selection and (b) an independent cross-check in the
/// test suite: on well-behaved curves both must agree.

#include <span>
#include <vector>

#include "plbhec/fit/model.hpp"

namespace plbhec::solver {

struct EqualTimeOptions {
  double x_min = 1e-6;       ///< smallest admissible fraction per unit
  /// The fractions must sum to this (1 = the whole input; PLB-HeC solves
  /// per execution window, e.g. 0.25). Envelopes are sampled on
  /// [x_min, target], which keeps the inversion inside the probed range.
  double target = 1.0;
  std::size_t grid = 512;    ///< envelope sampling resolution
  std::size_t max_bisect = 200;
  double tolerance = 1e-12;  ///< on |sum x - target|
};

struct EqualTimeResult {
  bool ok = false;
  std::vector<double> fractions;  ///< sums to 1 when ok
  double common_time = 0.0;       ///< the equalized E value T
};

[[nodiscard]] EqualTimeResult solve_equal_time(
    std::span<const fit::PerfModel> models, const EqualTimeOptions& options = {});

}  // namespace plbhec::solver
