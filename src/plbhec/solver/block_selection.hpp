#pragma once
/// \file block_selection.hpp
/// The block-size selection phase of PLB-HeC (§III-C). Builds the nonlinear
/// system of Eq. (5), subject to the simplex restriction Eq. (3) and the
/// equal-time restriction Eq. (4), and solves it with the interior-point
/// line-search filter method. The analytic equal-time solver provides the
/// starting point and a fallback when the NLP solve does not converge.

#include <span>
#include <vector>

#include "plbhec/fit/model.hpp"
#include "plbhec/solver/interior_point.hpp"

namespace plbhec::solver {

struct BlockSelectionOptions {
  double x_min = 1e-6;   ///< lower bound on each fraction (keeps ln-terms finite)
  /// The fractions sum to this input share (1 = the whole input). PLB-HeC
  /// solves per execution window: equal E_g(x_g) at window-level shares is
  /// what actually equalizes the issued blocks when the curves are
  /// nonlinear, and it keeps x_g within the block sizes the modeling phase
  /// actually probed.
  double total_fraction = 1.0;
  IpOptions ip;          ///< interior-point configuration
  bool allow_fallback = true;  ///< fall back to the analytic solver on failure
  /// Optional warm start: the previous selection's window-level fractions
  /// (one per model, in the same order). When its size matches, the
  /// interior-point solve starts here instead of re-deriving a starting
  /// point from the analytic equal-time system — a §III-D rebalance only
  /// perturbs the previous optimum, so the Newton iteration typically
  /// needs far fewer KKT factorizations. Ignored if the size mismatches
  /// or the entries are degenerate; the analytic path is then used.
  std::vector<double> warm_start;
};

struct BlockSelection {
  bool ok = false;
  std::vector<double> fractions;  ///< x_g, sums to 1
  double predicted_time = 0.0;    ///< max_g E_g(x_g) under the models
  bool used_fallback = false;     ///< analytic path was used
  bool warm_started = false;      ///< x0 came from options.warm_start
  IpResult ip;                    ///< interior-point diagnostics
  double solve_seconds = 0.0;     ///< wall-clock time of the selection
};

/// Computes the fraction of the remaining input assigned to each processing
/// unit. `models` must all be valid (fitted).
[[nodiscard]] BlockSelection select_block_sizes(
    std::span<const fit::PerfModel> models,
    const BlockSelectionOptions& options = {});

/// Rounds fractional shares to whole application grains (matrix lines,
/// genes, options) with the largest-remainder method; the result sums to
/// `total_grains` exactly.
[[nodiscard]] std::vector<std::size_t> round_to_grains(
    std::span<const double> fractions, std::size_t total_grains);

}  // namespace plbhec::solver
