#include "plbhec/solver/block_selection.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "plbhec/common/contracts.hpp"
#include "plbhec/solver/equal_time.hpp"

namespace plbhec::solver {
namespace {

/// NLP encoding of Eq. (3)-(5):
///   variables  x_1..x_n (fractions),
///   objective  E_1(x_1),
///   c_0        sum_g x_g - 1 = 0,
///   c_g        E_1(x_1) - E_{g+1}(x_{g+1}) = 0   for g = 1..n-1,
///   bounds     x_min <= x_g <= 1.
class EqualTimeNlp final : public NlpProblem {
 public:
  EqualTimeNlp(std::span<const fit::PerfModel> models, double x_min,
               double target)
      : models_(models.begin(), models.end()),
        x_min_(x_min),
        target_(target) {}

  [[nodiscard]] std::size_t num_vars() const override {
    return models_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const override {
    return models_.size();  // 1 simplex + (n-1) equal-time
  }

  [[nodiscard]] double objective(std::span<const double> x) const override {
    return models_[0].total_time(x[0]);
  }

  void gradient(std::span<const double> x,
                std::span<double> grad) const override {
    std::fill(grad.begin(), grad.end(), 0.0);
    grad[0] = models_[0].total_derivative(x[0]);
  }

  void constraints(std::span<const double> x,
                   std::span<double> c) const override {
    const std::size_t n = models_.size();
    double sum = 0.0;
    for (std::size_t g = 0; g < n; ++g) sum += x[g];
    c[0] = sum - target_;
    const double e1 = models_[0].total_time(x[0]);
    for (std::size_t g = 1; g < n; ++g)
      c[g] = e1 - models_[g].total_time(x[g]);
  }

  void jacobian(std::span<const double> x,
                linalg::Matrix& jac) const override {
    const std::size_t n = models_.size();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t cidx = 0; cidx < n; ++cidx) jac(r, cidx) = 0.0;
    for (std::size_t cidx = 0; cidx < n; ++cidx) jac(0, cidx) = 1.0;
    const double de1 = models_[0].total_derivative(x[0]);
    for (std::size_t g = 1; g < n; ++g) {
      jac(g, 0) = de1;
      jac(g, g) = -models_[g].total_derivative(x[g]);
    }
  }

  void lagrangian_hessian(std::span<const double> x, double obj_factor,
                          std::span<const double> lambda,
                          linalg::Matrix& hess) const override {
    const std::size_t n = models_.size();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t cidx = 0; cidx < n; ++cidx) hess(r, cidx) = 0.0;
    const double d2e1 = models_[0].total_second_derivative(x[0]);
    double h00 = obj_factor * d2e1;
    for (std::size_t g = 1; g < n; ++g) {
      h00 += lambda[g] * d2e1;
      hess(g, g) = -lambda[g] * models_[g].total_second_derivative(x[g]);
    }
    hess(0, 0) = h00;
  }

  void bounds(std::span<double> lower, std::span<double> upper) const override {
    std::fill(lower.begin(), lower.end(), x_min_);
    std::fill(upper.begin(), upper.end(), target_);
  }

 private:
  std::vector<fit::PerfModel> models_;
  double x_min_;
  double target_;
};

double predicted_makespan(std::span<const fit::PerfModel> models,
                          std::span<const double> fractions) {
  double worst = 0.0;
  for (std::size_t g = 0; g < models.size(); ++g)
    worst = std::max(worst, models[g].total_time(fractions[g]));
  return worst;
}

}  // namespace

BlockSelection select_block_sizes(std::span<const fit::PerfModel> models,
                                  const BlockSelectionOptions& opt) {
  BlockSelection out;
  const auto t_begin = std::chrono::steady_clock::now();
  const std::size_t n = models.size();
  const double target = opt.total_fraction;
  PLBHEC_EXPECTS(target > 0.0 && target <= 1.0);
  if (n == 0) return out;
  for (const auto& m : models) PLBHEC_EXPECTS(m.valid());

  if (n == 1) {
    out.ok = true;
    out.fractions = {target};
    out.predicted_time = models[0].total_time(target);
    out.solve_seconds = 0.0;
    return out;
  }

  // Units whose fitted curve is (near-)flat carry no size information —
  // typically an intercept-only fallback from a single profiling sample.
  // Solving the equal-time system with a flat curve hands that unit an
  // arbitrary (often huge) share, so park such units at the minimum
  // fraction and solve over the informative ones.
  std::vector<std::size_t> informative;
  std::vector<fit::PerfModel> informative_models;
  for (std::size_t g = 0; g < n; ++g) {
    const double span =
        models[g].total_time(target) - models[g].total_time(opt.x_min);
    const double scale =
        std::max(std::fabs(models[g].total_time(target)), 1e-12);
    if (span > 1e-3 * scale) {
      informative.push_back(g);
      informative_models.push_back(models[g]);
    }
  }
  if (informative.size() < n) {
    if (informative.empty()) {
      // Nothing informative at all: uniform split.
      out.ok = true;
      out.used_fallback = true;
      out.fractions.assign(n, target / static_cast<double>(n));
      out.predicted_time = predicted_makespan(models, out.fractions);
      return out;
    }
    BlockSelectionOptions sub_opt = opt;
    sub_opt.warm_start.clear();
    if (opt.warm_start.size() == n) {
      // Project the warm start onto the informative subset.
      for (std::size_t idx : informative)
        sub_opt.warm_start.push_back(opt.warm_start[idx]);
    }
    const BlockSelection sub =
        select_block_sizes(informative_models, sub_opt);
    if (!sub.ok) return out;
    out = sub;
    const double flat_share =
        opt.x_min * static_cast<double>(n - informative.size());
    std::vector<double> full(n, opt.x_min);
    for (std::size_t i = 0; i < informative.size(); ++i)
      full[informative[i]] =
          sub.fractions[i] * (target - flat_share) / target;
    out.fractions = std::move(full);
    out.predicted_time = predicted_makespan(models, out.fractions);
    return out;
  }

  // Starting point, in priority order: the caller's warm start (the
  // previous selection's fractions, §III-D rebalances only perturb them),
  // else the analytic equal-time split, else the uniform split. The
  // analytic system is solved lazily — a usable warm start skips it
  // entirely and only a failed NLP brings it back for the fallback.
  EqualTimeOptions eq_opt;
  eq_opt.x_min = opt.x_min;
  eq_opt.target = target;
  EqualTimeResult warm;
  bool warm_computed = false;

  std::vector<double> x0(n, target / static_cast<double>(n));
  bool warm_usable = opt.warm_start.size() == n;
  double warm_sum = 0.0;
  for (std::size_t g = 0; warm_usable && g < n; ++g) {
    if (!std::isfinite(opt.warm_start[g]) || opt.warm_start[g] <= 0.0)
      warm_usable = false;
    else
      warm_sum += opt.warm_start[g];
  }
  if (warm_usable && warm_sum > 0.0) {
    for (std::size_t g = 0; g < n; ++g)
      x0[g] = std::clamp(opt.warm_start[g] * target / warm_sum, opt.x_min,
                         target);
    out.warm_started = true;
  } else {
    warm = solve_equal_time(models, eq_opt);
    warm_computed = true;
    if (warm.ok) x0 = warm.fractions;
  }

  EqualTimeNlp nlp(models, opt.x_min, target);
  out.ip = solve_interior_point(nlp, x0, opt.ip);

  const bool ip_usable =
      (out.ip.status == IpStatus::kSolved ||
       out.ip.status == IpStatus::kMaxIterations) &&
      out.ip.constraint_violation < 1e-5;

  if (ip_usable) {
    out.fractions = out.ip.x;
    // Numerical cleanup: clamp into bounds and renormalize exactly.
    double sum = 0.0;
    for (double& f : out.fractions) {
      f = std::clamp(f, opt.x_min, target);
      sum += f;
    }
    for (double& f : out.fractions) f *= target / sum;
    out.ok = true;
    out.used_fallback = false;
  } else if (opt.allow_fallback) {
    if (!warm_computed) {
      warm = solve_equal_time(models, eq_opt);
      warm_computed = true;
    }
    if (warm.ok) {
      out.fractions = warm.fractions;
      out.ok = true;
      out.used_fallback = true;
    } else {
      out.ok = false;
    }
  } else {
    out.ok = false;
  }

  if (out.ok) out.predicted_time = predicted_makespan(models, out.fractions);
  out.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();
  return out;
}

std::vector<std::size_t> round_to_grains(std::span<const double> fractions,
                                         std::size_t total_grains) {
  const std::size_t n = fractions.size();
  std::vector<std::size_t> grains(n, 0);
  if (n == 0 || total_grains == 0) return grains;

  double sum = 0.0;
  for (double f : fractions) {
    PLBHEC_EXPECTS(f >= 0.0);
    sum += f;
  }
  PLBHEC_EXPECTS(sum > 0.0);

  std::vector<double> remainder(n);
  std::size_t assigned = 0;
  for (std::size_t g = 0; g < n; ++g) {
    const double ideal =
        fractions[g] / sum * static_cast<double>(total_grains);
    grains[g] = static_cast<std::size_t>(ideal);
    remainder[g] = ideal - static_cast<double>(grains[g]);
    assigned += grains[g];
  }

  // Distribute the leftover grains to the largest remainders.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainder[a] > remainder[b];
  });
  std::size_t leftover = total_grains - assigned;
  for (std::size_t i = 0; leftover > 0; i = (i + 1) % n, --leftover)
    ++grains[order[i]];

  PLBHEC_ENSURES(std::accumulate(grains.begin(), grains.end(),
                                 std::size_t{0}) == total_grains);
  return grains;
}

}  // namespace plbhec::solver
