#pragma once
/// \file nlp.hpp
/// Generic smooth nonlinear program with equality constraints and simple
/// bounds:
///     min f(x)   s.t.  c(x) = 0,  l <= x <= u.
/// This is the problem class the interior-point solver consumes; the
/// PLB-HeC block-size selection (Eq. 3-5 of the paper) is one instance.

#include <span>

#include "plbhec/linalg/matrix.hpp"

namespace plbhec::solver {

class NlpProblem {
 public:
  virtual ~NlpProblem() = default;

  [[nodiscard]] virtual std::size_t num_vars() const = 0;
  [[nodiscard]] virtual std::size_t num_constraints() const = 0;

  [[nodiscard]] virtual double objective(std::span<const double> x) const = 0;
  virtual void gradient(std::span<const double> x,
                        std::span<double> grad) const = 0;

  /// Evaluates the equality constraints c(x) (size num_constraints()).
  virtual void constraints(std::span<const double> x,
                           std::span<double> c) const = 0;
  /// Jacobian of c, shape num_constraints() x num_vars().
  virtual void jacobian(std::span<const double> x,
                        linalg::Matrix& jac) const = 0;

  /// Hessian of the Lagrangian obj_factor * f + lambda^T c, shape n x n.
  /// Implementations must fill the full symmetric matrix.
  virtual void lagrangian_hessian(std::span<const double> x,
                                  double obj_factor,
                                  std::span<const double> lambda,
                                  linalg::Matrix& hess) const = 0;

  /// Variable bounds. Infinite bounds may use +-1e20.
  virtual void bounds(std::span<double> lower,
                      std::span<double> upper) const = 0;
};

/// Bound value treated as infinity by the solver.
inline constexpr double kInfinity = 1e20;

}  // namespace plbhec::solver
