#include "plbhec/solver/interior_point.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "plbhec/common/contracts.hpp"
#include "plbhec/linalg/lu.hpp"

namespace plbhec::solver {
namespace {

constexpr double kSPhi = 2.3;    // switching-condition exponents (IPOPT)
constexpr double kSTheta = 1.1;
constexpr double kDelta = 1.0;
constexpr double kEta = 1e-4;    // Armijo constant
constexpr double kKappaSigma = 1e10;  // multiplier safeguard corridor

bool is_finite(double v) { return std::isfinite(v); }

struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;
  [[nodiscard]] bool has_lower(std::size_t i) const {
    return lower[i] > -kInfinity;
  }
  [[nodiscard]] bool has_upper(std::size_t i) const {
    return upper[i] < kInfinity;
  }
};

/// Pushes a point strictly inside the bounds (IPOPT's kappa_1 rule).
void project_interior(std::vector<double>& x, const Bounds& b, double push) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool hl = b.has_lower(i);
    const bool hu = b.has_upper(i);
    if (hl && hu) {
      const double width = b.upper[i] - b.lower[i];
      const double pad = std::min(push * std::max(1.0, std::fabs(width)),
                                  0.25 * width);
      x[i] = std::clamp(x[i], b.lower[i] + pad, b.upper[i] - pad);
    } else if (hl) {
      const double pad = push * std::max(1.0, std::fabs(b.lower[i]));
      x[i] = std::max(x[i], b.lower[i] + pad);
    } else if (hu) {
      const double pad = push * std::max(1.0, std::fabs(b.upper[i]));
      x[i] = std::min(x[i], b.upper[i] - pad);
    }
  }
}

struct Filter {
  struct Entry {
    double theta;
    double phi;
  };
  std::vector<Entry> entries;

  void clear() { entries.clear(); }

  void add(double theta, double phi) {
    // Remove dominated entries to keep the filter small.
    std::erase_if(entries, [&](const Entry& e) {
      return e.theta >= theta && e.phi >= phi;
    });
    entries.push_back({theta, phi});
  }

  /// A trial point is acceptable if it is not dominated by any entry.
  [[nodiscard]] bool acceptable(double theta, double phi, double gamma_theta,
                                double gamma_phi) const {
    for (const Entry& e : entries) {
      const bool improves_theta = theta <= (1.0 - gamma_theta) * e.theta;
      const bool improves_phi = phi <= e.phi - gamma_phi * e.theta;
      if (!improves_theta && !improves_phi) return false;
    }
    return true;
  }
};

struct Workspace {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<double> grad;   // objective gradient
  std::vector<double> c;      // constraint values
  linalg::Matrix jac;         // m x n
  linalg::Matrix hess;        // n x n Lagrangian Hessian
};

double theta_of(std::span<const double> c) {
  double s = 0.0;
  for (double v : c) s += std::fabs(v);
  return s;
}

}  // namespace

std::string to_string(IpStatus s) {
  switch (s) {
    case IpStatus::kSolved:
      return "solved";
    case IpStatus::kMaxIterations:
      return "max-iterations";
    case IpStatus::kLineSearchFailure:
      return "line-search-failure";
    case IpStatus::kSingularSystem:
      return "singular-kkt-system";
    case IpStatus::kInvalidProblem:
      return "invalid-problem";
  }
  return "?";
}

IpResult solve_interior_point(const NlpProblem& problem,
                              std::span<const double> x0,
                              const IpOptions& opt) {
  IpResult result;
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.num_constraints();
  if (n == 0 || x0.size() != n) {
    result.status = IpStatus::kInvalidProblem;
    return result;
  }

  Bounds bounds;
  bounds.lower.assign(n, -kInfinity);
  bounds.upper.assign(n, kInfinity);
  problem.bounds(bounds.lower, bounds.upper);
  for (std::size_t i = 0; i < n; ++i)
    if (bounds.lower[i] > bounds.upper[i]) {
      result.status = IpStatus::kInvalidProblem;
      return result;
    }

  std::vector<double> x(x0.begin(), x0.end());
  project_interior(x, bounds, opt.bound_push);

  double mu = opt.mu_initial;
  std::vector<double> lambda(m, 0.0);
  std::vector<double> zl(n, 0.0);
  std::vector<double> zu(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (bounds.has_lower(i)) zl[i] = mu / (x[i] - bounds.lower[i]);
    if (bounds.has_upper(i)) zu[i] = mu / (bounds.upper[i] - x[i]);
  }

  Workspace ws;
  ws.n = n;
  ws.m = m;
  ws.grad.assign(n, 0.0);
  ws.c.assign(m, 0.0);
  ws.jac = linalg::Matrix(m, n);
  ws.hess = linalg::Matrix(n, n);

  auto eval_all = [&](std::span<const double> xv) {
    problem.gradient(xv, ws.grad);
    if (m) {
      problem.constraints(xv, ws.c);
      problem.jacobian(xv, ws.jac);
    }
  };

  auto barrier_phi = [&](std::span<const double> xv) -> double {
    double phi = problem.objective(xv);
    for (std::size_t i = 0; i < n; ++i) {
      if (bounds.has_lower(i)) {
        const double d = xv[i] - bounds.lower[i];
        if (d <= 0.0) return std::numeric_limits<double>::infinity();
        phi -= mu * std::log(d);
      }
      if (bounds.has_upper(i)) {
        const double d = bounds.upper[i] - xv[i];
        if (d <= 0.0) return std::numeric_limits<double>::infinity();
        phi -= mu * std::log(d);
      }
    }
    return phi;
  };

  auto constraint_theta = [&](std::span<const double> xv) -> double {
    if (!m) return 0.0;
    std::vector<double> cv(m);
    problem.constraints(xv, cv);
    return theta_of(cv);
  };

  /// Scaled KKT error for barrier parameter `mu_val` (mu_val = 0 gives the
  /// true optimality error used for termination).
  auto kkt_error = [&](double mu_val) -> double {
    double z_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) z_sum += std::fabs(zl[i]) + std::fabs(zu[i]);
    double l_sum = 0.0;
    for (double v : lambda) l_sum += std::fabs(v);
    const double denom = static_cast<double>(m + 2 * n);
    const double s_max = 100.0;
    const double s_d =
        std::max(s_max, (l_sum + z_sum) / std::max(1.0, denom)) / s_max;

    double err_dual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double g = ws.grad[i] - zl[i] + zu[i];
      for (std::size_t j = 0; j < m; ++j) g += ws.jac(j, i) * lambda[j];
      err_dual = std::max(err_dual, std::fabs(g));
    }
    double err_cons = 0.0;
    for (double v : ws.c) err_cons = std::max(err_cons, std::fabs(v));
    double err_comp = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (bounds.has_lower(i))
        err_comp = std::max(
            err_comp, std::fabs((x[i] - bounds.lower[i]) * zl[i] - mu_val));
      if (bounds.has_upper(i))
        err_comp = std::max(
            err_comp, std::fabs((bounds.upper[i] - x[i]) * zu[i] - mu_val));
    }
    return std::max({err_dual / s_d, err_cons, err_comp / s_d});
  };

  Filter filter;
  eval_all(x);

  double delta_w_last = 0.0;

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // ---- Termination / barrier update -----------------------------------
    const double err0 = kkt_error(0.0);
    if (err0 <= opt.tolerance) {
      result.status = IpStatus::kSolved;
      break;
    }
    while (mu > opt.mu_min && kkt_error(mu) <= opt.kappa_epsilon * mu) {
      mu = std::max(opt.mu_min,
                    std::min(opt.kappa_mu * mu, std::pow(mu, opt.theta_mu)));
      filter.clear();  // barrier changed; old filter entries are stale
    }

    // ---- Assemble and solve the regularized KKT system ------------------
    problem.lagrangian_hessian(x, 1.0, lambda, ws.hess);

    std::vector<double> sigma(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (bounds.has_lower(i)) sigma[i] += zl[i] / (x[i] - bounds.lower[i]);
      if (bounds.has_upper(i)) sigma[i] += zu[i] / (bounds.upper[i] - x[i]);
    }

    // rhs_x = grad(phi_mu) + J^T lambda
    std::vector<double> rhs(n + m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double g = ws.grad[i];
      if (bounds.has_lower(i)) g -= mu / (x[i] - bounds.lower[i]);
      if (bounds.has_upper(i)) g += mu / (bounds.upper[i] - x[i]);
      for (std::size_t j = 0; j < m; ++j) g += ws.jac(j, i) * lambda[j];
      rhs[i] = -g;
    }
    for (std::size_t j = 0; j < m; ++j) rhs[n + j] = -ws.c[j];

    std::vector<double> step;
    double delta_w = 0.0;
    bool solved_kkt = false;
    double delta_c = 0.0;
    while (!solved_kkt) {
      linalg::Matrix kkt(n + m, n + m);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) kkt(i, j) = ws.hess(i, j);
        kkt(i, i) += sigma[i] + delta_w;
      }
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
          kkt(n + j, i) = ws.jac(j, i);
          kkt(i, n + j) = ws.jac(j, i);
        }
        kkt(n + j, n + j) = -delta_c;
      }

      ++result.kkt_solves;
      auto lu = linalg::Lu::factor(std::move(kkt));
      if (lu) {
        step = lu->solve(rhs);
        // Curvature (descent) test: dx^T (W + Sigma + delta I) dx > 0
        // guarantees dx is a descent direction for the barrier problem on
        // the constraint null space. Reject and regularize otherwise.
        double curv = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          double hi = sigma[i] * step[i] + delta_w * step[i];
          for (std::size_t j = 0; j < n; ++j) hi += ws.hess(i, j) * step[j];
          curv += step[i] * hi;
        }
        double dx_norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) dx_norm += step[i] * step[i];
        bool finite = true;
        for (double v : step)
          if (!is_finite(v)) finite = false;
        if (finite && (dx_norm == 0.0 || curv > 1e-14 * dx_norm)) {
          solved_kkt = true;
          delta_w_last = delta_w;
          break;
        }
      }
      // Inertia correction: grow the primal regularization; add a tiny dual
      // regularization the first time the factorization itself fails.
      if (delta_w == 0.0) {
        delta_w = delta_w_last > 0.0 ? std::max(opt.delta_w_init,
                                                delta_w_last / 3.0)
                                     : opt.delta_w_init;
      } else {
        delta_w *= 10.0;
      }
      if (!lu && delta_c == 0.0) delta_c = 1e-10;
      if (delta_w > opt.delta_w_max) {
        result.status = IpStatus::kSingularSystem;
        result.x = x;
        result.lambda = lambda;
        result.objective = problem.objective(x);
        result.kkt_error = err0;
        result.constraint_violation = linalg::norm_inf(ws.c);
        return result;
      }
    }

    std::span<const double> dx(step.data(), n);
    std::span<const double> dlambda(step.data() + n, m);

    // dz from the linearized complementarity conditions.
    std::vector<double> dzl(n, 0.0);
    std::vector<double> dzu(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (bounds.has_lower(i)) {
        const double d = x[i] - bounds.lower[i];
        dzl[i] = mu / d - zl[i] - (zl[i] / d) * dx[i];
      }
      if (bounds.has_upper(i)) {
        const double d = bounds.upper[i] - x[i];
        dzu[i] = mu / d - zu[i] + (zu[i] / d) * dx[i];
      }
    }

    // ---- Fraction-to-boundary step limits --------------------------------
    const double tau = std::max(opt.tau_min, 1.0 - mu);
    double alpha_max = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (bounds.has_lower(i) && dx[i] < 0.0)
        alpha_max = std::min(
            alpha_max, -tau * (x[i] - bounds.lower[i]) / dx[i]);
      if (bounds.has_upper(i) && dx[i] > 0.0)
        alpha_max = std::min(
            alpha_max, tau * (bounds.upper[i] - x[i]) / dx[i]);
    }
    double alpha_z = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (bounds.has_lower(i) && dzl[i] < 0.0)
        alpha_z = std::min(alpha_z, -tau * zl[i] / dzl[i]);
      if (bounds.has_upper(i) && dzu[i] < 0.0)
        alpha_z = std::min(alpha_z, -tau * zu[i] / dzu[i]);
    }

    // ---- Filter line search ----------------------------------------------
    const double theta_k = theta_of(ws.c);
    const double phi_k = barrier_phi(x);
    double dphi = 0.0;  // directional derivative of phi_mu along dx
    for (std::size_t i = 0; i < n; ++i) {
      double g = ws.grad[i];
      if (bounds.has_lower(i)) g -= mu / (x[i] - bounds.lower[i]);
      if (bounds.has_upper(i)) g += mu / (bounds.upper[i] - x[i]);
      dphi += g * dx[i];
    }

    double alpha = alpha_max;
    bool accepted = false;
    bool augment_filter = false;
    std::vector<double> x_trial(n);
    while (alpha >= opt.min_step) {
      for (std::size_t i = 0; i < n; ++i) x_trial[i] = x[i] + alpha * dx[i];
      const double theta_t = constraint_theta(x_trial);
      const double phi_t = barrier_phi(x_trial);
      if (!is_finite(phi_t) || !is_finite(theta_t)) {
        alpha *= 0.5;
        continue;
      }

      const bool f_type =
          dphi < 0.0 && std::pow(alpha, kSPhi) * std::pow(-dphi, kSPhi) >
                            kDelta * std::pow(theta_k, kSTheta);
      if (f_type) {
        // Armijo condition on the barrier objective.
        if (phi_t <= phi_k + kEta * alpha * dphi &&
            filter.acceptable(theta_t, phi_t, opt.filter_gamma_theta,
                              opt.filter_gamma_phi)) {
          accepted = true;
          augment_filter = false;
          break;
        }
      } else {
        const bool sufficient =
            theta_t <= (1.0 - opt.filter_gamma_theta) * theta_k ||
            phi_t <= phi_k - opt.filter_gamma_phi * theta_k;
        if (sufficient && filter.acceptable(theta_t, phi_t,
                                            opt.filter_gamma_theta,
                                            opt.filter_gamma_phi)) {
          accepted = true;
          augment_filter = true;
          break;
        }
      }
      alpha *= 0.5;
    }

    if (!accepted) {
      // Feasibility restoration: a Gauss-Newton step on 0.5||c||^2, kept
      // inside the bounds. If it does not reduce theta, give up.
      bool restored = false;
      if (m > 0 && theta_k > 0.0) {
        linalg::Matrix jtj(n, n);
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j) {
            double s = i == j ? 1e-8 : 0.0;
            for (std::size_t r = 0; r < m; ++r)
              s += ws.jac(r, i) * ws.jac(r, j);
            jtj(i, j) = s;
          }
        std::vector<double> jtc(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t r = 0; r < m; ++r) jtc[i] += ws.jac(r, i) * ws.c[r];
        for (double& v : jtc) v = -v;
        if (auto d = linalg::solve(jtj, jtc)) {
          double beta = 1.0;
          for (int tries = 0; tries < 30; ++tries) {
            for (std::size_t i = 0; i < n; ++i)
              x_trial[i] = x[i] + beta * (*d)[i];
            project_interior(x_trial, bounds, opt.bound_push * 1e-2);
            if (constraint_theta(x_trial) < 0.9 * theta_k) {
              restored = true;
              break;
            }
            beta *= 0.5;
          }
        }
      }
      if (!restored) {
        result.status = IpStatus::kLineSearchFailure;
        break;
      }
      x = x_trial;
      filter.clear();
      eval_all(x);
      continue;
    }

    if (augment_filter)
      filter.add((1.0 - opt.filter_gamma_theta) * theta_k,
                 phi_k - opt.filter_gamma_phi * theta_k);

    // ---- Apply the step ---------------------------------------------------
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * dx[i];
    for (std::size_t j = 0; j < m; ++j) lambda[j] += alpha * dlambda[j];
    for (std::size_t i = 0; i < n; ++i) {
      zl[i] += alpha_z * dzl[i];
      zu[i] += alpha_z * dzu[i];
    }

    // Multiplier safeguard: keep z within a corridor of mu/(x-l) so the
    // primal-dual Hessian stays consistent with the barrier (IPOPT k_Sigma).
    for (std::size_t i = 0; i < n; ++i) {
      if (bounds.has_lower(i)) {
        const double d = x[i] - bounds.lower[i];
        zl[i] = std::clamp(zl[i], mu / (kKappaSigma * d),
                           kKappaSigma * mu / d);
      }
      if (bounds.has_upper(i)) {
        const double d = bounds.upper[i] - x[i];
        zu[i] = std::clamp(zu[i], mu / (kKappaSigma * d),
                           kKappaSigma * mu / d);
      }
    }

    eval_all(x);

    if (opt.verbose) {
      std::fprintf(stderr,
                   "ip iter %3zu  f=%.6e  theta=%.3e  mu=%.1e  alpha=%.3f  "
                   "dw=%.1e\n",
                   iter, problem.objective(x), theta_of(ws.c), mu, alpha,
                   delta_w_last);
    }
  }

  if (result.status != IpStatus::kSolved &&
      result.status != IpStatus::kLineSearchFailure)
    result.status = result.iterations >= opt.max_iterations
                        ? IpStatus::kMaxIterations
                        : result.status;

  result.x = x;
  result.lambda = lambda;
  result.objective = problem.objective(x);
  result.kkt_error = kkt_error(0.0);
  result.constraint_violation = m ? linalg::norm_inf(ws.c) : 0.0;
  return result;
}

}  // namespace plbhec::solver
