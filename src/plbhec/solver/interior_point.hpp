#pragma once
/// \file interior_point.hpp
/// Primal-dual interior-point method with a line-search filter, in the
/// style of IPOPT (Waechter & Biegler) / the adaptive barrier methods of
/// Nocedal, Waechter & Waltz cited by the paper. Replaces the IPOPT
/// dependency of the original implementation.
///
/// Method outline:
///  - log-barrier on the bound constraints, primal-dual multipliers z_L/z_U;
///  - Newton steps on the perturbed KKT system; the (symmetric) KKT matrix
///    is regularized by delta_w * I on the Hessian block until it is
///    non-singular and yields a descent direction (inertia correction);
///  - fraction-to-boundary rule keeps iterates strictly interior;
///  - a Waechter-Biegler filter accepts steps that improve either the
///    constraint violation theta = ||c(x)||_1 or the barrier objective;
///  - monotone Fiacco-McCormick barrier reduction.

#include <string>
#include <vector>

#include "plbhec/solver/nlp.hpp"

namespace plbhec::solver {

struct IpOptions {
  double tolerance = 1e-8;         ///< KKT error for successful exit
  double mu_initial = 1e-1;        ///< initial barrier parameter
  double mu_min = 1e-12;           ///< barrier floor
  double kappa_mu = 0.2;           ///< linear mu-reduction factor
  double theta_mu = 1.5;           ///< superlinear mu-reduction exponent
  double kappa_epsilon = 10.0;     ///< inner-loop KKT tolerance = k_eps * mu
  std::size_t max_iterations = 300;
  double tau_min = 0.99;           ///< fraction-to-boundary minimum
  double bound_push = 1e-2;        ///< initial point push-in (kappa_1)
  double filter_gamma_theta = 1e-5;
  double filter_gamma_phi = 1e-5;
  double min_step = 1e-12;         ///< alpha below which line search fails
  double delta_w_init = 1e-8;      ///< first inertia-correction weight
  double delta_w_max = 1e10;       ///< give up past this regularization
  bool verbose = false;
};

enum class IpStatus {
  kSolved,             ///< KKT error below tolerance
  kMaxIterations,      ///< iteration budget exhausted (best iterate kept)
  kLineSearchFailure,  ///< no acceptable step found (restoration failed)
  kSingularSystem,     ///< KKT system unsolvable even with max regularization
  kInvalidProblem,     ///< inconsistent dimensions or empty problem
};

[[nodiscard]] std::string to_string(IpStatus s);

struct IpResult {
  IpStatus status = IpStatus::kInvalidProblem;
  std::vector<double> x;        ///< primal solution
  std::vector<double> lambda;   ///< equality multipliers
  double objective = 0.0;
  double kkt_error = 0.0;       ///< final scaled KKT error
  double constraint_violation = 0.0;  ///< ||c(x)||_inf at the solution
  std::size_t iterations = 0;
  std::size_t kkt_solves = 0;   ///< linear systems factored (incl. retries)

  [[nodiscard]] bool ok() const { return status == IpStatus::kSolved; }
};

/// Solves the NLP from the given starting point (projected into the strict
/// interior of the bounds automatically).
[[nodiscard]] IpResult solve_interior_point(const NlpProblem& problem,
                                            std::span<const double> x0,
                                            const IpOptions& options = {});

}  // namespace plbhec::solver
