#include "plbhec/metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/csv.hpp"
#include "plbhec/common/stats.hpp"
#include "plbhec/common/table.hpp"

namespace plbhec::metrics {

std::vector<double> processed_shares(const rt::RunResult& run) {
  std::vector<double> shares(run.unit_stats.size(), 0.0);
  if (run.total_grains == 0) return shares;
  for (std::size_t u = 0; u < run.unit_stats.size(); ++u)
    shares[u] = static_cast<double>(run.unit_stats[u].grains) /
                static_cast<double>(run.total_grains);
  return shares;
}

std::vector<double> idle_percent(const rt::RunResult& run) {
  std::vector<double> idle(run.unit_stats.size(), 0.0);
  for (std::size_t u = 0; u < run.unit_stats.size(); ++u)
    idle[u] = 100.0 * std::clamp(run.idle_fraction(u), 0.0, 1.0);
  return idle;
}

std::string ascii_gantt(const rt::RunResult& run, std::size_t width) {
  PLBHEC_EXPECTS(width >= 10);
  std::string out;
  if (run.makespan <= 0.0) return out;

  std::size_t name_width = 0;
  for (const auto& u : run.units)
    name_width = std::max(name_width, u.name.size());

  for (const auto& u : run.units) {
    std::string row(width, '.');
    for (const auto& seg : run.trace.segments()) {
      if (seg.unit != u.id) continue;
      const auto c0 = static_cast<std::size_t>(
          seg.start / run.makespan * static_cast<double>(width));
      auto c1 = static_cast<std::size_t>(
          seg.end / run.makespan * static_cast<double>(width));
      c1 = std::min(c1, width - 1);
      const char mark = seg.kind == rt::SegmentKind::kExec ? '#' : '-';
      for (std::size_t c = c0; c <= c1 && c < width; ++c) row[c] = mark;
    }
    out += u.name + std::string(name_width - u.name.size(), ' ') + " |" +
           row + "|\n";
  }
  return out;
}

void write_trace_csv(const rt::RunResult& run, const std::string& path) {
  CsvWriter csv(path);
  csv.header({"unit", "name", "kind", "start", "end", "grains"});
  for (const auto& seg : run.trace.segments()) {
    csv.row({std::to_string(seg.unit), run.units[seg.unit].name,
             seg.kind == rt::SegmentKind::kExec ? "exec" : "transfer",
             format_double(seg.start, 9), format_double(seg.end, 9),
             std::to_string(seg.grains)});
  }
}

Aggregate aggregate_makespans(const std::vector<rt::RunResult>& runs) {
  RunningStats stats;
  for (const auto& r : runs)
    if (r.ok) stats.add(r.makespan);
  Aggregate a;
  a.mean = stats.mean();
  a.stddev = stats.stddev();
  a.runs = stats.count();
  return a;
}

}  // namespace plbhec::metrics
