#pragma once
/// \file metrics.hpp
/// Derived metrics over RunResults: per-unit idleness (Fig. 7), block
/// distribution shares (Fig. 6), ASCII Gantt charts (Fig. 3) and speedup
/// summaries (Figs. 4-5).

#include <string>
#include <vector>

#include "plbhec/rt/engine.hpp"

namespace plbhec::metrics {

/// Fraction of the input each unit processed (sums to 1). This is the
/// realized distribution; Fig. 6 plots the *selected* distribution, which
/// schedulers expose directly — both are reported by the bench.
[[nodiscard]] std::vector<double> processed_shares(const rt::RunResult& run);

/// Per-unit idle percentage of the makespan (Fig. 7).
[[nodiscard]] std::vector<double> idle_percent(const rt::RunResult& run);

/// ASCII Gantt chart of the run (one row per unit, `width` columns).
/// '#' = executing, '-' = transferring, '.' = idle.
[[nodiscard]] std::string ascii_gantt(const rt::RunResult& run,
                                      std::size_t width = 100);

/// Writes the raw trace as CSV (unit,name,kind,start,end,grains).
void write_trace_csv(const rt::RunResult& run, const std::string& path);

/// Mean of repeated makespans with its standard deviation.
struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t runs = 0;
};

[[nodiscard]] Aggregate aggregate_makespans(
    const std::vector<rt::RunResult>& runs);

}  // namespace plbhec::metrics
