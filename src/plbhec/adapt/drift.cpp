#include "plbhec/adapt/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "plbhec/common/contracts.hpp"

namespace plbhec::adapt {

void DriftMonitor::configure(const DriftOptions& options, std::size_t units) {
  options_ = options;
  windows_.clear();
  detectors_.clear();
  filters_.clear();
  trips_.assign(units, 0);

  WindowConfig wc;
  wc.lambda = options.lambda;
  wc.capacity = options.window;
  CusumOptions cc;
  cc.k = options.cusum_k;
  cc.h = options.cusum_h;
  cc.min_stable = options.min_stable;
  cc.sigma_floor = options.sigma_floor;
  const std::size_t block = options.robust_ingest ? options.robust_block : 1;
  for (std::size_t u = 0; u < units; ++u) {
    windows_.emplace_back(wc);
    detectors_.emplace_back(cc);
    filters_.emplace_back(block);
  }
}

void DriftMonitor::ingest(std::size_t unit, double x, double time) {
  if (!options_.enabled) return;
  PLBHEC_EXPECTS(unit < windows_.size());
  if (auto kept = filters_[unit].push(x, time))
    windows_[unit].add(kept->x, kept->time);
}

bool DriftMonitor::observe(std::size_t unit, double residual_ratio) {
  if (!options_.enabled) return false;
  PLBHEC_EXPECTS(unit < detectors_.size());
  if (!std::isfinite(residual_ratio)) return false;
  if (!detectors_[unit].observe(residual_ratio)) return false;
  ++trips_[unit];
  return true;
}

void DriftMonitor::force_trip(std::size_t unit) {
  PLBHEC_EXPECTS(unit < trips_.size());
  ++trips_[unit];
}

void DriftMonitor::reset_unit(std::size_t unit) {
  PLBHEC_EXPECTS(unit < windows_.size());
  windows_[unit].reset();
  detectors_[unit].reset();
  filters_[unit].reset();
}

const WindowedSampleSet& DriftMonitor::window(std::size_t unit) const {
  PLBHEC_EXPECTS(unit < windows_.size());
  return windows_[unit];
}

const ResidualCusum& DriftMonitor::detector(std::size_t unit) const {
  PLBHEC_EXPECTS(unit < detectors_.size());
  return detectors_[unit];
}

std::size_t DriftMonitor::trips(std::size_t unit) const {
  PLBHEC_EXPECTS(unit < trips_.size());
  return trips_[unit];
}

std::size_t DriftMonitor::total_trips() const {
  std::size_t total = 0;
  for (std::size_t t : trips_) total += t;
  return total;
}

// Mirrors fit::select_model_from's enumeration (parsimony-first size
// classes under 6 effective samples, BIC-among-plausible otherwise, the
// same DoF guard and physical filter) but solves every candidate from the
// window's moments alone — the point of the discounted twin is that this
// never touches raw samples. Conditioning failures just skip the subset.
fit::FitResult fit_recent(const WindowedSampleSet& window,
                          const fit::SelectionOptions& options) {
  fit::FitResult best_plausible;
  fit::FitResult best_any;
  best_plausible.bic = std::numeric_limits<double>::infinity();
  best_any.bic = std::numeric_limits<double>::infinity();

  const std::span<const fit::BasisFn> candidates = fit::paper_terms();
  const std::size_t m = candidates.size();
  const std::size_t limit = std::min(options.max_terms, m);
  const double n_eff = window.effective_count();
  const auto n_floor = static_cast<std::size_t>(n_eff);

  const std::size_t max_params =
      n_floor < 2
          ? 1
          : std::max<std::size_t>(
                2, n_floor /
                       std::max<std::size_t>(1, options.samples_per_param));
  const bool hierarchical = n_floor < 6;

  PLBHEC_EXPECTS(m < 20);
  const std::size_t subsets = std::size_t{1} << m;
  std::vector<fit::BasisFn> terms;
  for (std::size_t size_class = 1; size_class <= limit; ++size_class) {
    fit::FitResult best_of_class;
    best_of_class.bic = std::numeric_limits<double>::infinity();
    bool class_found = false;
    for (std::size_t mask = 1; mask < subsets; ++mask) {
      const auto bits = static_cast<std::size_t>(__builtin_popcountll(mask));
      if (bits != size_class) continue;
      terms.clear();
      if (options.include_intercept) terms.push_back(fit::BasisFn::kOne);
      for (std::size_t i = 0; i < m; ++i)
        if (mask & (std::size_t{1} << i)) terms.push_back(candidates[i]);
      if (terms.size() > max_params) continue;

      auto fitted = fit::fit_terms(window.moments(), n_eff, terms,
                                   options.relative_weighting);
      if (!fitted) continue;

      if (fitted->bic < best_any.bic - 1e-12) best_any = *fitted;
      if (options.physical_filter &&
          !fit::physically_plausible(fitted->model, window.x_lo()))
        continue;
      if (fitted->bic < best_plausible.bic - 1e-12) best_plausible = *fitted;
      if (fitted->bic < best_of_class.bic - 1e-12) {
        best_of_class = *fitted;
        class_found = true;
      }
    }
    const double bar = std::max(options.class_r2, options.r2_threshold);
    if (hierarchical && class_found && best_of_class.r2 >= bar) {
      best_of_class.acceptable = best_of_class.r2 >= options.r2_threshold;
      return best_of_class;
    }
  }

  fit::FitResult best =
      best_plausible.model.valid() ? best_plausible : best_any;

  if (!best.model.valid() && options.include_intercept && window.count() > 0) {
    std::vector<fit::BasisFn> constant{fit::BasisFn::kOne};
    if (auto fitted = fit::fit_terms(window.moments(), n_eff, constant, false))
      best = *fitted;
  }

  best.acceptable = best.model.valid() && best.r2 >= options.r2_threshold;
  return best;
}

}  // namespace plbhec::adapt
