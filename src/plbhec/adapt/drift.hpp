#pragma once
/// \file drift.hpp
/// The drift-adaptation front end the schedulers talk to. A DriftMonitor
/// keeps, per processing unit, (a) a recent-behavior moment window
/// (WindowedSampleSet), (b) a two-sided residual CUSUM (ResidualCusum) and
/// (c) an optional robust ingest filter (BlockMinFilter). Execution-phase
/// observations flow through observe(); a true return is a detected
/// change point — the scheduler then flips that unit into a targeted
/// re-probe and, at the swap boundary, refits from the recent window via
/// fit_recent() (moments-only Gram solves, no raw-sample refit).

#include <cstddef>
#include <vector>

#include "plbhec/adapt/cusum.hpp"
#include "plbhec/adapt/robust.hpp"
#include "plbhec/adapt/window.hpp"
#include "plbhec/fit/least_squares.hpp"

namespace plbhec::adapt {

/// Knobs for the whole subsystem; embedded in core::PlbHecOptions so the
/// service layer inherits them per job.
struct DriftOptions {
  /// Master switch. Off by default: the fit-once behavior of the scheduler
  /// is unchanged unless a caller opts in.
  bool enabled = false;

  /// Forgetting factor of the per-unit recent window (ignored when
  /// `window` selects the exact mode). 1 = no forgetting.
  double lambda = 0.9;
  /// When > 0, the recent window keeps exactly this many samples (ring
  /// buffer + rank-1 downdates) instead of exponential forgetting.
  std::size_t window = 0;

  /// CUSUM slack and threshold in sigma units, warmup length, and the
  /// floor on the standardization spread (relative-residual units).
  double cusum_k = 0.5;
  double cusum_h = 6.0;
  std::size_t min_stable = 8;
  double sigma_floor = 0.05;

  /// Length of the geometric re-probe ladder run on a tripped unit
  /// (blocks of initial, 2x, 4x, ... the probing block size).
  std::size_t reprobe_rounds = 3;

  /// Censored-observation detection: a residual CUSUM only sees a slow
  /// block when it *completes*, so a unit throttled mid-block by a large
  /// factor stays invisible for the block's whole stretched duration.
  /// When another unit's completion shows a peer's in-flight block already
  /// `overdue_factor` times its predicted duration, the peer trips
  /// immediately — the elapsed time is a lower bound on the residual, no
  /// completion needed. <= 1 disables the check.
  double overdue_factor = 4.0;

  /// Robust ingest: pass execution observations through a per-unit
  /// BlockMinFilter of this block size before they reach the window.
  bool robust_ingest = false;
  std::size_t robust_block = 3;

  friend bool operator==(const DriftOptions&, const DriftOptions&) = default;
};

class DriftMonitor {
 public:
  /// (Re)configures for `units` processing units. Clears all state.
  void configure(const DriftOptions& options, std::size_t units);

  [[nodiscard]] bool enabled() const { return options_.enabled; }
  [[nodiscard]] const DriftOptions& options() const { return options_; }
  [[nodiscard]] std::size_t units() const { return windows_.size(); }

  /// Feeds one execution-time sample (block fraction x, exec seconds) into
  /// the unit's recent window, through the robust ingest filter when that
  /// is enabled. No-op when the subsystem is disabled.
  void ingest(std::size_t unit, double x, double time);

  /// Feeds one relative prediction residual (observed - predicted) /
  /// predicted into the unit's CUSUM. Returns true on a trip (and counts
  /// it). No-op returning false when the subsystem is disabled or the
  /// residual is not finite.
  [[nodiscard]] bool observe(std::size_t unit, double residual_ratio);

  /// Counts a trip decided outside the CUSUM — the scheduler's censored
  /// overdue-block detection (DriftOptions::overdue_factor), where the
  /// evidence is an in-flight block's age, not a completed residual.
  void force_trip(std::size_t unit);

  /// Restarts a unit's window, detector and ingest filter. Called on a
  /// trip (the window must start collecting post-change behavior) and
  /// again when the refreshed fit is swapped in (the detector baseline
  /// must describe the new model's residuals).
  void reset_unit(std::size_t unit);

  [[nodiscard]] const WindowedSampleSet& window(std::size_t unit) const;
  [[nodiscard]] const ResidualCusum& detector(std::size_t unit) const;
  [[nodiscard]] std::size_t trips(std::size_t unit) const;
  [[nodiscard]] std::size_t total_trips() const;

 private:
  DriftOptions options_;
  std::vector<WindowedSampleSet> windows_;
  std::vector<ResidualCusum> detectors_;
  std::vector<BlockMinFilter> filters_;
  std::vector<std::size_t> trips_;
};

/// Subset model selection over a window's moments alone: enumerates the
/// paper basis subsets exactly like fit::select_model but solves every
/// candidate Gram-only from the discounted (or downdated) moments with the
/// window's effective sample mass — no raw samples required. Candidates
/// whose sub-Gram is too ill-conditioned are skipped (there is no QR
/// fallback without rows). Returns an invalid-model FitResult when nothing
/// is fittable; callers fall back to their full-history fit.
[[nodiscard]] fit::FitResult fit_recent(const WindowedSampleSet& window,
                                        const fit::SelectionOptions& options);

}  // namespace plbhec::adapt
