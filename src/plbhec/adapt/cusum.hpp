#pragma once
/// \file cusum.hpp
/// Two-sided CUSUM change-point detector over standardized prediction
/// residuals. Each execution observation yields the relative residual
/// r = (observed - predicted) / predicted; a warmup phase estimates the
/// residual baseline (mean and spread via Welford), then freezes it and
/// accumulates the classic Page statistics
///   S+ <- max(0, S+ + z - k)      S- <- max(0, S- - z - k)
/// with z = (r - mu) / sigma_eff. A trip (either side exceeding h) means
/// the unit's behavior has shifted persistently relative to its fitted
/// model — slow throttle ramps accumulate, one-off spikes do not. The
/// spread is floored (sigma_floor, in relative-residual units) because a
/// deterministic simulation can produce a near-zero warmup spread that
/// would otherwise make the detector hair-triggered.

#include <cstddef>

#include "plbhec/common/stats.hpp"

namespace plbhec::adapt {

struct CusumOptions {
  double k = 0.5;               ///< per-step slack, in sigma units
  double h = 6.0;               ///< trip threshold, in sigma units
  std::size_t min_stable = 8;   ///< warmup observations before arming
  double sigma_floor = 0.05;    ///< lower bound on the residual spread

  friend bool operator==(const CusumOptions&, const CusumOptions&) = default;
};

class ResidualCusum {
 public:
  ResidualCusum() = default;
  explicit ResidualCusum(CusumOptions options) : options_(options) {}

  /// Feeds one relative residual; returns true when the detector trips.
  /// After a trip the caller is expected to reset() (re-probe + refit); the
  /// statistics keep growing until it does.
  [[nodiscard]] bool observe(double residual_ratio);

  /// Restarts warmup (after the refreshed fit is swapped in — the old
  /// baseline described the old model's residuals).
  void reset();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] double positive() const { return s_pos_; }
  [[nodiscard]] double negative() const { return s_neg_; }
  [[nodiscard]] std::size_t observed() const { return n_; }
  [[nodiscard]] const CusumOptions& options() const { return options_; }

 private:
  CusumOptions options_;
  RunningStats warmup_;
  double mu_ = 0.0;
  double sigma_ = 0.0;
  double s_pos_ = 0.0;
  double s_neg_ = 0.0;
  std::size_t n_ = 0;
  bool armed_ = false;
};

}  // namespace plbhec::adapt
