#pragma once
/// \file robust.hpp
/// Robust online estimators for the sample-ingest path. Co-tenant
/// interference and OS jitter inflate individual block timings upward but
/// essentially never deflate them, so the minimum over a small block of
/// consecutive observations tracks the unit's true capability — the same
/// per-payload-minima treatment bench_net applies offline to wire-time
/// samples, moved onto the online path. A trimmed mean is provided for
/// symmetric-noise summaries (detector baselines, reports).

#include <cstddef>
#include <optional>
#include <vector>

#include "plbhec/fit/samples.hpp"

namespace plbhec::adapt {

/// Buffers `block` consecutive observations and forwards only the one with
/// the smallest normalized cost time/x (cost per unit of work — raw times
/// are not comparable across block sizes). block <= 1 forwards everything
/// unchanged. Deterministic: ties keep the earliest observation.
class BlockMinFilter {
 public:
  BlockMinFilter() = default;
  explicit BlockMinFilter(std::size_t block) : block_(block) {}

  /// Feeds one observation; returns the block representative once `block`
  /// observations have accumulated, nullopt while the block is filling.
  [[nodiscard]] std::optional<fit::Sample> push(double x, double time);
  /// Returns the best observation of a partially filled block, if any.
  [[nodiscard]] std::optional<fit::Sample> flush();
  void reset();

  [[nodiscard]] std::size_t block() const { return block_; }
  [[nodiscard]] std::size_t pending() const { return pending_; }

 private:
  std::size_t block_ = 1;
  std::size_t pending_ = 0;
  fit::Sample best_{};
  double best_cost_ = 0.0;
};

/// Mean of `xs` after dropping the ceil(trim * n) largest and smallest
/// values (trim in [0, 0.5)). Empty input (or trimming everything away)
/// yields 0.
[[nodiscard]] double trimmed_mean(std::vector<double> xs, double trim);

}  // namespace plbhec::adapt
