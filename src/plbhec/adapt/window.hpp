#pragma once
/// \file window.hpp
/// Recent-behavior sample windows for the drift-adaptation subsystem: a
/// WindowedSampleSet maintains the same full-basis Gram moments as
/// fit::SampleSet but over *recent* observations only, either by
/// exponential forgetting (scale every accumulator by lambda before each
/// rank-1 add — effective window ~1/(1-lambda) samples, O(1) memory) or by
/// an exact ring buffer (evict the oldest sample with a rank-1 downdate).
/// Either way FitEngine-style subset fits solve directly from the moments,
/// so "fit what this unit has done lately" costs O(k^3) — no raw-sample
/// refit, which is what makes continuous re-fitting affordable online.

#include <cstddef>
#include <vector>

#include "plbhec/common/contracts.hpp"
#include "plbhec/fit/moments.hpp"
#include "plbhec/fit/samples.hpp"

namespace plbhec::adapt {

/// How a WindowedSampleSet forgets.
struct WindowConfig {
  /// Forgetting factor in (0, 1]; 1 disables discounting (and is then
  /// bit-identical to a plain MomentSet fed the same stream). Ignored when
  /// `capacity` selects the exact-window mode.
  double lambda = 1.0;
  /// When > 0, keep exactly the last `capacity` samples in a ring buffer
  /// and downdate evicted ones instead of discounting.
  std::size_t capacity = 0;

  [[nodiscard]] bool exact() const { return capacity > 0; }

  friend bool operator==(const WindowConfig&, const WindowConfig&) = default;
};

class WindowedSampleSet {
 public:
  WindowedSampleSet() = default;
  explicit WindowedSampleSet(WindowConfig config) : config_(config) {
    PLBHEC_EXPECTS(config.lambda > 0.0 && config.lambda <= 1.0);
  }

  void add(double x, double time);
  void reset();

  /// Raw observations currently represented: ring occupancy in exact mode,
  /// adds since reset() in forgetting mode.
  [[nodiscard]] std::size_t count() const {
    return config_.exact() ? ring_.size() : raw_count_;
  }
  /// Sample mass behind the moments: ring occupancy in exact mode, the
  /// discounted sum lambda^0 + lambda^1 + ... (-> 1/(1-lambda)) otherwise.
  /// This is the `effective_n` the moments-only fit_terms expects.
  [[nodiscard]] double effective_count() const { return effective_n_; }

  [[nodiscard]] const fit::MomentSet& moments() const { return moments_; }
  /// Smallest block fraction represented (plausibility-grid lower edge).
  /// Exact over the ring; in forgetting mode the min since reset().
  [[nodiscard]] double x_lo() const { return x_lo_; }
  [[nodiscard]] const WindowConfig& config() const { return config_; }

  /// Exact-window mode only: materializes the retained samples plus the
  /// downdated moments as a fit::SampleSet (for QR-path fits and tests).
  [[nodiscard]] fit::SampleSet to_sample_set() const;

 private:
  WindowConfig config_;
  fit::MomentSet moments_;
  std::vector<fit::Sample> ring_;  ///< exact mode; head_ indexes the oldest
  std::size_t head_ = 0;
  std::size_t raw_count_ = 0;
  double effective_n_ = 0.0;
  double x_lo_ = 1.0;
};

}  // namespace plbhec::adapt
