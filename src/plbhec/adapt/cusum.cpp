#include "plbhec/adapt/cusum.hpp"

#include <algorithm>

namespace plbhec::adapt {

bool ResidualCusum::observe(double residual_ratio) {
  ++n_;
  if (!armed_) {
    warmup_.add(residual_ratio);
    if (warmup_.count() >= options_.min_stable) {
      mu_ = warmup_.mean();
      sigma_ = std::max(warmup_.stddev(), options_.sigma_floor);
      armed_ = true;
    }
    return false;
  }

  const double z = (residual_ratio - mu_) / sigma_;
  s_pos_ = std::max(0.0, s_pos_ + z - options_.k);
  s_neg_ = std::max(0.0, s_neg_ - z - options_.k);
  return s_pos_ > options_.h || s_neg_ > options_.h;
}

void ResidualCusum::reset() {
  warmup_.reset();
  mu_ = 0.0;
  sigma_ = 0.0;
  s_pos_ = 0.0;
  s_neg_ = 0.0;
  n_ = 0;
  armed_ = false;
}

}  // namespace plbhec::adapt
