#include "plbhec/adapt/window.hpp"

#include <algorithm>

namespace plbhec::adapt {

void WindowedSampleSet::add(double x, double time) {
  PLBHEC_EXPECTS(x > 0.0);
  PLBHEC_EXPECTS(time >= 0.0);
  if (config_.exact()) {
    if (ring_.size() == config_.capacity) {
      const fit::Sample& oldest = ring_[head_];
      moments_.remove(oldest.x, oldest.time);
      ring_[head_] = {x, time};
      head_ = (head_ + 1) % config_.capacity;
      // The evicted sample may have carried the minimum; rescan the (small)
      // ring rather than maintaining a monotone deque for a cold path.
      x_lo_ = 1.0;
      for (const auto& s : ring_) x_lo_ = std::min(x_lo_, s.x);
    } else {
      ring_.push_back({x, time});
      x_lo_ = std::min(x_lo_, x);
    }
    moments_.add(x, time);
    effective_n_ = static_cast<double>(ring_.size());
    return;
  }

  moments_.scale(config_.lambda);
  moments_.add(x, time);
  effective_n_ = effective_n_ * config_.lambda + 1.0;
  ++raw_count_;
  x_lo_ = std::min(x_lo_, x);
}

void WindowedSampleSet::reset() {
  moments_.clear();
  ring_.clear();
  head_ = 0;
  raw_count_ = 0;
  effective_n_ = 0.0;
  x_lo_ = 1.0;
}

fit::SampleSet WindowedSampleSet::to_sample_set() const {
  PLBHEC_EXPECTS(config_.exact());
  std::vector<fit::Sample> ordered;
  ordered.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    ordered.push_back(ring_[(head_ + i) % ring_.size()]);
  fit::SampleSet out;
  out.restore(std::move(ordered), moments_.snapshot());
  return out;
}

}  // namespace plbhec::adapt
