#include "plbhec/adapt/robust.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"

namespace plbhec::adapt {

std::optional<fit::Sample> BlockMinFilter::push(double x, double time) {
  PLBHEC_EXPECTS(x > 0.0);
  if (block_ <= 1) return fit::Sample{x, time};

  const double cost = time / x;
  if (pending_ == 0 || cost < best_cost_) {
    best_ = {x, time};
    best_cost_ = cost;
  }
  if (++pending_ < block_) return std::nullopt;
  pending_ = 0;
  return best_;
}

std::optional<fit::Sample> BlockMinFilter::flush() {
  if (pending_ == 0) return std::nullopt;
  pending_ = 0;
  return best_;
}

void BlockMinFilter::reset() { pending_ = 0; }

double trimmed_mean(std::vector<double> xs, double trim) {
  PLBHEC_EXPECTS(trim >= 0.0 && trim < 0.5);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto cut = static_cast<std::size_t>(
      std::ceil(trim * static_cast<double>(xs.size())));
  if (2 * cut >= xs.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = cut; i < xs.size() - cut; ++i) sum += xs[i];
  return sum / static_cast<double>(xs.size() - 2 * cut);
}

}  // namespace plbhec::adapt
