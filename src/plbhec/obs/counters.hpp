#pragma once
/// \file counters.hpp
/// Named monotonic counter registry: one home for the run-level integers
/// that used to live in ad-hoc structs (PlbHecStats solver counts, the
/// HDSS fit counters, ThreadPool steal counts, the ProfileDb fit cache).
/// Registration is mutex-guarded and returns a stable Counter reference;
/// increments are relaxed atomic adds, so hot paths cache the reference
/// and pay one fetch_add. snapshot() returns a name-sorted copy for the
/// exporters and run summaries.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plbhec::obs {

class CounterRegistry {
 public:
  class Counter {
   public:
    void add(std::uint64_t delta = 1) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    void set(std::uint64_t value) {
      value_.store(value, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    std::atomic<std::uint64_t> value_{0};
  };

  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Create-or-get; the returned reference stays valid for the registry's
  /// lifetime (entries are never removed).
  [[nodiscard]] Counter& counter(std::string_view name);

  /// One-shot convenience forms (registration + operation).
  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name).add(delta);
  }
  void set(std::string_view name, std::uint64_t value) {
    counter(name).set(value);
  }

  /// Current value, 0 when the counter was never registered.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// Name-sorted copy of every counter.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
};

}  // namespace plbhec::obs
