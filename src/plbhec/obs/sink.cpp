#include "plbhec/obs/sink.hpp"

#include <algorithm>

namespace plbhec::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kProbeIssued: return "probe_issued";
    case EventKind::kBlockDispatched: return "block_dispatched";
    case EventKind::kModelFitted: return "model_fitted";
    case EventKind::kSolve: return "solve";
    case EventKind::kRebalanceTriggered: return "rebalance_triggered";
    case EventKind::kRefinement: return "refinement";
    case EventKind::kPhaseChange: return "phase_change";
    case EventKind::kBarrier: return "barrier";
    case EventKind::kUnitFailed: return "unit_failed";
    case EventKind::kWeightUpdate: return "weight_update";
    case EventKind::kIterationSync: return "iteration_sync";
    case EventKind::kJobAdmitted: return "job_admitted";
    case EventKind::kJobCompleted: return "job_completed";
    case EventKind::kLeaseGranted: return "lease_granted";
    case EventKind::kLeaseRevoked: return "lease_revoked";
    case EventKind::kWarmStartHit: return "warmstart_hit";
    case EventKind::kWarmStartMiss: return "warmstart_miss";
    case EventKind::kMsgSent: return "msg_sent";
    case EventKind::kMsgReceived: return "msg_received";
    case EventKind::kHeartbeatMissed: return "heartbeat_missed";
    case EventKind::kReconnect: return "reconnect";
    case EventKind::kShardMigration: return "shard_migration";
    case EventKind::kKernelDispatch: return "kernel_dispatch";
    case EventKind::kDriftDetected: return "drift_detected";
    case EventKind::kReprobeSwap: return "reprobe_swap";
  }
  return "unknown";
}

std::array<const char*, 4> arg_names(EventKind kind) {
  // Order: names of {a, b, i, j}.
  switch (kind) {
    case EventKind::kProbeIssued:
      return {nullptr, nullptr, "grains", "round"};
    case EventKind::kBlockDispatched:
      return {nullptr, nullptr, "grains", "sequence"};
    case EventKind::kModelFitted:
      return {"r2", nullptr, "samples", "acceptable"};
    case EventKind::kSolve:
      return {"solve_seconds", "predicted_time", "kkt_solves", "flags"};
    case EventKind::kRebalanceTriggered:
      return {"deviation", "threshold", "strikes", nullptr};
    case EventKind::kRefinement:
      return {nullptr, nullptr, "budget_left", nullptr};
    case EventKind::kPhaseChange:
      return {"consumed_grains", nullptr, "phase", nullptr};
    case EventKind::kBarrier:
      return {nullptr, nullptr, "count", nullptr};
    case EventKind::kUnitFailed:
      return {nullptr, nullptr, "lost_grains", nullptr};
    case EventKind::kWeightUpdate:
      return {"weight", "rel_change", "samples", nullptr};
    case EventKind::kIterationSync:
      return {"time_spread", nullptr, "iteration", "equilibrium"};
    case EventKind::kJobAdmitted:
      return {"queue_wait", nullptr, "job", "queued"};
    case EventKind::kJobCompleted:
      return {"makespan", "queue_wait", "job", "grains"};
    case EventKind::kLeaseGranted:
      return {nullptr, nullptr, "job", "held"};
    case EventKind::kLeaseRevoked:
      return {nullptr, nullptr, "from_job", "to_job"};
    case EventKind::kWarmStartHit:
      return {"rel_error", "r2", "seeded_samples", nullptr};
    case EventKind::kWarmStartMiss:
      return {"rel_error", "r2", "seeded_samples", nullptr};
    case EventKind::kMsgSent:
      return {nullptr, nullptr, "bytes", "msg_type"};
    case EventKind::kMsgReceived:
      return {nullptr, nullptr, "bytes", "msg_type"};
    case EventKind::kHeartbeatMissed:
      return {"overdue_seconds", nullptr, "missed", "sequence"};
    case EventKind::kReconnect:
      return {"backoff_seconds", nullptr, "attempt", "success"};
    case EventKind::kShardMigration:
      return {nullptr, nullptr, "from_shard", "to_shard"};
    case EventKind::kKernelDispatch:
      return {"width", nullptr, "isa", "kernel_hash"};
    case EventKind::kDriftDetected:
      return {"cusum_stat", "residual", "observations", "trip"};
    case EventKind::kReprobeSwap:
      return {"r2", nullptr, "window_samples", "ladder_blocks"};
  }
  return {nullptr, nullptr, nullptr, nullptr};
}

#if PLBHEC_OBS_ENABLED

struct EventSink::Shard {
  std::thread::id owner;
  std::mutex mutex;  ///< uncontended except against drain()
  std::vector<Event> events;
};

namespace {

/// One-entry per-thread cache of the last sink this thread recorded into.
/// The epoch makes the cache safe against sink destruction: a new sink at
/// the same address gets a fresh epoch, so a stale entry never matches.
struct TlsShardCache {
  const void* sink = nullptr;
  std::uint64_t epoch = 0;
  EventSink::Shard* shard = nullptr;
};
thread_local TlsShardCache tls_shard_cache;

std::atomic<std::uint64_t> next_sink_epoch{1};

}  // namespace

EventSink::EventSink()
    : epoch_(next_sink_epoch.fetch_add(1, std::memory_order_relaxed)) {}

EventSink::~EventSink() = default;

EventSink::Shard& EventSink::local_shard() {
  TlsShardCache& cache = tls_shard_cache;
  if (cache.sink == this && cache.epoch == epoch_) return *cache.shard;

  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard lock(mutex_);
  for (auto& shard : shards_) {
    if (shard->owner == self) {
      cache = {this, epoch_, shard.get()};
      return *shard;
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  Shard& shard = *shards_.back();
  shard.owner = self;
  shard.events.reserve(256);
  cache = {this, epoch_, &shard};
  return shard;
}

void EventSink::record(const Event& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  shard.events.push_back(event);
}

std::vector<Event> EventSink::drain() {
  std::vector<Event> out;
  {
    std::lock_guard lock(mutex_);
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->events.size();
    out.reserve(total);
    for (auto& shard : shards_) {
      std::lock_guard shard_lock(shard->mutex);
      out.insert(out.end(), shard->events.begin(), shard->events.end());
      shard->events.clear();
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     return x.time < y.time;
                   });
  return out;
}

std::size_t EventSink::size() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard shard_lock(shard->mutex);
    total += shard->events.size();
  }
  return total;
}

#endif  // PLBHEC_OBS_ENABLED

}  // namespace plbhec::obs
