#pragma once
/// \file events.hpp
/// Typed observability events: the scheduler/runtime decisions that the
/// busy-segment trace (rt/trace.hpp) cannot show — probe rounds, fit
/// acceptance, interior-point re-solves, rebalance triggers, dispatches
/// and failures. Events are plain 48-byte records with a fixed payload
/// layout per kind (two doubles, two integers) so recording them is a
/// buffer append, never an allocation; the exporters in
/// obs/exporters.hpp give the payload fields their per-kind names.

#include <array>
#include <cstdint>

namespace plbhec::obs {

/// Unit field value for events not tied to a processing unit.
inline constexpr std::uint32_t kNoUnit = 0xffff'ffffu;

enum class EventKind : std::uint8_t {
  kProbeIssued,         ///< modeling-phase probe handed out
  kBlockDispatched,     ///< engine issued a task to a unit
  kModelFitted,         ///< per-unit performance model (re)fitted
  kSolve,               ///< block-size selection solve finished
  kRebalanceTriggered,  ///< execution-phase threshold sync declared
  kRefinement,          ///< barrier-free progressive refinement applied
  kPhaseChange,         ///< scheduler phase transition
  kBarrier,             ///< engine-level scheduler barrier reached
  kUnitFailed,          ///< permanent unit failure observed
  kWeightUpdate,        ///< HDSS per-unit weight revision
  kIterationSync,       ///< Acosta iteration boundary
  kJobAdmitted,         ///< service: job left the admission queue
  kJobCompleted,        ///< service: job finished its last grain
  kLeaseGranted,        ///< service: unit leased to a job
  kLeaseRevoked,        ///< service: unit lease taken back from a job
  kWarmStartHit,        ///< stored profile validated; probing shortened
  kWarmStartMiss,       ///< stored profile rejected; cold probing
  kMsgSent,             ///< net: frame written to a worker connection
  kMsgReceived,         ///< net: frame read from a worker connection
  kHeartbeatMissed,     ///< net: heartbeat ack overdue on a worker link
  kReconnect,           ///< net: reconnect attempt to a worker daemon
  kShardMigration,      ///< service: unit ownership moved between shards
  kKernelDispatch,      ///< kdisp: a (kernel, width) slot resolved to an ISA
  kDriftDetected,       ///< adapt: residual CUSUM tripped on a unit
  kReprobeSwap,         ///< adapt: refreshed fit swapped in after re-probe
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kReprobeSwap) + 1;

/// One recorded decision. `time` is virtual (simulated) seconds, matching
/// the busy-segment trace timeline. The meaning of the payload fields
/// (a, b, i, j) depends on `kind`; see arg_names().
struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kBarrier;
  std::uint32_t unit = kNoUnit;
  double a = 0.0;
  double b = 0.0;
  std::uint64_t i = 0;
  std::uint64_t j = 0;
};

[[nodiscard]] const char* to_string(EventKind kind);

/// Exporter-facing names of the payload fields {a, b, i, j} for a kind;
/// nullptr marks an unused slot.
[[nodiscard]] std::array<const char*, 4> arg_names(EventKind kind);

}  // namespace plbhec::obs
