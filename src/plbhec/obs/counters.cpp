#include "plbhec/obs/counters.hpp"

namespace plbhec::obs {

CounterRegistry::Counter& CounterRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.emplace_back(name, counter->value());
  return out;
}

}  // namespace plbhec::obs
