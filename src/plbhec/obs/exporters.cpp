#include "plbhec/obs/exporters.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace plbhec::obs {

namespace {

constexpr double kSecondsToUs = 1e6;

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

/// JSON-escapes the characters that can occur in unit/workload names.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

/// Appends the "args" object of a decision event from its named payload
/// fields; empty args object when the kind uses none.
void append_event_args(std::string& out, const Event& e) {
  const std::array<const char*, 4> names = arg_names(e.kind);
  const double doubles[2] = {e.a, e.b};
  const std::uint64_t ints[2] = {e.i, e.j};
  out += "\"args\":{";
  bool first = true;
  for (std::size_t f = 0; f < 2; ++f) {
    if (names[f] == nullptr) continue;
    append_fmt(out, "%s\"%s\":%.9g", first ? "" : ",", names[f], doubles[f]);
    first = false;
  }
  for (std::size_t f = 0; f < 2; ++f) {
    if (names[2 + f] == nullptr) continue;
    append_fmt(out, "%s\"%s\":%llu", first ? "" : ",", names[2 + f],
               static_cast<unsigned long long>(ints[f]));
    first = false;
  }
  out += '}';
}

bool write_string(const std::string& text, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

std::string chrome_trace_json(const rt::RunResult& run,
                              std::span<const Event> events) {
  std::string out;
  out.reserve(256 + 160 * (run.trace.segments().size() + events.size()));
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Track metadata: one named thread per unit, plus a scheduler track for
  // cluster-wide decisions.
  const std::size_t scheduler_tid = run.units.size();
  bool first = true;
  for (const rt::UnitInfo& u : run.units) {
    append_fmt(out,
               "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
               "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
               first ? "" : ",\n", u.id, json_escape(u.name).c_str());
    first = false;
  }
  append_fmt(out,
             "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
             "\"tid\":%zu,\"args\":{\"name\":\"scheduler\"}}",
             first ? "" : ",\n", scheduler_tid);

  for (const rt::TraceSegment& seg : run.trace.segments()) {
    append_fmt(out,
               ",\n{\"name\":\"%s\",\"cat\":\"segment\",\"ph\":\"X\","
               "\"ts\":%.6f,\"dur\":%.6f,\"pid\":0,\"tid\":%zu,"
               "\"args\":{\"grains\":%zu}}",
               seg.kind == rt::SegmentKind::kExec ? "exec" : "transfer",
               seg.start * kSecondsToUs, seg.duration() * kSecondsToUs,
               seg.unit, seg.grains);
  }

  for (const Event& e : events) {
    const std::size_t tid =
        e.unit == kNoUnit ? scheduler_tid : static_cast<std::size_t>(e.unit);
    append_fmt(out,
               ",\n{\"name\":\"%s\",\"cat\":\"decision\",\"ph\":\"i\","
               "\"ts\":%.6f,\"pid\":0,\"tid\":%zu,\"s\":\"t\",",
               to_string(e.kind), e.time * kSecondsToUs, tid);
    append_event_args(out, e);
    out += '}';
  }

  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const rt::RunResult& run, std::span<const Event> events,
                        const std::string& path) {
  return write_string(chrome_trace_json(run, events), path);
}

std::string events_csv(std::span<const Event> events) {
  std::string out = "time,kind,unit,a,b,i,j\n";
  out.reserve(out.size() + 64 * events.size());
  for (const Event& e : events) {
    append_fmt(out, "%.17g,%s,", e.time, to_string(e.kind));
    if (e.unit != kNoUnit) append_fmt(out, "%u", e.unit);
    append_fmt(out, ",%.17g,%.17g,%llu,%llu\n", e.a, e.b,
               static_cast<unsigned long long>(e.i),
               static_cast<unsigned long long>(e.j));
  }
  return out;
}

bool write_events_csv(std::span<const Event> events, const std::string& path) {
  return write_string(events_csv(events), path);
}

std::string run_summary(const rt::RunResult& run,
                        std::span<const Event> events,
                        const CounterRegistry* counters) {
  std::string out;
  append_fmt(out, "run: %s  makespan %.6f s  grains %zu  barriers %zu\n",
             run.ok ? "ok" : run.error.c_str(), run.makespan,
             run.total_grains, run.barriers);

  out += "unit                  busy[s]   exec[s]  xfer[s]  idle%   grains  tasks\n";
  for (const rt::UnitInfo& u : run.units) {
    const rt::UnitStats& s = run.unit_stats[u.id];
    append_fmt(out, "%-20s %8.4f  %8.4f %8.4f  %5.1f %8zu %6zu%s\n",
               u.name.c_str(), s.busy_seconds(), s.exec_seconds,
               s.transfer_seconds, 100.0 * run.idle_fraction(u.id), s.grains,
               s.tasks, s.failed ? "  FAILED" : "");
  }

  std::array<std::size_t, kEventKindCount> by_kind{};
  for (const Event& e : events) ++by_kind[static_cast<std::size_t>(e.kind)];
  out += "decisions:";
  bool any = false;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    if (by_kind[k] == 0) continue;
    append_fmt(out, " %s=%zu", to_string(static_cast<EventKind>(k)),
               by_kind[k]);
    any = true;
  }
  if (!any) out += " (none recorded)";
  out += '\n';

  if (counters != nullptr) {
    out += "counters:\n";
    for (const auto& [name, value] : counters->snapshot())
      append_fmt(out, "  %-32s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  return out;
}

ChromeTraceScan scan_chrome_trace(const std::string& json) {
  ChromeTraceScan scan;
  const std::size_t array_at = json.find("\"traceEvents\"");
  if (array_at == std::string::npos) return scan;
  const std::size_t open = json.find('[', array_at);
  if (open == std::string::npos) return scan;

  // Our writer emits no braces inside strings, so a depth counter is a
  // sound object splitter for round-tripping.
  std::map<std::pair<long, long>, double> last_slice_ts;  ///< per (pid,tid)
  bool first_ts = true;
  int depth = 0;
  std::size_t obj_start = 0;
  for (std::size_t pos = open + 1; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (c == ']' && depth == 0) {
      scan.parse_ok = scan.slices + scan.instants + scan.metadata > 0;
      return scan;
    }
    if (c == '{') {
      if (depth == 0) obj_start = pos;
      ++depth;
      continue;
    }
    if (c != '}') continue;
    --depth;
    if (depth != 0) continue;

    const std::string obj = json.substr(obj_start, pos - obj_start + 1);
    const auto field = [&obj](const char* name) -> const char* {
      const std::size_t at = obj.find(name);
      return at == std::string::npos ? nullptr : obj.c_str() + at +
                                                     std::strlen(name);
    };
    const char* ph = field("\"ph\":\"");
    if (ph == nullptr) return scan;  // malformed: every record carries ph
    const char* ts_text = field("\"ts\":");
    const double ts = ts_text != nullptr ? std::strtod(ts_text, nullptr) : 0.0;
    const char* tid_text = field("\"tid\":");
    const long tid =
        tid_text != nullptr ? std::strtol(tid_text, nullptr, 10) : -1;

    switch (*ph) {
      case 'X': {
        ++scan.slices;
        const char* dur_text = field("\"dur\":");
        const double dur =
            dur_text != nullptr ? std::strtod(dur_text, nullptr) : 0.0;
        const auto track = std::make_pair(0L, tid);
        const auto it = last_slice_ts.find(track);
        if (it != last_slice_ts.end() && ts < it->second)
          scan.ts_monotonic = false;
        last_slice_ts[track] = ts;
        scan.max_ts = std::max(scan.max_ts, ts + dur);
        scan.min_ts = first_ts ? ts : std::min(scan.min_ts, ts);
        first_ts = false;
        break;
      }
      case 'i':
        ++scan.instants;
        scan.max_ts = std::max(scan.max_ts, ts);
        scan.min_ts = first_ts ? ts : std::min(scan.min_ts, ts);
        first_ts = false;
        break;
      case 'M':
        ++scan.metadata;
        break;
      default:
        break;
    }
  }
  return scan;  // ran off the end: parse_ok stays false
}

}  // namespace plbhec::obs
