#pragma once
/// \file exporters.hpp
/// Trace and counter exporters: Chrome trace-event JSON (loadable in
/// Perfetto / chrome://tracing), flat CSV, and a human-readable run
/// summary. Busy segments from the RunResult trace become duration
/// slices ("ph":"X", one track per processing unit); decision events
/// from the EventSink become instant events ("ph":"i") on the unit they
/// belong to (or the scheduler track for cluster-wide decisions).
///
/// scan_chrome_trace() is a purpose-built reader for the writer above —
/// enough JSON to round-trip counts and timestamps in tests and CI
/// without a JSON library dependency.

#include <span>
#include <string>
#include <vector>

#include "plbhec/obs/counters.hpp"
#include "plbhec/obs/events.hpp"
#include "plbhec/rt/engine.hpp"

namespace plbhec::obs {

/// Chrome trace-event JSON for the run: exec/transfer segments as slices,
/// decision events as instants, unit names as thread-name metadata.
/// Timestamps are microseconds of virtual time.
[[nodiscard]] std::string chrome_trace_json(const rt::RunResult& run,
                                            std::span<const Event> events);

/// Writes chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const rt::RunResult& run, std::span<const Event> events,
                        const std::string& path);

/// Flat CSV of the decision events:
/// time,kind,unit,a,b,i,j (header included; unit empty for kNoUnit).
[[nodiscard]] std::string events_csv(std::span<const Event> events);

bool write_events_csv(std::span<const Event> events, const std::string& path);

/// Human-readable run digest: makespan, per-unit busy/idle/grain shares,
/// per-kind decision counts, and (when given) the counter snapshot.
[[nodiscard]] std::string run_summary(const rt::RunResult& run,
                                      std::span<const Event> events,
                                      const CounterRegistry* counters = nullptr);

/// What a scan of a Chrome trace found (see scan_chrome_trace).
struct ChromeTraceScan {
  bool parse_ok = false;       ///< structurally consumable by this scanner
  std::size_t slices = 0;      ///< "ph":"X" duration events
  std::size_t instants = 0;    ///< "ph":"i" instant events
  std::size_t metadata = 0;    ///< "ph":"M" metadata records
  bool ts_monotonic = true;    ///< slice starts non-decreasing per track
  double min_ts = 0.0;         ///< microseconds
  double max_ts = 0.0;         ///< microseconds (slice end / instant ts)
};

[[nodiscard]] ChromeTraceScan scan_chrome_trace(const std::string& json);

}  // namespace plbhec::obs
