#pragma once
/// \file sink.hpp
/// Low-overhead typed event sink. Recording threads append to per-thread
/// shards (one cache-warm vector per recording thread, found through a
/// thread-local fast path) and the shards are merged into one time-sorted
/// stream by drain() at run end, so recording never contends across
/// threads and never allocates on the hot path once a shard has warmed up.
///
/// The whole sink compiles to no-ops when the build sets
/// PLBHEC_OBS_ENABLED=0 (CMake option PLBHEC_OBS=OFF): record() becomes an
/// empty inline function and the PLBHEC_OBS_RECORD macro discards its
/// arguments unevaluated, so instrumented call sites cost nothing.

#include <cstddef>
#include <vector>

#include "plbhec/obs/events.hpp"

#ifndef PLBHEC_OBS_ENABLED
#define PLBHEC_OBS_ENABLED 1
#endif

#if PLBHEC_OBS_ENABLED
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#endif

namespace plbhec::obs {

/// True when the build compiled the event sink in (PLBHEC_OBS=ON).
inline constexpr bool kCompiledIn = PLBHEC_OBS_ENABLED != 0;

#if PLBHEC_OBS_ENABLED

class EventSink {
 public:
  EventSink();
  ~EventSink();
  EventSink(const EventSink&) = delete;
  EventSink& operator=(const EventSink&) = delete;

  /// Appends an event to the calling thread's shard. Thread-safe; a no-op
  /// while the sink is runtime-disabled.
  void record(const Event& event);

  /// Runtime switch (cheap relaxed load on the record path). Sinks start
  /// enabled.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merges every shard into one stream sorted by time (stable, so
  /// same-timestamp events keep their per-thread record order) and clears
  /// the shards. Safe to call concurrently with record(), but the natural
  /// call site is after the run / pool has quiesced.
  [[nodiscard]] std::vector<Event> drain();

  /// Total buffered events across shards (approximate under concurrent
  /// recording).
  [[nodiscard]] std::size_t size() const;

  struct Shard;  ///< public name so the thread-local cache can point at one

 private:
  /// Finds (or registers) the calling thread's shard; the fast path is one
  /// thread_local compare.
  Shard& local_shard();

  mutable std::mutex mutex_;  ///< guards shard registration and drain
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> enabled_{true};
  std::uint64_t epoch_;  ///< process-unique sink id for the TLS fast path
};

/// Records an event iff `sink` is non-null; compiles away entirely (the
/// event expression is never evaluated) in PLBHEC_OBS=OFF builds.
#define PLBHEC_OBS_RECORD(sink, ...)                   \
  do {                                                 \
    if ((sink) != nullptr) (sink)->record(__VA_ARGS__); \
  } while (0)

#else  // !PLBHEC_OBS_ENABLED

/// No-op stand-in: every member is an empty inline, so instrumented code
/// compiles unchanged and the optimizer deletes the calls.
class EventSink {
 public:
  void record(const Event&) {}
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  [[nodiscard]] std::vector<Event> drain() { return {}; }
  [[nodiscard]] std::size_t size() const { return 0; }
};

#define PLBHEC_OBS_RECORD(sink, ...) \
  do {                               \
  } while (0)

#endif  // PLBHEC_OBS_ENABLED

}  // namespace plbhec::obs
