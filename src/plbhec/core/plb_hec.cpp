#include "plbhec/core/plb_hec.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/obs/sink.hpp"

namespace plbhec::core {

void publish_counters(obs::CounterRegistry& registry,
                      const PlbHecStats& stats) {
  registry.set("plbhec.probe_rounds", stats.probe_rounds);
  registry.set("plbhec.solves", stats.solves);
  registry.set("plbhec.refinements", stats.refinements);
  registry.set("plbhec.rebalances", stats.rebalances);
  registry.set("plbhec.fallback_solves", stats.fallback_solves);
  registry.set("plbhec.warm_solves", stats.warm_solves);
  registry.set("plbhec.kkt_solves", stats.kkt_solves);
  registry.set("plbhec.kkt_solves_saved", stats.kkt_solves_saved);
  registry.set("plbhec.modeling_grains",
               static_cast<std::uint64_t>(stats.modeling_grains));
  registry.set("plbhec.probe_blocks", stats.probe_blocks);
  registry.set("plbhec.warmstart.hits", stats.warm_hits);
  registry.set("plbhec.warmstart.misses", stats.warm_misses);
  registry.set("plbhec.warmstart.probe_blocks_saved",
               stats.probe_blocks_saved);
  registry.set("plbhec.fit.computed", stats.fits_computed);
  registry.set("plbhec.fit.cached", stats.fits_cached);
  registry.set("plbhec.fit.gram_solves", stats.gram_solves);
  registry.set("plbhec.fit.qr_solves", stats.qr_solves);
  registry.set("plbhec.fit.qr_fallbacks", stats.qr_fallbacks);
  registry.set("plbhec.overlap.active_units", stats.overlap_units);
  registry.set("plbhec.adapt.drift_detections", stats.drift_detections);
  registry.set("plbhec.adapt.reprobe_blocks", stats.reprobe_blocks);
  registry.set("plbhec.adapt.reprobe_swaps", stats.reprobe_swaps);
  registry.set("plbhec.warmstart.stale_skips", stats.warm_stale_skips);
}

void publish_transfer_models(obs::CounterRegistry& registry,
                             const std::vector<fit::PerfModel>& models,
                             double overlap_smoothing) {
  const auto micros = [](double seconds) {
    return static_cast<std::uint64_t>(std::max(0.0, seconds) * 1e6 + 0.5);
  };
  const auto milli = [](double ratio) {
    return static_cast<std::uint64_t>(std::clamp(ratio, 0.0, 1.0) * 1000.0 +
                                      0.5);
  };
  registry.set("plbhec.overlap.smoothing_milli", milli(overlap_smoothing));
  for (std::size_t u = 0; u < models.size(); ++u) {
    const std::string prefix = "plbhec.unit" + std::to_string(u) + ".";
    registry.set(prefix + "transfer_slope_us", micros(models[u].transfer.slope));
    registry.set(prefix + "transfer_latency_us",
                 micros(models[u].transfer.latency));
    registry.set(prefix + "transfer_r2_milli", milli(models[u].transfer.r2));
    registry.set(prefix + "overlap_milli", milli(models[u].overlap));
  }
}

PlbHecScheduler::PlbHecScheduler(PlbHecOptions options)
    : options_(std::move(options)) {
  options_.fit.r2_threshold =
      options_.fit.r2_threshold > 0.0 ? options_.fit.r2_threshold : 0.7;
}

void PlbHecScheduler::start(const std::vector<rt::UnitInfo>& units,
                            const rt::WorkInfo& work) {
  PLBHEC_EXPECTS(!units.empty());
  units_ = units;
  work_ = work;
  profiles_.reset(units.size(), work.total_grains);

  initial_block_ = options_.initial_block ? options_.initial_block
                                          : std::max<std::size_t>(
                                                1, work.initial_block);
  phase_ = Phase::kModeling;
  probe_count_.assign(units.size(), 0);
  per_grain_.assign(units.size(), 0.0);
  last_probe_grains_.assign(units.size(), 0.0);
  last_probe_time_.assign(units.size(), 0.0);
  prev_probe_grains_.assign(units.size(), 0.0);
  prev_probe_time_.assign(units.size(), 0.0);
  modeling_issued_ = 0;
  overlap_ewma_.assign(units.size(), 0.0);
  monitor_.configure(options_.adapt, units.size());
  reprobing_.assign(units.size(), 0);
  censored_.assign(units.size(), 0);
  reprobe_round_.assign(units.size(), 0);
  inflight_issue_.assign(units.size(), -1.0);
  inflight_predicted_.assign(units.size(), 0.0);
  exec_override_.assign(units.size(), fit::CurveModel{});
  warm_state_.assign(units.size(), WarmState::kCold);
  warm_age_.assign(units.size(), 0);
  stats_ = {};
  stats_.reprobe_blocks_per_unit.assign(units.size(), 0);
  for (rt::UnitId u = 0; u < units.size() && u < options_.warm.size(); ++u) {
    const rt::WarmProfile& warm = options_.warm[u];
    if (!warm.usable() || warm.stored_r2 < options_.fit.r2_threshold)
      continue;
    // A profile that predates too many store writes describes a cluster
    // state nobody has observed lately; probing costs less than betting a
    // validation block on it.
    if (options_.warm_max_age > 0 && warm.age > options_.warm_max_age) {
      ++stats_.warm_stale_skips;
      continue;
    }
    profiles_.seed(u, warm);
    // Rescaled seeding drops fractions outside (0, 1]; a remnant too small
    // to fit from is useless — revert to cold probing.
    if (profiles_.exec_samples(u).size() < 3) {
      profiles_.clear_unit(u);
      continue;
    }
    warm_state_[u] = WarmState::kPending;
    warm_age_[u] = warm.age;
  }
  failed_.assign(units.size(), false);
  models_.clear();
  fractions_.clear();
  exec_block_.assign(units.size(), 0);
  last_duration_.assign(units.size(), 0.0);
  gen_samples_.assign(units.size(), 0);
  refine_budget_ = options_.refinements;
  pending_rebalance_ = false;
  bonus_unit_.reset();
  threshold_strikes_.assign(units.size(), 0);
  issued_grains_ = 0;
  generation_ = 0;
  cold_kkt_solves_ = 0;
  issue_gen_.assign(units.size(), 0);
  grains_consumed_ = 0.0;
  last_now_ = 0.0;
}

std::size_t PlbHecScheduler::alive_count() const {
  std::size_t n = 0;
  for (bool f : failed_)
    if (!f) ++n;
  return n;
}

std::size_t PlbHecScheduler::plan_probe_block(rt::UnitId unit) const {
  // §III-B: probe k of a unit is initialBlockSize * 2^(k-1), rescaled by
  // the performance preview t_f / t_k. We apply the preview on *marginal*
  // per-grain times (the slope between the last two probes, clamped near
  // the average) rather than raw round durations: average per-grain time
  // misleads on devices whose small-block time is flat (one GPU wave costs
  // the same for 10 or 100 grains) and would shrink their probes into a
  // dead end, while the marginal cost correctly signals "bigger blocks are
  // nearly free here".
  // A pending warm-start unit issues a single validation block of the
  // initial size: cheap, and well inside the stored curve's probed range.
  const std::size_t k = probe_count_[unit];  // probes already done
  const double multiplier =
      warm_state_[unit] == WarmState::kPending
          ? 1.0
          : std::min(std::pow(2.0, static_cast<double>(k)),
                     static_cast<double>(options_.max_probe_multiplier));

  auto marginal_tau = [&](rt::UnitId u) -> double {
    if (last_probe_grains_[u] <= 0.0 || last_probe_time_[u] <= 0.0)
      return 0.0;
    const double avg = last_probe_time_[u] / last_probe_grains_[u];
    if (prev_probe_grains_[u] > 0.0 &&
        last_probe_grains_[u] != prev_probe_grains_[u]) {
      const double marg = (last_probe_time_[u] - prev_probe_time_[u]) /
                          (last_probe_grains_[u] - prev_probe_grains_[u]);
      return std::clamp(marg, avg / 16.0, avg * 16.0);
    }
    return avg;
  };

  double tau_f = 0.0;
  for (rt::UnitId u = 0; u < units_.size(); ++u) {
    if (failed_[u]) continue;
    const double tau = marginal_tau(u);
    if (tau <= 0.0) continue;
    if (tau_f == 0.0 || tau < tau_f) tau_f = tau;
  }
  double scale = 1.0;
  const double tau_self = marginal_tau(unit);
  if (tau_f > 0.0 && tau_self > 0.0)
    scale = std::clamp(tau_f / tau_self, 1.0 / 1024.0, 8.0);

  double size = multiplier * static_cast<double>(initial_block_) * scale;

  // The paper's 20% rule: never let probing overrun the modeling budget.
  // Budgeted on *issued* grains so concurrent in-flight probes cannot
  // collectively overshoot.
  const double budget = options_.modeling_data_cap *
                            static_cast<double>(work_.total_grains) -
                        static_cast<double>(modeling_issued_);
  size = std::min(size, std::max(budget, 1.0));
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(size)));
}

std::size_t PlbHecScheduler::next_block(rt::UnitId unit, double now) {
  PLBHEC_EXPECTS(unit < units_.size());
  last_now_ = now;
  if (failed_[unit]) return 0;

  if (phase_ == Phase::kModeling) {
    const std::size_t block = plan_probe_block(unit);
    issued_grains_ += block;
    modeling_issued_ += block;
    issue_gen_[unit] = generation_;
    PLBHEC_OBS_RECORD(sink_, {now, obs::EventKind::kProbeIssued,
                              static_cast<std::uint32_t>(unit), 0.0, 0.0,
                              block, probe_count_[unit] + 1});
    return block;
  }

  // Execution phase. The nominal block is the unit's fraction of one
  // window; once less than a full window remains, blocks shrink with the
  // pool so all units run dry together instead of some idling through the
  // last window.
  const std::size_t remaining =
      work_.total_grains - std::min(issued_grains_, work_.total_grains);
  if (remaining == 0) return 0;

  // Targeted re-probe: a tripped unit runs a short geometric ladder
  // (initial, 2x, 4x, ...) exactly like a modeling-phase probe schedule,
  // while every other unit keeps executing from the current selection. A
  // pending rebalance still drains the ladder (the barrier needs all
  // units parked), and resumes it afterwards.
  if (reprobing_[unit] != 0 && !pending_rebalance_) {
    const double multiplier =
        std::min(std::pow(2.0, static_cast<double>(reprobe_round_[unit])),
                 static_cast<double>(options_.max_probe_multiplier));
    double size = multiplier * static_cast<double>(initial_block_);
    if (options_.max_block_seconds > 0.0 && per_grain_[unit] > 0.0)
      size = std::min(size, options_.max_block_seconds / per_grain_[unit]);
    size = std::min(size, static_cast<double>(remaining));
    const std::size_t block = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(size)));
    issued_grains_ += block;
    issue_gen_[unit] = generation_;
    ++stats_.reprobe_blocks;
    ++stats_.reprobe_blocks_per_unit[unit];
    PLBHEC_OBS_RECORD(sink_, {now, obs::EventKind::kProbeIssued,
                              static_cast<std::uint32_t>(unit), 0.0, 0.0,
                              block, reprobe_round_[unit] + 1});
    return block;
  }

  const double window = options_.step_fraction *
                        static_cast<double>(work_.total_grains);
  const double effective = std::min(window, static_cast<double>(remaining));
  const double nominal = fractions_.empty() ? 0.0 : fractions_[unit];
  std::size_t block = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(nominal * effective)));
  // Bounded preemption latency: never issue a block predicted to run
  // longer than max_block_seconds, so revocations and lease growth (which
  // only act at block boundaries) stay responsive even when one slow unit
  // holds the whole window.
  if (options_.max_block_seconds > 0.0 && per_grain_[unit] > 0.0) {
    const double cap = options_.max_block_seconds / per_grain_[unit];
    block = std::min(block,
                     std::max<std::size_t>(1, static_cast<std::size_t>(cap)));
  }

  if (pending_rebalance_) {
    // Paper §III-D: the unit that detected the threshold receives one more
    // task so it does not idle while the others drain toward the sync.
    if (bonus_unit_ && *bonus_unit_ == unit) {
      bonus_unit_.reset();
      issued_grains_ += block;
      issue_gen_[unit] = generation_;
      track_inflight(unit, now, block);
      return block;
    }
    return 0;
  }
  issued_grains_ += block;
  issue_gen_[unit] = generation_;
  track_inflight(unit, now, block);
  return block;
}

void PlbHecScheduler::track_inflight(rt::UnitId unit, double now,
                                     std::size_t block) {
  if (!monitor_.enabled() || options_.adapt.overdue_factor <= 1.0) return;
  inflight_issue_[unit] = now;
  inflight_predicted_[unit] =
      unit < models_.size() && models_[unit].valid() && block > 0
          ? models_[unit].total_time(profiles_.grains_to_fraction(block))
          : 0.0;
}

void PlbHecScheduler::maybe_finish_modeling() {
  const double cap = options_.modeling_data_cap *
                     static_cast<double>(work_.total_grains);
  bool data_cap_hit =
      stats_.modeling_grains + static_cast<double>(alive_count()) >= cap;

  bool enough_samples = true;
  for (rt::UnitId u = 0; u < units_.size(); ++u) {
    if (failed_[u]) continue;
    if (probe_count_[u] < options_.min_probe_rounds) enough_samples = false;
    // A unit with fewer than three samples has no reliable slope: exact
    // 2-point fits tie across curve families and extrapolate arbitrarily.
    // Keep probing (the budget clamp shrinks everyone else's probes to a
    // single grain meanwhile).
    if (probe_count_[u] < 3) data_cap_hit = false;
  }

  bool fits_acceptable = false;
  if (enough_samples && !data_cap_hit) {
    // Served from the ProfileDb fit cache: the fit_and_select that follows
    // an all-acceptable sweep reuses these selections instead of refitting.
    fits_acceptable = true;
    for (rt::UnitId u = 0; u < units_.size(); ++u) {
      if (failed_[u]) continue;
      if (!profiles_.exec_fit(u, options_.fit).acceptable) {
        fits_acceptable = false;
        break;
      }
    }
  }

  if ((enough_samples && fits_acceptable) || data_cap_hit) {
    phase_ = Phase::kExecuting;
    PLBHEC_OBS_RECORD(sink_, {last_now_, obs::EventKind::kPhaseChange,
                              obs::kNoUnit, stats_.modeling_grains, 0.0,
                              static_cast<std::uint64_t>(Phase::kExecuting),
                              0});
    fit_and_select();
  }
  sync_fit_stats();
}

void PlbHecScheduler::on_complete(const rt::TaskObservation& obs) {
  PLBHEC_EXPECTS(obs.unit < units_.size());
  last_now_ = obs.finish_time;

  // Warm validation predicts the block from the *seeded* fit, so the
  // prediction must be taken before the observation is folded in.
  double warm_predicted = -1.0;
  if (phase_ == Phase::kModeling &&
      warm_state_[obs.unit] == WarmState::kPending && obs.grains > 0) {
    const fit::PerfModel seeded = profiles_.fit_unit(obs.unit, options_.fit);
    if (seeded.valid())
      warm_predicted =
          seeded.total_time(profiles_.grains_to_fraction(obs.grains));
  }

  profiles_.record(obs);
  grains_consumed_ += static_cast<double>(obs.grains);

  // Observed overlap of this block: a synchronous unit's span equals
  // transfer + exec (fraction 0); a pipelined remote unit reports a
  // shorter span, and the hidden share of the smaller phase is the
  // overlap. The per-unit EWMA drives the cost-regime selection (see
  // PlbHecOptions::overlap_activation).
  const double serial = obs.transfer_seconds + obs.exec_seconds;
  const double span = obs.finish_time - obs.start_time;
  const double overlap_floor =
      std::min(obs.transfer_seconds, obs.exec_seconds);
  if (obs.grains > 0 && overlap_floor > 0.0 && span > 0.0) {
    const double rho = std::clamp((serial - span) / overlap_floor, 0.0, 1.0);
    overlap_ewma_[obs.unit] +=
        options_.overlap_smoothing * (rho - overlap_ewma_[obs.unit]);
  }
  // The duration every consumer below sees: the true span when this unit
  // runs the overlap regime (its blocks really finish in max-like time),
  // the additive sum otherwise — identical to the pre-pipeline scheduler.
  const bool overlapped =
      overlap_ewma_[obs.unit] >= options_.overlap_activation;
  const double duration =
      overlapped && span > 0.0 ? std::min(serial, span) : serial;
  if (obs.grains > 0)
    per_grain_[obs.unit] = duration / static_cast<double>(obs.grains);

  if (phase_ == Phase::kModeling) {
    ++stats_.probe_blocks;
    stats_.modeling_grains += static_cast<double>(obs.grains);
    prev_probe_grains_[obs.unit] = last_probe_grains_[obs.unit];
    prev_probe_time_[obs.unit] = last_probe_time_[obs.unit];
    last_probe_grains_[obs.unit] = static_cast<double>(obs.grains);
    last_probe_time_[obs.unit] = duration;
    bool counted = false;
    if (warm_state_[obs.unit] == WarmState::kPending)
      counted = resolve_warm_validation(obs, warm_predicted);
    if (!counted) {
      ++probe_count_[obs.unit];
      stats_.probe_rounds =
          std::max(stats_.probe_rounds, probe_count_[obs.unit]);
    }
    maybe_finish_modeling();
    return;
  }

  // Execution phase.
  inflight_issue_[obs.unit] = -1.0;
  if (monitor_.enabled() && !pending_rebalance_) check_overdue(obs.finish_time);

  // A tripped unit's completions are ladder observations: they feed the
  // recent window (the refreshed fit is selected from exactly these) and
  // advance the ladder, but take no part in refinement or threshold
  // bookkeeping — those reason about the current selection's blocks.
  if (reprobing_[obs.unit] != 0) {
    // The overdue block behind a censored trip: profiles_.record above
    // already stored it as the first post-change sample (the unit's
    // history was dropped at the trip); it seeds the window but does not
    // advance the ladder — the ladder's multi-size schedule starts now.
    if (censored_[obs.unit] != 0) {
      censored_[obs.unit] = 0;
      if (obs.grains > 0)
        monitor_.ingest(obs.unit, profiles_.grains_to_fraction(obs.grains),
                        obs.exec_seconds);
      return;
    }
    if (obs.grains > 0)
      monitor_.ingest(obs.unit, profiles_.grains_to_fraction(obs.grains),
                      obs.exec_seconds);
    if (++reprobe_round_[obs.unit] >= options_.adapt.reprobe_rounds &&
        !pending_rebalance_)
      finish_reprobe(obs.unit, obs.finish_time);
    return;
  }

  if (issue_gen_[obs.unit] == generation_) {
    last_duration_[obs.unit] = duration;
    ++gen_samples_[obs.unit];
  }
  if (pending_rebalance_) return;

  // Progressive refinement (§II): once every unit has produced one
  // large-block sample under the current selection, re-fit and update the
  // fractions for future blocks. No drain — only future requests change.
  if (refine_budget_ > 0) {
    bool all_sampled = true;
    for (rt::UnitId u = 0; u < units_.size(); ++u)
      if (!failed_[u] && gen_samples_[u] == 0) all_sampled = false;
    if (all_sampled) {
      --refine_budget_;
      ++stats_.refinements;
      PLBHEC_OBS_RECORD(sink_, {obs.finish_time, obs::EventKind::kRefinement,
                                obs::kNoUnit, 0.0, 0.0, refine_budget_, 0});
      fit_and_select();
      return;
    }
    // Until the *first* refinement, the fractions are known to be
    // provisional (fitted from small probe blocks only); draining the
    // whole cluster over their imperfection would cost more than the
    // refinement that is about to fix them. Later refinements run with
    // the threshold monitor active so genuine drift still forces a sync.
    if (refine_budget_ == options_.refinements) return;
  }

  // Rebalancing the last sliver of the input costs a full drain and cannot
  // pay for itself: skip the check once most grains have been handed out.
  const double window = options_.step_fraction *
                        static_cast<double>(work_.total_grains);
  if (static_cast<double>(work_.total_grains -
                          std::min(issued_grains_, work_.total_grains)) <
      0.5 * window)
    return;

  // Threshold monitoring (§III-D). The selection equalizes the *predicted*
  // E_g of every block, so "the difference in finishing times between any
  // two tasks exceeds the threshold" is equivalent to one unit's observed
  // duration deviating from its model's prediction by the threshold —
  // and the deviation form stays valid across selections and block sizes
  // (tasks are asynchronous here, not round-aligned).
  if (obs.unit >= models_.size() || !models_[obs.unit].valid() ||
      obs.grains == 0)
    return;
  const double x = profiles_.grains_to_fraction(obs.grains);
  const double predicted = models_[obs.unit].total_time(x);
  if (predicted <= 0.0) return;
  const double residual = (duration - predicted) / predicted;
  const double deviation = std::fabs(residual);

  // Drift adaptation: the recent window tracks the unit's execution curve
  // continuously, and the standardized residual feeds its CUSUM. A trip
  // takes precedence over threshold rebalancing — a persistent shift means
  // the model itself is wrong, and the targeted ladder (one unit re-probed,
  // no drain) is strictly cheaper than repeated global rebalances over a
  // model that cannot converge while pre-change samples dominate its fit.
  if (monitor_.enabled()) {
    if (obs.grains > 0) monitor_.ingest(obs.unit, x, obs.exec_seconds);
    if (monitor_.observe(obs.unit, residual)) {
      begin_reprobe(obs, residual);
      return;
    }
  }

  if (deviation > options_.rebalance_threshold) {
    if (++threshold_strikes_[obs.unit] >= options_.rebalance_strikes) {
      pending_rebalance_ = true;
      bonus_unit_ = obs.unit;
      threshold_strikes_.assign(units_.size(), 0);
      ++stats_.rebalances;
      PLBHEC_OBS_RECORD(sink_,
                        {obs.finish_time, obs::EventKind::kRebalanceTriggered,
                         static_cast<std::uint32_t>(obs.unit), deviation,
                         options_.rebalance_threshold,
                         options_.rebalance_strikes, 0});
    }
  } else {
    threshold_strikes_[obs.unit] = 0;
  }
}

bool PlbHecScheduler::resolve_warm_validation(const rt::TaskObservation& obs,
                                              double predicted) {
  const double duration = obs.transfer_seconds + obs.exec_seconds;
  const fit::FitResult refit = profiles_.exec_fit(obs.unit, options_.fit);
  const double rel_error =
      predicted > 0.0 ? std::fabs(duration - predicted) / predicted : 1e300;
  const std::uint64_t seeded_samples =
      profiles_.exec_samples(obs.unit).size();

  // Staleness tightening: the older the stored profile (in store writes
  // since it was refreshed), the more precisely it must predict the
  // validation block. A freshly written profile keeps the full bound.
  const double bound =
      options_.warm_rel_error /
      (1.0 + options_.warm_age_tightening *
                 static_cast<double>(warm_age_[obs.unit]));
  if (refit.acceptable && rel_error <= bound) {
    warm_state_[obs.unit] = WarmState::kValidated;
    // The stored curve stands in for the probe schedule: mark the unit
    // fully probed so modeling can finish after this single block. The
    // real block count lives in stats_.probe_blocks.
    const std::size_t full =
        std::max<std::size_t>(options_.min_probe_rounds, 1);
    stats_.probe_blocks_saved += full - 1;
    probe_count_[obs.unit] = full;
    ++stats_.warm_hits;
    PLBHEC_OBS_RECORD(sink_, {obs.finish_time, obs::EventKind::kWarmStartHit,
                              static_cast<std::uint32_t>(obs.unit), rel_error,
                              refit.r2, seeded_samples, 0});
    return true;
  }

  // The stored profile no longer describes this (workload, device) pair:
  // drop the seeded samples and re-record the validation block as the
  // first sample of a cold probing schedule.
  profiles_.clear_unit(obs.unit);
  profiles_.record(obs);
  warm_state_[obs.unit] = WarmState::kCold;
  ++stats_.warm_misses;
  PLBHEC_OBS_RECORD(sink_, {obs.finish_time, obs::EventKind::kWarmStartMiss,
                            static_cast<std::uint32_t>(obs.unit), rel_error,
                            refit.r2, seeded_samples, 0});
  return false;
}

void PlbHecScheduler::begin_reprobe(const rt::TaskObservation& obs,
                                    double residual) {
  const rt::UnitId u = obs.unit;
  ++stats_.drift_detections;
  const adapt::ResidualCusum& det = monitor_.detector(u);
  PLBHEC_OBS_RECORD(sink_,
                    {obs.finish_time, obs::EventKind::kDriftDetected,
                     static_cast<std::uint32_t>(u),
                     std::max(det.positive(), det.negative()), residual,
                     det.observed(), monitor_.trips(u)});
  // The pre-change history would dominate any refit and keep the model
  // wrong for the rest of the run: drop it, keeping the trip observation
  // as the first post-change sample, and restart the recent window so the
  // swap fits post-change behavior only.
  profiles_.clear_unit(u);
  profiles_.record(obs);
  monitor_.reset_unit(u);
  if (obs.grains > 0)
    monitor_.ingest(u, profiles_.grains_to_fraction(obs.grains),
                    obs.exec_seconds);
  reprobing_[u] = 1;
  reprobe_round_[u] = 0;
  threshold_strikes_[u] = 0;
}

void PlbHecScheduler::check_overdue(double now) {
  const double factor = options_.adapt.overdue_factor;
  if (factor <= 1.0) return;
  for (rt::UnitId u = 0; u < units_.size(); ++u) {
    if (failed_[u] || reprobing_[u] != 0) continue;
    if (inflight_issue_[u] < 0.0 || inflight_predicted_[u] <= 0.0) continue;
    const double elapsed = now - inflight_issue_[u];
    // The model underestimates tiny end-of-run blocks (fixed overheads
    // dominate far from the fitted range), so the bar is the larger of
    // the prediction and the unit's last completed block under the
    // current selection: a genuinely hung block dwarfs both.
    const double bar = std::max(inflight_predicted_[u], last_duration_[u]);
    if (elapsed <= factor * bar) continue;
    begin_reprobe_censored(u, now, elapsed / bar);
  }
}

void PlbHecScheduler::begin_reprobe_censored(rt::UnitId unit, double now,
                                             double overdue_ratio) {
  ++stats_.drift_detections;
  monitor_.force_trip(unit);
  // The elapsed/predicted ratio is a *lower bound* on the block's true
  // residual — the block has not finished. Recorded in the cusum-stat and
  // residual slots so exports stay uniform; observations = 0 marks the
  // censored path.
  PLBHEC_OBS_RECORD(sink_, {now, obs::EventKind::kDriftDetected,
                            static_cast<std::uint32_t>(unit), overdue_ratio,
                            overdue_ratio - 1.0, 0, monitor_.trips(unit)});
  // Same history reset as a completion-triggered trip, except there is no
  // observation yet: the overdue block itself becomes the first post-change
  // sample when it finally lands (see the censored_ branch in on_complete).
  profiles_.clear_unit(unit);
  monitor_.reset_unit(unit);
  reprobing_[unit] = 1;
  censored_[unit] = 1;
  reprobe_round_[unit] = 0;
  threshold_strikes_[unit] = 0;
  inflight_issue_[unit] = -1.0;
}

void PlbHecScheduler::finish_reprobe(rt::UnitId unit, double now) {
  reprobing_[unit] = 0;
  reprobe_round_[unit] = 0;
  ++stats_.reprobe_swaps;
  // The refreshed execution curve is selected from the recent window's
  // moments alone (no raw-sample refit); a window too degenerate to yield
  // an acceptable model falls back to the post-change profile samples in
  // the selection below.
  const fit::FitResult recent =
      adapt::fit_recent(monitor_.window(unit), options_.fit);
  if (recent.model.valid() && recent.acceptable)
    exec_override_[unit] = recent.model;
  PLBHEC_OBS_RECORD(sink_, {now, obs::EventKind::kReprobeSwap,
                            static_cast<std::uint32_t>(unit), recent.r2, 0.0,
                            monitor_.window(unit).count(),
                            stats_.reprobe_blocks_per_unit[unit]});
  // Detector baseline restarts against the refreshed model's residuals.
  monitor_.reset_unit(unit);
  fit_and_select();
}

void PlbHecScheduler::sync_fit_stats() {
  const rt::FitStats fs = profiles_.fit_stats();
  stats_.fits_computed = fs.fits_computed;
  stats_.fits_cached = fs.fits_cached;
  stats_.gram_solves = fs.gram_solves;
  stats_.qr_solves = fs.qr_solves;
  stats_.qr_fallbacks = fs.qr_fallbacks;
}

void PlbHecScheduler::fit_and_select() {
  ++generation_;
  const std::vector<fit::PerfModel> prev_models = models_;
  models_ = profiles_.fit_all(options_.fit);
  sync_fit_stats();

  // Drift hooks. A unit mid-ladder owns only a handful of post-change
  // samples, not enough for a trustworthy model — a refit triggered
  // elsewhere (refinement, rebalance, failure) keeps scheduling it from
  // its superseded model until the swap boundary. At the swap, the
  // recent-window selection replaces the execution curve for this one
  // generation; later refits draw on the same post-change samples.
  for (rt::UnitId u = 0; u < units_.size(); ++u) {
    if (reprobing_[u] != 0 && u < prev_models.size() &&
        prev_models[u].valid()) {
      models_[u] = prev_models[u];
    } else if (exec_override_[u].valid()) {
      models_[u].exec = exec_override_[u];
      exec_override_[u] = fit::CurveModel{};
    }
  }

  // Attach the cost regime each unit actually runs: above the activation
  // the fitted model blends toward the steady-state max(F, G) a pipelined
  // transport exhibits; below it (every unit in sync mode) the model stays
  // the paper's additive Eq. (1) bit for bit.
  stats_.overlap_units = 0;
  for (rt::UnitId u = 0; u < units_.size(); ++u) {
    models_[u].overlap =
        overlap_ewma_[u] >= options_.overlap_activation ? overlap_ewma_[u]
                                                        : 0.0;
    if (!failed_[u] && models_[u].overlap > 0.0) ++stats_.overlap_units;
  }

  // Build the model list over alive units only.
  std::vector<fit::PerfModel> alive_models;
  std::vector<rt::UnitId> alive_ids;
  for (rt::UnitId u = 0; u < units_.size(); ++u) {
    if (failed_[u]) continue;
    PLBHEC_ASSERT(models_[u].valid());
    PLBHEC_OBS_RECORD(
        sink_, {last_now_, obs::EventKind::kModelFitted,
                static_cast<std::uint32_t>(u), models_[u].exec.r2, 0.0,
                profiles_.exec_samples(u).size(),
                models_[u].exec.r2 >= options_.fit.r2_threshold ? 1u : 0u});
    alive_models.push_back(models_[u]);
    alive_ids.push_back(u);
  }
  PLBHEC_EXPECTS(!alive_models.empty());

  // Solve the equal-time system at the *window* level (Eq. 3-5 with the
  // simplex right-hand side equal to one execution window): with nonlinear
  // curves, equal E at full shares does not imply equal E for the blocks
  // actually issued, and window-level shares stay within the probed range.
  solver::BlockSelectionOptions sel_opt = options_.selection;
  sel_opt.total_fraction = options_.step_fraction;
  // Re-solves (§III-D rebalances, refinements, failure redistribution)
  // start from the previous selection instead of re-deriving the analytic
  // equal-time point: the observations only perturbed the optimum.
  if (!stats_.fraction_history.empty()) {
    double prev_sum = 0.0;
    for (rt::UnitId u : alive_ids) prev_sum += fractions_[u];
    if (prev_sum > 0.0) {
      sel_opt.warm_start.reserve(alive_ids.size());
      for (rt::UnitId u : alive_ids)
        sel_opt.warm_start.push_back(fractions_[u] / prev_sum *
                                     options_.step_fraction);
    }
  }
  const solver::BlockSelection sel =
      solver::select_block_sizes(alive_models, sel_opt);
  ++stats_.solves;
  PLBHEC_OBS_RECORD(sink_,
                    {last_now_, obs::EventKind::kSolve, obs::kNoUnit,
                     sel.solve_seconds, sel.predicted_time, sel.ip.kkt_solves,
                     (sel.warm_started ? 1u : 0u) |
                         (sel.used_fallback ? 2u : 0u)});
  stats_.solve_seconds.push_back(sel.solve_seconds);
  if (sel.used_fallback) ++stats_.fallback_solves;
  stats_.kkt_solves += sel.ip.kkt_solves;
  if (sel.warm_started) {
    ++stats_.warm_solves;
    if (cold_kkt_solves_ > sel.ip.kkt_solves)
      stats_.kkt_solves_saved += cold_kkt_solves_ - sel.ip.kkt_solves;
  } else if (sel.ip.kkt_solves > 0) {
    cold_kkt_solves_ = sel.ip.kkt_solves;
  }

  fractions_.assign(units_.size(), 0.0);
  if (sel.ok) {
    // Normalize window shares to a unit sum: next_block() multiplies by
    // the effective window, and Fig. 6 reports the normalized shares.
    for (std::size_t i = 0; i < alive_ids.size(); ++i)
      fractions_[alive_ids[i]] = sel.fractions[i] / options_.step_fraction;
  } else {
    // Pathological fits everywhere: fall back to a uniform split.
    for (rt::UnitId u : alive_ids)
      fractions_[u] = 1.0 / static_cast<double>(alive_ids.size());
  }

  stats_.fraction_history.push_back(fractions_);

  // Nominal per-task block of a full window (kept for introspection).
  const double window = options_.step_fraction *
                        static_cast<double>(work_.total_grains);
  for (rt::UnitId u = 0; u < units_.size(); ++u) {
    exec_block_[u] = failed_[u] ? 0
                                : std::max<std::size_t>(
                                      1, static_cast<std::size_t>(
                                             std::llround(fractions_[u] *
                                                          window)));
  }
  last_duration_.assign(units_.size(), 0.0);
  gen_samples_.assign(units_.size(), 0);
}

void PlbHecScheduler::on_barrier(double now) {
  last_now_ = now;
  if (phase_ == Phase::kModeling) {
    // Asynchronous probing never parks units, so a barrier here means the
    // engine drained for another reason (e.g. failures): force selection.
    maybe_finish_modeling();
    if (phase_ == Phase::kModeling) {
      phase_ = Phase::kExecuting;
      PLBHEC_OBS_RECORD(sink_, {now, obs::EventKind::kPhaseChange,
                                obs::kNoUnit, stats_.modeling_grains, 0.0,
                                static_cast<std::uint64_t>(Phase::kExecuting),
                                0});
      fit_and_select();
    }
    return;
  }

  // Execution phase barrier: the drain for a pending rebalance finished.
  if (pending_rebalance_) {
    pending_rebalance_ = false;
    bonus_unit_.reset();
    fit_and_select();
    return;
  }
  // A barrier with no pending rebalance means the engine still holds work
  // our issued-count says is gone (engine-side clamping of a past block).
  // At a barrier nothing is in flight, so the true consumption equals the
  // completed count — resynchronize and keep serving.
  issued_grains_ = static_cast<std::size_t>(grains_consumed_);
}

void PlbHecScheduler::on_unit_failed(rt::UnitId unit,
                                     std::size_t lost_grains,
                                     double now) {
  PLBHEC_EXPECTS(unit < units_.size());
  last_now_ = now;
  if (failed_[unit]) return;
  failed_[unit] = true;
  // The unit's in-flight block returned to the pool: credit it back so the
  // remaining-work estimate (and the shrinking tail windows) stay correct.
  issued_grains_ -= std::min(lost_grains, issued_grains_);
  inflight_issue_[unit] = -1.0;
  censored_[unit] = 0;
  if (alive_count() == 0) return;
  if (phase_ == Phase::kExecuting) {
    // Redistribute the failed unit's share across the survivors (§VI).
    fit_and_select();
  }
}

}  // namespace plbhec::core
