#pragma once
/// \file plb_hec.hpp
/// PLB-HeC: the paper's profile-based load-balancing algorithm (§III).
///
/// Phase 1 — performance modeling: per-unit probe blocks growing as
///   initialBlockSize * {1, 2, 4, 8}, rescaled per unit by the performance
///   preview t_f / t_k (fastest per-grain time over this unit's per-grain
///   time). Probing is *asynchronous*: a unit receives its next probe the
///   moment it finishes the previous one — the paper credits PLB-HeC's low
///   initial-phase idleness to exactly this ("starting to adapt the block
///   sizes after the submission of the first block"). Probing continues
///   until every unit's fitted curve reaches R^2 >= 0.7 (minimum four
///   samples each) or 20% of the input has been consumed.
/// Phase 2 — block size selection: fit F_p, G_p per unit, solve the
///   equal-time system (Eq. 3-5) with the interior-point method.
/// Phase 3 — execution & rebalancing: hand each unit blocks of its selected
///   size; when task durations across units diverge by more than the
///   threshold (default 10% of a block's execution time), drain, re-fit
///   with all observations and re-solve.
///
/// The scheduler also honors unit failures (paper §VI future work): the
/// failed unit's share is re-solved across the survivors.

#include <optional>
#include <vector>

#include "plbhec/adapt/drift.hpp"
#include "plbhec/rt/profile_db.hpp"
#include "plbhec/rt/scheduler.hpp"
#include "plbhec/solver/block_selection.hpp"

namespace plbhec::obs {
class CounterRegistry;
}

namespace plbhec::core {

struct PlbHecOptions {
  /// Probe block of the first round, in grains. 0 = use the engine hint
  /// (WorkInfo::initial_block).
  std::size_t initial_block = 0;
  /// Minimum number of probe blocks per unit before the first fit attempt
  /// (the paper's schedule: 4).
  std::size_t min_probe_rounds = 4;
  /// Stop the modeling phase once this fraction of the input is consumed,
  /// even if some fit is still below the R^2 threshold (paper: 20%).
  double modeling_data_cap = 0.20;
  /// Largest probe multiplier; the paper's schedule is 1, 2, 4, 8 and
  /// additional points (when R^2 is still low) are taken at the final
  /// multiplier rather than growing further.
  std::size_t max_probe_multiplier = 8;
  /// Rebalance when task durations diverge by more than this fraction of
  /// the mean block duration. The paper: "the threshold must be determined
  /// empirically; in practice, values of about 10% ... a good trade-off".
  /// We compare the max-min *range* across all units, which at 8-10 units
  /// and 2-3% measurement noise sits near 12%, so the empirically good
  /// value here is 0.15 (see bench/abl_threshold for the sweep).
  double rebalance_threshold = 0.15;
  /// Number of consecutive completions that must exceed the threshold
  /// before a rebalance is declared (debounces measurement noise).
  std::size_t rebalance_strikes = 2;
  /// Fraction of the total input distributed per execution "step"; each
  /// unit's per-task block is its fraction of this window.
  double step_fraction = 0.25;
  /// Barrier-free progressive refinements (§II: "a progressive refinement
  /// of the performance models ... during execution"): after every unit
  /// has completed one execution-phase block of the current selection, the
  /// models are re-fitted with those large-block samples and the fractions
  /// updated for *future* blocks — no synchronization needed, unlike a
  /// threshold rebalance. Each refinement costs one solver call.
  std::size_t refinements = 2;
  /// Curve-fit configuration (r2_threshold is the paper's 0.7).
  fit::SelectionOptions fit;
  /// Interior-point block-selection configuration.
  solver::BlockSelectionOptions selection;
  /// Per-unit warm-start profiles (the service layer loads these from its
  /// ProfileStore at job admission), indexed by the unit ids passed to
  /// start(). A unit whose stored profile has stored_r2 >= fit.r2_threshold
  /// is seeded with the persisted samples and issues ONE cheap validation
  /// block instead of the exponential probe schedule; if the seeded fit
  /// still predicts that block within warm_rel_error, the unit's modeling
  /// is complete (warm hit). Otherwise the stored samples are dropped and
  /// the unit falls back to cold probing (warm miss). Units beyond the
  /// vector, or with unusable entries, always cold-start.
  std::vector<rt::WarmProfile> warm;
  /// Relative error bound of the warm validation rule: |observed -
  /// predicted| / predicted on the validation block must stay under this.
  double warm_rel_error = 0.35;
  /// Staleness tightening of the warm validation bound: the effective
  /// bound is warm_rel_error / (1 + warm_age_tightening * age), where age
  /// is WarmProfile::age (store writes since the entry was refreshed). A
  /// fresh profile keeps the full bound; one that predates hundreds of
  /// store writes must predict the validation block much more precisely
  /// to be trusted. 0 disables the tightening.
  double warm_age_tightening = 0.01;
  /// Profiles older than this many store writes are not seeded at all
  /// (cold probing instead of spending a validation block on a curve that
  /// long predates the cluster's current behavior). 0 disables the cap.
  std::uint64_t warm_max_age = 1024;
  /// Cost-regime selection for pipelined transports. Each completed block
  /// yields an observed overlap fraction — (transfer + exec - span) /
  /// min(transfer, exec), clamped to [0, 1], where span is the block's
  /// wall time from the engine's observation. Under a synchronous unit
  /// span = transfer + exec and the fraction is 0; a pipelined
  /// net::RemoteUnit hides part of the smaller phase and reports span <
  /// transfer + exec. The per-unit EWMA of this fraction (weight
  /// `overlap_smoothing`) is attached to the unit's fitted model once it
  /// exceeds `overlap_activation`, switching that unit's cost from the
  /// paper's additive E = F + G to the steady-state blend toward
  /// max(F, G) (fit::PerfModel::overlap). Units below the activation keep
  /// the additive model bit for bit, so sync-mode schedules are
  /// unchanged.
  double overlap_smoothing = 0.4;
  double overlap_activation = 0.2;
  /// Online drift adaptation (src/plbhec/adapt/): per-unit residual CUSUM
  /// change-point detection over the execution phase, targeted re-probe of
  /// a tripped unit via a short geometric block ladder while the rest of
  /// the cluster keeps running, and a refreshed fit from the recent-window
  /// moments swapped in at the next block boundary. Disabled by default:
  /// the fit-once scheduler is unchanged unless adapt.enabled is set.
  adapt::DriftOptions adapt;
  /// Bounded preemption latency: upper bound, in engine seconds, on a
  /// single execution-phase block's *predicted* duration (latest observed
  /// per-grain time of the unit). The multi-tenant service revokes and
  /// grows leases only at block boundaries, so an uncapped block — e.g. a
  /// full step_fraction window issued to a one-unit lease the moment a
  /// warm start skips the probing ramp — pins the lease for the block's
  /// whole duration and strands grains on slow units while faster ones
  /// are already granted. 0 (the default) keeps the paper's behavior:
  /// blocks are whatever the equal-time selection says.
  double max_block_seconds = 0.0;
};

/// Diagnostics exposed for the benchmark harness.
struct PlbHecStats {
  std::size_t probe_rounds = 0;
  std::size_t solves = 0;          ///< interior-point selections performed
  std::size_t refinements = 0;     ///< barrier-free progressive refinements
  std::size_t rebalances = 0;      ///< execution-phase rebalances
  std::size_t fallback_solves = 0; ///< analytic fallback used
  std::size_t warm_solves = 0;     ///< solves warm-started from the
                                   ///< previous selection's fractions
  std::size_t kkt_solves = 0;      ///< KKT factorizations across all solves
  std::size_t kkt_solves_saved = 0;///< factorizations avoided by warm
                                   ///< starts, vs. the last cold solve
  std::vector<double> solve_seconds;  ///< wall time per selection
  double modeling_grains = 0.0;    ///< grains consumed by the modeling phase
  std::vector<std::vector<double>> fraction_history;  ///< per selection
  std::size_t fits_computed = 0;   ///< exec-curve selections actually solved
  std::size_t fits_cached = 0;     ///< selections served from the fit cache
  std::size_t gram_solves = 0;     ///< subset fits via cached moments
  std::size_t qr_solves = 0;       ///< subset fits via design-matrix QR
  std::size_t qr_fallbacks = 0;    ///< Gram-path conditioning bailouts
  std::size_t probe_blocks = 0;    ///< modeling-phase blocks completed
  std::size_t warm_hits = 0;       ///< units whose stored profile validated
  std::size_t warm_misses = 0;     ///< stored profiles rejected at validation
  std::size_t probe_blocks_saved = 0;  ///< schedule blocks skipped by warm
                                       ///< hits (min_probe_rounds - 1 each)
  std::size_t overlap_units = 0;   ///< units on the max(F, G) regime at the
                                   ///< most recent selection
  std::size_t drift_detections = 0;  ///< residual CUSUM trips
  std::size_t reprobe_blocks = 0;    ///< targeted re-probe ladder blocks
  std::size_t reprobe_swaps = 0;     ///< refreshed fits swapped in
  std::size_t warm_stale_skips = 0;  ///< stored profiles too old to seed
  /// Ladder blocks per unit; re-probe is targeted, so drift on one unit
  /// must leave every other unit's counter at zero (gated in bench_adapt).
  std::vector<std::size_t> reprobe_blocks_per_unit;
};

/// Publishes the scheduler statistics into a counter registry under the
/// "plbhec." prefix — the CounterRegistry unification of the ad-hoc stats
/// (one snapshot per call; values overwrite).
void publish_counters(obs::CounterRegistry& registry,
                      const PlbHecStats& stats);

/// Publishes each unit's fitted transfer-model coefficients (Eq. 2 slope
/// a1, latency a2, R²) and its cost-regime overlap under
/// "plbhec.unit<N>.*", so run summaries and trace exports show wire
/// health per remote unit without rerunning bench_net, plus the overlap
/// EWMA decay constant under "plbhec.overlap.smoothing_milli" (the time
/// constant the estimates were smoothed with — without it the per-unit
/// overlap numbers are not interpretable across configurations). Times
/// are scaled to integer microseconds, ratios to milli-units (the
/// registry holds u64 counters).
void publish_transfer_models(obs::CounterRegistry& registry,
                             const std::vector<fit::PerfModel>& models,
                             double overlap_smoothing);

class PlbHecScheduler final : public rt::Scheduler {
 public:
  explicit PlbHecScheduler(PlbHecOptions options = {});

  [[nodiscard]] std::string name() const override { return "PLB-HeC"; }

  void start(const std::vector<rt::UnitInfo>& units,
             const rt::WorkInfo& work) override;
  [[nodiscard]] std::size_t next_block(rt::UnitId unit, double now) override;
  void on_complete(const rt::TaskObservation& obs) override;
  void on_barrier(double now) override;
  void on_unit_failed(rt::UnitId unit, std::size_t lost_grains,
                      double now) override;

  /// Block-size fractions from the most recent selection (Fig. 6 data).
  [[nodiscard]] const std::vector<double>& fractions() const {
    return fractions_;
  }
  /// Fitted models from the most recent selection (Fig. 1 data).
  [[nodiscard]] const std::vector<fit::PerfModel>& models() const {
    return models_;
  }
  [[nodiscard]] const PlbHecStats& stats() const { return stats_; }
  /// Raw profiling samples (Fig. 1 reproduction data).
  [[nodiscard]] const rt::ProfileDb& profiles() const { return profiles_; }
  /// Smoothed per-unit observed-overlap fractions driving the cost-regime
  /// selection (see PlbHecOptions::overlap_activation).
  [[nodiscard]] const std::vector<double>& overlap_estimates() const {
    return overlap_ewma_;
  }
  /// The drift monitor (windows, detectors, trip counts) — bench/test
  /// introspection.
  [[nodiscard]] const adapt::DriftMonitor& drift() const { return monitor_; }
  /// True while `unit` runs its targeted re-probe ladder.
  [[nodiscard]] bool reprobing(rt::UnitId unit) const {
    return unit < reprobing_.size() && reprobing_[unit] != 0;
  }

 private:
  enum class Phase { kModeling, kExecuting };
  /// Warm-start lifecycle of one unit: kPending between seeding and the
  /// validation block's completion; kValidated counts as fully probed.
  enum class WarmState : std::uint8_t { kCold, kPending, kValidated };

  [[nodiscard]] std::size_t plan_probe_block(rt::UnitId unit) const;
  /// Settles a pending warm validation with the observed block. Returns
  /// true on a hit (probe_count_ already set); false leaves the unit on
  /// the cold path with the observation re-recorded as its first sample.
  bool resolve_warm_validation(const rt::TaskObservation& obs,
                               double predicted);
  /// Detector trip: drop the unit's mixed-regime history, keep the trip
  /// observation as the first post-change sample, and flip the unit into
  /// the targeted re-probe ladder. The rest of the cluster keeps running.
  void begin_reprobe(const rt::TaskObservation& obs, double residual);
  /// Censored trip (adapt.overdue_factor): a peer's in-flight block is
  /// already far past its predicted duration, so the unit flips into
  /// re-probe *before* the block completes; the completion is then the
  /// first post-change sample, not a ladder round.
  void begin_reprobe_censored(rt::UnitId unit, double now,
                              double overdue_ratio);
  /// Scans every busy peer's in-flight block age against the overdue
  /// bound. Runs on each exec-phase completion (the only clock ticks an
  /// event-driven scheduler gets).
  void check_overdue(double now);
  /// Records an exec-phase block issue for the overdue scan.
  void track_inflight(rt::UnitId unit, double now, std::size_t block);
  /// Ladder complete: refit from the recent window's moments and swap the
  /// refreshed model in at this block boundary (one re-solve, no drain).
  void finish_reprobe(rt::UnitId unit, double now);
  void maybe_finish_modeling();
  void fit_and_select();
  void sync_fit_stats();
  [[nodiscard]] bool alive(rt::UnitId u) const { return !failed_[u]; }
  [[nodiscard]] std::size_t alive_count() const;

  PlbHecOptions options_;
  std::vector<rt::UnitInfo> units_;
  rt::WorkInfo work_;
  rt::ProfileDb profiles_;

  Phase phase_ = Phase::kModeling;
  std::size_t initial_block_ = 1;
  std::vector<std::size_t> probe_count_;     ///< probes completed per unit
  std::vector<double> per_grain_;            ///< latest per-grain time (s)
  std::vector<double> last_probe_grains_;    ///< most recent probe size
  std::vector<double> last_probe_time_;      ///< most recent probe duration
  std::vector<double> prev_probe_grains_;    ///< previous probe size
  std::vector<double> prev_probe_time_;      ///< previous probe duration
  std::size_t modeling_issued_ = 0;          ///< probe grains handed out
  std::vector<WarmState> warm_state_;        ///< per-unit warm lifecycle
  std::vector<std::uint64_t> warm_age_;      ///< staleness of the seeded
                                             ///< profile, in store writes
  std::vector<double> overlap_ewma_;         ///< smoothed observed overlap
  std::vector<bool> failed_;

  adapt::DriftMonitor monitor_;              ///< per-unit windows + CUSUMs
  std::vector<std::uint8_t> reprobing_;      ///< unit is on the ladder
  std::vector<std::uint8_t> censored_;       ///< tripped with the block
                                             ///< still in flight
  std::vector<std::size_t> reprobe_round_;   ///< ladder blocks completed
  std::vector<double> inflight_issue_;       ///< issue time of the in-flight
                                             ///< exec block (-1 = idle)
  std::vector<double> inflight_predicted_;   ///< its predicted duration
  std::vector<fit::CurveModel> exec_override_;  ///< refreshed recent-window
                                                ///< fit, consumed by the
                                                ///< next selection

  std::vector<fit::PerfModel> models_;
  std::vector<double> fractions_;
  std::vector<std::size_t> exec_block_;      ///< per-unit execution block size
  std::vector<double> last_duration_;        ///< last exec-phase task duration
  std::vector<std::size_t> gen_samples_;     ///< exec completions this gen
  std::size_t refine_budget_ = 0;
  bool pending_rebalance_ = false;
  std::optional<rt::UnitId> bonus_unit_;     ///< detecting unit gets one more
  std::vector<std::size_t> threshold_strikes_;  ///< per-unit debounce
  std::size_t issued_grains_ = 0;            ///< grains handed out so far
  std::size_t generation_ = 0;               ///< bumped at every selection
  std::size_t cold_kkt_solves_ = 0;          ///< KKT count of the last
                                             ///< cold (analytic-started)
                                             ///< solve — the baseline the
                                             ///< warm-start saving is
                                             ///< measured against
  std::vector<std::size_t> issue_gen_;       ///< generation of the unit's
                                             ///< outstanding block (the
                                             ///< engine keeps at most one
                                             ///< task in flight per unit)
  double grains_consumed_ = 0.0;
  double last_now_ = 0.0;  ///< latest virtual time seen from the engine;
                           ///< timestamps decision events raised from
                           ///< callbacks that carry no clock (fit/solve)

  PlbHecStats stats_;
};

}  // namespace plbhec::core
