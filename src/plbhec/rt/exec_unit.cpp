#include "plbhec/rt/exec_unit.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "plbhec/common/contracts.hpp"

namespace plbhec::rt {
namespace {

using Clock = std::chrono::steady_clock;

/// Busy-stretches a measured duration to `factor` times its length.
void stretch(Clock::time_point start, double measured_s, double factor) {
  if (factor <= 1.0) return;
  const double target = measured_s * factor;
  while (std::chrono::duration<double>(Clock::now() - start).count() < target)
    std::this_thread::yield();
}

}  // namespace

LocalExecUnit::LocalExecUnit(Options options) : options_(std::move(options)) {
  PLBHEC_EXPECTS(options_.slowdown >= 1.0);
  slowdown_.store(options_.slowdown, std::memory_order_relaxed);
}

void LocalExecUnit::set_slowdown(double slowdown) {
  PLBHEC_EXPECTS(slowdown >= 1.0);
  slowdown_.store(slowdown, std::memory_order_relaxed);
}

UnitInfo LocalExecUnit::describe() const {
  UnitInfo info;
  info.name = options_.name;
  info.kind = ProcKind::kCpu;
  info.machine = 0;
  return info;
}

bool LocalExecUnit::begin_run(Workload& workload) {
  return workload.supports_real_execution();
}

bool LocalExecUnit::execute(Workload& workload, std::size_t begin,
                            std::size_t end, BlockTiming& timing) {
  PLBHEC_EXPECTS(begin < end);

  // --- Transfer emulation (real memcpy staging) ---
  const auto bytes = static_cast<std::size_t>(
      static_cast<double>(end - begin) * workload.bytes_per_grain());
  const Clock::time_point t_transfer = Clock::now();
  if (options_.emulate_transfer && bytes > 0) {
    staging_.resize(bytes);
    // Touch every page so the copy cost is real.
    std::memset(staging_.data(), 0x5a, staging_.size());
  }
  timing.transfer_seconds =
      std::chrono::duration<double>(Clock::now() - t_transfer).count();

  // --- Real kernel execution ---
  const Clock::time_point t_exec = Clock::now();
  workload.execute_cpu(begin, end);
  const double exec_s =
      std::chrono::duration<double>(Clock::now() - t_exec).count();
  stretch(t_exec, exec_s, slowdown_.load(std::memory_order_relaxed));
  timing.exec_seconds =
      std::chrono::duration<double>(Clock::now() - t_exec).count();
  return true;
}

}  // namespace plbhec::rt
