#pragma once
/// \file types.hpp
/// Shared vocabulary of the task runtime: processing-unit descriptors and
/// the observation records the engine hands to schedulers.

#include <cstddef>
#include <string>
#include <vector>

namespace plbhec::rt {

using UnitId = std::size_t;

enum class ProcKind { kCpu, kGpu };

/// Scheduler-visible description of one processing unit.
struct UnitInfo {
  UnitId id = 0;
  std::string name;            ///< e.g. "A.gpu0"
  ProcKind kind = ProcKind::kCpu;
  std::size_t machine = 0;     ///< machine index within the cluster
};

/// Scheduler-visible description of the workload being balanced.
struct WorkInfo {
  std::string name;
  std::size_t total_grains = 0;   ///< number of indivisible block units
  double bytes_per_grain = 0.0;   ///< input bytes shipped per grain
  std::size_t initial_block = 1;  ///< the paper's initialBlockSize, in grains
};

/// Everything a scheduler learns when a task completes (§III-B: execution
/// and transfer times are profiled separately).
struct TaskObservation {
  UnitId unit = 0;
  std::size_t grains = 0;
  double transfer_seconds = 0.0;
  double exec_seconds = 0.0;
  double start_time = 0.0;   ///< when the task was issued
  double finish_time = 0.0;  ///< when the result was available
};

}  // namespace plbhec::rt
