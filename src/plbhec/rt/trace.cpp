#include "plbhec/rt/trace.hpp"

namespace plbhec::rt {

double TraceLog::busy_seconds(UnitId unit) const {
  double s = 0.0;
  for (const auto& seg : segments_)
    if (seg.unit == unit) s += seg.duration();
  return s;
}

std::size_t TraceLog::grains_processed(UnitId unit) const {
  std::size_t g = 0;
  for (const auto& seg : segments_)
    if (seg.unit == unit && seg.kind == SegmentKind::kExec) g += seg.grains;
  return g;
}

std::size_t TraceLog::task_count(UnitId unit) const {
  std::size_t n = 0;
  for (const auto& seg : segments_)
    if (seg.unit == unit && seg.kind == SegmentKind::kExec) ++n;
  return n;
}

}  // namespace plbhec::rt
