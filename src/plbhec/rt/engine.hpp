#pragma once
/// \file engine.hpp
/// Discrete-event execution engine: runs a Workload on a simulated
/// heterogeneous cluster under a pluggable Scheduler, in virtual time.
/// This is the master-node dispatch loop of the paper's runtime — units
/// request blocks as they finish (§III-D) and the engine profiles transfer
/// and execution times for every task.

#include <cstdint>
#include <string>
#include <vector>

#include "plbhec/common/contracts.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/scheduler.hpp"
#include "plbhec/rt/trace.hpp"
#include "plbhec/rt/workload.hpp"
#include "plbhec/sim/cluster.hpp"

namespace plbhec::rt {

struct EngineOptions {
  sim::NoiseModel noise;         ///< measurement noise model
  std::uint64_t seed = 42;       ///< base seed; each unit gets a forked stream
  bool record_trace = true;      ///< keep the full segment trace
  double max_sim_time = 1e9;     ///< watchdog: abort runs past this (seconds)
  std::size_t max_events = 50'000'000;  ///< watchdog: abort runaway loops
  /// Observability sink for dispatch/barrier/failure events; also handed
  /// to the scheduler before start() so its decisions land in the same
  /// stream. Null = record nothing. Not owned.
  obs::EventSink* sink = nullptr;
};

/// Per-unit aggregate statistics of one run.
struct UnitStats {
  double transfer_seconds = 0.0;
  double exec_seconds = 0.0;
  std::size_t grains = 0;
  std::size_t tasks = 0;
  bool failed = false;

  [[nodiscard]] double busy_seconds() const {
    return transfer_seconds + exec_seconds;
  }
};

struct RunResult {
  bool ok = false;
  std::string error;
  double makespan = 0.0;          ///< virtual seconds until the last grain
  std::size_t total_grains = 0;
  std::size_t grains_completed = 0;  ///< grains that actually finished
  /// Grains that were in flight on a unit when it failed and had to be
  /// returned to the pool. A successful run re-executes them elsewhere, so
  /// ok && grains_completed == total_grains even when this is > 0; the
  /// chaos gate's "zero lost-grain violations" means exactly that identity,
  /// not that no fault ever interrupted a block.
  std::size_t grains_requeued = 0;
  std::size_t barriers = 0;       ///< number of scheduler barriers reached
  std::vector<UnitInfo> units;
  std::vector<UnitStats> unit_stats;
  TraceLog trace;

  /// Per-unit statistics with the unit id range-checked (a bad UnitId is a
  /// caller bug, not a silent out-of-range read).
  [[nodiscard]] const UnitStats& stats_for(UnitId u) const {
    PLBHEC_EXPECTS(u < unit_stats.size());
    return unit_stats[u];
  }

  /// Fraction of the makespan a unit spent idle.
  [[nodiscard]] double idle_fraction(UnitId u) const {
    PLBHEC_EXPECTS(u < unit_stats.size());
    if (makespan <= 0.0) return 0.0;
    return 1.0 - unit_stats[u].busy_seconds() / makespan;
  }
};

class SimEngine {
 public:
  explicit SimEngine(const sim::SimCluster& cluster,
                     EngineOptions options = {});

  /// Runs the workload to completion under the scheduler. The scheduler
  /// must be freshly constructed (start() is called here).
  [[nodiscard]] RunResult run(Workload& workload, Scheduler& scheduler);

  [[nodiscard]] const std::vector<UnitInfo>& units() const { return units_; }

 private:
  const sim::SimCluster& cluster_;
  EngineOptions options_;
  std::vector<UnitInfo> units_;
};

}  // namespace plbhec::rt
