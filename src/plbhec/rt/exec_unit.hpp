#pragma once
/// \file exec_unit.hpp
/// The execution-backend seam of the real-execution engine: an ExecUnit is
/// one processing unit that can run blocks of a workload and report how
/// long the staging and the kernel took. ThreadEngine drives a set of them
/// from its persistent worker threads without knowing whether a block runs
/// in-process (LocalExecUnit) or on a worker daemon across a socket
/// (net::RemoteUnit) — the scheduler sees identical TaskObservations either
/// way, which is what lets G_p(x) be fitted from measured wire time.

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "plbhec/rt/types.hpp"
#include "plbhec/rt/workload.hpp"

namespace plbhec::rt {

/// Wall-clock timings of one executed block.
struct BlockTiming {
  double transfer_seconds = 0.0;  ///< staging memcpy or network wire time
  double exec_seconds = 0.0;      ///< kernel time on the executing host
  /// End-to-end wall time of the block when the unit overlapped transfer
  /// with execution (a pipelined remote unit reports wall <
  /// transfer + exec). 0 means the phases ran serially and wall is
  /// transfer + exec. The engine clips trace segments with it; schedulers
  /// read the overlap off the observation's start/finish span.
  double wall_seconds = 0.0;
};

class ExecUnit {
 public:
  virtual ~ExecUnit() = default;

  /// Static description (name, kind, machine). The engine assigns the id.
  [[nodiscard]] virtual UnitInfo describe() const = 0;

  /// Called once per run, before any execute(). A remote unit ships the
  /// workload spec to its daemon here. Returning false marks the unit
  /// failed for this run (the engine routes it through on_unit_failed).
  [[nodiscard]] virtual bool begin_run(Workload& workload) = 0;

  /// Executes grains [begin, end) and applies the results to `workload`.
  /// Returns false on permanent failure; the engine then requeues the
  /// whole range, so a false return must leave the workload untouched.
  [[nodiscard]] virtual bool execute(Workload& workload, std::size_t begin,
                                     std::size_t end, BlockTiming& timing) = 0;

  /// Called once per run after the unit's last execute (also after a
  /// failed one).
  virtual void end_run() {}
};

/// In-process unit: runs the workload's CPU kernel on the calling thread,
/// emulating heterogeneity by stretching the measured kernel time by a
/// per-unit slowdown factor and input staging with a real memcpy.
class LocalExecUnit final : public ExecUnit {
 public:
  struct Options {
    std::string name = "host.cpu";
    double slowdown = 1.0;  ///< >= 1.0; busy-stretch factor for exec time
    bool emulate_transfer = true;
  };

  explicit LocalExecUnit(Options options);

  [[nodiscard]] UnitInfo describe() const override;
  [[nodiscard]] bool begin_run(Workload& workload) override;
  [[nodiscard]] bool execute(Workload& workload, std::size_t begin,
                             std::size_t end, BlockTiming& timing) override;

  /// Changes the busy-stretch factor mid-run (>= 1.0). Safe to call from
  /// another thread while the engine's worker executes on this unit — the
  /// drift-injection stimulus for real-execution benchmarks; blocks in
  /// flight finish at whichever factor they load first.
  void set_slowdown(double slowdown);
  [[nodiscard]] double slowdown() const {
    return slowdown_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::atomic<double> slowdown_{1.0};
  std::vector<unsigned char> staging_;
};

}  // namespace plbhec::rt
