#include "plbhec/rt/workload.hpp"

#include "plbhec/common/contracts.hpp"

namespace plbhec::rt {

void Workload::execute_cpu(std::size_t, std::size_t) {
  PLBHEC_ASSERT(!"execute_cpu not implemented for this workload");
}

}  // namespace plbhec::rt
