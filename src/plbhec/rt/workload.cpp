#include "plbhec/rt/workload.hpp"

#include "plbhec/common/contracts.hpp"

namespace plbhec::rt {

void Workload::execute_cpu(std::size_t, std::size_t) {
  PLBHEC_ASSERT(!"execute_cpu not implemented for this workload");
}

std::size_t Workload::result_bytes(std::size_t, std::size_t) const {
  return 0;
}

void Workload::write_results(std::size_t begin, std::size_t end,
                             std::uint8_t*) const {
  // Only reachable for a workload that announces result bytes but forgot
  // the serializer.
  PLBHEC_EXPECTS(result_bytes(begin, end) == 0);
}

void Workload::read_results(std::size_t begin, std::size_t end,
                            const std::uint8_t*) {
  PLBHEC_EXPECTS(result_bytes(begin, end) == 0);
}

}  // namespace plbhec::rt
