#include "plbhec/rt/thread_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <span>

#include "plbhec/common/codec.hpp"
#include "plbhec/common/contracts.hpp"
#include "plbhec/kdisp/registry.hpp"

namespace plbhec::rt {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A contiguous range of grains awaiting (re)assignment.
struct GrainRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<std::unique_ptr<ExecUnit>> make_local_units(
    const ThreadEngineOptions& options) {
  PLBHEC_EXPECTS(!options.slowdowns.empty());
  for (double s : options.slowdowns) PLBHEC_EXPECTS(s >= 1.0);
  std::vector<std::unique_ptr<ExecUnit>> locals;
  for (std::size_t u = 0; u < options.slowdowns.size(); ++u) {
    LocalExecUnit::Options lo;
    lo.name = "host.cpu" + std::to_string(u);
    lo.slowdown = options.slowdowns[u];
    lo.emulate_transfer = options.emulate_transfer;
    locals.push_back(std::make_unique<LocalExecUnit>(std::move(lo)));
  }
  return locals;
}

}  // namespace

ThreadEngine::ThreadEngine(ThreadEngineOptions options)
    : ThreadEngine(options, make_local_units(options)) {}

ThreadEngine::ThreadEngine(ThreadEngineOptions options,
                           std::vector<std::unique_ptr<ExecUnit>> units)
    : options_(std::move(options)), impls_(std::move(units)) {
  PLBHEC_EXPECTS(!impls_.empty());
  for (UnitId u = 0; u < impls_.size(); ++u) {
    UnitInfo info = impls_[u]->describe();
    info.id = u;
    units_.push_back(std::move(info));
  }
  detached_.assign(units_.size(), 0);
  workers_ = std::make_unique<exec::WorkerSet>(units_.size(),
                                               options_.pin_workers);
}

void ThreadEngine::detach_unit(UnitId unit) {
  std::lock_guard lock(mutex_);
  PLBHEC_EXPECTS(unit < units_.size());
  PLBHEC_EXPECTS(!detached_[unit]);
  detached_[unit] = 1;
  cv_.notify_all();
}

bool ThreadEngine::is_detached(UnitId unit) const {
  std::lock_guard lock(mutex_);
  PLBHEC_EXPECTS(unit < units_.size());
  return detached_[unit] != 0;
}

std::size_t ThreadEngine::active_unit_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (char d : detached_) n += d == 0 ? 1 : 0;
  return n;
}

RunResult ThreadEngine::run(Workload& workload, Scheduler& scheduler) {
  RunResult result;
  const std::size_t n = units_.size();
  const std::size_t total = workload.total_grains();
  PLBHEC_EXPECTS(total > 0);
  PLBHEC_EXPECTS(workload.supports_real_execution());
  obs::EventSink* const sink = options_.sink;
  scheduler.set_event_sink(sink);

  result.units = units_;
  result.unit_stats.assign(n, {});
  result.total_grains = total;

  WorkInfo work;
  work.name = workload.name();
  work.total_grains = total;
  work.bytes_per_grain = workload.bytes_per_grain();
  work.initial_block = std::max<std::size_t>(1, total / 1024);
  scheduler.start(units_, work);

  // Shared dispatch state, guarded by the engine mutex so detach_unit()
  // participates.
  std::size_t next_grain = 0;          // frontier of never-assigned grains
  std::deque<GrainRange> requeued;     // ranges returned by failed units
  std::size_t unassigned = total;      // grains awaiting (re)assignment
  std::size_t completed = 0;
  std::size_t active = 0;
  std::size_t idle_waiting = 0;
  std::size_t stuck_barriers = 0;
  std::uint64_t sequence = 0;
  bool assigned_since_barrier = true;
  bool failed = false;
  std::string error;
  const Clock::time_point t0 = Clock::now();

  // Units detached before this run never join it; the scheduler must not
  // wait on them. Snapshot under the lock so a concurrent detach_unit of
  // a joining unit lands on the in-run path instead.
  std::vector<char> joined(n, 0);
  {
    std::lock_guard lock(mutex_);
    for (UnitId u = 0; u < n; ++u) {
      joined[u] = detached_[u] ? 0 : 1;
      if (joined[u]) ++active;
    }
  }
  if (active == 0) {
    result.error = "no active units (all detached)";
    return result;
  }
  for (UnitId u = 0; u < n; ++u) {
    if (!joined[u]) scheduler.on_unit_failed(u, 0, 0.0);
  }

  // Retires `unit` from the run; requeues `lost` (empty when the unit
  // leaves gracefully at a block boundary). Caller holds the lock; each
  // worker calls this at most once, so `active` decrements exactly once
  // per departing unit even when detach_unit already set the flag.
  auto retire = [&](UnitId unit, GrainRange lost, bool is_failure) {
    if (lost.end > lost.begin) {
      requeued.push_back(lost);
      unassigned += lost.end - lost.begin;
      result.grains_requeued += lost.end - lost.begin;
    }
    detached_[unit] = 1;
    --active;
    if (is_failure) result.unit_stats[unit].failed = true;
    const double now = seconds_since(t0);
    PLBHEC_OBS_RECORD(sink, {now, obs::EventKind::kUnitFailed,
                             static_cast<std::uint32_t>(unit), 0.0, 0.0,
                             lost.end - lost.begin, 0});
    scheduler.on_unit_failed(unit, lost.end - lost.begin, now);
    if (active == 0 && completed < total && !failed) {
      failed = true;
      error = "all units detached or failed with work remaining";
    }
    cv_.notify_all();
  };

  auto worker_body = [&](UnitId unit) {
    if (!joined[unit]) return;  // retired before this run started
    ExecUnit& impl = *impls_[unit];
    if (!impl.begin_run(workload)) {
      {
        std::lock_guard lock(mutex_);
        retire(unit, {}, /*is_failure=*/true);
      }
      impl.end_run();
      return;
    }

    std::unique_lock lock(mutex_);
    while (true) {
      if (failed || completed >= total) break;
      if (detached_[unit]) {
        // Externally detached (detach_unit marks the flag; the unit
        // leaves here, at its block boundary, with nothing in flight).
        retire(unit, {}, /*is_failure=*/false);
        break;
      }

      std::size_t grains = 0;
      if (unassigned > 0) {
        grains = scheduler.next_block(unit, seconds_since(t0));
        grains = std::min(grains, unassigned);
      }

      if (grains == 0) {
        // Park until another completion or a barrier changes the state.
        ++idle_waiting;
        if (idle_waiting == active && unassigned > 0 && completed < total) {
          // Everyone idle with work left: this is the scheduler barrier.
          if (assigned_since_barrier) {
            stuck_barriers = 0;
          } else if (++stuck_barriers >= options_.max_stuck_barriers) {
            failed = true;
            error = "scheduler refused to assign work after barrier";
            --idle_waiting;
            cv_.notify_all();
            break;
          }
          assigned_since_barrier = false;
          const double now = seconds_since(t0);
          ++result.barriers;
          PLBHEC_OBS_RECORD(sink, {now, obs::EventKind::kBarrier,
                                   obs::kNoUnit, 0.0, 0.0, result.barriers,
                                   0});
          scheduler.on_barrier(now);
          --idle_waiting;
          cv_.notify_all();
          continue;  // retry next_block immediately
        }
        cv_.wait(lock);
        --idle_waiting;
        continue;
      }

      assigned_since_barrier = true;
      // Serve requeued ranges (work lost by failed units) before the
      // frontier, clamped to the front range so blocks stay contiguous.
      GrainRange r;
      if (!requeued.empty()) {
        GrainRange& front = requeued.front();
        const std::size_t take = std::min(grains, front.end - front.begin);
        r = {front.begin, front.begin + take};
        front.begin += take;
        if (front.begin == front.end) requeued.pop_front();
      } else {
        const std::size_t take = std::min(grains, total - next_grain);
        r = {next_grain, next_grain + take};
        next_grain += take;
      }
      grains = r.end - r.begin;
      unassigned -= grains;
      const double issue_time = seconds_since(t0);
      PLBHEC_OBS_RECORD(sink, {issue_time, obs::EventKind::kBlockDispatched,
                               static_cast<std::uint32_t>(unit), 0.0, 0.0,
                               grains, sequence});
      ++sequence;
      lock.unlock();

      BlockTiming timing;
      const bool ok = impl.execute(workload, r.begin, r.end, timing);

      lock.lock();
      if (!ok) {
        retire(unit, r, /*is_failure=*/true);
        break;
      }

      completed += grains;
      UnitStats& stats = result.unit_stats[unit];
      stats.transfer_seconds += timing.transfer_seconds;
      stats.exec_seconds += timing.exec_seconds;
      stats.grains += grains;
      stats.tasks += 1;
      // Serial layout by default; a pipelined unit reports a shorter
      // wall time than transfer + exec, and laying the phases end to end
      // would overrun the block's real span — clip to the wall and show
      // the kernel tail at the true finish instead.
      double t_split = issue_time + timing.transfer_seconds;
      double t_end = t_split + timing.exec_seconds;
      if (timing.wall_seconds > 0.0 &&
          timing.wall_seconds < timing.transfer_seconds + timing.exec_seconds) {
        t_end = issue_time + timing.wall_seconds;
        t_split = std::max(issue_time, t_end - timing.exec_seconds);
      }
      result.trace.add({unit, SegmentKind::kTransfer, issue_time, t_split,
                        grains});
      result.trace.add({unit, SegmentKind::kExec, t_split, t_end, grains});

      TaskObservation obs;
      obs.unit = unit;
      obs.grains = grains;
      obs.transfer_seconds = timing.transfer_seconds;
      obs.exec_seconds = timing.exec_seconds;
      obs.start_time = issue_time;
      obs.finish_time = seconds_since(t0);
      scheduler.on_complete(obs);
      cv_.notify_all();
    }
    cv_.notify_all();
    lock.unlock();
    impl.end_run();
  };

  // The persistent workers were spawned in the constructor; dispatching a
  // run is a condition-variable wakeup, so the first probe block's timing
  // contains no thread-startup cost.
  workers_->run(worker_body);

  // Publish the kernel-dispatch decisions the run exercised: one event per
  // resolved (kernel, width) slot. This is the only place the ISA choice
  // surfaces — it is observability, never protocol (a remote daemon's
  // dispatch stays its own business and is NOT in these events).
  if (sink != nullptr) {
    const double dispatch_time = seconds_since(t0);
    for (const kdisp::DispatchRecord& rec :
         kdisp::KernelRegistry::instance().resolved()) {
      const auto* name_bytes =
          reinterpret_cast<const std::uint8_t*>(rec.kernel.data());
      PLBHEC_OBS_RECORD(
          sink, {dispatch_time, obs::EventKind::kKernelDispatch, obs::kNoUnit,
                 static_cast<double>(rec.width), 0.0,
                 static_cast<std::uint64_t>(rec.isa),
                 common::fnv1a64({name_bytes, rec.kernel.size()})});
    }
  }

  result.makespan = seconds_since(t0);
  result.grains_completed = completed;
  result.ok = !failed;
  result.error = error;
  return result;
}

}  // namespace plbhec::rt
