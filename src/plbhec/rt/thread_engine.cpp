#include "plbhec/rt/thread_engine.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "plbhec/common/contracts.hpp"

namespace plbhec::rt {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Busy-stretches a measured duration to `factor` times its length.
void stretch(Clock::time_point start, double measured_s, double factor) {
  if (factor <= 1.0) return;
  const double target = measured_s * factor;
  while (std::chrono::duration<double>(Clock::now() - start).count() < target)
    std::this_thread::yield();
}

}  // namespace

ThreadEngine::ThreadEngine(ThreadEngineOptions options)
    : options_(std::move(options)) {
  PLBHEC_EXPECTS(!options_.slowdowns.empty());
  for (double s : options_.slowdowns) PLBHEC_EXPECTS(s >= 1.0);
  for (UnitId u = 0; u < options_.slowdowns.size(); ++u) {
    UnitInfo info;
    info.id = u;
    info.name = "host.cpu" + std::to_string(u);
    info.kind = ProcKind::kCpu;
    info.machine = 0;
    units_.push_back(std::move(info));
  }
  workers_ = std::make_unique<exec::WorkerSet>(units_.size(),
                                               options_.pin_workers);
}

RunResult ThreadEngine::run(Workload& workload, Scheduler& scheduler) {
  RunResult result;
  const std::size_t n = units_.size();
  const std::size_t total = workload.total_grains();
  PLBHEC_EXPECTS(total > 0);
  PLBHEC_EXPECTS(workload.supports_real_execution());

  result.units = units_;
  result.unit_stats.assign(n, {});
  result.total_grains = total;

  WorkInfo work;
  work.name = workload.name();
  work.total_grains = total;
  work.bytes_per_grain = workload.bytes_per_grain();
  work.initial_block = std::max<std::size_t>(1, total / 1024);
  scheduler.start(units_, work);

  // Shared state, guarded by `mutex`.
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t next_grain = 0;
  std::size_t completed = 0;
  std::size_t idle_waiting = 0;
  std::size_t stuck_barriers = 0;
  bool assigned_since_barrier = true;
  bool failed = false;
  std::string error;
  const Clock::time_point t0 = Clock::now();

  auto worker_body = [&](UnitId unit) {
    std::vector<unsigned char> staging;
    std::unique_lock lock(mutex);
    while (true) {
      if (failed || completed >= total) break;

      std::size_t grains = 0;
      if (next_grain < total) {
        grains = scheduler.next_block(unit, seconds_since(t0));
        grains = std::min(grains, total - next_grain);
      }

      if (grains == 0) {
        // Park until another completion or a barrier changes the state.
        ++idle_waiting;
        if (idle_waiting == n && next_grain < total && completed < total) {
          // Everyone idle with work left: this is the scheduler barrier.
          if (assigned_since_barrier) {
            stuck_barriers = 0;
          } else if (++stuck_barriers >= options_.max_stuck_barriers) {
            failed = true;
            error = "scheduler refused to assign work after barrier";
            --idle_waiting;
            cv.notify_all();
            break;
          }
          assigned_since_barrier = false;
          scheduler.on_barrier(seconds_since(t0));
          --idle_waiting;
          cv.notify_all();
          continue;  // retry next_block immediately
        }
        cv.wait(lock);
        --idle_waiting;
        continue;
      }

      assigned_since_barrier = true;
      const std::size_t begin = next_grain;
      const std::size_t end = begin + grains;
      next_grain = end;
      const double issue_time = seconds_since(t0);
      lock.unlock();

      // --- Transfer emulation (real memcpy staging) ---
      const auto bytes = static_cast<std::size_t>(
          static_cast<double>(grains) * work.bytes_per_grain);
      const Clock::time_point t_transfer = Clock::now();
      if (options_.emulate_transfer && bytes > 0) {
        staging.resize(bytes);
        // Touch every page so the copy cost is real.
        std::memset(staging.data(), 0x5a, staging.size());
      }
      const double transfer_s =
          std::chrono::duration<double>(Clock::now() - t_transfer).count();

      // --- Real kernel execution ---
      const Clock::time_point t_exec = Clock::now();
      workload.execute_cpu(begin, end);
      double exec_s = std::chrono::duration<double>(Clock::now() - t_exec)
                          .count();
      stretch(t_exec, exec_s, options_.slowdowns[unit]);
      exec_s = std::chrono::duration<double>(Clock::now() - t_exec).count();

      lock.lock();
      completed += grains;
      UnitStats& stats = result.unit_stats[unit];
      stats.transfer_seconds += transfer_s;
      stats.exec_seconds += exec_s;
      stats.grains += grains;
      stats.tasks += 1;
      result.trace.add({unit, SegmentKind::kTransfer, issue_time,
                        issue_time + transfer_s, grains});
      result.trace.add({unit, SegmentKind::kExec, issue_time + transfer_s,
                        issue_time + transfer_s + exec_s, grains});

      TaskObservation obs;
      obs.unit = unit;
      obs.grains = grains;
      obs.transfer_seconds = transfer_s;
      obs.exec_seconds = exec_s;
      obs.start_time = issue_time;
      obs.finish_time = seconds_since(t0);
      scheduler.on_complete(obs);
      cv.notify_all();
    }
    cv.notify_all();
  };

  // The persistent workers were spawned in the constructor; dispatching a
  // run is a condition-variable wakeup, so the first probe block's timing
  // contains no thread-startup cost.
  workers_->run(worker_body);

  result.makespan = seconds_since(t0);
  result.ok = !failed;
  result.error = error;
  return result;
}

}  // namespace plbhec::rt
