#include "plbhec/rt/profile_db.hpp"

#include <atomic>

#include "plbhec/common/contracts.hpp"
#include "plbhec/exec/thread_pool.hpp"

namespace plbhec::rt {
namespace {

/// Cached fits per (unit, SelectionOptions); selection sweeps use one
/// options value, so a handful of slots covers ablation-style callers too.
constexpr std::size_t kCacheEntriesPerUnit = 4;

void bump(std::size_t& counter, std::size_t delta = 1) {
  std::atomic_ref<std::size_t>(counter).fetch_add(delta,
                                                  std::memory_order_relaxed);
}

std::size_t load(const std::size_t& counter) {
  return std::atomic_ref<const std::size_t>(counter).load(
      std::memory_order_relaxed);
}

}  // namespace

ProfileDb::ProfileDb(std::size_t units, std::size_t total_grains) {
  reset(units, total_grains);
}

void ProfileDb::reset(std::size_t units, std::size_t total_grains) {
  PLBHEC_EXPECTS(total_grains > 0);
  exec_.assign(units, {});
  transfer_.assign(units, {});
  cache_.assign(units, {});
  total_grains_ = total_grains;
  clear_fit_cache();
}

void ProfileDb::clear_fit_cache() {
  for (auto& c : cache_) {
    c.entries.clear();
    ++c.version;  // stale CacheEntry copies elsewhere can never match again
  }
  counters_ = {};
}

double ProfileDb::grains_to_fraction(std::size_t grains) const {
  return static_cast<double>(grains) / static_cast<double>(total_grains_);
}

void ProfileDb::record(const TaskObservation& obs) {
  PLBHEC_EXPECTS(obs.unit < exec_.size());
  if (obs.grains == 0) return;
  const double x = grains_to_fraction(obs.grains);
  exec_[obs.unit].add(x, obs.exec_seconds);
  transfer_[obs.unit].add(x, obs.transfer_seconds);
  ++cache_[obs.unit].version;
}

void ProfileDb::seed(UnitId u, const WarmProfile& warm) {
  PLBHEC_EXPECTS(u < exec_.size());
  PLBHEC_EXPECTS(exec_[u].empty() && transfer_[u].empty());
  if (!warm.usable()) return;
  const double scale = warm.total_grains / static_cast<double>(total_grains_);
  if (warm.has_moments && scale == 1.0) {
    exec_[u].restore(warm.exec, warm.exec_moments);
    transfer_[u].restore(warm.transfer, warm.transfer_moments);
  } else {
    for (const fit::Sample& s : warm.exec) {
      const double x = s.x * scale;
      if (x > 0.0 && x <= 1.0) exec_[u].add(x, s.time);
    }
    for (const fit::Sample& s : warm.transfer) {
      const double x = s.x * scale;
      if (x > 0.0 && x <= 1.0) transfer_[u].add(x, s.time);
    }
  }
  ++cache_[u].version;
}

void ProfileDb::clear_unit(UnitId u) {
  PLBHEC_EXPECTS(u < exec_.size());
  exec_[u].clear();
  transfer_[u].clear();
  ++cache_[u].version;
}

const fit::SampleSet& ProfileDb::exec_samples(UnitId u) const {
  PLBHEC_EXPECTS(u < exec_.size());
  return exec_[u];
}

const fit::SampleSet& ProfileDb::transfer_samples(UnitId u) const {
  PLBHEC_EXPECTS(u < transfer_.size());
  return transfer_[u];
}

std::uint64_t ProfileDb::version(UnitId u) const {
  PLBHEC_EXPECTS(u < cache_.size());
  return cache_[u].version;
}

ProfileDb::CacheEntry& ProfileDb::exec_entry(
    UnitId u, const fit::SelectionOptions& options) const {
  UnitCache& cache = cache_[u];
  for (auto& entry : cache.entries) {
    if (entry.version == cache.version && entry.options == options) {
      bump(counters_.fits_cached);
      return entry;
    }
  }

  fit::FitCounters counters;
  fit::FitResult fitted = fit::select_model(exec_[u], options, &counters);
  bump(counters_.fits_computed);
  bump(counters_.gram_solves, counters.gram_solves);
  bump(counters_.qr_solves, counters.qr_solves);
  bump(counters_.qr_fallbacks, counters.qr_fallbacks);

  // Reuse a slot holding a stale fit for the same options, else append,
  // evicting the oldest slot once the per-unit cap is reached.
  CacheEntry* slot = nullptr;
  for (auto& entry : cache.entries)
    if (entry.options == options) slot = &entry;
  if (!slot) {
    if (cache.entries.size() >= kCacheEntriesPerUnit)
      cache.entries.erase(cache.entries.begin());
    slot = &cache.entries.emplace_back();
  }
  slot->options = options;
  slot->version = cache.version;
  slot->exec = std::move(fitted);
  slot->has_transfer = false;
  return *slot;
}

fit::FitResult ProfileDb::exec_fit(UnitId u,
                                   const fit::SelectionOptions& options) const {
  PLBHEC_EXPECTS(u < exec_.size());
  return exec_entry(u, options).exec;
}

fit::PerfModel ProfileDb::fit_unit(UnitId u,
                                   const fit::SelectionOptions& options) const {
  PLBHEC_EXPECTS(u < exec_.size());
  CacheEntry& entry = exec_entry(u, options);
  if (!entry.has_transfer || entry.transfer_version != cache_[u].version) {
    entry.transfer = fit::fit_transfer(transfer_[u]);
    entry.transfer_version = cache_[u].version;
    entry.has_transfer = true;
  }
  fit::PerfModel model;
  model.exec = entry.exec.model;
  model.transfer = entry.transfer;
  return model;
}

std::vector<fit::PerfModel> ProfileDb::fit_all(
    const fit::SelectionOptions& options) const {
  std::vector<fit::PerfModel> models(exec_.size());
  if (models.empty()) return models;
  // One chunk per unit; distinct units touch distinct cache slots, so the
  // fan-out needs no locking beyond the atomic counters.
  exec::ThreadPool::global().parallel_for(
      0, exec_.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t u = lo; u < hi; ++u) models[u] = fit_unit(u, options);
      });
  return models;
}

bool ProfileDb::all_acceptable(const fit::SelectionOptions& options) const {
  for (UnitId u = 0; u < exec_.size(); ++u)
    if (!exec_fit(u, options).acceptable) return false;
  return true;
}

FitStats ProfileDb::fit_stats() const {
  FitStats s;
  s.fits_computed = load(counters_.fits_computed);
  s.fits_cached = load(counters_.fits_cached);
  s.gram_solves = load(counters_.gram_solves);
  s.qr_solves = load(counters_.qr_solves);
  s.qr_fallbacks = load(counters_.qr_fallbacks);
  return s;
}

}  // namespace plbhec::rt
