#include "plbhec/rt/profile_db.hpp"

#include "plbhec/common/contracts.hpp"

namespace plbhec::rt {

ProfileDb::ProfileDb(std::size_t units, std::size_t total_grains) {
  reset(units, total_grains);
}

void ProfileDb::reset(std::size_t units, std::size_t total_grains) {
  PLBHEC_EXPECTS(total_grains > 0);
  exec_.assign(units, {});
  transfer_.assign(units, {});
  total_grains_ = total_grains;
}

double ProfileDb::grains_to_fraction(std::size_t grains) const {
  return static_cast<double>(grains) / static_cast<double>(total_grains_);
}

void ProfileDb::record(const TaskObservation& obs) {
  PLBHEC_EXPECTS(obs.unit < exec_.size());
  if (obs.grains == 0) return;
  const double x = grains_to_fraction(obs.grains);
  exec_[obs.unit].add(x, obs.exec_seconds);
  transfer_[obs.unit].add(x, obs.transfer_seconds);
}

const fit::SampleSet& ProfileDb::exec_samples(UnitId u) const {
  PLBHEC_EXPECTS(u < exec_.size());
  return exec_[u];
}

const fit::SampleSet& ProfileDb::transfer_samples(UnitId u) const {
  PLBHEC_EXPECTS(u < transfer_.size());
  return transfer_[u];
}

fit::PerfModel ProfileDb::fit_unit(UnitId u,
                                   const fit::SelectionOptions& options) const {
  PLBHEC_EXPECTS(u < exec_.size());
  fit::PerfModel model;
  const fit::FitResult exec_fit = fit::select_model(exec_[u], options);
  model.exec = exec_fit.model;
  model.transfer = fit::fit_transfer(transfer_[u]);
  return model;
}

std::vector<fit::PerfModel> ProfileDb::fit_all(
    const fit::SelectionOptions& options) const {
  std::vector<fit::PerfModel> models;
  models.reserve(exec_.size());
  for (UnitId u = 0; u < exec_.size(); ++u)
    models.push_back(fit_unit(u, options));
  return models;
}

bool ProfileDb::all_acceptable(const fit::SelectionOptions& options) const {
  for (const auto& samples : exec_) {
    const fit::FitResult f = fit::select_model(samples, options);
    if (!f.acceptable) return false;
  }
  return true;
}

}  // namespace plbhec::rt
