#include "plbhec/rt/scheduler.hpp"

namespace plbhec::rt {

void Scheduler::on_barrier(double) {}
void Scheduler::on_unit_failed(UnitId, std::size_t, double) {}

}  // namespace plbhec::rt
