#pragma once
/// \file thread_engine.hpp
/// Real-execution engine: each processing unit is an ExecUnit driven by a
/// persistent host thread — in-process kernel execution (LocalExecUnit) or
/// a worker daemon across a socket (net::RemoteUnit). The identical
/// Scheduler implementations run unmodified under this engine and the
/// discrete-event SimEngine — the scheduler only ever sees (block size,
/// transfer time, execution time) observations.
///
/// Heterogeneity on a homogeneous host is emulated with per-unit slowdown
/// factors (a unit with slowdown 3 spins until the kernel time has been
/// stretched 3x), which yields genuinely different performance curves for
/// the balancer to learn.
///
/// Each unit is hosted on a persistent, pinned worker thread created when
/// the engine is constructed and reused across run() calls, so the probe
/// blocks of the modeling phase never include OS thread-creation latency
/// in the F_p(x) samples the least-squares fit learns from.
///
/// The unit count is NOT fixed for the engine's lifetime: detach_unit()
/// (or an ExecUnit reporting failure) removes a unit at a block boundary.
/// The failed unit's in-flight grain range is requeued and reassigned to
/// the survivors, so no grain is ever lost — the zero-lost-grains
/// guarantee the distributed transport's heartbeat demotion relies on.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "plbhec/exec/worker_set.hpp"
#include "plbhec/rt/engine.hpp"  // RunResult, UnitStats, EngineOptions
#include "plbhec/rt/exec_unit.hpp"

namespace plbhec::rt {

struct ThreadEngineOptions {
  /// Per-unit slowdown factors (>= 1.0). Size defines the unit count when
  /// no explicit ExecUnit set is supplied; ignored otherwise.
  std::vector<double> slowdowns = {1.0, 2.0};
  /// Emulate input staging with a real memcpy of the block's bytes
  /// (local units only).
  bool emulate_transfer = true;
  /// Abort when this many consecutive barriers make no progress.
  std::size_t max_stuck_barriers = 3;
  /// Best-effort pin each unit's worker to a core (Linux only).
  bool pin_workers = true;
  /// Observability sink for dispatch/barrier/failure events; also handed
  /// to the scheduler before start(). Null = record nothing. Not owned.
  obs::EventSink* sink = nullptr;
};

class ThreadEngine {
 public:
  /// Local-only engine: one LocalExecUnit per slowdown entry, named
  /// "host.cpu<i>".
  explicit ThreadEngine(ThreadEngineOptions options = {});

  /// Engine over an explicit unit set (local and/or remote); ids are
  /// assigned in vector order. `options.slowdowns` is ignored.
  ThreadEngine(ThreadEngineOptions options,
               std::vector<std::unique_ptr<ExecUnit>> units);

  /// Runs the workload on the persistent unit workers; requires
  /// workload.supports_real_execution() and at least one attached unit.
  [[nodiscard]] RunResult run(Workload& workload, Scheduler& scheduler);

  [[nodiscard]] const std::vector<UnitInfo>& units() const { return units_; }

  /// Permanently removes `unit` from service. Thread-safe and callable
  /// mid-run (heartbeat monitors demote dead remote workers this way):
  /// the unit leaves at its next block boundary, any in-flight range is
  /// requeued for the survivors, and the scheduler is told through
  /// on_unit_failed. Detaching an out-of-range or already-detached unit
  /// is a contract violation (aborts).
  void detach_unit(UnitId unit);

  /// True once `unit` has been detached (explicitly or by failure).
  [[nodiscard]] bool is_detached(UnitId unit) const;

  /// Units still in service.
  [[nodiscard]] std::size_t active_unit_count() const;

  /// Lifetime count of OS threads backing the units — stays at the unit
  /// count however many runs execute (thread startup is paid once, in the
  /// constructor, never inside a probe).
  [[nodiscard]] std::size_t worker_threads_created() const {
    return workers_->threads_created();
  }

 private:
  ThreadEngineOptions options_;
  std::vector<std::unique_ptr<ExecUnit>> impls_;
  std::vector<UnitInfo> units_;
  std::unique_ptr<exec::WorkerSet> workers_;

  /// Guards detached_ and, during run(), the shared dispatch state; the
  /// run loop's condition variable lives here so detach_unit() can wake
  /// parked workers.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<char> detached_;
};

}  // namespace plbhec::rt
