#pragma once
/// \file thread_engine.hpp
/// Real-execution engine: each processing unit is a host thread running the
/// workload's actual CPU kernel, timed with the wall clock. The identical
/// Scheduler implementations run unmodified under this engine and the
/// discrete-event SimEngine — the scheduler only ever sees (block size,
/// transfer time, execution time) observations.
///
/// Heterogeneity on a homogeneous host is emulated with per-unit slowdown
/// factors (a unit with slowdown 3 spins until the kernel time has been
/// stretched 3x), which yields genuinely different performance curves for
/// the balancer to learn.
///
/// Each unit is hosted on a persistent, pinned worker thread created when
/// the engine is constructed and reused across run() calls, so the probe
/// blocks of the modeling phase never include OS thread-creation latency
/// in the F_p(x) samples the least-squares fit learns from.

#include <memory>
#include <vector>

#include "plbhec/exec/worker_set.hpp"
#include "plbhec/rt/engine.hpp"  // RunResult, UnitStats

namespace plbhec::rt {

struct ThreadEngineOptions {
  /// Per-unit slowdown factors (>= 1.0). Size defines the unit count.
  std::vector<double> slowdowns = {1.0, 2.0};
  /// Emulate input staging with a real memcpy of the block's bytes.
  bool emulate_transfer = true;
  /// Abort when this many consecutive barriers make no progress.
  std::size_t max_stuck_barriers = 3;
  /// Best-effort pin each unit's worker to a core (Linux only).
  bool pin_workers = true;
};

class ThreadEngine {
 public:
  explicit ThreadEngine(ThreadEngineOptions options = {});

  /// Runs the workload on the persistent unit workers; requires
  /// workload.supports_real_execution().
  [[nodiscard]] RunResult run(Workload& workload, Scheduler& scheduler);

  [[nodiscard]] const std::vector<UnitInfo>& units() const { return units_; }

  /// Lifetime count of OS threads backing the units — stays at the unit
  /// count however many runs execute (thread startup is paid once, in the
  /// constructor, never inside a probe).
  [[nodiscard]] std::size_t worker_threads_created() const {
    return workers_->threads_created();
  }

 private:
  ThreadEngineOptions options_;
  std::vector<UnitInfo> units_;
  std::unique_ptr<exec::WorkerSet> workers_;
};

}  // namespace plbhec::rt
