#pragma once
/// \file thread_engine.hpp
/// Real-execution engine: each processing unit is a host thread running the
/// workload's actual CPU kernel, timed with the wall clock. The identical
/// Scheduler implementations run unmodified under this engine and the
/// discrete-event SimEngine — the scheduler only ever sees (block size,
/// transfer time, execution time) observations.
///
/// Heterogeneity on a homogeneous host is emulated with per-unit slowdown
/// factors (a unit with slowdown 3 spins until the kernel time has been
/// stretched 3x), which yields genuinely different performance curves for
/// the balancer to learn.

#include <vector>

#include "plbhec/rt/engine.hpp"  // RunResult, UnitStats

namespace plbhec::rt {

struct ThreadEngineOptions {
  /// Per-unit slowdown factors (>= 1.0). Size defines the unit count.
  std::vector<double> slowdowns = {1.0, 2.0};
  /// Emulate input staging with a real memcpy of the block's bytes.
  bool emulate_transfer = true;
  /// Abort when this many consecutive barriers make no progress.
  std::size_t max_stuck_barriers = 3;
};

class ThreadEngine {
 public:
  explicit ThreadEngine(ThreadEngineOptions options = {});

  /// Runs the workload with real threads; requires
  /// workload.supports_real_execution().
  [[nodiscard]] RunResult run(Workload& workload, Scheduler& scheduler);

  [[nodiscard]] const std::vector<UnitInfo>& units() const { return units_; }

 private:
  ThreadEngineOptions options_;
  std::vector<UnitInfo> units_;
};

}  // namespace plbhec::rt
