#pragma once
/// \file workload.hpp
/// Abstraction of a data-parallel application in the codelet style of
/// StarPU: one logical kernel with per-architecture implementations. The
/// simulated executor times blocks with the device cost models; the
/// threaded executor runs the real CPU implementation.

#include <cstddef>
#include <cstdint>
#include <string>

#include "plbhec/sim/workload_profile.hpp"

namespace plbhec::rt {

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of indivisible grains (matrix lines / genes / options).
  [[nodiscard]] virtual std::size_t total_grains() const = 0;

  /// Input bytes that must be shipped to a unit per grain.
  [[nodiscard]] virtual double bytes_per_grain() const = 0;

  /// Cost-model parameters for the simulated devices.
  [[nodiscard]] virtual sim::WorkloadProfile profile() const = 0;

  /// Real host-CPU implementation, processing grains [begin, end).
  /// Workloads that only support simulation may leave this unimplemented.
  virtual void execute_cpu(std::size_t begin, std::size_t end);

  [[nodiscard]] virtual bool supports_real_execution() const { return false; }

  // ---- Remote execution (net transport) --------------------------------
  //
  // A remote worker daemon reconstructs the workload from remote_spec()
  // (see apps::make_workload), executes blocks on its own instance, and
  // ships the block results back; the coordinator applies them with
  // read_results() so its instance ends bit-identical to an in-process
  // run. Construction from the spec must be deterministic (seeded), or the
  // two sides would compute on different data.

  /// Construction recipe for a worker daemon, e.g. "matmul:n=256".
  /// Empty = this workload cannot be executed remotely.
  [[nodiscard]] virtual std::string remote_spec() const { return {}; }

  /// Serialized size of the results of grains [begin, end). May be 0 for
  /// a block whose results need not be shipped (side-effect-free work).
  [[nodiscard]] virtual std::size_t result_bytes(std::size_t begin,
                                                 std::size_t end) const;

  /// Serializes the results of grains [begin, end) — exactly
  /// result_bytes(begin, end) bytes — after execute_cpu ran on them.
  virtual void write_results(std::size_t begin, std::size_t end,
                             std::uint8_t* out) const;

  /// Applies results of grains [begin, end) computed by a remote unit.
  virtual void read_results(std::size_t begin, std::size_t end,
                            const std::uint8_t* in);

  [[nodiscard]] bool supports_remote_execution() const {
    return !remote_spec().empty();
  }
};

}  // namespace plbhec::rt
