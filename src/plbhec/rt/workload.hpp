#pragma once
/// \file workload.hpp
/// Abstraction of a data-parallel application in the codelet style of
/// StarPU: one logical kernel with per-architecture implementations. The
/// simulated executor times blocks with the device cost models; the
/// threaded executor runs the real CPU implementation.

#include <cstddef>
#include <string>

#include "plbhec/sim/workload_profile.hpp"

namespace plbhec::rt {

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of indivisible grains (matrix lines / genes / options).
  [[nodiscard]] virtual std::size_t total_grains() const = 0;

  /// Input bytes that must be shipped to a unit per grain.
  [[nodiscard]] virtual double bytes_per_grain() const = 0;

  /// Cost-model parameters for the simulated devices.
  [[nodiscard]] virtual sim::WorkloadProfile profile() const = 0;

  /// Real host-CPU implementation, processing grains [begin, end).
  /// Workloads that only support simulation may leave this unimplemented.
  virtual void execute_cpu(std::size_t begin, std::size_t end);

  [[nodiscard]] virtual bool supports_real_execution() const { return false; }
};

}  // namespace plbhec::rt
