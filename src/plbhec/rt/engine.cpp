#include "plbhec/rt/engine.hpp"

#include <algorithm>
#include <queue>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"

namespace plbhec::rt {
namespace {

enum class EventKind { kCompletion, kFailure };

struct Event {
  double time = 0.0;
  UnitId unit = 0;
  EventKind kind = EventKind::kCompletion;
  std::uint64_t sequence = 0;  ///< tie-break for deterministic ordering
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }
};

struct InFlight {
  std::size_t grains = 0;
  double start = 0.0;
  double transfer_seconds = 0.0;
  double exec_seconds = 0.0;
};

}  // namespace

SimEngine::SimEngine(const sim::SimCluster& cluster, EngineOptions options)
    : cluster_(cluster), options_(options) {
  units_.reserve(cluster.size());
  for (UnitId u = 0; u < cluster.size(); ++u) {
    const sim::SimUnit& su = cluster.unit(u);
    UnitInfo info;
    info.id = u;
    info.name = su.name;
    info.kind = su.device->kind() == sim::DeviceKind::kGpu ? ProcKind::kGpu
                                                           : ProcKind::kCpu;
    info.machine = su.machine_index;
    units_.push_back(std::move(info));
  }
}

RunResult SimEngine::run(Workload& workload, Scheduler& scheduler) {
  RunResult result;
  const std::size_t n = cluster_.size();
  const std::size_t total = workload.total_grains();
  PLBHEC_EXPECTS(total > 0);

  result.units = units_;
  result.unit_stats.assign(n, {});
  result.total_grains = total;

  WorkInfo work;
  work.name = workload.name();
  work.total_grains = total;
  work.bytes_per_grain = workload.bytes_per_grain();
  // Default probe/piece size hint; the paper tunes initialBlockSize so the
  // modeling phase costs ~10% of the run, which total/512 approximates for
  // the evaluated applications. Schedulers and benches may override.
  work.initial_block = std::max<std::size_t>(1, total / 512);
  obs::EventSink* const sink = options_.sink;
  scheduler.set_event_sink(sink);
  scheduler.start(units_, work);

  const sim::WorkloadProfile profile = workload.profile();

  Rng master_rng(options_.seed);
  std::vector<Rng> unit_rng;
  unit_rng.reserve(n);
  for (UnitId u = 0; u < n; ++u) unit_rng.push_back(master_rng.fork(u + 1));

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::vector<InFlight> in_flight(n);
  std::vector<bool> busy(n, false);
  std::vector<bool> dead(n, false);
  std::uint64_t sequence = 0;

  std::size_t next_grain = 0;      // next unassigned grain index
  std::size_t completed = 0;       // grains finished
  std::size_t lost_grains = 0;     // grains returned to the pool by failures
  double now = 0.0;

  auto unassigned = [&] { return (total - next_grain) + lost_grains; };

  // Tries to hand a block to `unit`; returns true if a task was issued.
  auto try_assign = [&](UnitId unit) -> bool {
    if (busy[unit] || dead[unit]) return false;
    const sim::SimUnit& su = cluster_.unit(unit);
    if (su.failed_at(now)) {
      dead[unit] = true;
      result.unit_stats[unit].failed = true;
      PLBHEC_OBS_RECORD(sink, {now, obs::EventKind::kUnitFailed,
                               static_cast<std::uint32_t>(unit), 0.0, 0.0, 0,
                               0});
      scheduler.on_unit_failed(unit, 0, now);
      return false;
    }
    if (unassigned() == 0) return false;

    std::size_t grains = scheduler.next_block(unit, now);
    grains = std::min(grains, unassigned());
    if (grains == 0) return false;

    // Take lost grains back first (keeps the pool exact; the actual grain
    // *ranges* are irrelevant to the simulated executor).
    const std::size_t from_lost = std::min(grains, lost_grains);
    lost_grains -= from_lost;
    next_grain += grains - from_lost;

    const double bytes = static_cast<double>(grains) * work.bytes_per_grain;
    const double transfer_s = options_.noise.perturb_transfer(
        su.link_at(now).transfer_seconds(bytes), unit_rng[unit]);
    const double speed = su.speed_factor(now);
    PLBHEC_ASSERT(speed > 0.0);
    // The speed factor goes through the device model, which applies it to
    // the compute/overhead terms only — a throttled unit keeps its memory
    // bandwidth, so bandwidth-bound families (spmv, stencil) are scaled
    // consistently instead of dividing the whole roofline time.
    const double exec_s = options_.noise.perturb_exec(
        su.device->execution_seconds(profile, static_cast<double>(grains),
                                     speed),
        unit_rng[unit]);

    InFlight task;
    task.grains = grains;
    task.start = now;
    task.transfer_seconds = transfer_s;
    task.exec_seconds = exec_s;
    in_flight[unit] = task;
    busy[unit] = true;

    PLBHEC_OBS_RECORD(sink, {now, obs::EventKind::kBlockDispatched,
                             static_cast<std::uint32_t>(unit), 0.0, 0.0,
                             grains, sequence});

    const double finish = now + transfer_s + exec_s;
    const auto failure = su.failure_time();
    if (failure && *failure < finish && *failure >= now) {
      events.push({*failure, unit, EventKind::kFailure, sequence++});
    } else {
      events.push({finish, unit, EventKind::kCompletion, sequence++});
    }
    return true;
  };

  auto assignment_round = [&]() -> std::size_t {
    std::size_t assigned = 0;
    for (UnitId u = 0; u < n; ++u)
      if (try_assign(u)) ++assigned;
    return assigned;
  };

  assignment_round();

  std::size_t processed_events = 0;
  while (completed < total) {
    if (events.empty()) {
      // All units idle with work remaining: the scheduler's barrier.
      if (unassigned() == 0) {
        result.error = "engine stuck: no in-flight work but grains missing";
        return result;
      }
      if (std::all_of(dead.begin(), dead.end(), [](bool d) { return d; })) {
        result.error = "all processing units failed before completion";
        return result;
      }
      ++result.barriers;
      PLBHEC_OBS_RECORD(sink, {now, obs::EventKind::kBarrier, obs::kNoUnit,
                               0.0, 0.0, result.barriers, 0});
      scheduler.on_barrier(now);
      if (assignment_round() == 0) {
        result.error = "scheduler refused to assign work after barrier";
        return result;
      }
      continue;
    }

    const Event ev = events.top();
    events.pop();
    if (++processed_events > options_.max_events) {
      result.error = "event watchdog tripped (runaway scheduling loop)";
      return result;
    }
    now = ev.time;
    if (now > options_.max_sim_time) {
      result.error = "simulated-time watchdog tripped";
      return result;
    }

    const InFlight task = in_flight[ev.unit];
    busy[ev.unit] = false;

    if (ev.kind == EventKind::kFailure) {
      dead[ev.unit] = true;
      result.unit_stats[ev.unit].failed = true;
      lost_grains += task.grains;  // work lost with the unit
      result.grains_requeued += task.grains;
      PLBHEC_OBS_RECORD(sink, {now, obs::EventKind::kUnitFailed,
                               static_cast<std::uint32_t>(ev.unit), 0.0, 0.0,
                               task.grains, 0});
      scheduler.on_unit_failed(ev.unit, task.grains, now);
      assignment_round();
      continue;
    }

    // Completion: account, trace, inform the scheduler.
    completed += task.grains;
    UnitStats& stats = result.unit_stats[ev.unit];
    stats.transfer_seconds += task.transfer_seconds;
    stats.exec_seconds += task.exec_seconds;
    stats.grains += task.grains;
    stats.tasks += 1;

    if (options_.record_trace) {
      result.trace.add({ev.unit, SegmentKind::kTransfer, task.start,
                        task.start + task.transfer_seconds, task.grains});
      result.trace.add({ev.unit, SegmentKind::kExec,
                        task.start + task.transfer_seconds,
                        task.start + task.transfer_seconds + task.exec_seconds,
                        task.grains});
    }

    TaskObservation obs;
    obs.unit = ev.unit;
    obs.grains = task.grains;
    obs.transfer_seconds = task.transfer_seconds;
    obs.exec_seconds = task.exec_seconds;
    obs.start_time = task.start;
    obs.finish_time = now;
    scheduler.on_complete(obs);

    assignment_round();
  }

  result.makespan = now;
  result.grains_completed = completed;
  result.ok = true;
  return result;
}

}  // namespace plbhec::rt
