#pragma once
/// \file scheduler.hpp
/// The scheduling-policy plug-in interface, mirroring the surface StarPU
/// offers its pluggable schedulers: the engine asks the policy for the next
/// block size of an idle unit and reports every completion.
///
/// Barrier protocol (used by PLB-HeC's rebalancing and Acosta's iteration
/// synchronization): a scheduler that wants to synchronize simply returns 0
/// from next_block() for units it wants parked. When every unit has gone
/// idle and work remains, the engine invokes on_barrier() and then resumes
/// asking for blocks.

#include <string>

#include "plbhec/rt/types.hpp"

namespace plbhec::obs {
class EventSink;
}

namespace plbhec::rt {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Wires the observability sink the scheduler records its decisions
  /// into (may be null = record nothing). The engine calls this before
  /// start() with the sink from its EngineOptions.
  void set_event_sink(obs::EventSink* sink) { sink_ = sink; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before execution starts.
  virtual void start(const std::vector<UnitInfo>& units,
                     const WorkInfo& work) = 0;

  /// Returns the number of grains to hand to `unit` now, or 0 to leave the
  /// unit idle until the scheduler state changes. The engine clamps the
  /// request to the remaining unassigned grains.
  [[nodiscard]] virtual std::size_t next_block(UnitId unit, double now) = 0;

  /// Completion callback with the profiled times.
  virtual void on_complete(const TaskObservation& obs) = 0;

  /// Called when all units are idle but unassigned work remains (the
  /// barrier the scheduler constructed by returning 0 has been reached).
  virtual void on_barrier(double now);

  /// Called when a unit fails permanently. `lost_grains` is the size of
  /// its in-flight task, which the engine has returned to the pool —
  /// schedulers that track issued work must credit it back. Default: no-op
  /// (schedulers that never see failures need no handling).
  virtual void on_unit_failed(UnitId unit, std::size_t lost_grains,
                              double now);

 protected:
  obs::EventSink* sink_ = nullptr;  ///< decision-event sink; may be null
};

}  // namespace plbhec::rt
