#pragma once
/// \file profile_db.hpp
/// Per-unit profiling database: accumulates (block fraction, time) samples
/// for execution and transfer, and fits the paper's performance models on
/// demand. Shared by PLB-HeC and HDSS.

#include <vector>

#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/samples.hpp"
#include "plbhec/rt/types.hpp"

namespace plbhec::rt {

class ProfileDb {
 public:
  ProfileDb() = default;
  ProfileDb(std::size_t units, std::size_t total_grains);

  void reset(std::size_t units, std::size_t total_grains);

  /// Records a completed task's profile.
  void record(const TaskObservation& obs);

  [[nodiscard]] std::size_t units() const { return exec_.size(); }
  [[nodiscard]] const fit::SampleSet& exec_samples(UnitId u) const;
  [[nodiscard]] const fit::SampleSet& transfer_samples(UnitId u) const;

  /// Fits F_p and G_p for unit `u` with the given selection options.
  [[nodiscard]] fit::PerfModel fit_unit(
      UnitId u, const fit::SelectionOptions& options = {}) const;

  /// Fits every unit; returns one PerfModel per unit (invalid models for
  /// units with no samples).
  [[nodiscard]] std::vector<fit::PerfModel> fit_all(
      const fit::SelectionOptions& options = {}) const;

  /// True when every unit's latest execution fit reaches the R^2 threshold.
  [[nodiscard]] bool all_acceptable(
      const fit::SelectionOptions& options = {}) const;

  [[nodiscard]] double grains_to_fraction(std::size_t grains) const;

 private:
  std::vector<fit::SampleSet> exec_;
  std::vector<fit::SampleSet> transfer_;
  std::size_t total_grains_ = 1;
};

}  // namespace plbhec::rt
