#pragma once
/// \file profile_db.hpp
/// Per-unit profiling database: accumulates (block fraction, time) samples
/// for execution and transfer, and fits the paper's performance models on
/// demand. Shared by PLB-HeC and HDSS.
///
/// Fitting pipeline (PR 2): every recorded sample bumps a per-unit version
/// counter, and fit results are cached keyed on (version, SelectionOptions)
/// — so the acceptance sweep in `maybe_finish_modeling` and the
/// immediately following `fit_and_select` share one fit per unit instead of
/// computing three, and units that received no new samples between two
/// selections are never refit. `fit_all` fans the per-unit model selection
/// out across the process-wide work-stealing pool.

#include <cstdint>
#include <vector>

#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/samples.hpp"
#include "plbhec/rt/types.hpp"

namespace plbhec::rt {

/// Cross-run warm-start profile for one processing unit, loaded from the
/// service layer's ProfileStore: persisted (fraction, time) samples whose
/// x-values are relative to a *previous* run's grain total, plus the
/// acceptance R^2 recorded with them. When `total_grains` matches the new
/// run's total, the moment snapshots are restored bit-exactly (the fit is
/// identical to the run that persisted them); otherwise the samples are
/// replayed with rescaled fractions.
struct WarmProfile {
  std::vector<fit::Sample> exec;      ///< x relative to `total_grains`
  std::vector<fit::Sample> transfer;
  double total_grains = 0.0;  ///< grain denominator of the sample x-values
  double stored_r2 = 0.0;     ///< exec-fit R^2 the store recorded
  /// Staleness of the stored entry, in store writes: how many profiles the
  /// store has persisted (across all keys) since this one was last
  /// refreshed. 0 = just written (or an in-run profile). The scheduler's
  /// warm-start validation bound tightens with this.
  std::uint64_t age = 0;
  fit::MomentSnapshot exec_moments;
  fit::MomentSnapshot transfer_moments;
  bool has_moments = false;

  [[nodiscard]] bool usable() const {
    return !exec.empty() && total_grains > 0.0;
  }
};

/// Aggregate fit-pipeline statistics: cache effectiveness and which
/// numerical path the subset solves took.
struct FitStats {
  std::size_t fits_computed = 0;  ///< exec-curve model selections solved
  std::size_t fits_cached = 0;    ///< selections served from the cache
  std::size_t gram_solves = 0;    ///< subset fits via cached moments
  std::size_t qr_solves = 0;      ///< subset fits via design-matrix QR
  std::size_t qr_fallbacks = 0;   ///< Gram-path conditioning bailouts
};

class ProfileDb {
 public:
  ProfileDb() = default;
  ProfileDb(std::size_t units, std::size_t total_grains);

  void reset(std::size_t units, std::size_t total_grains);

  /// Records a completed task's profile (bumps the unit's sample version,
  /// invalidating its cached fits).
  void record(const TaskObservation& obs);

  /// Seeds a freshly reset unit with a persisted warm-start profile. With
  /// matching grain totals the stored moments are restored bit-exactly;
  /// otherwise samples are replayed with x rescaled to this run's total
  /// (fractions outside (0, 1] are dropped). Bumps the unit's version.
  void seed(UnitId u, const WarmProfile& warm);

  /// Drops every sample of one unit (warm-start validation failure path);
  /// bumps the unit's version so cached fits cannot be served.
  void clear_unit(UnitId u);

  [[nodiscard]] std::size_t units() const { return exec_.size(); }
  [[nodiscard]] const fit::SampleSet& exec_samples(UnitId u) const;
  [[nodiscard]] const fit::SampleSet& transfer_samples(UnitId u) const;

  /// Monotonic per-unit sample version; advanced by every recorded sample
  /// (zero-grain observations do not change the samples and do not bump).
  [[nodiscard]] std::uint64_t version(UnitId u) const;

  /// Execution-curve model selection for unit `u`, served from the fit
  /// cache when the unit's samples have not changed since the last call
  /// with equal options.
  [[nodiscard]] fit::FitResult exec_fit(
      UnitId u, const fit::SelectionOptions& options = {}) const;

  /// Fits F_p and G_p for unit `u` with the given selection options.
  [[nodiscard]] fit::PerfModel fit_unit(
      UnitId u, const fit::SelectionOptions& options = {}) const;

  /// Fits every unit in parallel on the global thread pool; returns one
  /// PerfModel per unit (invalid models for units with no samples).
  [[nodiscard]] std::vector<fit::PerfModel> fit_all(
      const fit::SelectionOptions& options = {}) const;

  /// True when every unit's latest execution fit reaches the R^2 threshold.
  [[nodiscard]] bool all_acceptable(
      const fit::SelectionOptions& options = {}) const;

  [[nodiscard]] double grains_to_fraction(std::size_t grains) const;

  /// Snapshot of the cache/solver counters accumulated since reset().
  [[nodiscard]] FitStats fit_stats() const;

  /// Drops every cached fit and zeroes the counters without touching the
  /// samples (benchmark support: forces honest refits).
  void clear_fit_cache();

 private:
  struct CacheEntry {
    fit::SelectionOptions options;
    std::uint64_t version = 0;
    fit::FitResult exec;
    fit::TransferModel transfer;
    std::uint64_t transfer_version = 0;
    bool has_transfer = false;
  };
  struct UnitCache {
    std::uint64_t version = 1;  ///< starts above any cached entry's 0
    std::vector<CacheEntry> entries;
  };

  /// Cached-or-computed exec fit; returns the entry so fit_unit can attach
  /// the transfer model. Touches only cache_[u] — safe for the per-unit
  /// parallel fan-out in fit_all.
  CacheEntry& exec_entry(UnitId u, const fit::SelectionOptions& options) const;

  std::vector<fit::SampleSet> exec_;
  std::vector<fit::SampleSet> transfer_;
  std::size_t total_grains_ = 1;

  mutable std::vector<UnitCache> cache_;
  /// Mutated through std::atomic_ref (fit_all fans units across threads);
  /// plain fields keep ProfileDb copyable and movable.
  mutable FitStats counters_;
};

}  // namespace plbhec::rt
