#pragma once
/// \file trace.hpp
/// Execution trace: per-unit busy segments recorded by the engines, from
/// which the metrics module derives Gantt charts, idleness percentages and
/// block distributions.

#include <cstddef>
#include <string>
#include <vector>

#include "plbhec/rt/types.hpp"

namespace plbhec::rt {

enum class SegmentKind { kTransfer, kExec };

struct TraceSegment {
  UnitId unit = 0;
  SegmentKind kind = SegmentKind::kExec;
  double start = 0.0;
  double end = 0.0;
  std::size_t grains = 0;

  [[nodiscard]] double duration() const { return end - start; }
};

class TraceLog {
 public:
  void reserve(std::size_t n) { segments_.reserve(n); }
  void add(const TraceSegment& seg) { segments_.push_back(seg); }
  void clear() { segments_.clear(); }

  [[nodiscard]] const std::vector<TraceSegment>& segments() const {
    return segments_;
  }

  /// Total busy (transfer + exec) seconds of a unit.
  [[nodiscard]] double busy_seconds(UnitId unit) const;
  /// Total grains processed by a unit.
  [[nodiscard]] std::size_t grains_processed(UnitId unit) const;
  /// Number of tasks (exec segments) run by a unit.
  [[nodiscard]] std::size_t task_count(UnitId unit) const;

 private:
  std::vector<TraceSegment> segments_;
};

}  // namespace plbhec::rt
