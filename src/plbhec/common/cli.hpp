#pragma once
/// \file cli.hpp
/// Tiny command-line flag parser shared by the bench binaries and examples.
/// Supports `--flag`, `--key=value` and `--key value` forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace plbhec {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Benchmarks run a reduced sweep unless `--full` is given. `--quick` is
  /// accepted as an explicit alias of the default.
  [[nodiscard]] bool full() const { return has("full"); }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace plbhec
