#pragma once
/// \file csv.hpp
/// Minimal CSV writer used to dump experiment series (so that figures can be
/// re-plotted outside the harness).

#include <fstream>
#include <string>
#include <vector>

namespace plbhec {

/// Streams rows to a CSV file. Cells containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void header(const std::vector<std::string>& columns);
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 6 significant digits.
  void row_values(const std::vector<double>& values);

 private:
  void write_cells(const std::vector<std::string>& cells);
  std::ofstream out_;
};

}  // namespace plbhec
