#pragma once
/// \file stats.hpp
/// Small statistics toolkit used by the profiling database, the metrics
/// collectors and the benchmark harness: numerically stable online moments
/// (Welford), percentiles and simple summaries.

#include <cstddef>
#include <span>
#include <vector>

namespace plbhec {

/// Online mean/variance accumulator (Welford). Numerically stable; O(1) per
/// observation, no sample storage.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, q in [0, 1]. Empty input yields 0.
[[nodiscard]] double percentile(std::vector<double> xs, double q);
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Coefficient of determination R^2 of predictions vs observations.
/// Returns -inf-free value clamped so a constant-observation edge case is
/// handled (R^2 = 1 if predictions match exactly, else 0).
[[nodiscard]] double r_squared(std::span<const double> observed,
                               std::span<const double> predicted);

}  // namespace plbhec
