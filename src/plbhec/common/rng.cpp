#include "plbhec/common/rng.hpp"

#include <cmath>

#include "plbhec/common/contracts.hpp"

namespace plbhec {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64 to obtain a
  // decorrelated child stream without advancing the parent.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ s_[3];
  mix ^= 0xd1342543de82ef95ULL * (stream_id + 1);
  return Rng(mix);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PLBHEC_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PLBHEC_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.141592653589793238462643 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  PLBHEC_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal_factor(double sigma) {
  PLBHEC_EXPECTS(sigma >= 0.0);
  if (sigma == 0.0) return 1.0;
  return std::exp(sigma * normal());
}

}  // namespace plbhec
