#pragma once
/// \file codec.hpp
/// Shared binary codec: fixed-width and varint read/write helpers plus the
/// FNV-1a checksum, used by both the on-disk ProfileStore image
/// (svc/profile_store.cpp) and the network wire format (net/wire.cpp), so
/// the two formats share one audited encoder/decoder core.
///
/// Conventions (identical to the original ProfileStore format): native
/// little-endian integers, IEEE-754 doubles, strings as u32 length +
/// bytes. The reader is defensive — every primitive checks the remaining
/// byte budget and latches `ok = false` on the first overrun, after which
/// all further reads return zeros and fail; callers check `ok` once at the
/// end (or at any structural decision point) instead of after every field.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace plbhec::common {

/// FNV-1a 64-bit over a byte span — the payload checksum of both the
/// profile-store image and every network frame.
[[nodiscard]] inline std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Appending encoder over a caller-owned byte vector.
struct ByteWriter {
  std::vector<std::uint8_t>& out;

  void bytes(const void* p, std::size_t n) {
    if (n == 0) return;  // tolerate null data for empty spans
    const std::size_t old = out.size();
    out.resize(old + n);
    std::memcpy(out.data() + old, p, n);
  }
  void u8(std::uint8_t v) { bytes(&v, sizeof v); }
  void u16(std::uint16_t v) { bytes(&v, sizeof v); }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  /// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  void var_u64(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }
};

/// Bounds-checked decoder over a borrowed byte span.
struct ByteReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }

  bool take(void* p, std::size_t n) {
    if (!ok || remaining() < n) {
      ok = false;
      return false;
    }
    std::memcpy(p, data.data() + pos, n);
    pos += n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0.0;
    take(&v, sizeof v);
    return v;
  }
  /// Reads a length-prefixed string, rejecting lengths above `max_bytes`
  /// (a checksummed-but-hostile payload may still announce absurd sizes).
  bool str(std::string& s, std::size_t max_bytes) {
    const std::uint32_t n = u32();
    if (!ok || n > max_bytes || remaining() < n) {
      ok = false;
      return false;
    }
    s.assign(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return true;
  }
  /// Unsigned LEB128; rejects encodings longer than 10 bytes (the widest a
  /// u64 needs) and non-canonical trailing bits in the final byte.
  std::uint64_t var_u64() {
    std::uint64_t v = 0;
    for (std::size_t shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      if (!ok) return 0;
      if (shift == 63 && (b & 0x7Eu) != 0) {  // bits past 2^64 set
        ok = false;
        return 0;
      }
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
    }
    ok = false;  // continuation bit set on the 10th byte
    return 0;
  }
};

}  // namespace plbhec::common
