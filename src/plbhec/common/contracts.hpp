#pragma once
/// \file contracts.hpp
/// Lightweight precondition / postcondition / invariant checks in the spirit
/// of the C++ Core Guidelines' `Expects` / `Ensures`. Violations abort with a
/// message; they are kept on in all build types because this library backs a
/// research artifact where silent numeric corruption is worse than a crash.

#include <cstdio>
#include <cstdlib>

namespace plbhec::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "plbhec: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace plbhec::detail

#define PLBHEC_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                          \
          : ::plbhec::detail::contract_failure("precondition", #cond,     \
                                               __FILE__, __LINE__))

#define PLBHEC_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                          \
          : ::plbhec::detail::contract_failure("postcondition", #cond,    \
                                               __FILE__, __LINE__))

#define PLBHEC_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::plbhec::detail::contract_failure("invariant", #cond,        \
                                               __FILE__, __LINE__))
