#include "plbhec/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "plbhec/common/contracts.hpp"

namespace plbhec {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PLBHEC_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  PLBHEC_EXPECTS(!rows_.empty());
  PLBHEC_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::separator() {
  separators_.push_back(rows_.size());
  return *this;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != 'e' &&
        c != 'E' && c != '%' && c != 'x')
      return false;
  }
  return true;
}

}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      const std::size_t pad = widths[c] - cell.size();
      if (looks_numeric(cell))
        s += " " + std::string(pad, ' ') + cell + " |";
      else
        s += " " + cell + std::string(pad, ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + emit_row(headers_) + rule();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += emit_row(rows_[i]);
    if (std::find(separators_.begin(), separators_.end(), i + 1) !=
        separators_.end())
      out += rule();
  }
  out += rule();
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace plbhec
