#pragma once
/// \file table.hpp
/// ASCII table renderer used by the benchmark harness to print paper-style
/// rows (execution times, speedups, block distributions, idleness).

#include <string>
#include <vector>

namespace plbhec {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendering right-aligns numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 3);
  Table& add(std::size_t value);
  Table& add(int value);

  /// Inserts a horizontal separator after the current row.
  Table& separator();

  [[nodiscard]] std::string render() const;
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices followed by a rule
};

/// Formats a double with fixed precision (helper shared with CSV output).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace plbhec
