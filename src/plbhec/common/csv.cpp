#include "plbhec/common/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace plbhec {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  write_cells(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    cells.emplace_back(buf);
  }
  write_cells(cells);
}

}  // namespace plbhec
