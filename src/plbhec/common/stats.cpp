#include "plbhec/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"

namespace plbhec {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile(std::vector<double> xs, double q) {
  PLBHEC_EXPECTS(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> copy(xs.begin(), xs.end());
  s.p50 = percentile(copy, 0.5);
  s.p90 = percentile(copy, 0.9);
  return s;
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  PLBHEC_EXPECTS(observed.size() == predicted.size());
  if (observed.empty()) return 0.0;
  const double ybar = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double t = observed[i] - ybar;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace plbhec
