#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation (xoshiro256++) with
/// the handful of distributions the simulator needs. Every stochastic
/// component of the library takes an explicit seed so that experiments are
/// exactly reproducible.

#include <cstdint>

namespace plbhec {

/// xoshiro256++ generator (Blackman & Vigna). Seeded through splitmix64 so
/// that low-entropy seeds (0, 1, 2, ...) still produce well-mixed streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Derives an independent child stream; `stream_id` selects the child.
  /// Used to give every (device, repetition) pair its own noise stream.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal such that the *multiplicative* factor has median 1 and the
  /// underlying normal has standard deviation `sigma`. sigma = 0 returns 1.
  double lognormal_factor(double sigma);

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace plbhec
