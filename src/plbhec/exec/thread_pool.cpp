#include "plbhec/exec/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "plbhec/obs/counters.hpp"

namespace plbhec::exec {

namespace detail {

/// Heap-allocated unit of pool work; executed exactly once, then deleted by
/// the executing thread (or by the pool destructor if never executed).
struct TaskNode {
  std::function<void()> run;
};

StealDeque::Array::Array(std::size_t cap)
    : capacity(cap),
      slots(std::make_unique<std::atomic<TaskNode*>[]>(cap)) {}

StealDeque::StealDeque() {
  auto initial = std::make_unique<Array>(64);
  array_.store(initial.get(), std::memory_order_relaxed);
  retired_.push_back(std::move(initial));
}

StealDeque::~StealDeque() = default;

StealDeque::Array* StealDeque::grow(Array* old, std::int64_t top,
                                    std::int64_t bottom) {
  auto bigger = std::make_unique<Array>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, old->get(i));
  Array* raw = bigger.get();
  array_.store(raw, std::memory_order_release);
  retired_.push_back(std::move(bigger));  // old arrays stay alive for thieves
  return raw;
}

void StealDeque::push(TaskNode* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Array* a = array_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(a->capacity) - 1) a = grow(a, t, b);
  a->put(b, task);
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
}

TaskNode* StealDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Array* a = array_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  TaskNode* task = nullptr;
  if (t <= b) {
    task = a->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        task = nullptr;
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

TaskNode* StealDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  Array* a = array_.load(std::memory_order_acquire);
  TaskNode* task = a->get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return nullptr;  // lost the race to the owner or another thief
  return task;
}

namespace {

/// Set while a thread is a pool worker, so enqueue() can use its own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

}  // namespace detail

ThreadPool::ThreadPool(unsigned workers) {
  deques_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    deques_.push_back(std::make_unique<detail::StealDeque>());
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Drop never-executed tasks (fire-and-forget submissions at shutdown).
  for (auto& d : deques_)
    while (detail::TaskNode* n = d->pop()) delete n;
  for (detail::TaskNode* n : inject_) delete n;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()) - 1u);
  return pool;
}

void ThreadPool::enqueue(detail::TaskNode* node) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  auto& id = detail::tls_worker;
  if (id.pool == this) {
    deques_[id.index]->push(node);
  } else {
    injected_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(inject_mutex_);
    inject_.push_back(node);
  }
  pending_.fetch_add(1, std::memory_order_release);
}

void ThreadPool::notify_workers(std::size_t count) {
  if (threads_.empty()) return;
  {
    std::lock_guard lock(sleep_mutex_);
  }
  if (count > 1)
    sleep_cv_.notify_all();
  else
    sleep_cv_.notify_one();
}

detail::TaskNode* ThreadPool::try_acquire(std::size_t self) {
  if (detail::TaskNode* t = deques_[self]->pop()) return t;
  {
    std::lock_guard lock(inject_mutex_);
    if (!inject_.empty()) {
      detail::TaskNode* t = inject_.front();
      inject_.pop_front();
      return t;
    }
  }
  const std::size_t n = deques_.size();
  for (std::size_t sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t i = 1; i < n; ++i) {
      const std::size_t victim = (self + i) % n;
      if (detail::TaskNode* t = deques_[victim]->steal()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return t;
      }
    }
  }
  return nullptr;
}

void ThreadPool::worker_loop(std::size_t index) {
  detail::tls_worker = {this, index};
  while (true) {
    detail::TaskNode* task = try_acquire(index);
    if (task != nullptr) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      task->run();
      delete task;
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(idle_mutex_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) <= 0)
      return;
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  enqueue(new detail::TaskNode{std::move(fn)});
  notify_workers(1);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.injected = injected_.load(std::memory_order_relaxed);
  s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::publish_counters(obs::CounterRegistry& registry,
                                  std::string_view prefix) const {
  const PoolStats s = stats();
  const std::string p(prefix);
  registry.set(p + "tasks_executed", s.tasks_executed);
  registry.set(p + "steals", s.steals);
  registry.set(p + "injected", s.injected);
  registry.set(p + "parallel_fors", s.parallel_fors);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t total = end - begin;
  if (grain == 0)
    grain = std::max<std::size_t>(
        1, total / (8u * static_cast<std::size_t>(concurrency())));
  const std::size_t nchunks = (total + grain - 1) / grain;
  if (nchunks <= 1 || workers() == 0) {
    body(begin, end);
    return;
  }

  struct ForContext {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0, end = 0, grain = 0, nchunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> cancelled{false};
    std::mutex mutex;  ///< guards eptr and the completion wait
    std::condition_variable done_cv;
    std::exception_ptr eptr;
  };
  auto ctx = std::make_shared<ForContext>();
  ctx->body = &body;
  ctx->begin = begin;
  ctx->end = end;
  ctx->grain = grain;
  ctx->nchunks = nchunks;

  auto run_chunks = [](ForContext& c) {
    for (;;) {
      const std::size_t i = c.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= c.nchunks) break;
      if (!c.cancelled.load(std::memory_order_relaxed)) {
        try {
          const std::size_t lo = c.begin + i * c.grain;
          const std::size_t hi = std::min(lo + c.grain, c.end);
          (*c.body)(lo, hi);
        } catch (...) {
          c.cancelled.store(true, std::memory_order_relaxed);
          std::lock_guard lock(c.mutex);
          if (!c.eptr) c.eptr = std::current_exception();
        }
      }
      if (c.done.fetch_add(1, std::memory_order_acq_rel) + 1 == c.nchunks) {
        std::lock_guard lock(c.mutex);
        c.done_cv.notify_all();
      }
    }
  };

  // Runner tasks let idle workers join in; any runner arriving after the
  // chunk cursor is exhausted exits immediately, so leftover runners in the
  // deques are harmless (the shared_ptr keeps the context alive for them).
  const std::size_t runners =
      std::min<std::size_t>(workers(), nchunks - 1);
  for (std::size_t r = 0; r < runners; ++r)
    enqueue(new detail::TaskNode{[ctx, run_chunks] { run_chunks(*ctx); }});
  notify_workers(runners);

  run_chunks(*ctx);

  std::unique_lock lock(ctx->mutex);
  ctx->done_cv.wait(lock, [&] {
    return ctx->done.load(std::memory_order_acquire) == ctx->nchunks;
  });
  if (ctx->eptr) std::rethrow_exception(ctx->eptr);
}

}  // namespace plbhec::exec
