#include "plbhec/exec/worker_set.hpp"

#include <algorithm>

#include "plbhec/common/contracts.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace plbhec::exec {
namespace {

void pin_current_thread(std::size_t index) {
#if defined(__linux__)
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % cores, &set);
  // Best effort: pinning can fail inside restricted cgroups; ignore.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

WorkerSet::WorkerSet(std::size_t n, bool pin) {
  PLBHEC_EXPECTS(n >= 1);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i, pin] {
      if (pin) pin_current_thread(i);
      worker_loop(i);
    });
    ++threads_created_;
  }
}

WorkerSet::~WorkerSet() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerSet::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  while (true) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* body = body_;
    lock.unlock();
    (*body)(index);
    lock.lock();
    if (--running_ == 0) done_cv_.notify_all();
  }
}

void WorkerSet::run(const std::function<void(std::size_t)>& body) {
  std::unique_lock lock(mutex_);
  PLBHEC_EXPECTS(running_ == 0);  // not reentrant
  body_ = &body;
  running_ = threads_.size();
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [&] { return running_ == 0; });
  body_ = nullptr;
}

}  // namespace plbhec::exec
