#pragma once
/// \file gemm_micro_detail.hpp
/// Register-block geometry shared by the GEMM micro-kernel variants. The
/// variants register with the kdisp registry under kGemmMicroKernel; the
/// packed driver in gemm_micro.cpp resolves the best one at runtime.

#include <cstddef>

namespace plbhec::exec::detail {

// MR x NR accumulators (4 x 8 doubles = 8 vector registers of 4 lanes)
// with KC-deep panels sized for L2 residency.
inline constexpr std::size_t kGemmMr = 4;
inline constexpr std::size_t kGemmNr = 8;
inline constexpr std::size_t kGemmKc = 256;

/// Link anchor for the AVX2 variant TU (see the note in kdisp/registry.cpp
/// about archive lazy extraction).
void link_gemm_avx2_kernel();

/// Link anchor for this family's registrations as a whole: the registry
/// calls it so the gemm variants are in the table for every registry
/// user, not only binaries that already reference an exec symbol.
void link_gemm_kernels();

}  // namespace plbhec::exec::detail
