/// \file gemm_micro_avx2.cpp
/// Explicit AVX2+FMA GEMM micro-kernel, registered with the kdisp
/// registry so one binary picks it at runtime on capable hosts (this
/// replaces the old -DPLBHEC_ENABLE_AVX2 compile-time switch). Compiled
/// with -mavx2 -mfma when the compiler supports them; otherwise the TU is
/// just the link anchor. Unlike the dispatched workload families, GEMM
/// variants are NOT bit-identical — the FMA accumulation here rounds
/// differently from the portable kernel (see the contract note in
/// kdisp/registry.hpp).

#include "plbhec/exec/gemm_micro_detail.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

namespace plbhec::exec {
namespace {

using detail::kGemmMr;
using detail::kGemmNr;

/// 4x8 accumulator block in 8 YMM registers, one broadcast + two FMAs per
/// (row, kk).
void gemm_micro_avx2(std::size_t kc, const double* ap, const double* bp,
                     double* c, std::size_t ldc, std::size_t mr,
                     std::size_t nr) {
  __m256d acc[kGemmMr][2];
  for (std::size_t r = 0; r < kGemmMr; ++r) {
    acc[r][0] = _mm256_setzero_pd();
    acc[r][1] = _mm256_setzero_pd();
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256d b0 = _mm256_loadu_pd(bp + kk * kGemmNr);
    const __m256d b1 = _mm256_loadu_pd(bp + kk * kGemmNr + 4);
    const double* ak = ap + kk * kGemmMr;
    for (std::size_t r = 0; r < kGemmMr; ++r) {
      const __m256d ar = _mm256_broadcast_sd(ak + r);
      acc[r][0] = _mm256_fmadd_pd(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(ar, b1, acc[r][1]);
    }
  }
  alignas(32) double tile[kGemmMr][kGemmNr];
  for (std::size_t r = 0; r < kGemmMr; ++r) {
    _mm256_store_pd(&tile[r][0], acc[r][0]);
    _mm256_store_pd(&tile[r][4], acc[r][1]);
  }
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t j = 0; j < nr; ++j) c[r * ldc + j] += tile[r][j];
}

PLBHEC_REGISTER_KERNEL(kdisp::kGemmMicroKernel, kdisp::IsaClass::kAvx2,
                       kdisp::WidthClass::kWide, gemm_micro_avx2);

}  // namespace
}  // namespace plbhec::exec

#endif  // __AVX2__ && __FMA__

namespace plbhec::exec::detail {
void link_gemm_avx2_kernel() {}
}  // namespace plbhec::exec::detail
