#pragma once
/// \file worker_set.hpp
/// A fixed crew of persistent, optionally core-pinned threads that repeat
/// "run body(index) on every worker, wait for all" rounds. ThreadEngine
/// hosts each processing unit on one of these workers: the threads are
/// created once per engine, so a run's first probe block — the sample the
/// paper's Phase-1 model fit leans on hardest — no longer pays OS
/// thread-creation latency.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace plbhec::exec {

class WorkerSet {
 public:
  /// Spawns `n` persistent workers (n >= 1). With `pin`, worker i is
  /// best-effort pinned to core i modulo the core count (Linux only).
  explicit WorkerSet(std::size_t n, bool pin = true);
  ~WorkerSet();
  WorkerSet(const WorkerSet&) = delete;
  WorkerSet& operator=(const WorkerSet&) = delete;

  /// Runs body(i) on worker i for every i in [0, size()), blocking until
  /// all workers finish. Not reentrant; callable repeatedly.
  void run(const std::function<void(std::size_t)>& body);

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Lifetime count of OS threads this set has created. Stays equal to
  /// size() no matter how many rounds run() executes — the regression
  /// guard that probe timings exclude thread startup.
  [[nodiscard]] std::size_t threads_created() const {
    return threads_created_;
  }

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> threads_;
  std::size_t threads_created_ = 0;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;  ///< current round
  std::uint64_t generation_ = 0;  ///< bumped per round
  std::size_t running_ = 0;       ///< workers still inside the current round
  bool stop_ = false;
};

}  // namespace plbhec::exec
