#include "plbhec/exec/gemm_micro.hpp"

#include <algorithm>
#include <vector>

#include "plbhec/exec/gemm_micro_detail.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

namespace plbhec::exec {
namespace {

using detail::kGemmKc;
using detail::kGemmMr;
using detail::kGemmNr;

/// Packs the B panel rows [k0, k0+kc) into strip-major KC x NR tiles:
/// strip s holds the kc consecutive rows of columns [s*NR, s*NR+NR),
/// zero-padded past n so the micro-kernel never branches on column tails.
void pack_b(const double* b, std::size_t n, std::size_t k0, std::size_t kc,
            double* packed) {
  const std::size_t nstrips = (n + kGemmNr - 1) / kGemmNr;
  for (std::size_t s = 0; s < nstrips; ++s) {
    const std::size_t j0 = s * kGemmNr;
    const std::size_t width = std::min(kGemmNr, n - j0);
    double* dst = packed + s * kc * kGemmNr;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const double* src = b + (k0 + kk) * n + j0;
      for (std::size_t j = 0; j < width; ++j) dst[j] = src[j];
      for (std::size_t j = width; j < kGemmNr; ++j) dst[j] = 0.0;
      dst += kGemmNr;
    }
  }
}

/// Packs the A tile rows [i0, i0+mr) x columns [k0, k0+kc) into kk-major
/// groups of MR values, zero-padded past mr (branch-free row tails).
void pack_a(const double* a, std::size_t k, std::size_t i0, std::size_t mr,
            std::size_t k0, std::size_t kc, double* packed) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    double* dst = packed + kk * kGemmMr;
    for (std::size_t r = 0; r < mr; ++r) dst[r] = a[(i0 + r) * k + k0 + kk];
    for (std::size_t r = mr; r < kGemmMr; ++r) dst[r] = 0.0;
  }
}

/// Portable micro-kernel: the fixed-trip-count loops over a 4x8 local
/// accumulator fully unroll, so -O3 keeps the block in vector registers
/// and contracts the multiply-adds into FMAs where the target has them.
void gemm_micro_scalar(std::size_t kc, const double* ap, const double* bp,
                       double* c, std::size_t ldc, std::size_t mr,
                       std::size_t nr) {
  double acc[kGemmMr][kGemmNr] = {};
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const double* ak = ap + kk * kGemmMr;
    const double* bk = bp + kk * kGemmNr;
    for (std::size_t r = 0; r < kGemmMr; ++r) {
      const double ar = ak[r];
      for (std::size_t j = 0; j < kGemmNr; ++j) acc[r][j] += ar * bk[j];
    }
  }
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t j = 0; j < nr; ++j) c[r * ldc + j] += acc[r][j];
}

PLBHEC_REGISTER_KERNEL(kdisp::kGemmMicroKernel, kdisp::IsaClass::kScalar,
                       kdisp::WidthClass::kNarrow, gemm_micro_scalar);
PLBHEC_REGISTER_KERNEL(kdisp::kGemmMicroKernel, kdisp::IsaClass::kScalar,
                       kdisp::WidthClass::kWide, gemm_micro_scalar);

}  // namespace

namespace detail {
void link_gemm_kernels() { link_gemm_avx2_kernel(); }
}  // namespace detail

namespace {

/// Resolves the micro-kernel for an (m x n x k) product: width-classed by
/// n, the micro-kernel's vectorizable trip count. Resolved per top-level
/// call (one mutex-guarded lookup amortized over the whole product) so a
/// pinned PLBHEC_KDISP_FORCE / test ceiling always takes effect.
kdisp::GemmMicroFn* resolve_micro(std::size_t n) {
  detail::link_gemm_avx2_kernel();
  return kdisp::KernelRegistry::instance().select<kdisp::GemmMicroFn>(
      kdisp::kGemmMicroKernel, kdisp::classify_width(n));
}

/// Multiplies row block [i0, i0+rows) against the packed B panel.
void run_row_block(kdisp::GemmMicroFn* micro, const double* a, double* c,
                   std::size_t n, std::size_t k, std::size_t i0,
                   std::size_t rows, std::size_t k0, std::size_t kc,
                   const double* bpack, std::vector<double>& apack) {
  const std::size_t nstrips = (n + kGemmNr - 1) / kGemmNr;
  apack.resize(kc * kGemmMr);
  for (std::size_t i = i0; i < i0 + rows; i += kGemmMr) {
    const std::size_t mr = std::min(kGemmMr, i0 + rows - i);
    pack_a(a, k, i, mr, k0, kc, apack.data());
    for (std::size_t s = 0; s < nstrips; ++s) {
      const std::size_t j0 = s * kGemmNr;
      const std::size_t nr = std::min(kGemmNr, n - j0);
      micro(kc, apack.data(), bpack + s * kc * kGemmNr, c + i * n + j0, n, mr,
            nr);
    }
  }
}

std::vector<double>& pack_buffer_b() {
  thread_local std::vector<double> buf;
  return buf;
}

std::vector<double>& pack_buffer_a() {
  thread_local std::vector<double> buf;
  return buf;
}

}  // namespace

void gemm_packed(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c) {
  if (m == 0 || n == 0 || k == 0) return;
  kdisp::GemmMicroFn* const micro = resolve_micro(n);
  const std::size_t nstrips = (n + kGemmNr - 1) / kGemmNr;
  std::vector<double>& bpack = pack_buffer_b();
  for (std::size_t k0 = 0; k0 < k; k0 += kGemmKc) {
    const std::size_t kc = std::min(kGemmKc, k - k0);
    bpack.resize(nstrips * kc * kGemmNr);
    pack_b(b, n, k0, kc, bpack.data());
    run_row_block(micro, a, c, n, k, 0, m, k0, kc, bpack.data(),
                  pack_buffer_a());
  }
}

void gemm_packed_parallel(std::size_t m, std::size_t n, std::size_t k,
                          const double* a, const double* b, double* c,
                          ThreadPool& pool, unsigned max_lanes) {
  if (m == 0 || n == 0 || k == 0) return;
  unsigned lanes = pool.concurrency();
  if (max_lanes != 0) lanes = std::min(lanes, max_lanes);
  if (lanes <= 1 || m < 2 * kGemmMr) {
    gemm_packed(m, n, k, a, b, c);
    return;
  }
  kdisp::GemmMicroFn* const micro = resolve_micro(n);
  // Row grain: MR-aligned so no two lanes share a C tile row block.
  const std::size_t blocks = (m + kGemmMr - 1) / kGemmMr;
  const std::size_t grain_blocks =
      (blocks + static_cast<std::size_t>(lanes) - 1) /
      static_cast<std::size_t>(lanes);
  const std::size_t grain = grain_blocks * kGemmMr;

  const std::size_t nstrips = (n + kGemmNr - 1) / kGemmNr;
  std::vector<double>& bpack = pack_buffer_b();
  for (std::size_t k0 = 0; k0 < k; k0 += kGemmKc) {
    const std::size_t kc = std::min(kGemmKc, k - k0);
    bpack.resize(nstrips * kc * kGemmNr);
    pack_b(b, n, k0, kc, bpack.data());
    const double* bp = bpack.data();
    pool.parallel_for(
        0, m, grain,
        [micro, a, c, n, k, k0, kc, bp](std::size_t lo, std::size_t hi) {
          run_row_block(micro, a, c, n, k, lo, hi - lo, k0, kc, bp,
                        pack_buffer_a());
        });
  }
}

}  // namespace plbhec::exec
