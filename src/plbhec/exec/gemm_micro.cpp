#include "plbhec/exec/gemm_micro.hpp"

#include <algorithm>
#include <vector>

#include "plbhec/exec/thread_pool.hpp"

#if defined(PLBHEC_ENABLE_AVX2) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define PLBHEC_GEMM_AVX2 1
#endif

namespace plbhec::exec {
namespace {

// Register-block geometry: MR x NR accumulators (4 x 8 doubles = 8 vector
// registers of 4 lanes) with KC-deep panels sized for L2 residency.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;
constexpr std::size_t kKc = 256;

/// Packs the B panel rows [k0, k0+kc) into strip-major KC x NR tiles:
/// strip s holds the kc consecutive rows of columns [s*NR, s*NR+NR),
/// zero-padded past n so the micro-kernel never branches on column tails.
void pack_b(const double* b, std::size_t n, std::size_t k0, std::size_t kc,
            double* packed) {
  const std::size_t nstrips = (n + kNr - 1) / kNr;
  for (std::size_t s = 0; s < nstrips; ++s) {
    const std::size_t j0 = s * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    double* dst = packed + s * kc * kNr;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const double* src = b + (k0 + kk) * n + j0;
      for (std::size_t j = 0; j < width; ++j) dst[j] = src[j];
      for (std::size_t j = width; j < kNr; ++j) dst[j] = 0.0;
      dst += kNr;
    }
  }
}

/// Packs the A tile rows [i0, i0+mr) x columns [k0, k0+kc) into kk-major
/// groups of MR values, zero-padded past mr (branch-free row tails).
void pack_a(const double* a, std::size_t k, std::size_t i0, std::size_t mr,
            std::size_t k0, std::size_t kc, double* packed) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    double* dst = packed + kk * kMr;
    for (std::size_t r = 0; r < mr; ++r) dst[r] = a[(i0 + r) * k + k0 + kk];
    for (std::size_t r = mr; r < kMr; ++r) dst[r] = 0.0;
  }
}

#if defined(PLBHEC_GEMM_AVX2)

/// Explicit AVX2+FMA micro-kernel: 4x8 accumulator block in 8 YMM
/// registers, one broadcast + two FMAs per (row, kk).
void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                  double* c, std::size_t ldc, std::size_t mr,
                  std::size_t nr) {
  __m256d acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_pd();
    acc[r][1] = _mm256_setzero_pd();
  }
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256d b0 = _mm256_loadu_pd(bp + kk * kNr);
    const __m256d b1 = _mm256_loadu_pd(bp + kk * kNr + 4);
    const double* ak = ap + kk * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256d ar = _mm256_broadcast_sd(ak + r);
      acc[r][0] = _mm256_fmadd_pd(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(ar, b1, acc[r][1]);
    }
  }
  alignas(32) double tile[kMr][kNr];
  for (std::size_t r = 0; r < kMr; ++r) {
    _mm256_store_pd(&tile[r][0], acc[r][0]);
    _mm256_store_pd(&tile[r][4], acc[r][1]);
  }
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t j = 0; j < nr; ++j) c[r * ldc + j] += tile[r][j];
}

#else

/// Portable micro-kernel: the fixed-trip-count loops over a 4x8 local
/// accumulator fully unroll, so -O3 keeps the block in vector registers
/// and contracts the multiply-adds into FMAs where the target has them.
void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                  double* c, std::size_t ldc, std::size_t mr,
                  std::size_t nr) {
  double acc[kMr][kNr] = {};
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const double* ak = ap + kk * kMr;
    const double* bk = bp + kk * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const double ar = ak[r];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += ar * bk[j];
    }
  }
  for (std::size_t r = 0; r < mr; ++r)
    for (std::size_t j = 0; j < nr; ++j) c[r * ldc + j] += acc[r][j];
}

#endif  // PLBHEC_GEMM_AVX2

/// Multiplies row block [i0, i0+rows) against the packed B panel.
void run_row_block(const double* a, double* c, std::size_t n, std::size_t k,
                   std::size_t i0, std::size_t rows, std::size_t k0,
                   std::size_t kc, const double* bpack,
                   std::vector<double>& apack) {
  const std::size_t nstrips = (n + kNr - 1) / kNr;
  apack.resize(kc * kMr);
  for (std::size_t i = i0; i < i0 + rows; i += kMr) {
    const std::size_t mr = std::min(kMr, i0 + rows - i);
    pack_a(a, k, i, mr, k0, kc, apack.data());
    for (std::size_t s = 0; s < nstrips; ++s) {
      const std::size_t j0 = s * kNr;
      const std::size_t nr = std::min(kNr, n - j0);
      micro_kernel(kc, apack.data(), bpack + s * kc * kNr, c + i * n + j0, n,
                   mr, nr);
    }
  }
}

std::vector<double>& pack_buffer_b() {
  thread_local std::vector<double> buf;
  return buf;
}

std::vector<double>& pack_buffer_a() {
  thread_local std::vector<double> buf;
  return buf;
}

}  // namespace

void gemm_packed(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c) {
  if (m == 0 || n == 0 || k == 0) return;
  const std::size_t nstrips = (n + kNr - 1) / kNr;
  std::vector<double>& bpack = pack_buffer_b();
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t kc = std::min(kKc, k - k0);
    bpack.resize(nstrips * kc * kNr);
    pack_b(b, n, k0, kc, bpack.data());
    run_row_block(a, c, n, k, 0, m, k0, kc, bpack.data(), pack_buffer_a());
  }
}

void gemm_packed_parallel(std::size_t m, std::size_t n, std::size_t k,
                          const double* a, const double* b, double* c,
                          ThreadPool& pool, unsigned max_lanes) {
  if (m == 0 || n == 0 || k == 0) return;
  unsigned lanes = pool.concurrency();
  if (max_lanes != 0) lanes = std::min(lanes, max_lanes);
  if (lanes <= 1 || m < 2 * kMr) {
    gemm_packed(m, n, k, a, b, c);
    return;
  }
  // Row grain: MR-aligned so no two lanes share a C tile row block.
  const std::size_t blocks = (m + kMr - 1) / kMr;
  const std::size_t grain_blocks =
      (blocks + static_cast<std::size_t>(lanes) - 1) /
      static_cast<std::size_t>(lanes);
  const std::size_t grain = grain_blocks * kMr;

  const std::size_t nstrips = (n + kNr - 1) / kNr;
  std::vector<double>& bpack = pack_buffer_b();
  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t kc = std::min(kKc, k - k0);
    bpack.resize(nstrips * kc * kNr);
    pack_b(b, n, k0, kc, bpack.data());
    const double* bp = bpack.data();
    pool.parallel_for(0, m, grain,
                      [a, c, n, k, k0, kc, bp](std::size_t lo, std::size_t hi) {
                        run_row_block(a, c, n, k, lo, hi - lo, k0, kc, bp,
                                      pack_buffer_a());
                      });
  }
}

}  // namespace plbhec::exec
