#pragma once
/// \file thread_pool.hpp
/// Persistent work-stealing thread pool: the shared execution backbone of
/// the real-execution path. Workers are created once and parked on a
/// condition variable when idle, so dispatching a parallel region costs an
/// enqueue + wakeup instead of a thread spawn — the overhead that used to
/// pollute the Phase-1 probe samples the performance models are fitted on.
///
/// Design:
///  - one Chase-Lev-style deque per worker (lock-free owner push/pop at the
///    bottom, CAS-synchronized steals at the top, following Le et al.,
///    "Correct and Efficient Work-Stealing for Weak Memory Models");
///  - external threads inject through a small mutex-guarded overflow queue;
///  - `parallel_for` hands out chunks through an atomic cursor shared by
///    the caller and a handful of runner tasks, so the caller always makes
///    progress even on a 0- or 1-worker pool and nested calls cannot
///    deadlock (a nested region's chunks are claimed by whoever arrives);
///  - the first exception thrown by a chunk cancels the remaining chunks
///    and is rethrown on the calling thread.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace plbhec::obs {
class CounterRegistry;
}

namespace plbhec::exec {

namespace detail {

struct TaskNode;

/// Chase-Lev work-stealing deque of task pointers. push()/pop() may only be
/// called by the owning worker; steal() by anyone. The circular backing
/// array grows on demand; retired arrays stay alive until destruction so
/// racing thieves never read freed memory.
class StealDeque {
 public:
  StealDeque();
  ~StealDeque();
  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  void push(TaskNode* task);        ///< owner only
  [[nodiscard]] TaskNode* pop();    ///< owner only
  [[nodiscard]] TaskNode* steal();  ///< any thread

 private:
  struct Array {
    explicit Array(std::size_t capacity);
    std::size_t capacity;
    std::unique_ptr<std::atomic<TaskNode*>[]> slots;

    [[nodiscard]] TaskNode* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & (capacity - 1)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, TaskNode* t) {
      slots[static_cast<std::size_t>(i) & (capacity - 1)].store(
          t, std::memory_order_relaxed);
    }
  };

  Array* grow(Array* old, std::int64_t top, std::int64_t bottom);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<std::unique_ptr<Array>> retired_;  ///< owner-only, kept alive
};

}  // namespace detail

/// Lifetime work-distribution counters of a pool (monotonic; a snapshot,
/// not a consistent cut — counts are relaxed atomics).
struct PoolStats {
  std::uint64_t tasks_executed = 0;  ///< task nodes run by worker threads
  std::uint64_t steals = 0;          ///< tasks taken from another worker's deque
  std::uint64_t injected = 0;        ///< tasks enqueued by non-worker threads
  std::uint64_t parallel_fors = 0;   ///< parallel_for regions dispatched
};

class ThreadPool {
 public:
  /// Spawns `workers` persistent worker threads (0 is valid: every
  /// parallel region then runs inline on the calling thread).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool shared by kernels and apps, sized to the hardware
  /// (hardware_concurrency - 1 workers; the caller is the missing lane).
  static ThreadPool& global();

  /// Worker threads owned by the pool (excludes callers).
  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }
  /// Concurrency of a parallel region: workers + the calling thread.
  [[nodiscard]] unsigned concurrency() const { return workers() + 1; }

  /// Runs body(chunk_begin, chunk_end) over [begin, end) split into chunks
  /// of ~`grain` iterations (grain 0 = auto). The calling thread
  /// participates; returns when every chunk has finished. Nested calls are
  /// allowed from inside chunks. The first exception thrown by a chunk is
  /// rethrown here after the region drains.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Fire-and-forget task; used by tests and one-off asynchronous work.
  void submit(std::function<void()> fn);

  /// Blocks until no submitted task remains (parallel_for joins itself and
  /// does not need this).
  void wait_idle();

  /// Snapshot of the lifetime work-distribution counters.
  [[nodiscard]] PoolStats stats() const;

  /// Publishes the stats into a counter registry under `prefix` (e.g.
  /// "pool." yields "pool.steals"). One snapshot per call; values overwrite.
  void publish_counters(obs::CounterRegistry& registry,
                        std::string_view prefix = "pool.") const;

 private:
  friend struct detail::TaskNode;

  void worker_loop(std::size_t index);
  void enqueue(detail::TaskNode* node);
  [[nodiscard]] detail::TaskNode* try_acquire(std::size_t self);
  void notify_workers(std::size_t count);

  std::vector<std::unique_ptr<detail::StealDeque>> deques_;
  std::vector<std::thread> threads_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::int64_t> pending_{0};  ///< queued, unexecuted task nodes
  std::atomic<bool> stop_{false};

  std::mutex inject_mutex_;
  std::deque<detail::TaskNode*> inject_;  ///< overflow queue for non-workers

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::int64_t> in_flight_{0};  ///< queued + running task nodes

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> parallel_fors_{0};
};

/// Convenience wrapper over the global pool.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, grain, body);
}

}  // namespace plbhec::exec
