#pragma once
/// \file gemm_micro.hpp
/// Packed, register-blocked GEMM micro-kernel (BLIS-style): B is packed
/// into contiguous KC x NR tiles and A into MR x KC tiles, so the inner
/// kernel streams two contiguous buffers into an MR x NR accumulator block
/// that lives entirely in registers. The inner loop is branch-free (tails
/// are zero-padded during packing). The micro-kernel itself is resolved at
/// runtime through the kdisp registry: a portable variant registers here
/// and an explicit AVX2+FMA variant in gemm_micro_avx2.cpp, and one binary
/// picks the best the host can execute (override with PLBHEC_KDISP_FORCE).
///
/// Semantics match linalg::blas::gemm: row-major C (m x n) += A (m x k)
/// * B (k x n), leading dimensions equal to the logical widths.

#include <cstddef>

namespace plbhec::exec {

class ThreadPool;

/// Serial packed GEMM.
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, const double* a,
                 const double* b, double* c);

/// Parallel packed GEMM: each K-panel of B is packed once by the caller,
/// then the row dimension is fanned out over `pool` (at most `max_lanes`
/// concurrent lanes; 0 = pool concurrency).
void gemm_packed_parallel(std::size_t m, std::size_t n, std::size_t k,
                          const double* a, const double* b, double* c,
                          ThreadPool& pool, unsigned max_lanes = 0);

}  // namespace plbhec::exec
