#include "plbhec/fit/basis.hpp"

#include <array>
#include <cmath>

#include "plbhec/common/contracts.hpp"

namespace plbhec::fit {
namespace {

double clamp_x(double x) { return x < kMinX ? kMinX : x; }

}  // namespace

double eval(BasisFn f, double x) {
  PLBHEC_EXPECTS(x >= 0.0);
  const double xc = clamp_x(x);
  switch (f) {
    case BasisFn::kOne:
      return 1.0;
    case BasisFn::kLnX:
      return std::log(xc);
    case BasisFn::kX:
      return x;
    case BasisFn::kX2:
      return x * x;
    case BasisFn::kX3:
      return x * x * x;
    case BasisFn::kExpX:
      return std::exp(x);
    case BasisFn::kXExpX:
      return x * std::exp(x);
    case BasisFn::kXLnX:
      return x * std::log(xc);
  }
  PLBHEC_ASSERT(false);
  return 0.0;
}

double derivative(BasisFn f, double x) {
  const double xc = clamp_x(x);
  switch (f) {
    case BasisFn::kOne:
      return 0.0;
    case BasisFn::kLnX:
      return 1.0 / xc;
    case BasisFn::kX:
      return 1.0;
    case BasisFn::kX2:
      return 2.0 * x;
    case BasisFn::kX3:
      return 3.0 * x * x;
    case BasisFn::kExpX:
      return std::exp(x);
    case BasisFn::kXExpX:
      return (1.0 + x) * std::exp(x);
    case BasisFn::kXLnX:
      return std::log(xc) + 1.0;
  }
  PLBHEC_ASSERT(false);
  return 0.0;
}

double second_derivative(BasisFn f, double x) {
  const double xc = clamp_x(x);
  switch (f) {
    case BasisFn::kOne:
      return 0.0;
    case BasisFn::kLnX:
      return -1.0 / (xc * xc);
    case BasisFn::kX:
      return 0.0;
    case BasisFn::kX2:
      return 2.0;
    case BasisFn::kX3:
      return 6.0 * x;
    case BasisFn::kExpX:
      return std::exp(x);
    case BasisFn::kXExpX:
      return (2.0 + x) * std::exp(x);
    case BasisFn::kXLnX:
      return 1.0 / xc;
  }
  PLBHEC_ASSERT(false);
  return 0.0;
}

std::string name(BasisFn f) {
  switch (f) {
    case BasisFn::kOne:
      return "1";
    case BasisFn::kLnX:
      return "ln(x)";
    case BasisFn::kX:
      return "x";
    case BasisFn::kX2:
      return "x^2";
    case BasisFn::kX3:
      return "x^3";
    case BasisFn::kExpX:
      return "e^x";
    case BasisFn::kXExpX:
      return "x*e^x";
    case BasisFn::kXLnX:
      return "x*ln(x)";
  }
  return "?";
}

std::span<const BasisFn> paper_terms() {
  // Ordered by extrapolation safety: when several candidate subsets fit the
  // probe points equally well (exact fits on 2-3 points are common early),
  // the tie breaks toward the earlier — physically more plausible — family.
  static constexpr std::array<BasisFn, 7> kTerms = {
      BasisFn::kX,    BasisFn::kXLnX,  BasisFn::kLnX, BasisFn::kX2,
      BasisFn::kX3,   BasisFn::kExpX,  BasisFn::kXExpX};
  return kTerms;
}

std::span<const BasisFn> all_terms() {
  static constexpr std::array<BasisFn, 8> kTerms = {
      BasisFn::kOne,  BasisFn::kLnX,  BasisFn::kX,     BasisFn::kX2,
      BasisFn::kX3,   BasisFn::kExpX, BasisFn::kXExpX, BasisFn::kXLnX};
  return kTerms;
}

}  // namespace plbhec::fit
