#pragma once
/// \file moments.hpp
/// Incrementally maintained second moments of a profiling sample set over
/// the *full* basis-function set: the Gram matrix G = X^T X, the moment
/// vector X^T y and y^T y, plus the 1/time-weighted variants used by
/// relative-weighting fits. One rank-1 update per recorded observation
/// makes any term-subset least-squares fit solvable in O(k^3) from the
/// cached moments — independent of the number of samples — which keeps the
/// modeling-phase overhead flat as probe counts grow (the cost the paper's
/// overhead table charges against PLB-HeC).

#include <array>
#include <cstddef>
#include <cstdint>

#include "plbhec/fit/basis.hpp"

namespace plbhec::fit {

/// Number of distinct basis functions; BasisFn enumerators index 0..7.
inline constexpr std::size_t kBasisCount = 8;

/// Plain-data image of a MomentSet, byte-serializable by the on-disk
/// ProfileStore. Round-tripping a snapshot restores the accumulators
/// bit-identically — no replay, no recomputation — so a warm-started fit
/// from a loaded store matches the original run's fit exactly.
struct MomentSnapshot {
  std::uint64_t n = 0;
  std::array<double, kBasisCount * kBasisCount> gram{};
  std::array<double, kBasisCount> xty{};
  double yty = 0.0;
  std::array<double, kBasisCount * kBasisCount> wgram{};
  std::array<double, kBasisCount> wxty{};
  double wyty = 0.0;

  friend bool operator==(const MomentSnapshot&,
                         const MomentSnapshot&) = default;
};

class MomentSet {
 public:
  /// Rank-1 update with the observation (x, time). Mirrors the row the
  /// design-matrix path would append: phi_i = eval(term_i, x).
  void add(double x, double time);

  /// Rank-1 downdate: removes an observation previously passed to add().
  /// Exact-window (ring buffer) moments evict their oldest sample through
  /// this; the result matches rebuilding from the retained samples up to
  /// floating-point cancellation. Requires count() > 0.
  void remove(double x, double time);

  /// Exponential forgetting: multiplies every moment accumulator by
  /// `lambda` (0 < lambda <= 1). Applied before each add(), this turns the
  /// accumulators into a discounted twin of the rank-1 updates whose
  /// effective window is ~1/(1-lambda) samples. lambda == 1 is an exact
  /// no-op so the undiscounted path stays bit-identical. The integer
  /// sample count is *not* discounted; callers tracking an effective
  /// sample count keep it themselves (see adapt::WindowedSampleSet).
  void scale(double lambda);

  void clear();

  [[nodiscard]] std::size_t count() const { return n_; }

  /// (X^T X)[a][b], optionally with the 1/time weighting applied (the
  /// weighted fit solves X^T W^2 X c = X^T W^2 y with w = 1/max(t, 1e-9)).
  [[nodiscard]] double gram(BasisFn a, BasisFn b, bool weighted = false) const {
    const std::size_t i = static_cast<std::size_t>(a);
    const std::size_t j = static_cast<std::size_t>(b);
    return (weighted ? wgram_ : gram_)[i * kBasisCount + j];
  }
  /// (X^T y)[a].
  [[nodiscard]] double xty(BasisFn a, bool weighted = false) const {
    return (weighted ? wxty_ : xty_)[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] double yty(bool weighted = false) const {
    return weighted ? wyty_ : yty_;
  }
  /// Sum of observed times (the intercept row of X^T y).
  [[nodiscard]] double sum_y() const { return xty(BasisFn::kOne); }

  /// Bit-exact copy of the accumulator state (ProfileStore serialization).
  [[nodiscard]] MomentSnapshot snapshot() const;
  /// Replaces the accumulator state with a previously taken snapshot.
  void restore(const MomentSnapshot& snap);

  friend bool operator==(const MomentSet&, const MomentSet&) = default;

 private:
  std::size_t n_ = 0;
  std::array<double, kBasisCount * kBasisCount> gram_{};
  std::array<double, kBasisCount> xty_{};
  double yty_ = 0.0;
  std::array<double, kBasisCount * kBasisCount> wgram_{};
  std::array<double, kBasisCount> wxty_{};
  double wyty_ = 0.0;
};

}  // namespace plbhec::fit
