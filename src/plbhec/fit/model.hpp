#pragma once
/// \file model.hpp
/// Fitted performance models: F_p(x) (execution time), G_p(x) (transfer
/// time) and their sum E_p(x), with first and second derivatives for the
/// interior-point solver.

#include <cstdint>
#include <string>
#include <vector>

#include "plbhec/fit/basis.hpp"

namespace plbhec::fit {

/// Linear combination of basis functions: sum_i coeff[i] * term[i](x).
struct CurveModel {
  std::vector<BasisFn> terms;
  std::vector<double> coefficients;
  double r2 = 0.0;  ///< coefficient of determination on the training samples

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] double derivative(double x) const;
  [[nodiscard]] double second_derivative(double x) const;
  [[nodiscard]] bool valid() const {
    return !terms.empty() && terms.size() == coefficients.size();
  }
  /// Human-readable formula, e.g. "0.013 + 1.27*x + 0.004*ln(x)".
  [[nodiscard]] std::string to_string() const;
};

/// Affine transfer-time model G_p(x) = bandwidth_term * x + latency (Eq. 2).
struct TransferModel {
  double slope = 0.0;    ///< a1: inverse effective bandwidth (s per fraction)
  double latency = 0.0;  ///< a2: network + PCIe latency (s)
  double r2 = 1.0;

  [[nodiscard]] double operator()(double x) const {
    return slope * x + latency;
  }
  [[nodiscard]] double derivative(double) const { return slope; }
};

/// Cost regime a PerfModel is evaluated under (see PerfModel::overlap).
enum class CostRegime : std::uint8_t {
  kAdditive,  ///< synchronous transport: E = F + G (paper Eq. 1)
  kOverlap,   ///< pipelined transport: E blends toward max(F, G)
};

/// Complete per-processing-unit model. With a synchronous transport the
/// paper's additive cost E_p(x) = F_p(x) + G_p(x) (Eq. 1) is the truth;
/// once the data plane pipelines blocks, transfer overlaps execution and
/// the steady-state cost per block approaches max(F, G). `overlap` in
/// [0, 1] blends the regimes from the scheduler's observed overlap
/// fraction:
///
///   E(x) = F + G - overlap * softmin(F, G)
///
/// where softmin(F, G) = (F + G - sqrt((F-G)^2 + (beta (F+G))^2)) / 2 is
/// a C^2 smooth minimum, so the interior-point solver keeps exact first
/// and second derivatives in both regimes. overlap = 0 reproduces the
/// additive model bit for bit; overlap = 1 approaches max(F, G) to
/// within beta/2 of the smaller term.
struct PerfModel {
  CurveModel exec;
  TransferModel transfer;
  double overlap = 0.0;  ///< observed pipelining overlap fraction, [0, 1]

  [[nodiscard]] double execution_time(double x) const { return exec(x); }
  [[nodiscard]] double total_time(double x) const;
  [[nodiscard]] double total_derivative(double x) const;
  [[nodiscard]] double total_second_derivative(double x) const;
  [[nodiscard]] CostRegime regime() const {
    return overlap > 0.0 ? CostRegime::kOverlap : CostRegime::kAdditive;
  }
  [[nodiscard]] bool valid() const { return exec.valid(); }
};

}  // namespace plbhec::fit
