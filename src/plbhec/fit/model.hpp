#pragma once
/// \file model.hpp
/// Fitted performance models: F_p(x) (execution time), G_p(x) (transfer
/// time) and their sum E_p(x), with first and second derivatives for the
/// interior-point solver.

#include <string>
#include <vector>

#include "plbhec/fit/basis.hpp"

namespace plbhec::fit {

/// Linear combination of basis functions: sum_i coeff[i] * term[i](x).
struct CurveModel {
  std::vector<BasisFn> terms;
  std::vector<double> coefficients;
  double r2 = 0.0;  ///< coefficient of determination on the training samples

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] double derivative(double x) const;
  [[nodiscard]] double second_derivative(double x) const;
  [[nodiscard]] bool valid() const {
    return !terms.empty() && terms.size() == coefficients.size();
  }
  /// Human-readable formula, e.g. "0.013 + 1.27*x + 0.004*ln(x)".
  [[nodiscard]] std::string to_string() const;
};

/// Affine transfer-time model G_p(x) = bandwidth_term * x + latency (Eq. 2).
struct TransferModel {
  double slope = 0.0;    ///< a1: inverse effective bandwidth (s per fraction)
  double latency = 0.0;  ///< a2: network + PCIe latency (s)
  double r2 = 1.0;

  [[nodiscard]] double operator()(double x) const {
    return slope * x + latency;
  }
  [[nodiscard]] double derivative(double) const { return slope; }
};

/// Complete per-processing-unit model: E_p(x) = F_p(x) + G_p(x).
struct PerfModel {
  CurveModel exec;
  TransferModel transfer;

  [[nodiscard]] double execution_time(double x) const { return exec(x); }
  [[nodiscard]] double total_time(double x) const {
    return exec(x) + transfer(x);
  }
  [[nodiscard]] double total_derivative(double x) const {
    return exec.derivative(x) + transfer.derivative(x);
  }
  [[nodiscard]] double total_second_derivative(double x) const {
    return exec.second_derivative(x);
  }
  [[nodiscard]] bool valid() const { return exec.valid(); }
};

}  // namespace plbhec::fit
