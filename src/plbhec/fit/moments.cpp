#include "plbhec/fit/moments.hpp"

#include <algorithm>

namespace plbhec::fit {

void MomentSet::add(double x, double time) {
  std::array<double, kBasisCount> phi;
  for (std::size_t i = 0; i < kBasisCount; ++i)
    phi[i] = eval(static_cast<BasisFn>(i), x);

  // Same weight the design-matrix path applies to rows and rhs; the normal
  // equations therefore accumulate w^2.
  const double w = 1.0 / std::max(time, 1e-9);
  const double w2 = w * w;

  for (std::size_t i = 0; i < kBasisCount; ++i) {
    for (std::size_t j = i; j < kBasisCount; ++j) {
      const double p = phi[i] * phi[j];
      gram_[i * kBasisCount + j] += p;
      wgram_[i * kBasisCount + j] += w2 * p;
      if (j != i) {
        gram_[j * kBasisCount + i] = gram_[i * kBasisCount + j];
        wgram_[j * kBasisCount + i] = wgram_[i * kBasisCount + j];
      }
    }
    xty_[i] += phi[i] * time;
    wxty_[i] += w2 * phi[i] * time;
  }
  yty_ += time * time;
  wyty_ += w2 * time * time;
  ++n_;
}

void MomentSet::remove(double x, double time) {
  std::array<double, kBasisCount> phi;
  for (std::size_t i = 0; i < kBasisCount; ++i)
    phi[i] = eval(static_cast<BasisFn>(i), x);

  const double w = 1.0 / std::max(time, 1e-9);
  const double w2 = w * w;

  for (std::size_t i = 0; i < kBasisCount; ++i) {
    for (std::size_t j = i; j < kBasisCount; ++j) {
      const double p = phi[i] * phi[j];
      gram_[i * kBasisCount + j] -= p;
      wgram_[i * kBasisCount + j] -= w2 * p;
      if (j != i) {
        gram_[j * kBasisCount + i] = gram_[i * kBasisCount + j];
        wgram_[j * kBasisCount + i] = wgram_[i * kBasisCount + j];
      }
    }
    xty_[i] -= phi[i] * time;
    wxty_[i] -= w2 * phi[i] * time;
  }
  yty_ -= time * time;
  wyty_ -= w2 * time * time;
  --n_;
}

void MomentSet::scale(double lambda) {
  if (lambda == 1.0) return;  // keep the undiscounted path bit-identical
  for (std::size_t i = 0; i < kBasisCount * kBasisCount; ++i) {
    gram_[i] *= lambda;
    wgram_[i] *= lambda;
  }
  for (std::size_t i = 0; i < kBasisCount; ++i) {
    xty_[i] *= lambda;
    wxty_[i] *= lambda;
  }
  yty_ *= lambda;
  wyty_ *= lambda;
}

void MomentSet::clear() { *this = MomentSet{}; }

MomentSnapshot MomentSet::snapshot() const {
  MomentSnapshot snap;
  snap.n = n_;
  snap.gram = gram_;
  snap.xty = xty_;
  snap.yty = yty_;
  snap.wgram = wgram_;
  snap.wxty = wxty_;
  snap.wyty = wyty_;
  return snap;
}

void MomentSet::restore(const MomentSnapshot& snap) {
  n_ = static_cast<std::size_t>(snap.n);
  gram_ = snap.gram;
  xty_ = snap.xty;
  yty_ = snap.yty;
  wgram_ = snap.wgram;
  wxty_ = snap.wxty;
  wyty_ = snap.wyty;
}

}  // namespace plbhec::fit
