#include "plbhec/fit/model.hpp"

#include <cmath>
#include <cstdio>

#include "plbhec/common/contracts.hpp"

namespace plbhec::fit {
namespace {

/// Relative smoothing width of the softmin corner: the C^2 blend departs
/// from the exact min(F, G) by at most ~beta/2 of F + G, enough to keep
/// the interior-point Hessian bounded near F = G without visibly biasing
/// the equalized solve.
constexpr double kSoftminBeta = 0.05;

/// softmin(F, G) = (F + G - s) / 2 with s = sqrt(d^2 + (beta sum)^2),
/// plus first and second derivatives in x. The 1e-30 guard keeps s > 0
/// (and the quotient rule finite) when both curves vanish.
struct Softmin {
  double value = 0.0;
  double d1 = 0.0;
  double d2 = 0.0;
};

Softmin softmin_eval(double f, double g, double df, double dg, double d2f,
                     double d2g) {
  const double d = f - g;
  const double sum = f + g;
  const double dd = df - dg;
  const double dsum = df + dg;
  const double b2 = kSoftminBeta * kSoftminBeta;
  const double s = std::sqrt(d * d + b2 * sum * sum + 1e-30);
  const double ds = (d * dd + b2 * sum * dsum) / s;
  const double d2d = d2f - d2g;
  const double d2sum = d2f + d2g;
  const double d2s = (dd * dd + d * d2d + b2 * (dsum * dsum + sum * d2sum)) / s
                     - ds * ds / s;
  Softmin out;
  out.value = 0.5 * (sum - s);
  out.d1 = 0.5 * (dsum - ds);
  out.d2 = 0.5 * (d2sum - d2s);
  return out;
}

}  // namespace

double PerfModel::total_time(double x) const {
  const double f = exec(x);
  const double g = transfer(x);
  if (overlap <= 0.0) return f + g;
  const Softmin sm = softmin_eval(f, g, 0.0, 0.0, 0.0, 0.0);
  return f + g - overlap * sm.value;
}

double PerfModel::total_derivative(double x) const {
  const double df = exec.derivative(x);
  const double dg = transfer.derivative(x);
  if (overlap <= 0.0) return df + dg;
  const Softmin sm =
      softmin_eval(exec(x), transfer(x), df, dg, 0.0, 0.0);
  return df + dg - overlap * sm.d1;
}

double PerfModel::total_second_derivative(double x) const {
  const double d2f = exec.second_derivative(x);
  if (overlap <= 0.0) return d2f;
  const Softmin sm = softmin_eval(exec(x), transfer(x), exec.derivative(x),
                                  transfer.derivative(x), d2f, 0.0);
  return d2f - overlap * sm.d2;
}

double CurveModel::operator()(double x) const {
  PLBHEC_EXPECTS(valid());
  double acc = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i)
    acc += coefficients[i] * eval(terms[i], x);
  return acc;
}

double CurveModel::derivative(double x) const {
  PLBHEC_EXPECTS(valid());
  double acc = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i)
    acc += coefficients[i] * fit::derivative(terms[i], x);
  return acc;
}

double CurveModel::second_derivative(double x) const {
  PLBHEC_EXPECTS(valid());
  double acc = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i)
    acc += coefficients[i] * fit::second_derivative(terms[i], x);
  return acc;
}

std::string CurveModel::to_string() const {
  if (!valid()) return "<invalid>";
  std::string out;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", coefficients[i]);
    if (i) out += coefficients[i] >= 0.0 ? " + " : " ";
    out += buf;
    if (terms[i] != BasisFn::kOne) {
      out += "*";
      out += name(terms[i]);
    }
  }
  return out;
}

}  // namespace plbhec::fit
