#include "plbhec/fit/model.hpp"

#include <cstdio>

#include "plbhec/common/contracts.hpp"

namespace plbhec::fit {

double CurveModel::operator()(double x) const {
  PLBHEC_EXPECTS(valid());
  double acc = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i)
    acc += coefficients[i] * eval(terms[i], x);
  return acc;
}

double CurveModel::derivative(double x) const {
  PLBHEC_EXPECTS(valid());
  double acc = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i)
    acc += coefficients[i] * fit::derivative(terms[i], x);
  return acc;
}

double CurveModel::second_derivative(double x) const {
  PLBHEC_EXPECTS(valid());
  double acc = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i)
    acc += coefficients[i] * fit::second_derivative(terms[i], x);
  return acc;
}

std::string CurveModel::to_string() const {
  if (!valid()) return "<invalid>";
  std::string out;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", coefficients[i]);
    if (i) out += coefficients[i] >= 0.0 ? " + " : " ";
    out += buf;
    if (terms[i] != BasisFn::kOne) {
      out += "*";
      out += name(terms[i]);
    }
  }
  return out;
}

}  // namespace plbhec::fit
