#include "plbhec/fit/least_squares.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "plbhec/common/stats.hpp"
#include "plbhec/linalg/cholesky.hpp"
#include "plbhec/linalg/qr.hpp"

namespace plbhec::fit {
namespace {

/// kAuto cutover: below this many samples the QR path is both cheap and
/// the historical numerical reference (exact fits on 2-5 points are where
/// normal-equation cancellation would perturb the BIC tie-breaking); at and
/// above it the O(k^3) moment solve wins and agrees with QR to ~1e-9.
constexpr std::size_t kGramMinSamples = 8;

/// Builds the design matrix for a term subset.
linalg::Matrix design_matrix(const SampleSet& samples,
                             std::span<const BasisFn> terms) {
  linalg::Matrix a(samples.size(), terms.size());
  for (std::size_t r = 0; r < samples.size(); ++r)
    for (std::size_t c = 0; c < terms.size(); ++c)
      a(r, c) = eval(terms[c], samples.items()[r].x);
  return a;
}

double compute_bic(double rss, double nn, std::size_t k) {
  const double safe_rss = std::max(rss, 1e-300);
  return nn * std::log(safe_rss / nn) +
         static_cast<double>(k) * std::log(nn);
}

}  // namespace

bool physically_plausible(const CurveModel& model, double x_lo) {
  constexpr std::size_t kGrid = 48;
  double prev = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double worst_drop = 0.0;
  for (std::size_t i = 0; i < kGrid; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(kGrid - 1);
    const double x = x_lo + f * (1.0 - x_lo);
    const double t = model(x);
    if (!std::isfinite(t) || t < 0.0) return false;
    if (i == 0) {
      lo = hi = prev = t;
      continue;
    }
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    worst_drop = std::max(worst_drop, prev - t);
    prev = t;
  }
  const double range = hi - lo;
  return worst_drop <= 0.05 * std::max(range, 1e-300);
}

namespace {

/// Legacy path: rebuild the design matrix and solve by Householder QR with
/// column equilibration. O(n k^2) per fit.
std::optional<FitResult> fit_terms_qr(const SampleSet& samples,
                                      std::span<const BasisFn> terms,
                                      bool relative_weighting) {
  linalg::Matrix a = design_matrix(samples, terms);
  std::vector<double> b = samples.times();

  if (relative_weighting) {
    for (std::size_t r = 0; r < samples.size(); ++r) {
      const double w = 1.0 / std::max(samples.items()[r].time, 1e-9);
      for (std::size_t c = 0; c < terms.size(); ++c) a(r, c) *= w;
      b[r] *= w;
    }
  }

  auto ls = linalg::least_squares(a, b);
  if (!ls) return std::nullopt;

  FitResult result;
  result.model.terms.assign(terms.begin(), terms.end());
  result.model.coefficients = ls->coefficients;

  // Evaluate the *unweighted* R^2 on the raw samples so the acceptance rule
  // matches the paper regardless of the weighting used to fit.
  std::vector<double> predicted(samples.size());
  for (std::size_t r = 0; r < samples.size(); ++r)
    predicted[r] = result.model(samples.items()[r].x);
  const std::vector<double> observed = samples.times();
  result.r2 = r_squared(observed, predicted);
  result.model.r2 = result.r2;

  double rss = 0.0;
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const double d = observed[r] - predicted[r];
    rss += d * d;
  }
  result.bic =
      compute_bic(rss, static_cast<double>(samples.size()), terms.size());
  return result;
}

/// Fast path: solve the k x k sub-Gram system assembled from incrementally
/// maintained moments, recovering RSS/R^2/BIC from the cached unweighted
/// moments. O(k^3) per fit, independent of sample count. Returns nullopt
/// when the equilibrated sub-Gram is too ill-conditioned to certify ~1e-9
/// agreement with QR (the e^x family near x -> 1); the SampleSet caller
/// then falls back to the design-matrix path. `n` is the (possibly
/// fractional, for discounted windows) sample mass behind the moments.
std::optional<FitResult> fit_terms_gram(const MomentSet& m, double n,
                                        std::span<const BasisFn> terms,
                                        bool relative_weighting) {
  const std::size_t k = terms.size();

  linalg::Matrix g(k, k);
  std::vector<double> rhs(k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j)
      g(i, j) = m.gram(terms[i], terms[j], relative_weighting);
    rhs[i] = m.xty(terms[i], relative_weighting);
  }

  const auto solved = linalg::solve_equilibrated_spd(g, rhs);
  if (!solved) return std::nullopt;
  const std::vector<double>& c = solved->x;

  FitResult result;
  result.model.terms.assign(terms.begin(), terms.end());
  result.model.coefficients = c;

  // RSS via the quadratic form ||y - Xc||^2 = y'y - 2 c'X'y + c'G c over
  // the *unweighted* moments (acceptance R^2 is always unweighted).
  double ctb = 0.0;
  double ctgc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    ctb += c[i] * m.xty(terms[i]);
    double gc = 0.0;
    for (std::size_t j = 0; j < k; ++j)
      gc += m.gram(terms[i], terms[j]) * c[j];
    ctgc += c[i] * gc;
  }
  const double yty = m.yty();
  const double rss = std::max(yty - 2.0 * ctb + ctgc, 0.0);
  const double tss = yty - m.sum_y() * m.sum_y() / n;

  // Mirror r_squared()'s constant-observation edge case, with a relative
  // floor standing in for its exact ss_tot == 0 test (the moment-space TSS
  // carries cancellation noise of order eps * y'y).
  if (tss <= 1e-12 * std::max(yty, 1e-300))
    result.r2 = rss <= 1e-12 * std::max(yty, 1e-300) ? 1.0 : 0.0;
  else
    result.r2 = 1.0 - rss / tss;
  result.model.r2 = result.r2;
  result.bic = compute_bic(rss, n, k);
  return result;
}

}  // namespace

std::optional<FitResult> fit_terms(const SampleSet& samples,
                                   std::span<const BasisFn> terms,
                                   bool relative_weighting, FitEngine engine,
                                   FitCounters* counters) {
  if (terms.empty() || samples.size() < terms.size()) return std::nullopt;

  const bool try_gram =
      engine == FitEngine::kGram ||
      (engine == FitEngine::kAuto && samples.size() >= kGramMinSamples);
  if (try_gram) {
    if (auto fitted =
            fit_terms_gram(samples.moments(), static_cast<double>(samples.size()),
                           terms, relative_weighting)) {
      if (counters) ++counters->gram_solves;
      return fitted;
    }
    if (counters) ++counters->qr_fallbacks;
  }
  if (counters) ++counters->qr_solves;
  return fit_terms_qr(samples, terms, relative_weighting);
}

std::optional<FitResult> fit_terms(const MomentSet& moments, double effective_n,
                                   std::span<const BasisFn> terms,
                                   bool relative_weighting) {
  if (terms.empty() || effective_n < static_cast<double>(terms.size()))
    return std::nullopt;
  return fit_terms_gram(moments, effective_n, terms, relative_weighting);
}

FitResult select_model_from(const SampleSet& samples,
                            std::span<const BasisFn> candidate_terms,
                            const SelectionOptions& options,
                            FitCounters* counters) {
  FitResult best_plausible;
  FitResult best_any;
  best_plausible.bic = std::numeric_limits<double>::infinity();
  best_any.bic = std::numeric_limits<double>::infinity();

  const std::size_t m = candidate_terms.size();
  const std::size_t limit = std::min(options.max_terms, m);

  // Degrees-of-freedom guard: an interpolating fit (params == samples) has
  // R^2 = 1 by construction and garbage extrapolation. Exception: with two
  // samples an exact line is still allowed — slope information is vital
  // for the block selection (a flat model hands the unit an arbitrary
  // share) and a 2-point line through a monotone curve extrapolates sanely.
  const std::size_t max_params =
      samples.size() < 2
          ? 1
          : std::max<std::size_t>(
                2, samples.size() /
                       std::max<std::size_t>(1, options.samples_per_param));

  double x_lo = 1.0;
  for (const auto& s : samples.items()) x_lo = std::min(x_lo, s.x);

  // Scarce samples (< 6): parsimony-first enumeration — try all subsets
  // with exactly `s` non-intercept terms, smallest s first, and stop at
  // the first size class that yields a physically plausible fit over the
  // escalation bar. Extra terms cut residuals on a handful of probe
  // points almost for free but wreck the extrapolation the block
  // selection relies on; this ordering operationalizes the paper's
  // "0.7 ... prevents overfitting" rule. With >= 6 samples the BIC has
  // real degrees of freedom to price complexity, so the plain
  // BIC-among-plausible winner (computed below either way) is used.
  const bool hierarchical = samples.size() < 6;
  PLBHEC_EXPECTS(m < 20);
  const std::size_t subsets = std::size_t{1} << m;
  std::vector<BasisFn> terms;
  for (std::size_t size_class = 1; size_class <= limit; ++size_class) {
    FitResult best_of_class;
    best_of_class.bic = std::numeric_limits<double>::infinity();
    bool class_found = false;
    for (std::size_t mask = 1; mask < subsets; ++mask) {
      const auto bits = static_cast<std::size_t>(__builtin_popcountll(mask));
      if (bits != size_class) continue;
      terms.clear();
      if (options.include_intercept) terms.push_back(BasisFn::kOne);
      for (std::size_t i = 0; i < m; ++i)
        if (mask & (std::size_t{1} << i)) terms.push_back(candidate_terms[i]);
      if (terms.size() > max_params) continue;

      auto fitted = fit_terms(samples, terms, options.relative_weighting,
                              options.engine, counters);
      if (!fitted) continue;

      if (fitted->bic < best_any.bic - 1e-12) best_any = *fitted;
      if (options.physical_filter &&
          !physically_plausible(fitted->model, x_lo))
        continue;
      if (fitted->bic < best_plausible.bic - 1e-12) best_plausible = *fitted;
      if (fitted->bic < best_of_class.bic - 1e-12) {
        best_of_class = *fitted;
        class_found = true;
      }
    }
    const double bar = std::max(options.class_r2, options.r2_threshold);
    if (hierarchical && class_found && best_of_class.r2 >= bar) {
      best_of_class.acceptable = best_of_class.r2 >= options.r2_threshold;
      return best_of_class;
    }
  }

  FitResult best =
      best_plausible.model.valid()
          ? best_plausible
          : best_any;  // all candidates unphysical: keep the best raw fit

  // Intercept-only fallback when nothing else was fittable (e.g. a single
  // sample): model the unit as a constant.
  if (!best.model.valid() && options.include_intercept && !samples.empty()) {
    std::vector<BasisFn> constant{BasisFn::kOne};
    if (auto fitted = fit_terms(samples, constant, false, options.engine,
                                counters))
      best = *fitted;
  }

  best.acceptable = best.model.valid() && best.r2 >= options.r2_threshold;
  return best;
}

FitResult select_model(const SampleSet& samples,
                       const SelectionOptions& options,
                       FitCounters* counters) {
  return select_model_from(samples, paper_terms(), options, counters);
}

TransferModel fit_transfer(const SampleSet& samples) {
  TransferModel model;
  if (samples.empty()) return model;
  if (samples.size() == 1) {
    // With one observation assume pure bandwidth cost.
    model.slope = samples.items()[0].time / samples.items()[0].x;
    model.latency = 0.0;
    return model;
  }

  std::vector<BasisFn> affine{BasisFn::kOne, BasisFn::kX};
  auto fitted = fit_terms(samples, affine);
  if (fitted) {
    model.latency = fitted->model.coefficients[0];
    model.slope = fitted->model.coefficients[1];
    model.r2 = fitted->r2;
  }

  // Physical clamps: negative latency or bandwidth terms are fit noise.
  if (model.latency < 0.0) {
    model.latency = 0.0;
    // Re-fit slope-only through the origin: slope = sum(x t) / sum(x^2).
    double num = 0.0;
    double den = 0.0;
    for (const auto& s : samples.items()) {
      num += s.x * s.time;
      den += s.x * s.x;
    }
    model.slope = den > 0.0 ? num / den : 0.0;
  }
  if (model.slope < 0.0) {
    model.slope = 0.0;
    const std::vector<double> times = samples.times();
    model.latency = mean(times);
  }
  return model;
}

}  // namespace plbhec::fit
