#pragma once
/// \file least_squares.hpp
/// Curve fitting for the performance-modeling phase (§III-B):
///  - fit a fixed term subset by (optionally weighted) least squares;
///  - select the best subset of the paper's basis set by BIC with the
///    R^2 >= threshold acceptance rule;
///  - fit the affine transfer model G_p(x) = a1 x + a2 with non-negativity
///    clamping (bandwidth and latency cannot be negative).

#include <optional>
#include <span>

#include "plbhec/fit/model.hpp"
#include "plbhec/fit/samples.hpp"

namespace plbhec::fit {

/// Which linear-algebra path solves a term-subset fit.
enum class FitEngine {
  kAuto,  ///< Gram/Cholesky once enough samples amortize it, else QR
  kQr,    ///< always rebuild the design matrix and solve by Householder QR
  kGram,  ///< always solve the cached-moment normal equations (QR only as
          ///< a conditioning fallback)
};

/// Counters describing which path fits actually took; callers aggregate
/// them into scheduler statistics.
struct FitCounters {
  std::size_t gram_solves = 0;   ///< subset solved from cached moments
  std::size_t qr_solves = 0;     ///< design-matrix QR solves
  std::size_t qr_fallbacks = 0;  ///< Gram path bailed out on conditioning

  void merge(const FitCounters& o) {
    gram_solves += o.gram_solves;
    qr_solves += o.qr_solves;
    qr_fallbacks += o.qr_fallbacks;
  }
};

/// Options for subset model selection.
struct SelectionOptions {
  /// Acceptance threshold on the coefficient of determination; the paper
  /// uses 0.7 ("a good approximation ... and prevents overfitting").
  double r2_threshold = 0.7;
  /// Parsimony escalation bar: the subset search stops at the smallest
  /// term-count class whose best fit reaches this R^2. Kept well above
  /// r2_threshold so genuinely curved profiles (GPU efficiency ramps) are
  /// not flattened into a line the moment the line scrapes past 0.7.
  double class_r2 = 0.98;
  /// Largest number of non-intercept terms in a candidate subset. The
  /// paper's Eq. (1) allows any combination; 3 keeps selection O(60) fits
  /// and prevents overfitting on the few probe points available early.
  std::size_t max_terms = 3;
  /// Always include the intercept (launch/queueing overhead) term.
  bool include_intercept = true;
  /// Weight samples by 1/time (relative-error emphasis) instead of
  /// uniformly. Off by default to match plain least squares in the paper.
  bool relative_weighting = false;
  /// Require at least this many samples per fitted parameter; prevents
  /// interpolating fits (4 points, 4 params, R^2 = 1) whose extrapolation
  /// is meaningless. 2 means a 4-point probe can support 2 parameters.
  std::size_t samples_per_param = 2;
  /// Reject candidate models that go negative or decrease substantially on
  /// (0, 1]: execution time is physically non-negative and non-decreasing
  /// in the block size. Falls back to the unfiltered best when every
  /// candidate violates it.
  bool physical_filter = true;
  /// Numerical path for subset solves. kAuto switches from QR to the
  /// cached-moment Gram/Cholesky path once the sample count makes the
  /// O(k^3) solve a win (and the small-n numerics QR-identical).
  FitEngine engine = FitEngine::kAuto;

  /// Field-wise equality; the profile database keys its fit cache on this.
  friend bool operator==(const SelectionOptions&,
                         const SelectionOptions&) = default;
};

/// Result of fitting one processing unit's execution-time curve.
struct FitResult {
  CurveModel model;
  double r2 = 0.0;
  double bic = 0.0;
  bool acceptable = false;  ///< r2 >= threshold
};

/// Fits the given term subset to the samples. Returns nullopt when the
/// system is underdetermined (fewer samples than terms) or degenerate.
/// `engine` picks the solver path (see FitEngine); `counters`, when given,
/// records which path ran.
[[nodiscard]] std::optional<FitResult> fit_terms(
    const SampleSet& samples, std::span<const BasisFn> terms,
    bool relative_weighting = false, FitEngine engine = FitEngine::kAuto,
    FitCounters* counters = nullptr);

/// Moments-only subset fit: solves the k x k sub-Gram system from an
/// externally maintained MomentSet (e.g. a discounted drift window) with
/// `effective_n` standing in for the sample count in the RSS/R^2/BIC
/// recovery — for a forgetting-factor window that is the discounted mass
/// ~1/(1-lambda), not the raw add() count. Gram-only: there are no raw
/// rows to rebuild a design matrix from, so conditioning failures return
/// nullopt instead of falling back to QR.
[[nodiscard]] std::optional<FitResult> fit_terms(
    const MomentSet& moments, double effective_n,
    std::span<const BasisFn> terms, bool relative_weighting = false);

/// Enumerates subsets of `candidate_terms` (size 1..max_terms, plus the
/// intercept when enabled), fits each, and returns the best by BIC.
/// `acceptable` reflects the paper's R^2 >= threshold rule.
[[nodiscard]] FitResult select_model(const SampleSet& samples,
                                     const SelectionOptions& options = {},
                                     FitCounters* counters = nullptr);

/// Same but with an explicit candidate list (used by the basis ablation).
[[nodiscard]] FitResult select_model_from(
    const SampleSet& samples, std::span<const BasisFn> candidate_terms,
    const SelectionOptions& options = {}, FitCounters* counters = nullptr);

/// Fits G_p(x) = slope * x + latency, clamping both to be non-negative.
[[nodiscard]] TransferModel fit_transfer(const SampleSet& samples);

/// The candidate filter's physics check: time curves must stay non-negative
/// and must not decrease substantially anywhere on (x_lo, 1] (small local
/// dips < 5% of the curve's range are tolerated as fit noise). Exposed for
/// selection paths outside this file (the drift subsystem's moments-only
/// recent-window selection applies the same rule).
[[nodiscard]] bool physically_plausible(const CurveModel& model, double x_lo);

}  // namespace plbhec::fit
