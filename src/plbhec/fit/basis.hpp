#pragma once
/// \file basis.hpp
/// The paper's basis-function set for performance-curve fitting (§III-B):
/// F_p[x] = a_1 f_1(x) + ... + a_n f_n(x), with f_i drawn from
/// { ln x, x, x^2, x^3, e^x, x·e^x, x·ln x }. We add a constant term to the
/// set because real device curves have a launch-overhead intercept.
///
/// Block sizes are normalized fractions of the total input (x in (0, 1]),
/// so all basis functions are well-behaved; ln-terms clamp x away from 0.

#include <span>
#include <string>
#include <vector>

namespace plbhec::fit {

enum class BasisFn {
  kOne,    ///< 1 (intercept / launch overhead)
  kLnX,    ///< ln x
  kX,      ///< x
  kX2,     ///< x^2
  kX3,     ///< x^3
  kExpX,   ///< e^x
  kXExpX,  ///< x e^x
  kXLnX,   ///< x ln x
};

/// Smallest block fraction considered; ln-terms clamp to this.
inline constexpr double kMinX = 1e-9;

[[nodiscard]] double eval(BasisFn f, double x);
[[nodiscard]] double derivative(BasisFn f, double x);
[[nodiscard]] double second_derivative(BasisFn f, double x);
[[nodiscard]] std::string name(BasisFn f);

/// The full paper set (without the intercept, which callers add separately).
[[nodiscard]] std::span<const BasisFn> paper_terms();

/// All basis functions including the intercept.
[[nodiscard]] std::span<const BasisFn> all_terms();

}  // namespace plbhec::fit
