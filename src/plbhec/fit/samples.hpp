#pragma once
/// \file samples.hpp
/// Measurement samples collected during the performance-modeling phase:
/// (block-size fraction, observed time) pairs for execution and transfer.

#include <cstddef>
#include <vector>

#include "plbhec/common/contracts.hpp"
#include "plbhec/fit/moments.hpp"

namespace plbhec::fit {

/// One profiling observation for a processing unit.
struct Sample {
  double x = 0.0;     ///< block size as a fraction of the total input, (0, 1]
  double time = 0.0;  ///< observed seconds
};

/// Growable set of samples with cheap column views for the fitters, plus
/// incrementally maintained full-basis moments (Gram matrix, X^T y, y^T y)
/// so subset fits can be solved in O(k^3) without revisiting the samples.
class SampleSet {
 public:
  void add(double x, double time) {
    PLBHEC_EXPECTS(x > 0.0);
    PLBHEC_EXPECTS(time >= 0.0);
    samples_.push_back({x, time});
    moments_.add(x, time);
  }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const std::vector<Sample>& items() const { return samples_; }

  [[nodiscard]] std::vector<double> xs() const {
    std::vector<double> v;
    v.reserve(samples_.size());
    for (const auto& s : samples_) v.push_back(s.x);
    return v;
  }
  [[nodiscard]] std::vector<double> times() const {
    std::vector<double> v;
    v.reserve(samples_.size());
    for (const auto& s : samples_) v.push_back(s.time);
    return v;
  }

  [[nodiscard]] const MomentSet& moments() const { return moments_; }

  /// Replaces the set with persisted samples plus their moment snapshot,
  /// skipping the per-sample rank-1 updates. The snapshot must describe
  /// exactly these samples (count checked; values trusted — the store
  /// checksums its payload).
  void restore(std::vector<Sample> samples, const MomentSnapshot& snap) {
    PLBHEC_EXPECTS(snap.n == samples.size());
    samples_ = std::move(samples);
    moments_.restore(snap);
  }

  void clear() {
    samples_.clear();
    moments_.clear();
  }

 private:
  std::vector<Sample> samples_;
  MomentSet moments_;
};

}  // namespace plbhec::fit
