#pragma once
/// \file hdss.hpp
/// HDSS — Heterogeneous Dynamic Self-Scheduling (Belviranli, Bhuyan &
/// Gupta, TACO 2013), as described and implemented by the PLB-HeC paper:
///
///  * adaptive phase: the scheduler works through geometrically growing
///    phase windows; within each window a unit receives its *weighted
///    share* (weights from the current speed estimates, uniform in the
///    first window). Each unit's speed samples (grains/s vs block size)
///    are fitted with a logarithmic curve speed(s) = a + b ln s, and the
///    unit's scalar weight is the predicted speed at a reference block.
///    The phase ends when every unit's weight estimate has stabilized (or
///    an adaptive-phase data cap is hit). Probing is asynchronous — a unit
///    advances to its next-window block as soon as it finishes.
///  * completion phase: the remaining input is divided among the units
///    proportionally to the weights *once* ("once determined, these
///    weights are not changed throughout the execution"); each unit works
///    through its fixed allocation in geometrically decreasing blocks.
///    Weight misestimates therefore surface as end-of-run idleness —
///    the effect PLB-HeC's curve models are designed to avoid.
///
/// The deliberate limitation reproduced here (and exploited by the paper's
/// comparison): each unit is modeled by a *single number*, and the weights
/// are never revised during the completion phase.

#include <vector>

#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/samples.hpp"
#include "plbhec/rt/scheduler.hpp"

namespace plbhec::obs {
class CounterRegistry;
}

namespace plbhec::baselines {

struct HdssOptions {
  std::size_t initial_block = 0;   ///< 0 = engine hint
  double growth = 2.0;             ///< adaptive-phase block growth factor
  double convergence = 0.05;       ///< relative weight change to converge
  std::size_t min_samples = 3;     ///< samples before testing convergence
  double adaptive_cap = 0.15;      ///< max fraction of input for phase 1
  double completion_factor = 0.5;  ///< share of remaining handed per task
  std::size_t min_block = 1;
};

class HdssScheduler final : public rt::Scheduler {
 public:
  explicit HdssScheduler(HdssOptions options = {});

  [[nodiscard]] std::string name() const override { return "HDSS"; }

  void start(const std::vector<rt::UnitInfo>& units,
             const rt::WorkInfo& work) override;
  [[nodiscard]] std::size_t next_block(rt::UnitId unit, double now) override;
  void on_complete(const rt::TaskObservation& obs) override;
  void on_unit_failed(rt::UnitId unit, std::size_t lost_grains,
                      double now) override;

  /// Normalized weights (Fig. 6 comparison data).
  [[nodiscard]] std::vector<double> weight_fractions() const;
  [[nodiscard]] bool in_completion_phase() const { return completion_; }
  /// Speed samples recorded during the adaptive phase (for diagnostics and
  /// tests): x = block fraction, time = observed grains/s.
  [[nodiscard]] const fit::SampleSet& speed_samples(rt::UnitId u) const {
    return speed_samples_.at(u);
  }
  /// Which numerical path the weight-update log fits took (the log fit
  /// rides the same SampleSet moments as PLB-HeC's curve selection).
  [[nodiscard]] const fit::FitCounters& fit_counters() const {
    return fit_counters_;
  }

  /// Publishes the weight-fit counters under the "hdss." prefix (one
  /// snapshot per call; values overwrite).
  void publish_counters(obs::CounterRegistry& registry) const;

 private:
  void update_weight(rt::UnitId u);
  [[nodiscard]] bool all_converged() const;

  HdssOptions options_;
  rt::WorkInfo work_;
  std::size_t units_n_ = 0;
  std::size_t initial_ = 1;
  std::vector<fit::SampleSet> speed_samples_;  ///< x = block fraction, t = grains/s
  std::vector<double> weight_;
  std::vector<double> prev_weight_;
  std::vector<std::size_t> phase_index_;  ///< adaptive window reached per unit
  std::vector<bool> converged_;
  std::vector<bool> failed_;
  std::vector<std::size_t> adaptive_grains_;
  std::vector<double> allocation_;  ///< fixed completion-phase quota
  fit::FitCounters fit_counters_;
  bool completion_ = false;
  std::size_t issued_ = 0;  ///< grains handed out so far (upper bound)
};

}  // namespace plbhec::baselines
