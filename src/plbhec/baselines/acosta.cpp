#include "plbhec/baselines/acosta.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"
#include "plbhec/obs/sink.hpp"

namespace plbhec::baselines {

AcostaScheduler::AcostaScheduler(AcostaOptions options)
    : options_(std::move(options)) {}

void AcostaScheduler::start(const std::vector<rt::UnitInfo>& units,
                            const rt::WorkInfo& work) {
  PLBHEC_EXPECTS(!units.empty());
  work_ = work;
  units_n_ = units.size();
  share_.assign(units_n_, 1.0 / static_cast<double>(units_n_));
  pending_.assign(units_n_, 0);
  iter_time_.assign(units_n_, 0.0);
  iter_grains_.assign(units_n_, 0);
  failed_.assign(units_n_, false);
  equilibrium_ = units_n_ == 1;
  iterations_ = 0;
  plan_iteration();
}

void AcostaScheduler::plan_iteration() {
  const double window = options_.step_fraction *
                        static_cast<double>(work_.total_grains);
  for (std::size_t u = 0; u < units_n_; ++u) {
    if (failed_[u]) {
      pending_[u] = 0;
      continue;
    }
    pending_[u] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(share_[u] * window)));
    iter_time_[u] = 0.0;
    iter_grains_[u] = 0;
  }
  ++iterations_;
}

std::size_t AcostaScheduler::next_block(rt::UnitId unit, double /*now*/) {
  PLBHEC_EXPECTS(unit < units_n_);
  if (failed_[unit]) return 0;
  if (equilibrium_) {
    // Post-convergence: keep handing each unit its share of an iteration
    // window without synchronizing.
    const double window = options_.step_fraction *
                          static_cast<double>(work_.total_grains);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(share_[unit] * window)));
  }
  const std::size_t block = pending_[unit];
  pending_[unit] = 0;  // one chunk per iteration, then wait for the barrier
  return block;
}

void AcostaScheduler::on_complete(const rt::TaskObservation& obs) {
  PLBHEC_EXPECTS(obs.unit < units_n_);
  iter_time_[obs.unit] += obs.transfer_seconds + obs.exec_seconds;
  iter_grains_[obs.unit] += obs.grains;
}

void AcostaScheduler::on_barrier(double now) {
  if (equilibrium_) return;

  // Compute the Relative Power vector from this iteration's measurements.
  double srp = 0.0;
  std::vector<double> rp(units_n_, 0.0);
  double min_t = 0.0;
  double max_t = 0.0;
  bool first = true;
  for (std::size_t u = 0; u < units_n_; ++u) {
    if (failed_[u] || iter_grains_[u] == 0) continue;
    rp[u] = static_cast<double>(iter_grains_[u]) /
            std::max(iter_time_[u], 1e-12);
    srp += rp[u];
    if (first || iter_time_[u] < min_t) min_t = iter_time_[u];
    if (first || iter_time_[u] > max_t) max_t = iter_time_[u];
    first = false;
  }
  if (srp <= 0.0) {
    plan_iteration();
    return;
  }

  // Convergence test on the time spread (the user threshold of the paper).
  const double mean_t = 0.5 * (min_t + max_t);
  const double spread = mean_t > 0.0 ? (max_t - min_t) / mean_t : 0.0;
  if (mean_t > 0.0 && (max_t - min_t) <= options_.threshold * mean_t) {
    equilibrium_ = true;
    PLBHEC_OBS_RECORD(sink_,
                      {now, obs::EventKind::kIterationSync, obs::kNoUnit,
                       spread, 0.0, iterations_, /*equilibrium=*/1});
    return;
  }
  PLBHEC_OBS_RECORD(sink_, {now, obs::EventKind::kIterationSync, obs::kNoUnit,
                            spread, 0.0, iterations_, /*equilibrium=*/0});

  // Damped update toward the measured relative powers (asymptotic).
  double sum = 0.0;
  for (std::size_t u = 0; u < units_n_; ++u) {
    if (failed_[u]) {
      share_[u] = 0.0;
      continue;
    }
    const double target = rp[u] / srp;
    share_[u] = (1.0 - options_.damping) * share_[u] +
                options_.damping * target;
    sum += share_[u];
  }
  PLBHEC_ASSERT(sum > 0.0);
  for (double& s : share_) s /= sum;

  plan_iteration();
}

void AcostaScheduler::on_unit_failed(rt::UnitId unit, std::size_t,
                                     double /*now*/) {
  PLBHEC_EXPECTS(unit < units_n_);
  if (failed_[unit]) return;
  failed_[unit] = true;
  double sum = 0.0;
  share_[unit] = 0.0;
  for (std::size_t u = 0; u < units_n_; ++u) sum += share_[u];
  if (sum > 0.0)
    for (double& s : share_) s /= sum;
  // Force re-iteration so survivors pick up the slack.
  equilibrium_ = false;
}

}  // namespace plbhec::baselines
