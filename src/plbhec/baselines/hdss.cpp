#include "plbhec/baselines/hdss.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"
#include "plbhec/fit/least_squares.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/obs/sink.hpp"

namespace plbhec::baselines {

HdssScheduler::HdssScheduler(HdssOptions options)
    : options_(std::move(options)) {}

void HdssScheduler::start(const std::vector<rt::UnitInfo>& units,
                          const rt::WorkInfo& work) {
  PLBHEC_EXPECTS(!units.empty());
  work_ = work;
  units_n_ = units.size();
  initial_ = options_.initial_block
                 ? options_.initial_block
                 : std::max<std::size_t>(1, work.initial_block);
  speed_samples_.assign(units_n_, {});
  weight_.assign(units_n_, 0.0);
  prev_weight_.assign(units_n_, 0.0);
  phase_index_.assign(units_n_, 0);
  converged_.assign(units_n_, false);
  failed_.assign(units_n_, false);
  adaptive_grains_.assign(units_n_, 0);
  allocation_.assign(units_n_, 0.0);
  fit_counters_ = {};
  completion_ = units_n_ == 1;  // nothing to weigh with one unit
  if (completion_) allocation_[0] = static_cast<double>(work.total_grains);
  issued_ = 0;
}

std::vector<double> HdssScheduler::weight_fractions() const {
  std::vector<double> f(weight_);
  double sum = 0.0;
  for (std::size_t u = 0; u < f.size(); ++u) {
    if (failed_[u]) f[u] = 0.0;
    sum += f[u];
  }
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(f.size());
    for (double& v : f) v = uniform;
    return f;
  }
  for (double& v : f) v /= sum;
  return f;
}

bool HdssScheduler::all_converged() const {
  for (std::size_t u = 0; u < units_n_; ++u)
    if (!failed_[u] && !converged_[u]) return false;
  return true;
}

void HdssScheduler::update_weight(rt::UnitId u) {
  // Logarithmic fit speed(x) = a + b ln(x); weight = predicted speed at a
  // large reference block (10% of the input), which captures the
  // saturated throughput HDSS uses as the unit's scalar weight.
  const auto& samples = speed_samples_[u];
  if (samples.empty()) return;

  double x_lo = samples.items()[0].x;
  double x_hi = x_lo;
  double speed_mean = 0.0;
  double speed_max = 0.0;
  for (const auto& s : samples.items()) {
    x_lo = std::min(x_lo, s.x);
    x_hi = std::max(x_hi, s.x);
    speed_mean += s.time;
    speed_max = std::max(speed_max, s.time);
  }
  speed_mean /= static_cast<double>(samples.size());

  double w = speed_mean;
  // The log fit only carries information when the sampled block sizes span
  // a real range; an (near-)exact fit through clustered x values has an
  // arbitrary slope and extrapolates garbage.
  if (samples.size() >= 3 && x_hi > 1.5 * x_lo) {
    std::vector<fit::BasisFn> log_terms{fit::BasisFn::kOne,
                                        fit::BasisFn::kLnX};
    if (const auto fitted =
            fit::fit_terms(samples, log_terms, /*relative_weighting=*/false,
                           fit::FitEngine::kAuto, &fit_counters_)) {
      const double x_ref = 0.10;
      const double predicted = fitted->model(x_ref);
      // Saturating-throughput prior: the asymptotic speed cannot be far
      // above (or below) what has actually been observed.
      if (predicted > 0.0)
        w = std::clamp(predicted, 0.5 * speed_mean, 3.0 * speed_max);
    }
  }
  prev_weight_[u] = weight_[u];
  weight_[u] = w;

  if (samples.size() >= options_.min_samples && prev_weight_[u] > 0.0) {
    const double change =
        std::fabs(weight_[u] - prev_weight_[u]) / prev_weight_[u];
    if (change < options_.convergence) converged_[u] = true;
  }
  // Cluster-wide adaptive-phase data cap: force the completion phase when
  // probing has consumed its budget even if some weight is still drifting.
  std::size_t adaptive_total = 0;
  for (std::size_t i = 0; i < units_n_; ++i)
    adaptive_total += adaptive_grains_[i];
  if (static_cast<double>(adaptive_total) >=
      options_.adaptive_cap * static_cast<double>(work_.total_grains))
    for (std::size_t i = 0; i < units_n_; ++i) converged_[i] = true;
}

std::size_t HdssScheduler::next_block(rt::UnitId unit, double /*now*/) {
  PLBHEC_EXPECTS(unit < units_n_);
  if (failed_[unit]) return 0;

  std::size_t block = 0;
  if (!completion_) {
    // Adaptive phase: geometrically growing probe blocks, the same size
    // schedule for every unit. This is the "non-optimal block sizes ...
    // used to estimate the computational capabilities" the PLB-HeC paper
    // identifies as HDSS's main source of idleness (Fig. 7): slow units
    // grind through the same probe sizes as fast ones.
    const double size = static_cast<double>(initial_) *
                        std::pow(options_.growth,
                                 static_cast<double>(phase_index_[unit]));
    block = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(size)));
  } else {
    // Fixed allocation, decreasing blocks within it. Once the unit's own
    // quota is exhausted it only nibbles at leftover pool grains.
    const double size =
        allocation_[unit] > 1.0
            ? options_.completion_factor * allocation_[unit]
            : static_cast<double>(options_.min_block);
    block = std::max<std::size_t>(
        options_.min_block, static_cast<std::size_t>(std::llround(size)));
    allocation_[unit] -= static_cast<double>(block);
  }
  issued_ += block;
  return block;
}

void HdssScheduler::on_complete(const rt::TaskObservation& obs) {
  PLBHEC_EXPECTS(obs.unit < units_n_);
  if (completion_) return;

  // Adaptive phase bookkeeping: record the observed processing speed.
  adaptive_grains_[obs.unit] += obs.grains;
  const double x = static_cast<double>(obs.grains) /
                   static_cast<double>(work_.total_grains);
  const double duration = obs.transfer_seconds + obs.exec_seconds;
  const double speed = static_cast<double>(obs.grains) /
                       std::max(duration, 1e-12);
  speed_samples_[obs.unit].add(x, speed);
  update_weight(obs.unit);
  const double rel_change =
      prev_weight_[obs.unit] > 0.0
          ? std::fabs(weight_[obs.unit] - prev_weight_[obs.unit]) /
                prev_weight_[obs.unit]
          : 0.0;
  PLBHEC_OBS_RECORD(
      sink_, {obs.finish_time, obs::EventKind::kWeightUpdate,
              static_cast<std::uint32_t>(obs.unit), weight_[obs.unit],
              rel_change, speed_samples_[obs.unit].size(), 0});

  if (!converged_[obs.unit]) ++phase_index_[obs.unit];
  if (all_converged() && !completion_) {
    completion_ = true;
    PLBHEC_OBS_RECORD(sink_,
                      {obs.finish_time, obs::EventKind::kPhaseChange,
                       obs::kNoUnit, static_cast<double>(issued_), 0.0,
                       /*phase=*/1, 0});
    // Divide the remaining input once, by the final weights.
    const std::size_t remaining =
        work_.total_grains > issued_ ? work_.total_grains - issued_ : 0;
    const std::vector<double> shares = weight_fractions();
    allocation_.assign(units_n_, 0.0);
    for (std::size_t u = 0; u < units_n_; ++u)
      allocation_[u] = shares[u] * static_cast<double>(remaining);
  }
}

void HdssScheduler::publish_counters(obs::CounterRegistry& registry) const {
  registry.set("hdss.fit.gram_solves", fit_counters_.gram_solves);
  registry.set("hdss.fit.qr_solves", fit_counters_.qr_solves);
  registry.set("hdss.fit.qr_fallbacks", fit_counters_.qr_fallbacks);
}

void HdssScheduler::on_unit_failed(rt::UnitId unit, std::size_t lost_grains,
                                   double /*now*/) {
  PLBHEC_EXPECTS(unit < units_n_);
  failed_[unit] = true;
  issued_ -= std::min<std::size_t>(lost_grains, issued_);
  if (completion_) {
    // Spread the dead unit's outstanding quota over the survivors
    // proportionally to their weights.
    const double orphaned =
        allocation_[unit] + static_cast<double>(lost_grains);
    allocation_[unit] = 0.0;
    const std::vector<double> shares = weight_fractions();
    for (std::size_t u = 0; u < units_n_; ++u)
      if (!failed_[u]) allocation_[u] += shares[u] * orphaned;
  }
}

}  // namespace plbhec::baselines
