#include "plbhec/baselines/static_profile.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"
#include "plbhec/obs/sink.hpp"

namespace plbhec::baselines {

StaticProfileScheduler::StaticProfileScheduler(std::vector<double> weights,
                                               double step_fraction)
    : weights_(std::move(weights)), step_fraction_(step_fraction) {
  PLBHEC_EXPECTS(!weights_.empty());
  double sum = 0.0;
  for (double w : weights_) {
    PLBHEC_EXPECTS(w >= 0.0);
    sum += w;
  }
  PLBHEC_EXPECTS(sum > 0.0);
  for (double& w : weights_) w /= sum;
}

void StaticProfileScheduler::start(const std::vector<rt::UnitInfo>& units,
                                   const rt::WorkInfo& work) {
  PLBHEC_EXPECTS(units.size() == weights_.size());
  failed_.assign(units.size(), false);
  work_ = work;
}

std::size_t StaticProfileScheduler::next_block(rt::UnitId unit,
                                               double /*now*/) {
  PLBHEC_EXPECTS(unit < weights_.size());
  if (failed_[unit]) return 0;
  const double window =
      step_fraction_ * static_cast<double>(work_.total_grains);
  const double size = weights_[unit] * window;
  if (size <= 0.0) return 0;
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(size)));
}

void StaticProfileScheduler::on_unit_failed(rt::UnitId unit, std::size_t,
                                            double now) {
  // Static algorithm: no redistribution. The unit's share is simply lost
  // to the pool and picked up grain-by-grain by whoever asks last.
  PLBHEC_EXPECTS(unit < weights_.size());
  failed_[unit] = true;
  PLBHEC_OBS_RECORD(sink_, {now, obs::EventKind::kWeightUpdate,
                            static_cast<std::uint32_t>(unit),
                            /*weight=*/0.0, /*rel_change=*/1.0, 0, 0});
}

std::vector<double> oracle_static_weights(const sim::SimCluster& cluster,
                                          const sim::WorkloadProfile& profile,
                                          std::size_t total_grains,
                                          double bytes_per_grain) {
  PLBHEC_EXPECTS(total_grains > 0);
  const std::size_t n = cluster.size();
  std::vector<double> weights(n, 0.0);

  // Equal-time split via bisection on the common finish time T using the
  // *true* device models (the oracle): unit g takes x_g(T) grains where
  // x_g is the inverse of its modeled time curve.
  auto unit_time = [&](std::size_t u, double grains) {
    const auto& su = cluster.unit(u);
    const double bytes = grains * bytes_per_grain;
    return su.path.transfer_seconds(bytes) +
           su.device->execution_seconds(profile, grains);
  };
  auto grains_at = [&](std::size_t u, double t) {
    double lo = 0.0;
    double hi = static_cast<double>(total_grains);
    for (int i = 0; i < 60; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (unit_time(u, mid) <= t)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  };

  double t_lo = 0.0;
  double t_hi = 0.0;
  for (std::size_t u = 0; u < n; ++u)
    t_hi = std::max(t_hi, unit_time(u, static_cast<double>(total_grains)));
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (t_lo + t_hi);
    double sum = 0.0;
    for (std::size_t u = 0; u < n; ++u) sum += grains_at(u, mid);
    if (sum >= static_cast<double>(total_grains))
      t_hi = mid;
    else
      t_lo = mid;
  }
  double sum = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    weights[u] = grains_at(u, t_hi);
    sum += weights[u];
  }
  PLBHEC_ENSURES(sum > 0.0);
  for (double& w : weights) w /= sum;
  return weights;
}

}  // namespace plbhec::baselines
