#pragma once
/// \file acosta.hpp
/// The dynamic load-balancing algorithm of Acosta, Blanco & Almeida
/// (ISPA 2012), as described by the PLB-HeC paper: execution proceeds in
/// synchronized iterations; after each iteration every unit publishes the
/// time it spent on its chunk, the Relative Power vector RP_u =
/// load_u / time_u is computed together with its sum SRP, and the next
/// iteration's load share of each unit is a weighted average of its
/// current share and RP_u / SRP. Iterating converges to the balanced
/// distribution only *asymptotically* — the weakness PLB-HeC targets.
/// Once the inter-unit time spread falls below the user threshold the
/// shares are frozen and execution continues without further barriers.

#include <vector>

#include "plbhec/rt/scheduler.hpp"

namespace plbhec::baselines {

struct AcostaOptions {
  double threshold = 0.10;      ///< time-spread ratio that forces rebalance
  double damping = 0.5;         ///< weight on the new RP-based share
  double step_fraction = 0.02;  ///< input fraction distributed per
                                ///< iteration (the original algorithm
                                ///< piggybacks on the application's own
                                ///< iterations, which are much smaller
                                ///< than the whole input)
};

class AcostaScheduler final : public rt::Scheduler {
 public:
  explicit AcostaScheduler(AcostaOptions options = {});

  [[nodiscard]] std::string name() const override { return "Acosta"; }

  void start(const std::vector<rt::UnitInfo>& units,
             const rt::WorkInfo& work) override;
  [[nodiscard]] std::size_t next_block(rt::UnitId unit, double now) override;
  void on_complete(const rt::TaskObservation& obs) override;
  void on_barrier(double now) override;
  void on_unit_failed(rt::UnitId unit, std::size_t lost_grains,
                      double now) override;

  /// Current normalized shares (Fig. 6 comparison data).
  [[nodiscard]] const std::vector<double>& shares() const { return share_; }
  [[nodiscard]] std::size_t iterations() const { return iterations_; }
  [[nodiscard]] bool equilibrium() const { return equilibrium_; }

 private:
  void plan_iteration();

  AcostaOptions options_;
  rt::WorkInfo work_;
  std::size_t units_n_ = 0;
  std::vector<double> share_;
  std::vector<std::size_t> pending_;   ///< per-unit chunk for this iteration
  std::vector<double> iter_time_;      ///< per-unit time in this iteration
  std::vector<std::size_t> iter_grains_;
  std::vector<bool> failed_;
  bool equilibrium_ = false;
  std::size_t iterations_ = 0;
};

}  // namespace plbhec::baselines
