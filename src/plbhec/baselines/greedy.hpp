#pragma once
/// \file greedy.hpp
/// The StarPU-style greedy (eager) dispatcher used as the paper's
/// reference baseline: the input is cut into fixed-size pieces and any
/// idle processing unit takes the next piece, with no priorities and no
/// performance modeling.

#include "plbhec/rt/scheduler.hpp"

namespace plbhec::baselines {

class GreedyScheduler final : public rt::Scheduler {
 public:
  /// `block` = piece size in grains; 0 = use the engine hint.
  explicit GreedyScheduler(std::size_t block = 0) : block_(block) {}

  [[nodiscard]] std::string name() const override { return "Greedy"; }

  void start(const std::vector<rt::UnitInfo>& units,
             const rt::WorkInfo& work) override {
    (void)units;
    effective_block_ =
        block_ ? block_ : std::max<std::size_t>(1, work.initial_block);
  }

  [[nodiscard]] std::size_t next_block(rt::UnitId, double) override {
    return effective_block_;
  }

  void on_complete(const rt::TaskObservation&) override {}

 private:
  std::size_t block_ = 0;
  std::size_t effective_block_ = 1;
};

}  // namespace plbhec::baselines
