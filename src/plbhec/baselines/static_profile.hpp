#pragma once
/// \file static_profile.hpp
/// Static profile-based distribution (de Camargo, WAMCA 2012 — the paper's
/// reference [17]): block shares are fixed *before* execution from
/// previously known performance profiles and never revised. Used as an
/// ablation baseline (it is optimal when profiles are exact and conditions
/// stable, and degrades under noise, QoS changes or failures).

#include <vector>

#include "plbhec/rt/scheduler.hpp"
#include "plbhec/sim/cluster.hpp"
#include "plbhec/sim/workload_profile.hpp"

namespace plbhec::baselines {

class StaticProfileScheduler final : public rt::Scheduler {
 public:
  /// `weights` must have one non-negative entry per processing unit and a
  /// positive sum; they are normalized internally.
  explicit StaticProfileScheduler(std::vector<double> weights,
                                  double step_fraction = 0.25);

  [[nodiscard]] std::string name() const override { return "StaticProfile"; }

  void start(const std::vector<rt::UnitInfo>& units,
             const rt::WorkInfo& work) override;
  [[nodiscard]] std::size_t next_block(rt::UnitId unit, double now) override;
  void on_complete(const rt::TaskObservation&) override {}
  void on_unit_failed(rt::UnitId unit, std::size_t lost_grains,
                      double now) override;

  [[nodiscard]] const std::vector<double>& shares() const { return weights_; }

 private:
  std::vector<double> weights_;
  std::vector<bool> failed_;
  double step_fraction_;
  rt::WorkInfo work_;
};

/// Oracle static weights for a simulated cluster: equalizes the *modeled*
/// per-unit time of processing its share in one shot (no profiling error).
/// This is the best case for the static algorithm.
[[nodiscard]] std::vector<double> oracle_static_weights(
    const sim::SimCluster& cluster, const sim::WorkloadProfile& profile,
    std::size_t total_grains, double bytes_per_grain);

}  // namespace plbhec::baselines
