/// \file kernels_avx512.cpp
/// AVX-512F variants. Only the stencil registers here: it is elementwise
/// with a fixed expression tree, so an 8-wide sweep is bit-identical to
/// the scalar reference at any lane width. The reduction families (spmv,
/// nbody) stop at AVX2 on purpose — widening their accumulator blocking
/// to 8 lanes would change the summation tree and break bit-identity with
/// the 4-lane scalar reference.

#include <cstddef>

#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace plbhec::kdisp {
namespace {

void stencil_rows_avx512(const double* in, double* out, std::size_t nx,
                         std::size_t row_begin, std::size_t row_end, double c0,
                         double c1) {
  const std::size_t stride = nx + 2;
  const __m512d c0v = _mm512_set1_pd(c0);
  const __m512d c1v = _mm512_set1_pd(c1);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* row = in + (i + 1) * stride;
    double* out_row = out + (i + 1) * stride;
    const std::size_t vec_end = 1 + (nx & ~std::size_t{7});
    std::size_t j = 1;
    for (; j < vec_end; j += 8) {
      const __m512d c = _mm512_loadu_pd(row + j);
      const __m512d west = _mm512_loadu_pd(row + j - 1);
      const __m512d east = _mm512_loadu_pd(row + j + 1);
      const __m512d north = _mm512_loadu_pd(row + j - stride);
      const __m512d south = _mm512_loadu_pd(row + j + stride);
      const __m512d cross = _mm512_add_pd(_mm512_add_pd(west, east),
                                          _mm512_add_pd(north, south));
      _mm512_storeu_pd(out_row + j, _mm512_add_pd(_mm512_mul_pd(c0v, c),
                                                  _mm512_mul_pd(c1v, cross)));
    }
    for (; j <= nx; ++j) {
      const double cross =
          (row[j - 1] + row[j + 1]) + (row[j - stride] + row[j + stride]);
      out_row[j] = c0 * row[j] + c1 * cross;
    }
  }
}

PLBHEC_REGISTER_KERNEL(kStencilKernel, IsaClass::kAvx512, WidthClass::kWide,
                       stencil_rows_avx512);

}  // namespace
}  // namespace plbhec::kdisp

#endif  // __AVX512F__

namespace plbhec::kdisp {
void link_avx512_kernels() {}
}  // namespace plbhec::kdisp
