#pragma once
/// \file kernels.hpp
/// Published kernel signatures for the dispatched workload families. Every
/// variant of a family registers under the family's kernel name with
/// exactly this signature; apps resolve it with
/// KernelRegistry::select<XxxFn>(kXxxKernel, width).
///
/// Bit-identity contract (everything except `gemm`, see registry.hpp):
/// variants of one family must produce byte-identical outputs. The
/// reduction families (spmv, nbody) fix the summation tree to 4-lane
/// accumulator blocking over the length-rounded-down-to-4 prefix, the
/// horizontal combine (s0+s2)+(s1+s3), then the remainder added
/// sequentially — the scalar variants mirror the AVX2 lane arithmetic
/// exactly, and every variant TU is compiled with -ffp-contract=off so no
/// compiler fuses a mul+add the other variant keeps separate. The stencil
/// is elementwise with one fixed expression tree, so lane width never
/// matters.

#include <cstddef>
#include <cstdint>

namespace plbhec::kdisp {

inline constexpr const char* kSpmvKernel = "spmv";
inline constexpr const char* kStencilKernel = "stencil";
inline constexpr const char* kNbodyKernel = "nbody";
/// GEMM micro-kernel (exec/gemm_micro); variants here are NOT bit-identical
/// (AVX2 uses FMA) — see the contract note in registry.hpp.
inline constexpr const char* kGemmMicroKernel = "gemm";

/// CSR SpMV over the row range [row_begin, row_end):
///   y[i] = sum_j vals[j] * x[cols[j]],  j in [row_ptr[i], row_ptr[i+1]).
using SpmvRowsFn = void(const std::uint32_t* row_ptr,
                        const std::uint32_t* cols, const double* vals,
                        const double* x, double* y, std::size_t row_begin,
                        std::size_t row_end);

/// 2D 5-point stencil over interior rows [row_begin, row_end) of an
/// (ny+2) x (nx+2) padded grid (row-major, stride nx+2; row/col 0 and the
/// last row/col are halo). For each interior cell:
///   out = c0*in[c] + c1*((in[w]+in[e]) + (in[n]+in[s])).
using StencilRowsFn = void(const double* in, double* out, std::size_t nx,
                           std::size_t row_begin, std::size_t row_end,
                           double c0, double c1);

/// Softened all-pairs gravity accelerations for bodies [body_begin,
/// body_end) against all n bodies (self-interaction included: dx=0 gives
/// r2=eps2, a finite softened term — keeps every variant branch-free):
///   r2   = ((eps2 + dx*dx) + dy*dy) + dz*dz
///   inv  = 1 / sqrt(r2)
///   w    = mass[j] * ((inv*inv) * inv)
///   a   += w * d
using NbodyAccelFn = void(const double* px, const double* py,
                          const double* pz, const double* mass, std::size_t n,
                          double eps2, double* ax, double* ay, double* az,
                          std::size_t body_begin, std::size_t body_end);

/// BLIS-style GEMM micro-kernel: accumulates the (mr x nr) corner of a
/// packed-A (kc x MR) by packed-B (kc x NR) product into C with leading
/// dimension ldc (see exec/gemm_micro_detail.hpp for the geometry).
using GemmMicroFn = void(std::size_t kc, const double* ap, const double* bp,
                         double* c, std::size_t ldc, std::size_t mr,
                         std::size_t nr);

}  // namespace plbhec::kdisp
