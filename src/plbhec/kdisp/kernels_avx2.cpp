/// \file kernels_avx2.cpp
/// AVX2 variants. Compiled with -mavx2 -mfma -ffp-contract=off when the
/// compiler supports the flags (see src/CMakeLists.txt); without them the
/// TU compiles to just the link anchor and the registry simply never sees
/// an AVX2 variant. No FMA intrinsics appear here on purpose: fusing the
/// mul+add chains would change rounding versus the scalar reference and
/// break the bit-identity contract in kernels.hpp, and -ffp-contract=off
/// stops the compiler from fusing them behind our back.

#include <cstddef>
#include <cstdint>

#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace plbhec::kdisp {
namespace {

/// Horizontal sum matching the scalar 4-lane combine: (s0+s2)+(s1+s3).
inline double hsum4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (s0+s2, s1+s3)
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

void spmv_rows_avx2(const std::uint32_t* row_ptr, const std::uint32_t* cols,
                    const double* vals, const double* x, double* y,
                    std::size_t row_begin, std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t begin = row_ptr[i];
    const std::size_t end = row_ptr[i + 1];
    const std::size_t main_end = begin + ((end - begin) & ~std::size_t{3});
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = begin;
    // Masked gather (all-ones mask, zero source) rather than the plain
    // form, whose undefined source operand trips -Wmaybe-uninitialized.
    const __m256d gather_src = _mm256_setzero_pd();
    const __m256d gather_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (; j < main_end; j += 4) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cols + j));
      const __m256d xv =
          _mm256_mask_i32gather_pd(gather_src, x, idx, gather_mask, 8);
      const __m256d vv = _mm256_loadu_pd(vals + j);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
    }
    double sum = hsum4(acc);
    for (; j < end; ++j) sum += vals[j] * x[cols[j]];
    y[i] = sum;
  }
}

void stencil_rows_avx2(const double* in, double* out, std::size_t nx,
                       std::size_t row_begin, std::size_t row_end, double c0,
                       double c1) {
  const std::size_t stride = nx + 2;
  const __m256d c0v = _mm256_set1_pd(c0);
  const __m256d c1v = _mm256_set1_pd(c1);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* row = in + (i + 1) * stride;
    double* out_row = out + (i + 1) * stride;
    const std::size_t vec_end = 1 + (nx & ~std::size_t{3});
    std::size_t j = 1;
    for (; j < vec_end; j += 4) {
      const __m256d c = _mm256_loadu_pd(row + j);
      const __m256d west = _mm256_loadu_pd(row + j - 1);
      const __m256d east = _mm256_loadu_pd(row + j + 1);
      const __m256d north = _mm256_loadu_pd(row + j - stride);
      const __m256d south = _mm256_loadu_pd(row + j + stride);
      const __m256d cross = _mm256_add_pd(_mm256_add_pd(west, east),
                                          _mm256_add_pd(north, south));
      _mm256_storeu_pd(out_row + j, _mm256_add_pd(_mm256_mul_pd(c0v, c),
                                                  _mm256_mul_pd(c1v, cross)));
    }
    for (; j <= nx; ++j) {
      const double cross =
          (row[j - 1] + row[j + 1]) + (row[j - stride] + row[j + stride]);
      out_row[j] = c0 * row[j] + c1 * cross;
    }
  }
}

void nbody_accel_avx2(const double* px, const double* py, const double* pz,
                      const double* mass, std::size_t n, double eps2,
                      double* ax, double* ay, double* az,
                      std::size_t body_begin, std::size_t body_end) {
  const std::size_t main_end = n & ~std::size_t{3};
  const __m256d eps2v = _mm256_set1_pd(eps2);
  const __m256d one = _mm256_set1_pd(1.0);
  for (std::size_t i = body_begin; i < body_end; ++i) {
    const __m256d pxi = _mm256_set1_pd(px[i]);
    const __m256d pyi = _mm256_set1_pd(py[i]);
    const __m256d pzi = _mm256_set1_pd(pz[i]);
    __m256d axv = _mm256_setzero_pd();
    __m256d ayv = _mm256_setzero_pd();
    __m256d azv = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j < main_end; j += 4) {
      const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(px + j), pxi);
      const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(py + j), pyi);
      const __m256d dz = _mm256_sub_pd(_mm256_loadu_pd(pz + j), pzi);
      const __m256d r2 = _mm256_add_pd(
          _mm256_add_pd(_mm256_add_pd(eps2v, _mm256_mul_pd(dx, dx)),
                        _mm256_mul_pd(dy, dy)),
          _mm256_mul_pd(dz, dz));
      const __m256d inv = _mm256_div_pd(one, _mm256_sqrt_pd(r2));
      const __m256d w = _mm256_mul_pd(
          _mm256_loadu_pd(mass + j),
          _mm256_mul_pd(_mm256_mul_pd(inv, inv), inv));
      axv = _mm256_add_pd(axv, _mm256_mul_pd(w, dx));
      ayv = _mm256_add_pd(ayv, _mm256_mul_pd(w, dy));
      azv = _mm256_add_pd(azv, _mm256_mul_pd(w, dz));
    }
    double axi = hsum4(axv);
    double ayi = hsum4(ayv);
    double azi = hsum4(azv);
    for (; j < n; ++j) {
      const double dx = px[j] - px[i];
      const double dy = py[j] - py[i];
      const double dz = pz[j] - pz[i];
      const double r2 = ((eps2 + dx * dx) + dy * dy) + dz * dz;
      const double inv = 1.0 / std::sqrt(r2);
      const double w = mass[j] * ((inv * inv) * inv);
      axi += w * dx;
      ayi += w * dy;
      azi += w * dz;
    }
    ax[i] = axi;
    ay[i] = ayi;
    az[i] = azi;
  }
}

PLBHEC_REGISTER_KERNEL(kSpmvKernel, IsaClass::kAvx2, WidthClass::kWide,
                       spmv_rows_avx2);
PLBHEC_REGISTER_KERNEL(kStencilKernel, IsaClass::kAvx2, WidthClass::kWide,
                       stencil_rows_avx2);
PLBHEC_REGISTER_KERNEL(kNbodyKernel, IsaClass::kAvx2, WidthClass::kWide,
                       nbody_accel_avx2);

}  // namespace
}  // namespace plbhec::kdisp

#endif  // __AVX2__

namespace plbhec::kdisp {
void link_avx2_kernels() {}
}  // namespace plbhec::kdisp
