#include "plbhec/kdisp/isa.hpp"

#include <atomic>
#include <cstdlib>

namespace plbhec::kdisp {

const char* to_string(IsaClass isa) {
  switch (isa) {
    case IsaClass::kScalar: return "scalar";
    case IsaClass::kAvx2: return "avx2";
    case IsaClass::kAvx512: return "avx512";
  }
  return "unknown";
}

std::optional<IsaClass> parse_isa(const std::string& name) {
  if (name == "scalar") return IsaClass::kScalar;
  if (name == "avx2") return IsaClass::kAvx2;
  if (name == "avx512" || name == "best") return IsaClass::kAvx512;
  return std::nullopt;
}

IsaClass host_isa() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads CPUID once per process (libgcc/compiler-rt
  // cache); both GCC and Clang provide it on x86.
  static const IsaClass probed = [] {
    if (__builtin_cpu_supports("avx512f")) return IsaClass::kAvx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return IsaClass::kAvx2;
    return IsaClass::kScalar;
  }();
  return probed;
#else
  return IsaClass::kScalar;
#endif
}

namespace {

/// The process-wide dispatch ceiling; initialized from the environment on
/// first use, overridable by tests. Relaxed atomics: the value is written
/// before engines start and only read afterwards.
std::atomic<IsaClass>& ceiling_slot() {
  static std::atomic<IsaClass> slot{[] {
    IsaClass ceiling = host_isa();
    if (const char* force = std::getenv("PLBHEC_KDISP_FORCE")) {
      if (const auto parsed = parse_isa(force); parsed && *parsed < ceiling)
        ceiling = *parsed;
    }
    return ceiling;
  }()};
  return slot;
}

}  // namespace

IsaClass effective_isa() {
  return ceiling_slot().load(std::memory_order_relaxed);
}

IsaClass set_effective_isa_for_testing(IsaClass isa) {
  if (isa > host_isa()) isa = host_isa();
  return ceiling_slot().exchange(isa, std::memory_order_relaxed);
}

}  // namespace plbhec::kdisp
