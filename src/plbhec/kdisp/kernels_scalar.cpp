/// \file kernels_scalar.cpp
/// Portable baseline variants for the dispatched families. These are the
/// bit-identity reference: the reduction loops use the same 4-lane
/// accumulator blocking and hsum order as the AVX2 variants (see
/// kernels.hpp), and this TU is compiled with -ffp-contract=off, so the
/// wide variants must match these results byte for byte. Scalar variants
/// register for both width classes — they are also the fallback a narrow
/// instance or an unknown-ISA host resolves to.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

namespace plbhec::kdisp {

namespace {

void spmv_rows_scalar(const std::uint32_t* row_ptr, const std::uint32_t* cols,
                      const double* vals, const double* x, double* y,
                      std::size_t row_begin, std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t begin = row_ptr[i];
    const std::size_t end = row_ptr[i + 1];
    const std::size_t main_end = begin + ((end - begin) & ~std::size_t{3});
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t j = begin;
    for (; j < main_end; j += 4) {
      s0 += vals[j] * x[cols[j]];
      s1 += vals[j + 1] * x[cols[j + 1]];
      s2 += vals[j + 2] * x[cols[j + 2]];
      s3 += vals[j + 3] * x[cols[j + 3]];
    }
    double sum = (s0 + s2) + (s1 + s3);
    for (; j < end; ++j) sum += vals[j] * x[cols[j]];
    y[i] = sum;
  }
}

void stencil_rows_scalar(const double* in, double* out, std::size_t nx,
                         std::size_t row_begin, std::size_t row_end, double c0,
                         double c1) {
  const std::size_t stride = nx + 2;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* row = in + (i + 1) * stride;
    double* out_row = out + (i + 1) * stride;
    for (std::size_t j = 1; j <= nx; ++j) {
      const double cross =
          (row[j - 1] + row[j + 1]) + (row[j - stride] + row[j + stride]);
      out_row[j] = c0 * row[j] + c1 * cross;
    }
  }
}

void nbody_accel_scalar(const double* px, const double* py, const double* pz,
                        const double* mass, std::size_t n, double eps2,
                        double* ax, double* ay, double* az,
                        std::size_t body_begin, std::size_t body_end) {
  const std::size_t main_end = n & ~std::size_t{3};
  for (std::size_t i = body_begin; i < body_end; ++i) {
    const double pxi = px[i], pyi = py[i], pzi = pz[i];
    double axl[4] = {0.0, 0.0, 0.0, 0.0};
    double ayl[4] = {0.0, 0.0, 0.0, 0.0};
    double azl[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t j = 0;
    for (; j < main_end; j += 4) {
      for (std::size_t l = 0; l < 4; ++l) {
        const double dx = px[j + l] - pxi;
        const double dy = py[j + l] - pyi;
        const double dz = pz[j + l] - pzi;
        const double r2 = ((eps2 + dx * dx) + dy * dy) + dz * dz;
        const double inv = 1.0 / std::sqrt(r2);
        const double w = mass[j + l] * ((inv * inv) * inv);
        axl[l] += w * dx;
        ayl[l] += w * dy;
        azl[l] += w * dz;
      }
    }
    double axi = (axl[0] + axl[2]) + (axl[1] + axl[3]);
    double ayi = (ayl[0] + ayl[2]) + (ayl[1] + ayl[3]);
    double azi = (azl[0] + azl[2]) + (azl[1] + azl[3]);
    for (; j < n; ++j) {
      const double dx = px[j] - pxi;
      const double dy = py[j] - pyi;
      const double dz = pz[j] - pzi;
      const double r2 = ((eps2 + dx * dx) + dy * dy) + dz * dz;
      const double inv = 1.0 / std::sqrt(r2);
      const double w = mass[j] * ((inv * inv) * inv);
      axi += w * dx;
      ayi += w * dy;
      azi += w * dz;
    }
    ax[i] = axi;
    ay[i] = ayi;
    az[i] = azi;
  }
}

PLBHEC_REGISTER_KERNEL(kSpmvKernel, IsaClass::kScalar, WidthClass::kNarrow,
                       spmv_rows_scalar);
PLBHEC_REGISTER_KERNEL(kSpmvKernel, IsaClass::kScalar, WidthClass::kWide,
                       spmv_rows_scalar);
PLBHEC_REGISTER_KERNEL(kStencilKernel, IsaClass::kScalar, WidthClass::kNarrow,
                       stencil_rows_scalar);
PLBHEC_REGISTER_KERNEL(kStencilKernel, IsaClass::kScalar, WidthClass::kWide,
                       stencil_rows_scalar);
PLBHEC_REGISTER_KERNEL(kNbodyKernel, IsaClass::kScalar, WidthClass::kNarrow,
                       nbody_accel_scalar);
PLBHEC_REGISTER_KERNEL(kNbodyKernel, IsaClass::kScalar, WidthClass::kWide,
                       nbody_accel_scalar);

}  // namespace

void link_scalar_kernels() {}

}  // namespace plbhec::kdisp
