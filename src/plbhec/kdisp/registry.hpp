#pragma once
/// \file registry.hpp
/// Runtime kernel-dispatch registry (the MFEM specialization-table pattern
/// adapted to ISA selection): kernel variants register once under a
/// (kernel name, ISA class, width class) key via the static-registration
/// macro below, and a lookup at runtime returns the highest-ISA variant
/// the host can execute — so a single binary runs its best kernel on every
/// machine of a heterogeneous cluster while the coordinator and the wire
/// protocol stay ISA-agnostic. The dispatch choice is observable (counters
/// in publish_counters(), a kKernelDispatch obs event recorded by the
/// engines) but never serialized: a daemon's ISA is its own business.
///
/// Width classes play the role of MFEM's compile-time size
/// specializations: a kernel whose inner trip count is tiny (a short SpMV
/// row, a narrow stencil line) never amortizes vector setup, so families
/// may register wide-ISA variants only for kWide and let narrow instances
/// fall back to scalar through the ordinary downward scan.
///
/// Variant contract: every variant registered under one kernel name must
/// (a) share the function signature the family's select<Fn>() names, and
/// (b) produce bit-identical results — coordinators and daemons with
/// different ISAs exchange results that are byte-compared by the replay
/// and identity gates. The new workload families keep the contract by
/// fixing the reduction tree (4-lane accumulator blocking, one hsum
/// order) and banning FMA contraction in every variant TU; `gemm` is the
/// documented exception (its AVX2 variant uses FMA, so its variants agree
/// only to rounding — matmul ships results, never re-reduces them, and
/// its identity gates compare runs of one process, which dispatches
/// uniformly).

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "plbhec/kdisp/isa.hpp"

namespace plbhec::obs {
class CounterRegistry;
}

namespace plbhec::kdisp {

/// Inner-width class of a kernel instance (the vectorizable trip count:
/// row length, mean nnz per row, bodies per interaction loop).
enum class WidthClass : std::uint8_t {
  kNarrow = 0,  ///< trip count too short to amortize vector setup
  kWide = 1,
};

/// Trip counts below this classify as kNarrow (two AVX-512 lanes' worth —
/// under that, permute/gather setup rivals the arithmetic it feeds).
inline constexpr std::size_t kNarrowWidthLimit = 16;

[[nodiscard]] constexpr WidthClass classify_width(std::size_t inner_width) {
  return inner_width < kNarrowWidthLimit ? WidthClass::kNarrow
                                         : WidthClass::kWide;
}

[[nodiscard]] const char* to_string(WidthClass width);

/// Type-erased kernel entry point; select<Fn>() casts back to the
/// family's real signature.
using KernelFn = void (*)();

/// One resolved dispatch decision.
struct Selection {
  KernelFn fn = nullptr;
  IsaClass isa = IsaClass::kScalar;
  std::string_view variant_name;  ///< registered symbol name (static storage)
};

/// A resolved (kernel, width) slot, for counters/reporting.
struct DispatchRecord {
  std::string kernel;
  WidthClass width = WidthClass::kWide;
  IsaClass isa = IsaClass::kScalar;
  std::string_view variant_name;
  std::uint64_t lookups = 0;
};

class KernelRegistry {
 public:
  /// The process-wide table (Meyers singleton; safe to use from variant
  /// TUs' static registrars).
  [[nodiscard]] static KernelRegistry& instance();

  /// Registers one variant. Registering the same (kernel, isa, width) key
  /// twice is a contract violation (aborts) — variants register once.
  void register_kernel(std::string_view kernel, IsaClass isa,
                       WidthClass width, KernelFn fn,
                       std::string_view variant_name);

  /// Highest-ISA variant for (kernel, width) at or below `ceiling`,
  /// scanning downward to scalar — an unknown or too-new ISA therefore
  /// degrades to the portable kernel instead of failing. nullopt when the
  /// kernel name has no variant at any ISA for this width class.
  [[nodiscard]] std::optional<Selection> lookup(
      std::string_view kernel, WidthClass width,
      IsaClass ceiling = effective_isa());

  /// Typed lookup for a family whose variants share signature `Fn`;
  /// aborts if nothing (not even scalar) is registered — a linked-in
  /// family always has its portable variant.
  template <typename Fn>
  [[nodiscard]] Fn* select(std::string_view kernel, WidthClass width,
                           Selection* chosen = nullptr) {
    const std::optional<Selection> sel = lookup(kernel, width);
    if (!sel.has_value()) missing_kernel(kernel);
    if (chosen != nullptr) *chosen = *sel;
    return reinterpret_cast<Fn*>(sel->fn);
  }

  /// Number of registered variants (all keys).
  [[nodiscard]] std::size_t variant_count() const;

  /// Every (kernel, width) slot resolved by lookup() so far, with the
  /// decision it resolved to and how often it was asked. Name-sorted.
  [[nodiscard]] std::vector<DispatchRecord> resolved() const;

  /// Publishes the dispatch table into `registry`:
  ///   kdisp.host_isa / kdisp.effective_isa   (IsaClass as integer)
  ///   kdisp.variants                         (registered variant count)
  ///   kdisp.<kernel>.<width>.isa / .lookups  (per resolved slot)
  void publish_counters(obs::CounterRegistry& registry) const;

 private:
  KernelRegistry() = default;

  /// Abort path of select<Fn>(), kept out of the template.
  [[noreturn]] static void missing_kernel(std::string_view kernel);

  struct Entry {
    std::string kernel;
    IsaClass isa;
    WidthClass width;
    KernelFn fn;
    std::string_view variant_name;
  };
  struct Slot {
    std::string kernel;
    WidthClass width;
    Selection selection;
    std::uint64_t lookups = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::vector<Slot> slots_;  ///< lookup memo + dispatch audit trail
};

namespace detail {

/// Static-registration helper: constructing one registers a variant.
struct Registrar {
  Registrar(std::string_view kernel, IsaClass isa, WidthClass width,
            KernelFn fn, std::string_view variant_name) {
    KernelRegistry::instance().register_kernel(kernel, isa, width, fn,
                                               variant_name);
  }
};

}  // namespace detail

#define PLBHEC_KDISP_CONCAT_IMPL(a, b) a##b
#define PLBHEC_KDISP_CONCAT(a, b) PLBHEC_KDISP_CONCAT_IMPL(a, b)

/// Registers `fn` (whose signature must match the family's published
/// kernel signature) as the (kernel, isa, width) variant. File-scope use,
/// once per variant:
///   PLBHEC_REGISTER_KERNEL("spmv", IsaClass::kAvx2, WidthClass::kWide,
///                          spmv_rows_avx2);
#define PLBHEC_REGISTER_KERNEL(kernel, isa, width, fn)                \
  static const ::plbhec::kdisp::detail::Registrar PLBHEC_KDISP_CONCAT(\
      plbhec_kdisp_registrar_, __COUNTER__){                          \
      kernel, isa, width,                                             \
      reinterpret_cast<::plbhec::kdisp::KernelFn>(+(fn)), #fn}

}  // namespace plbhec::kdisp
