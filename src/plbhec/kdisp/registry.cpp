#include "plbhec/kdisp/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "plbhec/common/contracts.hpp"
#include "plbhec/obs/counters.hpp"

namespace plbhec::kdisp {

// Anchor symbols defined in the variant TUs. A static-library linker only
// extracts an object file somebody references; the registrar objects in
// kernels_{scalar,avx2,avx512}.cpp reference nothing and would be silently
// dropped, leaving an empty table. Calling these no-ops from instance()
// forces extraction without resorting to --whole-archive.
void link_scalar_kernels();
void link_avx2_kernels();
void link_avx512_kernels();

}  // namespace plbhec::kdisp

namespace plbhec::exec::detail {
void link_gemm_kernels();  // exec/gemm_micro.cpp, same extraction story
}

namespace plbhec::kdisp {

const char* to_string(WidthClass width) {
  switch (width) {
    case WidthClass::kNarrow: return "narrow";
    case WidthClass::kWide: return "wide";
  }
  return "unknown";
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  link_scalar_kernels();
  link_avx2_kernels();
  link_avx512_kernels();
  exec::detail::link_gemm_kernels();
  return registry;
}

void KernelRegistry::register_kernel(std::string_view kernel, IsaClass isa,
                                     WidthClass width, KernelFn fn,
                                     std::string_view variant_name) {
  PLBHEC_EXPECTS(fn != nullptr);
  PLBHEC_EXPECTS(!kernel.empty());
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.kernel == kernel && entry.isa == isa && entry.width == width) {
      std::fprintf(stderr,
                   "kdisp: duplicate registration for (%.*s, %s, %s)\n",
                   static_cast<int>(kernel.size()), kernel.data(),
                   to_string(isa), to_string(width));
      std::abort();
    }
  }
  entries_.push_back(Entry{std::string(kernel), isa, width, fn, variant_name});
}

std::optional<Selection> KernelRegistry::lookup(std::string_view kernel,
                                                WidthClass width,
                                                IsaClass ceiling) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* best = nullptr;
  for (const Entry& entry : entries_) {
    if (entry.kernel != kernel || entry.width != width) continue;
    if (entry.isa > ceiling) continue;
    if (best == nullptr || entry.isa > best->isa) best = &entry;
  }
  if (best == nullptr) return std::nullopt;
  const Selection selection{best->fn, best->isa, best->variant_name};
  // Memoize the decision for counters/obs. Re-resolve (rather than serve
  // the memo) so a changed test ceiling takes effect; the memo only backs
  // the audit trail.
  for (Slot& slot : slots_) {
    if (slot.kernel == kernel && slot.width == width) {
      slot.selection = selection;
      ++slot.lookups;
      return selection;
    }
  }
  slots_.push_back(Slot{std::string(kernel), width, selection, 1});
  return selection;
}

std::size_t KernelRegistry::variant_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<DispatchRecord> KernelRegistry::resolved() const {
  std::vector<DispatchRecord> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    records.reserve(slots_.size());
    for (const Slot& slot : slots_) {
      records.push_back(DispatchRecord{slot.kernel, slot.width,
                                       slot.selection.isa,
                                       slot.selection.variant_name,
                                       slot.lookups});
    }
  }
  std::sort(records.begin(), records.end(),
            [](const DispatchRecord& a, const DispatchRecord& b) {
              if (a.kernel != b.kernel) return a.kernel < b.kernel;
              return a.width < b.width;
            });
  return records;
}

void KernelRegistry::publish_counters(obs::CounterRegistry& registry) const {
  registry.set("kdisp.host_isa", static_cast<std::uint64_t>(host_isa()));
  registry.set("kdisp.effective_isa",
               static_cast<std::uint64_t>(effective_isa()));
  registry.set("kdisp.variants", variant_count());
  for (const DispatchRecord& record : resolved()) {
    const std::string prefix =
        "kdisp." + record.kernel + "." + to_string(record.width);
    registry.set(prefix + ".isa", static_cast<std::uint64_t>(record.isa));
    registry.set(prefix + ".lookups", record.lookups);
  }
}

void KernelRegistry::missing_kernel(std::string_view kernel) {
  std::fprintf(stderr, "kdisp: no variant registered for kernel '%.*s'\n",
               static_cast<int>(kernel.size()), kernel.data());
  std::abort();
}

}  // namespace plbhec::kdisp
