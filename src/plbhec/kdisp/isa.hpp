#pragma once
/// \file isa.hpp
/// Host ISA classes for the kernel-dispatch registry. A kernel variant is
/// compiled for exactly one class; the runtime probe (CPUID via the
/// compiler's builtin feature test) decides the best class the *host* can
/// execute, and the registry picks the highest registered variant at or
/// below it. The classes are ordered: a host that can run kAvx512 can run
/// every lower class.
///
/// The probe can be pinned with the PLBHEC_KDISP_FORCE environment
/// variable ("scalar" | "avx2" | "avx512" | "best"), which CI uses to run
/// the whole test suite with dispatch forced to the portable kernels.
/// Forcing an ISA the host cannot execute is clamped down to the probe
/// result — the override selects among runnable variants, it cannot make
/// a host execute instructions it lacks.

#include <optional>
#include <string>

namespace plbhec::kdisp {

/// Ordered ISA classes; higher enum value = wider vectors. kScalar is the
/// portable C++ baseline every host can run.
enum class IsaClass : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,    ///< AVX2 + FMA
  kAvx512 = 2,  ///< AVX-512F
};

inline constexpr std::size_t kIsaClassCount = 3;

[[nodiscard]] const char* to_string(IsaClass isa);

/// "scalar" | "avx2" | "avx512" | "best" -> class ("best" = kAvx512, the
/// top of the ladder); nullopt for anything else.
[[nodiscard]] std::optional<IsaClass> parse_isa(const std::string& name);

/// What the host CPU can execute, probed once per process (CPUID).
[[nodiscard]] IsaClass host_isa();

/// host_isa() clamped by the PLBHEC_KDISP_FORCE override, read once per
/// process. This is the ceiling every registry lookup uses.
[[nodiscard]] IsaClass effective_isa();

/// Test-only: replaces the effective ISA ceiling for this process (still
/// clamped to host_isa()). Returns the previous ceiling. Not thread-safe
/// against concurrent lookups — call before spinning up engines.
IsaClass set_effective_isa_for_testing(IsaClass isa);

}  // namespace plbhec::kdisp
