#pragma once
/// \file profile_store.hpp
/// Versioned, checksummed on-disk database of fitted performance profiles,
/// keyed by (application kind, device kind). The multi-tenant service
/// persists each completed job's per-device profiling samples (plus their
/// incremental moment snapshots and the selected models) and warm-starts
/// later jobs of the same kind from them, skipping most of PLB-HeC's
/// exponential probing schedule.
///
/// File format (little-endian, native IEEE-754 doubles):
///
///   +0   magic      8 bytes  "PLBHECPS"
///   +8   version    u32      kFormatVersion
///   +12  payload    u64      byte length of the payload that follows
///   +20  payload    ...      u32 entry count, u64 write sequence, entries
///   end  checksum   u64      FNV-1a 64 over the payload bytes
///
/// A reader rejects — without crashing and without partially applying —
/// truncated files, wrong magic, version skew, checksum mismatches and
/// structurally corrupt payloads; the service then falls back to cold
/// probing. Entries are kept sorted by key so lookup and iteration order
/// are a pure function of the contents. (Staleness stamps record local
/// write order, so two stores merged in different orders hold the same
/// profiles but may encode different stamps.)

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/samples.hpp"
#include "plbhec/rt/profile_db.hpp"

namespace plbhec::svc {

/// Outcome of loading a store image; everything but kOk leaves the target
/// store empty (cold-start fallback).
enum class StoreLoadStatus : std::uint8_t {
  kOk,           ///< decoded successfully
  kMissing,      ///< file does not exist / is unreadable
  kTruncated,    ///< shorter than the header + payload it announces
  kBadMagic,     ///< not a profile-store file
  kVersionSkew,  ///< written by an incompatible format version
  kBadChecksum,  ///< payload bytes do not match the trailing checksum
  kCorrupt,      ///< checksum passed but the payload is structurally invalid
};

[[nodiscard]] const char* to_string(StoreLoadStatus status);

/// One persisted profile: the raw samples (x relative to `total_grains`),
/// their moment snapshots for bit-exact warm restore, and the models that
/// were selected when the entry was written.
struct ProfileEntry {
  std::string app_kind;     ///< workload identity, e.g. "matmul-4096"
  std::string device_kind;  ///< DeviceModel::description() of the unit
  double total_grains = 0.0;  ///< grain denominator of the sample x-values
  double stored_r2 = 0.0;     ///< exec-fit R^2 at persist time
  std::uint64_t updates = 0;  ///< times this key has been refreshed
  /// Store write sequence at the last refresh of this key. The owning
  /// store's sequence() minus this is the entry's age — how many other
  /// profile writes landed since this one was current — which the
  /// warm-start validation gate uses to tighten acceptance with staleness.
  std::uint64_t stamp = 0;
  std::vector<fit::Sample> exec;
  std::vector<fit::Sample> transfer;
  fit::MomentSnapshot exec_moments;
  fit::MomentSnapshot transfer_moments;
  fit::CurveModel exec_model;
  fit::TransferModel transfer_model;
};

/// Builds a store entry from one job's per-unit observation sets: trims to
/// the sample cap (most recent kept, moments rebuilt by replay), fits the
/// models and records the acceptance R^2 the warm-start gate checks.
[[nodiscard]] ProfileEntry make_entry(std::string app_kind,
                                      std::string device_kind,
                                      const fit::SampleSet& exec,
                                      const fit::SampleSet& transfer,
                                      double total_grains,
                                      const fit::SelectionOptions& fit_options);

class ProfileStore {
 public:
  static constexpr std::uint32_t kFormatVersion = 2;
  /// Per-curve sample cap; bounds file size under repeated merging.
  static constexpr std::size_t kMaxSamplesPerCurve = 64;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// Monotonic write counter; put() stamps each entry with its value, so
  /// sequence() - entry.stamp is that entry's staleness age.
  [[nodiscard]] std::uint64_t sequence() const { return seq_; }
  [[nodiscard]] const std::vector<ProfileEntry>& entries() const {
    return entries_;
  }

  /// Entry for (app, device) or nullptr.
  [[nodiscard]] const ProfileEntry* find(std::string_view app_kind,
                                         std::string_view device_kind) const;

  /// Inserts or replaces the entry with the same key, preserving the
  /// superseded entry's update count and stamping the new entry with the
  /// advanced write sequence. Entries stay sorted by key.
  void put(ProfileEntry entry);

  /// Merges every entry of `other` into this store (put() per entry, so
  /// update counts of superseded keys are preserved). Used by the network
  /// profile-sync message to fold a coordinator's store into a worker's.
  void merge(const ProfileStore& other);

  /// Warm-start profile for (app, device); a default-constructed (unusable)
  /// profile when the key is absent.
  [[nodiscard]] rt::WarmProfile warm_profile(
      std::string_view app_kind, std::string_view device_kind) const;

  /// Serializes the store to the on-disk image described above.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes an image into `out`. On any failure `out` is left empty.
  [[nodiscard]] static StoreLoadStatus decode(
      std::span<const std::uint8_t> bytes, ProfileStore& out);

  /// Atomically-ish writes the store image (temp file + rename).
  [[nodiscard]] bool save(const std::string& path) const;

  /// Loads `path` into `out`; kMissing when the file cannot be read.
  [[nodiscard]] static StoreLoadStatus load(const std::string& path,
                                            ProfileStore& out);

 private:
  std::vector<ProfileEntry> entries_;  ///< sorted by (app_kind, device_kind)
  std::uint64_t seq_ = 0;              ///< monotonic write counter
};

}  // namespace plbhec::svc
