#pragma once
/// \file lease.hpp
/// Unit-lease fairness policy of the multi-tenant service: how many
/// processing units each active job is entitled to hold. Leases change
/// hands only at block boundaries (the JobManager revokes a unit when its
/// in-flight task completes), so the policy here is purely about *targets*.
///
/// Fairness invariant: with k active jobs on n units, every job — whatever
/// its priority class — holds at least floor(n / k) units. Priority
/// weights bias only the distribution of the n mod k remainder units.
/// Because admission caps k at min(max_active_jobs, n), the floor is at
/// least 1, which bounds any job's makespan stretch against running alone:
/// it always commands at least a floor(n/k)/n share of the cluster (see
/// stretch_bound()).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace plbhec::svc {

using JobId = std::size_t;

enum class PriorityClass : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

[[nodiscard]] const char* to_string(PriorityClass priority);

struct LeasePolicyOptions {
  double high_weight = 2.0;
  double normal_weight = 1.0;
  double low_weight = 0.5;
  /// Concurrency cap on admitted jobs; 0 = one job per processing unit.
  /// The effective cap is always additionally clamped to the unit count so
  /// the fairness floor stays >= 1.
  std::size_t max_active_jobs = 0;
};

[[nodiscard]] double weight(PriorityClass priority,
                            const LeasePolicyOptions& options);

/// An active job as the lease policy sees it.
struct ActiveJobView {
  JobId id = 0;
  PriorityClass priority = PriorityClass::kNormal;
};

/// Target unit counts, one per entry of `jobs` (requires 1 <= jobs.size()
/// <= units). Every job gets the floor(units / jobs) fairness floor; the
/// remainder is apportioned by priority weight with the largest-remainder
/// rule, ties broken toward the lower JobId — fully deterministic. The
/// targets always sum to `units`.
[[nodiscard]] std::vector<std::size_t> lease_targets(
    std::span<const ActiveJobView> jobs, std::size_t units,
    const LeasePolicyOptions& options);

/// Unit-count stretch bound the fairness floor guarantees with k concurrent
/// jobs on n units: n / floor(n / k). (A capacity bound, not a makespan
/// theorem: heterogeneous unit speeds and queueing add their own factors.)
[[nodiscard]] double stretch_bound(std::size_t units, std::size_t jobs);

}  // namespace plbhec::svc
