#pragma once
/// \file job_manager.hpp
/// Multi-tenant scheduling service on top of the single-job runtime: jobs
/// arrive over virtual time into an admission queue (FIFO within priority
/// class), each admitted job runs its own scheduler instance (PLB-HeC by
/// default) against a *leased* subset of the cluster's processing units,
/// and the lease policy (lease.hpp) rebalances unit targets whenever the
/// active-job set changes.
///
/// Leasing protocol: schedulers are never told about tenancy — each sees a
/// dense local unit-id space the service remaps to global units.
///  - Revocation happens at a block boundary: a unit owed to another job
///    finishes its in-flight task, the owner's scheduler gets
///    on_unit_failed(local, 0) (PLB-HeC natively redistributes the load),
///    and the unit moves to the needy job.
///  - Growth drains: the job stops receiving new blocks, and once its
///    in-flight tasks complete, the service restarts a fresh scheduler
///    over the enlarged lease with the *remaining* grains as the total —
///    warm-seeded from the job's own observation log, so the restarted
///    modeling phase is one validation block per already-profiled unit.
///
/// Warm start across jobs: at admission the per-(app kind, device kind)
/// profiles loaded from the ProfileStore are handed to PLB-HeC, which
/// replaces the exponential probing schedule with a single validation
/// block when the stored fit still holds (see PlbHecOptions::warm). On
/// completion the job's samples are merged back and persisted.
///
/// Sharded coordinator (ServiceOptions::shards > 1): the service splits
/// into N shard loops, each owning a disjoint subset of the cluster's
/// units and a stripe of the jobs (id % shards). Shards run their
/// discrete-event windows in parallel — admission, leasing and scheduling
/// are shard-local and lock-free — and synchronise at a sequential
/// *broker* barrier that (a) merges completed jobs' profiles into the
/// shared store, (b) re-apportions unit entitlements across shards by
/// demand (active + queued jobs, largest-remainder), and (c) migrates
/// idle unleased units from over-provisioned shards to starving ones.
/// Leased surplus is shed by the owning shard with the ordinary
/// revoke-at-block-boundary protocol and crosses shards one broker round
/// later, so the fairness floor and boundary semantics hold cluster-wide.
/// shards == 1 (the default) is the classic single event loop.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plbhec/core/plb_hec.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/scheduler.hpp"
#include "plbhec/rt/workload.hpp"
#include "plbhec/sim/cluster.hpp"
#include "plbhec/svc/lease.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec::svc {

/// One job submitted to the service.
struct JobSpec {
  std::string name;      ///< display name, e.g. "mm-0"
  std::string app_kind;  ///< ProfileStore key, e.g. "matmul-2048"
  PriorityClass priority = PriorityClass::kNormal;
  double arrival_time = 0.0;  ///< virtual seconds
  /// Factory for the job's workload (invoked once, at submit).
  std::function<std::unique_ptr<rt::Workload>()> make_workload;
};

/// Per-job outcome of one service run.
struct JobOutcome {
  JobId id = 0;
  std::string name;
  std::string app_kind;
  PriorityClass priority = PriorityClass::kNormal;
  double arrival = 0.0;
  double admitted = -1.0;  ///< when the job left the admission queue
  double finished = -1.0;
  std::size_t total_grains = 0;
  std::size_t tasks = 0;
  double busy_seconds = 0.0;  ///< transfer + exec over all its tasks
  std::size_t probe_blocks = 0;       ///< modeling blocks, all epochs
  std::size_t probe_blocks_saved = 0; ///< skipped via warm starts
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  std::size_t warm_stale_skips = 0;   ///< warm seeds dropped for staleness
  std::size_t drift_detections = 0;   ///< CUSUM trips across its schedulers
  std::size_t reprobe_blocks = 0;     ///< targeted re-probe ladder blocks
  std::size_t reprobe_swaps = 0;      ///< refreshed fits swapped in
  std::size_t lease_restarts = 0;  ///< drain-and-regrow scheduler restarts
  std::size_t max_units_held = 0;
  bool ok = false;

  [[nodiscard]] double queue_wait() const { return admitted - arrival; }
  [[nodiscard]] double turnaround() const { return finished - arrival; }
};

struct ServiceResult {
  bool ok = false;
  std::string error;
  double makespan = 0.0;  ///< finish time of the last job (virtual seconds)
  std::vector<JobOutcome> jobs;  ///< indexed by JobId (submission order)
  std::vector<JobId> completion_order;
  double busy_unit_seconds = 0.0;
  double utilization = 0.0;  ///< busy_unit_seconds / (units * makespan)
  std::size_t leases_granted = 0;
  std::size_t leases_revoked = 0;
  std::size_t scheduler_restarts = 0;
  std::size_t probe_blocks = 0;
  std::size_t probe_blocks_saved = 0;
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  std::size_t warm_stale_skips = 0;
  std::size_t drift_detections = 0;
  std::size_t reprobe_blocks = 0;
  std::size_t reprobe_swaps = 0;
  StoreLoadStatus store_status = StoreLoadStatus::kMissing;
  std::size_t shards_used = 1;        ///< effective shard-loop count
  std::size_t broker_rounds = 0;      ///< barrier synchronisations (shards > 1)
  std::size_t broker_migrations = 0;  ///< unit ownership moves between shards
};

struct ServiceOptions {
  sim::NoiseModel noise;
  std::uint64_t seed = 42;
  double max_sim_time = 1e9;            ///< watchdog (virtual seconds)
  std::size_t max_events = 50'000'000;  ///< watchdog (discrete events)
  LeasePolicyOptions lease;
  /// Base options for every per-job PLB-HeC instance; the service fills in
  /// the `warm` vector per epoch.
  core::PlbHecOptions scheduler;
  /// On-disk ProfileStore path; empty = in-memory only (still merges
  /// profiles across jobs within this service instance).
  std::string store_path;
  /// Master switch for warm-starting schedulers from stored profiles.
  bool warm_start = true;
  /// Bounded preemption latency, in units of "execution windows on the
  /// cluster's best unit": each epoch's scheduler gets
  /// PlbHecOptions::max_block_seconds = preempt_windows * (exec time of
  /// one step_fraction window of this job on the fastest alive unit).
  /// This keeps block boundaries — the only points where leases can be
  /// revoked or grown — arriving at the rate the *cluster* could serve
  /// the job, not the rate of whichever slow unit its current lease
  /// happens to hold. Fixes the warm-start regression where a job
  /// admitted on a one-unit lease skipped the probing ramp and issued a
  /// quarter of its grains as a single unpreemptible block (see
  /// EXPERIMENTS.md). 0 disables the cap (pre-fix behavior).
  double preempt_windows = 16.0;
  /// Coordinator shard loops (clamped to the unit count). 1 = the classic
  /// single event loop; N > 1 partitions units and jobs across N loops
  /// that run in parallel between broker barriers (see the file comment).
  /// Note: lease.max_active_jobs then caps *per shard*, not globally.
  std::size_t shards = 1;
  /// Virtual-seconds length of a parallel window between broker barriers
  /// (shards > 1 only). Each window always extends past the earliest
  /// pending event, so any positive value makes progress; smaller values
  /// tighten cross-shard lease latency, larger ones amortise the barrier.
  /// 0 = auto: ~4x the trace's mean inter-arrival gap.
  double broker_quantum = 0.0;
  /// Optional scheduler factory for non-PLB-HeC tenants; null = PLB-HeC
  /// with the options above. Warm statistics are harvested only from
  /// schedulers that are PlbHecScheduler instances.
  std::function<std::unique_ptr<rt::Scheduler>(
      const JobSpec& spec, const std::vector<rt::UnitInfo>& units,
      const rt::WorkInfo& work, std::vector<rt::WarmProfile> warm)>
      make_scheduler;
  obs::EventSink* sink = nullptr;             ///< not owned; may be null
  obs::CounterRegistry* counters = nullptr;   ///< not owned; may be null
};

/// The service: submit jobs, then run the discrete-event loop to
/// completion. Deterministic for fixed (specs, seed, store image): event
/// ties break on sequence numbers and every unit draws noise from its own
/// forked RNG stream.
class JobManager {
 public:
  /// Loads the ProfileStore from options.store_path (when set); any load
  /// failure leaves the store empty — cold-start fallback, never an error.
  JobManager(const sim::SimCluster& cluster, ServiceOptions options = {});

  /// Registers a job (before run()). Returns its JobId.
  JobId submit(JobSpec spec);

  /// Runs every submitted job to completion and returns the outcomes.
  /// May be called once per JobManager instance.
  [[nodiscard]] ServiceResult run();

  [[nodiscard]] const ProfileStore& store() const { return store_; }
  [[nodiscard]] StoreLoadStatus store_status() const { return store_status_; }

 private:
  const sim::SimCluster& cluster_;
  ServiceOptions options_;
  std::vector<JobSpec> specs_;
  ProfileStore store_;
  StoreLoadStatus store_status_ = StoreLoadStatus::kMissing;
  bool ran_ = false;
};

}  // namespace plbhec::svc
