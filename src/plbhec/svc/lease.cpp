#include "plbhec/svc/lease.hpp"

#include <algorithm>
#include <cmath>

#include "plbhec/common/contracts.hpp"

namespace plbhec::svc {

const char* to_string(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kHigh: return "high";
    case PriorityClass::kNormal: return "normal";
    case PriorityClass::kLow: return "low";
  }
  return "unknown";
}

double weight(PriorityClass priority, const LeasePolicyOptions& options) {
  switch (priority) {
    case PriorityClass::kHigh: return options.high_weight;
    case PriorityClass::kNormal: return options.normal_weight;
    case PriorityClass::kLow: return options.low_weight;
  }
  return options.normal_weight;
}

std::vector<std::size_t> lease_targets(std::span<const ActiveJobView> jobs,
                                       std::size_t units,
                                       const LeasePolicyOptions& options) {
  const std::size_t k = jobs.size();
  PLBHEC_EXPECTS(k >= 1);
  PLBHEC_EXPECTS(k <= units);

  const std::size_t floor_share = units / k;
  std::vector<std::size_t> targets(k, floor_share);
  std::size_t rest = units - floor_share * k;
  if (rest == 0) return targets;

  double total_weight = 0.0;
  for (const ActiveJobView& job : jobs) {
    const double w = weight(job.priority, options);
    total_weight += w > 0.0 ? w : 0.0;
  }

  // Largest-remainder apportionment of the remainder units by weight; with
  // all weights zero (degenerate config) everything falls to the remainder
  // stage with equal quotas, which then fills in index order.
  std::vector<double> remainder(k, 0.0);
  const double rest_units = static_cast<double>(rest);
  for (std::size_t i = 0; i < k && total_weight > 0.0; ++i) {
    const double w = std::max(weight(jobs[i].priority, options), 0.0);
    const double quota = rest_units * w / total_weight;
    const double whole = std::floor(quota);
    const auto grant = std::min(rest, static_cast<std::size_t>(whole));
    targets[i] += grant;
    rest -= grant;
    remainder[i] = quota - whole;
  }

  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (remainder[a] != remainder[b]) {
                       return remainder[a] > remainder[b];
                     }
                     return jobs[a].id < jobs[b].id;
                   });
  for (std::size_t i = 0; i < k && rest > 0; ++i, --rest) ++targets[order[i]];
  return targets;
}

double stretch_bound(std::size_t units, std::size_t jobs) {
  PLBHEC_EXPECTS(jobs >= 1);
  PLBHEC_EXPECTS(units >= jobs);
  return static_cast<double>(units) / static_cast<double>(units / jobs);
}

}  // namespace plbhec::svc
