#include "plbhec/svc/profile_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <tuple>
#include <utility>

#include "plbhec/common/codec.hpp"
#include "plbhec/common/contracts.hpp"

namespace plbhec::svc {
namespace {

using common::ByteReader;
using common::ByteWriter;
using common::fnv1a64;

constexpr char kMagic[8] = {'P', 'L', 'B', 'H', 'E', 'C', 'P', 'S'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8;  // magic + version + payload
constexpr std::size_t kChecksumBytes = 8;

// Structural caps: a checksummed-but-hostile payload may still announce
// absurd counts; cap them so the decoder never attempts a huge allocation.
constexpr std::size_t kMaxEntries = 1u << 20;
constexpr std::size_t kMaxStringBytes = 4096;
constexpr std::size_t kMaxSamples = 1u << 20;
constexpr std::size_t kMaxModelTerms = 64;

// ---- encoding ------------------------------------------------------------

/// Domain-specific composites over the shared byte codec.
struct Writer : ByteWriter {
  void samples(const std::vector<fit::Sample>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const fit::Sample& s : v) {
      f64(s.x);
      f64(s.time);
    }
  }
  void moments(const fit::MomentSnapshot& m) {
    u64(m.n);
    for (double v : m.gram) f64(v);
    for (double v : m.xty) f64(v);
    f64(m.yty);
    for (double v : m.wgram) f64(v);
    for (double v : m.wxty) f64(v);
    f64(m.wyty);
  }
  void curve(const fit::CurveModel& c) {
    u32(static_cast<std::uint32_t>(c.terms.size()));
    for (fit::BasisFn t : c.terms) u32(static_cast<std::uint32_t>(t));
    for (double v : c.coefficients) f64(v);
    f64(c.r2);
  }
  void transfer(const fit::TransferModel& t) {
    f64(t.slope);
    f64(t.latency);
    f64(t.r2);
  }
};

// ---- decoding ------------------------------------------------------------

struct Reader : ByteReader {
  bool str(std::string& s) { return ByteReader::str(s, kMaxStringBytes); }
  bool samples(std::vector<fit::Sample>& v) {
    const std::uint32_t n = u32();
    if (!ok || n > kMaxSamples) {
      ok = false;
      return false;
    }
    v.resize(n);
    for (fit::Sample& s : v) {
      s.x = f64();
      s.time = f64();
      // Reject values SampleSet::add's contracts would abort on: a store
      // that passed the checksum can still have been written by a buggy
      // producer, and the service must degrade to cold-start, not abort.
      if (!ok || !std::isfinite(s.x) || !std::isfinite(s.time) ||
          s.x <= 0.0 || s.x > 1.0 || s.time < 0.0) {
        ok = false;
        return false;
      }
    }
    return ok;
  }
  bool moments(fit::MomentSnapshot& m, std::size_t expected_n) {
    m.n = u64();
    for (double& v : m.gram) v = f64();
    for (double& v : m.xty) v = f64();
    m.yty = f64();
    for (double& v : m.wgram) v = f64();
    for (double& v : m.wxty) v = f64();
    m.wyty = f64();
    if (ok && m.n != expected_n) ok = false;  // snapshot/sample mismatch
    return ok;
  }
  bool curve(fit::CurveModel& c) {
    const std::uint32_t n = u32();
    if (!ok || n > kMaxModelTerms) {
      ok = false;
      return false;
    }
    c.terms.resize(n);
    for (fit::BasisFn& t : c.terms) {
      const std::uint32_t raw = u32();
      if (!ok || raw > static_cast<std::uint32_t>(fit::BasisFn::kXLnX)) {
        ok = false;
        return false;
      }
      t = static_cast<fit::BasisFn>(raw);
    }
    c.coefficients.resize(n);
    for (double& v : c.coefficients) v = f64();
    c.r2 = f64();
    return ok;
  }
  bool transfer(fit::TransferModel& t) {
    t.slope = f64();
    t.latency = f64();
    t.r2 = f64();
    return ok;
  }
};

bool key_less(const ProfileEntry& e, std::string_view app,
              std::string_view dev) {
  return std::tie(e.app_kind, e.device_kind) < std::tie(app, dev);
}

}  // namespace

const char* to_string(StoreLoadStatus status) {
  switch (status) {
    case StoreLoadStatus::kOk: return "ok";
    case StoreLoadStatus::kMissing: return "missing";
    case StoreLoadStatus::kTruncated: return "truncated";
    case StoreLoadStatus::kBadMagic: return "bad_magic";
    case StoreLoadStatus::kVersionSkew: return "version_skew";
    case StoreLoadStatus::kBadChecksum: return "bad_checksum";
    case StoreLoadStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

ProfileEntry make_entry(std::string app_kind, std::string device_kind,
                        const fit::SampleSet& exec,
                        const fit::SampleSet& transfer, double total_grains,
                        const fit::SelectionOptions& fit_options) {
  PLBHEC_EXPECTS(total_grains > 0.0);
  ProfileEntry entry;
  entry.app_kind = std::move(app_kind);
  entry.device_kind = std::move(device_kind);
  entry.total_grains = total_grains;

  // Trim to the cap keeping the most recent samples; a trimmed curve's
  // moments are rebuilt by replay so snapshot and samples always agree.
  const auto capped = [](const fit::SampleSet& full) {
    if (full.size() <= ProfileStore::kMaxSamplesPerCurve) return full;
    fit::SampleSet trimmed;
    const auto& items = full.items();
    for (std::size_t i = items.size() - ProfileStore::kMaxSamplesPerCurve;
         i < items.size(); ++i) {
      trimmed.add(items[i].x, items[i].time);
    }
    return trimmed;
  };
  const fit::SampleSet exec_set = capped(exec);
  const fit::SampleSet transfer_set = capped(transfer);

  entry.exec = exec_set.items();
  entry.transfer = transfer_set.items();
  entry.exec_moments = exec_set.moments().snapshot();
  entry.transfer_moments = transfer_set.moments().snapshot();

  const fit::FitResult fitted = fit::select_model(exec_set, fit_options);
  entry.exec_model = fitted.model;
  entry.stored_r2 = fitted.r2;
  entry.transfer_model = fit::fit_transfer(transfer_set);
  return entry;
}

const ProfileEntry* ProfileStore::find(std::string_view app_kind,
                                       std::string_view device_kind) const {
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), nullptr,
                       [&](const ProfileEntry& e, std::nullptr_t) {
                         return key_less(e, app_kind, device_kind);
                       });
  if (it == entries_.end() || it->app_kind != app_kind ||
      it->device_kind != device_kind) {
    return nullptr;
  }
  return &*it;
}

void ProfileStore::put(ProfileEntry entry) {
  entry.stamp = ++seq_;
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), nullptr,
                       [&](const ProfileEntry& e, std::nullptr_t) {
                         return key_less(e, entry.app_kind, entry.device_kind);
                       });
  if (it != entries_.end() && it->app_kind == entry.app_kind &&
      it->device_kind == entry.device_kind) {
    entry.updates = it->updates + 1;
    *it = std::move(entry);
    return;
  }
  entry.updates = 1;
  entries_.insert(it, std::move(entry));
}

void ProfileStore::merge(const ProfileStore& other) {
  for (const ProfileEntry& e : other.entries_) put(e);
}

rt::WarmProfile ProfileStore::warm_profile(
    std::string_view app_kind, std::string_view device_kind) const {
  const ProfileEntry* entry = find(app_kind, device_kind);
  if (entry == nullptr) return {};
  rt::WarmProfile warm;
  warm.exec = entry->exec;
  warm.transfer = entry->transfer;
  warm.total_grains = entry->total_grains;
  warm.stored_r2 = entry->stored_r2;
  warm.exec_moments = entry->exec_moments;
  warm.transfer_moments = entry->transfer_moments;
  warm.has_moments = true;
  PLBHEC_ASSERT(entry->stamp <= seq_);
  warm.age = seq_ - entry->stamp;
  return warm;
}

std::vector<std::uint8_t> ProfileStore::encode() const {
  std::vector<std::uint8_t> payload;
  Writer w{payload};
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  w.u64(seq_);
  for (const ProfileEntry& e : entries_) {
    w.str(e.app_kind);
    w.str(e.device_kind);
    w.f64(e.total_grains);
    w.f64(e.stored_r2);
    w.u64(e.updates);
    w.u64(e.stamp);
    w.samples(e.exec);
    w.samples(e.transfer);
    w.moments(e.exec_moments);
    w.moments(e.transfer_moments);
    w.curve(e.exec_model);
    w.transfer(e.transfer_model);
  }

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
  Writer h{out};
  h.bytes(kMagic, sizeof kMagic);
  h.u32(kFormatVersion);
  h.u64(payload.size());
  h.bytes(payload.data(), payload.size());
  h.u64(fnv1a64(payload));
  return out;
}

StoreLoadStatus ProfileStore::decode(std::span<const std::uint8_t> bytes,
                                     ProfileStore& out) {
  out.entries_.clear();
  out.seq_ = 0;
  if (bytes.size() < sizeof kMagic) return StoreLoadStatus::kTruncated;
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return StoreLoadStatus::kBadMagic;
  }
  if (bytes.size() < kHeaderBytes) return StoreLoadStatus::kTruncated;

  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof kMagic, sizeof version);
  if (version != kFormatVersion) return StoreLoadStatus::kVersionSkew;

  std::uint64_t payload_size = 0;
  std::memcpy(&payload_size, bytes.data() + sizeof kMagic + sizeof version,
              sizeof payload_size);
  if (payload_size > bytes.size() ||
      bytes.size() - kHeaderBytes < payload_size + kChecksumBytes) {
    return StoreLoadStatus::kTruncated;
  }
  if (bytes.size() != kHeaderBytes + payload_size + kChecksumBytes) {
    return StoreLoadStatus::kCorrupt;  // trailing garbage
  }

  const std::span<const std::uint8_t> payload =
      bytes.subspan(kHeaderBytes, payload_size);
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + kHeaderBytes + payload_size,
              sizeof stored_checksum);
  if (fnv1a64(payload) != stored_checksum) {
    return StoreLoadStatus::kBadChecksum;
  }

  Reader r{payload};
  const std::uint32_t count = r.u32();
  const std::uint64_t seq = r.u64();
  if (!r.ok || count > kMaxEntries) return StoreLoadStatus::kCorrupt;

  std::vector<ProfileEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok; ++i) {
    ProfileEntry e;
    r.str(e.app_kind);
    r.str(e.device_kind);
    e.total_grains = r.f64();
    e.stored_r2 = r.f64();
    e.updates = r.u64();
    e.stamp = r.u64();
    if (r.ok && e.stamp > seq) r.ok = false;  // stamp ahead of the counter
    r.samples(e.exec);
    r.samples(e.transfer);
    r.moments(e.exec_moments, e.exec.size());
    r.moments(e.transfer_moments, e.transfer.size());
    r.curve(e.exec_model);
    r.transfer(e.transfer_model);
    if (r.ok && (!std::isfinite(e.total_grains) || e.total_grains <= 0.0)) {
      r.ok = false;
    }
    if (r.ok) entries.push_back(std::move(e));
  }
  if (!r.ok || r.pos != payload.size()) return StoreLoadStatus::kCorrupt;
  if (!std::is_sorted(entries.begin(), entries.end(),
                      [](const ProfileEntry& a, const ProfileEntry& b) {
                        return std::tie(a.app_kind, a.device_kind) <
                               std::tie(b.app_kind, b.device_kind);
                      })) {
    return StoreLoadStatus::kCorrupt;
  }

  out.entries_ = std::move(entries);
  out.seq_ = seq;
  return StoreLoadStatus::kOk;
}

bool ProfileStore::save(const std::string& path) const {
  const std::vector<std::uint8_t> image = encode();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      image.empty() ||
      std::fwrite(image.data(), 1, image.size(), f) == image.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

StoreLoadStatus ProfileStore::load(const std::string& path,
                                   ProfileStore& out) {
  out.entries_.clear();
  out.seq_ = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return StoreLoadStatus::kMissing;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return StoreLoadStatus::kMissing;
  return decode(bytes, out);
}

}  // namespace plbhec::svc
