#include "plbhec/svc/job_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <utility>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/obs/events.hpp"

namespace plbhec::svc {
namespace {

enum class EvKind { kArrival, kCompletion, kFailure };

struct Ev {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< tie-break: earlier-pushed event fires first
  EvKind kind = EvKind::kArrival;
  JobId job = 0;
  rt::UnitId unit = 0;
};

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct InFlight {
  JobId job = 0;
  rt::UnitId local = 0;
  std::size_t grains = 0;
  double start = 0.0;
  double transfer_s = 0.0;
  double exec_s = 0.0;
};

struct UnitRt {
  bool busy = false;
  bool dead = false;
  bool leased = false;
  JobId owner = 0;
  /// Lease marked for revocation at this unit's next block boundary.
  bool revoke_pending = false;
  InFlight task;
};

enum class JobPhase : std::uint8_t {
  kPending,   ///< not yet arrived
  kQueued,    ///< in the admission queue
  kForming,   ///< admitted, assembling its unit lease
  kRunning,   ///< scheduler active
  kDraining,  ///< lease grew: no new blocks until in-flight work drains
  kDone,
};

struct JobRt {
  JobPhase phase = JobPhase::kPending;
  std::uint32_t shard = 0;  ///< owning shard loop (id % shards)
  std::unique_ptr<rt::Workload> workload;
  sim::WorkloadProfile profile;
  double bytes_per_grain = 0.0;
  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t issued = 0;
  std::size_t target = 0;  ///< lease policy's current unit entitlement
  std::vector<rt::UnitId> held;     ///< sorted global ids (incl. pending)
  std::vector<rt::UnitId> pending;  ///< granted but not yet integrated
  std::map<rt::UnitId, rt::UnitId> global_to_local;  ///< current epoch
  std::vector<rt::UnitId> local_to_global;
  std::unique_ptr<rt::Scheduler> scheduler;
  core::PlbHecScheduler* plb = nullptr;  ///< stats view; null once harvested
  std::size_t in_flight = 0;
  /// Service-side observation log in the *job* fraction domain (x =
  /// grains / total), per global unit — the warm seed for epoch restarts.
  std::vector<fit::SampleSet> exec_obs;
  std::vector<fit::SampleSet> transfer_obs;

  [[nodiscard]] std::size_t unassigned() const { return total - issued; }
};

void insert_sorted(std::vector<rt::UnitId>& v, rt::UnitId g) {
  v.insert(std::lower_bound(v.begin(), v.end(), g), g);
}

void erase_sorted(std::vector<rt::UnitId>& v, rt::UnitId g) {
  const auto it = std::lower_bound(v.begin(), v.end(), g);
  if (it != v.end() && *it == g) v.erase(it);
}

void insert_sorted_job(std::vector<JobId>& v, JobId id) {
  v.insert(std::lower_bound(v.begin(), v.end(), id), id);
}

void erase_sorted_job(std::vector<JobId>& v, JobId id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

/// Admission order: priority class first, then submission id (FIFO within
/// class). Returns true when `a` should leave the queue *after* `b`, i.e.
/// the priority_queue's top() is the next job to admit.
struct AdmitLater {
  const std::vector<JobSpec>* specs = nullptr;
  bool operator()(JobId a, JobId b) const {
    const auto pa = static_cast<std::uint8_t>((*specs)[a].priority);
    const auto pb = static_cast<std::uint8_t>((*specs)[b].priority);
    if (pa != pb) return pa > pb;
    return a > b;
  }
};

/// Everything one shard loop owns. Between broker barriers a shard only
/// touches: its own ShardRt, the units it owns (owner_shard), the jobs
/// striped to it, and shared *immutable* state (cluster, specs, store
/// reads) — so windows run data-race free in parallel.
struct ShardRt {
  std::uint32_t index = 0;
  std::priority_queue<JobId, std::vector<JobId>, AdmitLater> queue;
  std::priority_queue<Ev, std::vector<Ev>, EvLater> events;
  std::uint64_t seq = 0;
  double now = 0.0;
  std::size_t processed = 0;
  /// Units this shard may hand out; set by the broker (shards > 1) or
  /// refreshed to the live count every renegotiation (single shard).
  std::size_t unit_budget = 0;
  std::vector<JobId> active;  ///< sorted; phases forming/running/draining
  std::string error;
  // Merged into ServiceResult after the run.
  std::size_t leases_granted = 0;
  std::size_t leases_revoked = 0;
  std::size_t scheduler_restarts = 0;
  double busy_unit_seconds = 0.0;
  std::vector<JobId> completion_order;
  /// shards > 1: profile-store writes deferred to the broker barrier so
  /// windows never mutate shared state.
  std::vector<ProfileEntry> store_outbox;

  explicit ShardRt(const std::vector<JobSpec>& specs)
      : queue(AdmitLater{&specs}) {}
};

/// The whole per-run state; constructed fresh inside run() so the event
/// loop's working set dies with it.
struct ServiceSim {
  const sim::SimCluster& cluster;
  const ServiceOptions& options;
  const std::vector<JobSpec>& specs;
  ProfileStore& store;

  std::size_t n = 0;
  std::size_t nshards = 1;
  std::vector<UnitRt> units;
  std::vector<std::uint32_t> owner_shard;  ///< unit -> shard, broker-mutated
  std::vector<Rng> unit_rng;
  std::vector<JobRt> jobs;
  std::vector<ShardRt> shards;
  ServiceResult res;

  ServiceSim(const sim::SimCluster& c, const ServiceOptions& o,
             const std::vector<JobSpec>& s, ProfileStore& st)
      : cluster(c), options(o), specs(s), store(st) {}

  // ---- helpers ---------------------------------------------------------

  [[nodiscard]] std::size_t alive_owned(std::uint32_t shard) const {
    std::size_t count = 0;
    for (rt::UnitId g = 0; g < n; ++g) {
      if (owner_shard[g] == shard && !units[g].dead) ++count;
    }
    return count;
  }

  [[nodiscard]] bool admission_before(JobId a, JobId b) const {
    const auto pa = static_cast<std::uint8_t>(specs[a].priority);
    const auto pb = static_cast<std::uint8_t>(specs[b].priority);
    if (pa != pb) return pa < pb;
    return a < b;  // FIFO within class (ids follow submission order)
  }

  [[nodiscard]] std::string device_kind(rt::UnitId g) const {
    return cluster.unit(g).device->description();
  }

  /// held minus the units already marked to leave at their block boundary.
  [[nodiscard]] std::size_t effective_held(const JobRt& job) const {
    std::size_t away = 0;
    for (rt::UnitId g : job.held) {
      if (units[g].revoke_pending) ++away;
    }
    return job.held.size() - away;
  }

  void fail(ShardRt& sh, std::string message) {
    if (sh.error.empty()) sh.error = std::move(message);
  }

  // ---- lease bookkeeping ----------------------------------------------

  /// Takes an *idle* unit away from `job` immediately (block boundary
  /// already reached). Notifies the job's scheduler so PLB-HeC re-solves
  /// the distribution over the survivors.
  void revoke_now(ShardRt& sh, JobId id, rt::UnitId g) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    PLBHEC_ASSERT(!un.busy && un.leased && un.owner == id);
    const auto it = job.global_to_local.find(g);
    if (it != job.global_to_local.end()) {
      if (job.scheduler) job.scheduler->on_unit_failed(it->second, 0, sh.now);
      job.global_to_local.erase(it);
    }
    erase_sorted(job.held, g);
    erase_sorted(job.pending, g);
    un.leased = false;
    un.revoke_pending = false;
    ++sh.leases_revoked;
    PLBHEC_OBS_RECORD(options.sink,
                      {sh.now, obs::EventKind::kLeaseRevoked,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, id,
                       job.held.size()});
  }

  void grant(ShardRt& sh, JobId id, rt::UnitId g) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    PLBHEC_ASSERT(!un.leased && !un.busy && !un.dead);
    PLBHEC_ASSERT(owner_shard[g] == sh.index);
    un.leased = true;
    un.owner = id;
    insert_sorted(job.held, g);
    ++sh.leases_granted;
    res.jobs[id].max_units_held =
        std::max(res.jobs[id].max_units_held, job.held.size());
    PLBHEC_OBS_RECORD(options.sink,
                      {sh.now, obs::EventKind::kLeaseGranted,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, id,
                       job.held.size()});
    if (job.phase == JobPhase::kForming) {
      if (job.target > 0 && job.held.size() >= job.target) start_epoch(sh, id);
    } else {
      // Running/draining: integrate at the drain boundary.
      insert_sorted(job.pending, g);
      if (job.phase == JobPhase::kRunning) job.phase = JobPhase::kDraining;
      if (job.in_flight == 0) start_epoch(sh, id);
    }
  }

  /// Accumulates the scheduler's warm/probing statistics into the job
  /// outcome (once per scheduler instance).
  void harvest(JobId id) {
    JobRt& job = jobs[id];
    if (job.plb == nullptr) return;
    const core::PlbHecStats& s = job.plb->stats();
    JobOutcome& out = res.jobs[id];
    out.probe_blocks += s.probe_blocks;
    out.probe_blocks_saved += s.probe_blocks_saved;
    out.warm_hits += s.warm_hits;
    out.warm_misses += s.warm_misses;
    out.warm_stale_skips += s.warm_stale_skips;
    out.drift_detections += s.drift_detections;
    out.reprobe_blocks += s.reprobe_blocks;
    out.reprobe_swaps += s.reprobe_swaps;
    job.plb = nullptr;
  }

  [[nodiscard]] rt::WarmProfile warm_for(const JobRt& job, JobId id,
                                         rt::UnitId g) const {
    if (!options.warm_start) return {};
    // Prefer the job's own observations (same workload instance, same
    // unit) over the cross-job store; they exist from the second epoch on.
    if (job.exec_obs[g].size() >= 4) {
      rt::WarmProfile warm;
      warm.exec = job.exec_obs[g].items();
      warm.transfer = job.transfer_obs[g].items();
      warm.total_grains = static_cast<double>(job.total);
      warm.stored_r2 =
          fit::select_model(job.exec_obs[g], options.scheduler.fit).r2;
      warm.exec_moments = job.exec_obs[g].moments().snapshot();
      warm.transfer_moments = job.transfer_obs[g].moments().snapshot();
      warm.has_moments = true;
      return warm;
    }
    return store.warm_profile(specs[id].app_kind, device_kind(g));
  }

  /// Exec time of one step_fraction window of this job on the fastest
  /// unit of the *whole cluster* (not just the job's lease) — the
  /// yardstick for the bounded-preemption block cap. Using the cluster
  /// best means a job stranded on a slow lease keeps hitting block
  /// boundaries at the rate a good unit could serve it, so a grant or
  /// revocation never waits on one monster block. Liveness comes from the
  /// unit's static failure schedule (failed_at), never from another
  /// shard's mutable flags, so parallel shard windows stay deterministic.
  [[nodiscard]] double best_window_seconds(const JobRt& job,
                                           double at) const {
    const auto window_grains = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               options.scheduler.step_fraction *
               static_cast<double>(job.total))));
    double best = 0.0;
    for (rt::UnitId g = 0; g < n; ++g) {
      const sim::SimUnit& su = cluster.unit(g);
      if (su.failed_at(at)) continue;
      const double speed = su.speed_factor(at);
      if (speed <= 0.0) continue;
      const double s =
          su.device->execution_seconds(job.profile, window_grains) / speed;
      if (best == 0.0 || s < best) best = s;
    }
    return best;
  }

  /// (Re)starts the job's scheduler over its current lease with the
  /// remaining grains as the work total. Requires no in-flight tasks.
  void start_epoch(ShardRt& sh, JobId id) {
    JobRt& job = jobs[id];
    PLBHEC_ASSERT(job.in_flight == 0);
    PLBHEC_ASSERT(!job.held.empty());
    const bool restart = job.scheduler != nullptr;
    if (restart) {
      harvest(id);
      ++res.jobs[id].lease_restarts;
      ++sh.scheduler_restarts;
    }
    job.pending.clear();
    job.local_to_global = job.held;  // held is sorted: dense local ids
    job.global_to_local.clear();
    std::vector<rt::UnitInfo> infos;
    infos.reserve(job.held.size());
    std::vector<rt::WarmProfile> warm;
    warm.reserve(job.held.size());
    for (rt::UnitId local = 0; local < job.local_to_global.size(); ++local) {
      const rt::UnitId g = job.local_to_global[local];
      job.global_to_local[g] = local;
      const sim::SimUnit& su = cluster.unit(g);
      rt::UnitInfo info;
      info.id = local;
      info.name = su.name;
      info.kind = su.device->kind() == sim::DeviceKind::kGpu
                      ? rt::ProcKind::kGpu
                      : rt::ProcKind::kCpu;
      info.machine = su.machine_index;
      infos.push_back(std::move(info));
      warm.push_back(warm_for(job, id, g));
    }

    const std::size_t remaining = job.total - job.completed;
    PLBHEC_ASSERT(remaining > 0);
    job.issued = job.completed;  // lost in-flight grains are back in the pool
    rt::WorkInfo work;
    work.name = job.workload->name();
    work.total_grains = remaining;
    work.bytes_per_grain = job.bytes_per_grain;
    work.initial_block = std::max<std::size_t>(1, remaining / 512);

    if (options.make_scheduler) {
      job.scheduler =
          options.make_scheduler(specs[id], infos, work, std::move(warm));
      job.plb = dynamic_cast<core::PlbHecScheduler*>(job.scheduler.get());
    } else {
      core::PlbHecOptions opt = options.scheduler;
      opt.warm = std::move(warm);
      if (opt.max_block_seconds <= 0.0 && options.preempt_windows > 0.0) {
        opt.max_block_seconds =
            options.preempt_windows * best_window_seconds(job, sh.now);
      }
      auto plb = std::make_unique<core::PlbHecScheduler>(std::move(opt));
      job.plb = plb.get();
      job.scheduler = std::move(plb);
    }
    job.scheduler->set_event_sink(options.sink);
    job.scheduler->start(infos, work);
    job.phase = JobPhase::kRunning;
  }

  // ---- admission & lease renegotiation --------------------------------

  /// Admits queued jobs up to the shard's concurrency cap, then recomputes
  /// every active job's unit target and moves leases toward the targets.
  /// Called whenever the shard's active-job set or unit budget changes.
  void renegotiate(ShardRt& sh) {
    if (nshards == 1) sh.unit_budget = alive_owned(0);
    const std::size_t supply = sh.unit_budget;

    std::size_t cap = options.lease.max_active_jobs == 0
                          ? supply
                          : std::min(options.lease.max_active_jobs, supply);
    while (!sh.queue.empty() && sh.active.size() < cap) {
      const JobId id = sh.queue.top();
      sh.queue.pop();
      jobs[id].phase = JobPhase::kForming;
      res.jobs[id].admitted = sh.now;
      PLBHEC_OBS_RECORD(
          options.sink,
          {sh.now, obs::EventKind::kJobAdmitted, obs::kNoUnit,
           sh.now - res.jobs[id].arrival, 0.0, id, sh.queue.size()});
      insert_sorted_job(sh.active, id);
    }
    if (sh.active.empty()) return;

    // Unit targets: the first `supply` actives in admission order share
    // the shard's budget under the fairness floor; any beyond (possible
    // only after unit deaths or a budget cut shrank supply below the
    // admitted count) wait at target 0 for capacity to free up.
    std::vector<JobId> entitled = sh.active;
    if (entitled.size() > supply) {
      std::sort(entitled.begin(), entitled.end(),
                [&](JobId a, JobId b) { return admission_before(a, b); });
      entitled.resize(supply);
      std::sort(entitled.begin(), entitled.end());
    }
    for (JobId id : sh.active) jobs[id].target = 0;
    if (!entitled.empty() && supply > 0) {
      std::vector<ActiveJobView> views;
      views.reserve(entitled.size());
      for (JobId id : entitled) {
        views.push_back({id, specs[id].priority});
      }
      const std::vector<std::size_t> targets =
          lease_targets(views, supply, options.lease);
      for (std::size_t i = 0; i < entitled.size(); ++i) {
        jobs[entitled[i]].target = targets[i];
      }
    }
    rebalance(sh);
  }

  void rebalance(ShardRt& sh) {
    // Phase A: shed surplus. Idle units are revoked at once (they are at a
    // block boundary by definition); busy units are marked and handed over
    // when their current task completes.
    for (JobId id : sh.active) {
      JobRt& job = jobs[id];
      while (effective_held(job) > job.target) {
        rt::UnitId victim = rt::UnitId(-1);
        bool victim_idle = false;
        // Prefer (highest-id): unintegrated idle, then integrated idle,
        // then busy not yet marked.
        for (auto it = job.pending.rbegin(); it != job.pending.rend(); ++it) {
          if (!units[*it].busy && !units[*it].revoke_pending) {
            victim = *it;
            victim_idle = true;
            break;
          }
        }
        if (victim == rt::UnitId(-1)) {
          for (auto it = job.held.rbegin(); it != job.held.rend(); ++it) {
            if (!units[*it].busy && !units[*it].revoke_pending) {
              victim = *it;
              victim_idle = true;
              break;
            }
          }
        }
        if (victim == rt::UnitId(-1)) {
          for (auto it = job.held.rbegin(); it != job.held.rend(); ++it) {
            if (units[*it].busy && !units[*it].revoke_pending) {
              victim = *it;
              break;
            }
          }
        }
        if (victim == rt::UnitId(-1)) break;  // nothing left to shed
        if (victim_idle) {
          revoke_now(sh, id, victim);
        } else {
          units[victim].revoke_pending = true;
        }
      }
    }

    // Phase B: grant free owned units to jobs under target,
    // neediest-priority first (admission order).
    std::vector<JobId> order = sh.active;
    std::sort(order.begin(), order.end(),
              [&](JobId a, JobId b) { return admission_before(a, b); });
    for (JobId id : order) {
      JobRt& job = jobs[id];
      while (effective_held(job) < job.target) {
        rt::UnitId free_unit = rt::UnitId(-1);
        for (rt::UnitId g = 0; g < n; ++g) {
          if (owner_shard[g] != sh.index) continue;
          if (!units[g].leased && !units[g].dead && !units[g].busy) {
            free_unit = g;
            break;
          }
        }
        if (free_unit == rt::UnitId(-1)) break;  // wait for boundaries
        grant(sh, id, free_unit);
      }
    }
  }

  // ---- task issue & completion -----------------------------------------

  void retire_unit(ShardRt& sh, JobId id, rt::UnitId g,
                   std::size_t lost_grains) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    un.dead = true;
    un.leased = false;
    un.revoke_pending = false;
    const auto it = job.global_to_local.find(g);
    if (it != job.global_to_local.end()) {
      if (job.scheduler) {
        job.scheduler->on_unit_failed(it->second, lost_grains, sh.now);
      }
      job.global_to_local.erase(it);
    }
    erase_sorted(job.held, g);
    erase_sorted(job.pending, g);
    PLBHEC_OBS_RECORD(options.sink,
                      {sh.now, obs::EventKind::kUnitFailed,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, lost_grains,
                       id});
  }

  void issue(ShardRt& sh, JobId id, rt::UnitId g, rt::UnitId local,
             std::size_t grains) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    const sim::SimUnit& su = cluster.unit(g);
    const double bytes = static_cast<double>(grains) * job.bytes_per_grain;
    const double transfer_s = options.noise.perturb_transfer(
        su.path.transfer_seconds(bytes), unit_rng[g]);
    const double speed = su.speed_factor(sh.now);
    PLBHEC_ASSERT(speed > 0.0);
    const double exec_s = options.noise.perturb_exec(
        su.device->execution_seconds(job.profile, grains) / speed,
        unit_rng[g]);
    un.busy = true;
    un.task = {id, local, grains, sh.now, transfer_s, exec_s};
    job.issued += grains;
    ++job.in_flight;
    PLBHEC_OBS_RECORD(options.sink,
                      {sh.now, obs::EventKind::kBlockDispatched,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, grains,
                       sh.seq});
    const double finish = sh.now + transfer_s + exec_s;
    const auto failure = su.failure_time();
    if (failure && *failure < finish && *failure >= sh.now) {
      sh.events.push({*failure, sh.seq++, EvKind::kFailure, id, g});
    } else {
      sh.events.push({finish, sh.seq++, EvKind::kCompletion, id, g});
    }
  }

  /// One assignment sweep over a job's leased units; returns the number of
  /// tasks issued.
  std::size_t assignment_round(ShardRt& sh, JobId id) {
    JobRt& job = jobs[id];
    std::size_t assigned = 0;
    for (rt::UnitId local = 0; local < job.local_to_global.size(); ++local) {
      const rt::UnitId g = job.local_to_global[local];
      const auto it = job.global_to_local.find(g);
      if (it == job.global_to_local.end()) continue;  // revoked this epoch
      UnitRt& un = units[g];
      if (un.busy || un.dead) continue;
      if (cluster.unit(g).failed_at(sh.now)) {  // failed while idle
        retire_unit(sh, id, g, 0);
        continue;
      }
      if (job.unassigned() == 0) break;
      std::size_t grains = job.scheduler->next_block(local, sh.now);
      grains = std::min(grains, job.unassigned());
      if (grains == 0) continue;
      issue(sh, id, g, local, grains);
      ++assigned;
    }
    return assigned;
  }

  void assign_work(ShardRt& sh) {
    for (JobId id : sh.active) {
      JobRt& job = jobs[id];
      if (job.phase != JobPhase::kRunning) continue;
      if (job.held.empty()) {
        // Every unit was revoked between boundaries; wait for new grants.
        if (job.in_flight == 0) job.phase = JobPhase::kForming;
        continue;
      }
      std::size_t assigned = assignment_round(sh, id);
      // Engine barrier protocol, per job: all units idle + work remains.
      if (assigned == 0 && job.in_flight == 0 && job.unassigned() > 0) {
        job.scheduler->on_barrier(sh.now);
        PLBHEC_OBS_RECORD(options.sink,
                          {sh.now, obs::EventKind::kBarrier, obs::kNoUnit,
                           0.0, 0.0, id, 0});
        assigned = assignment_round(sh, id);
        if (assigned == 0 && job.in_flight == 0 &&
            !job.global_to_local.empty()) {
          fail(sh, "scheduler for job '" + specs[id].name +
                       "' refused to assign work after a barrier");
        }
      }
    }
  }

  void complete_job(ShardRt& sh, JobId id) {
    JobRt& job = jobs[id];
    harvest(id);
    JobOutcome& out = res.jobs[id];
    out.finished = sh.now;
    out.ok = true;
    sh.completion_order.push_back(id);
    PLBHEC_OBS_RECORD(options.sink,
                      {sh.now, obs::EventKind::kJobCompleted, obs::kNoUnit,
                       sh.now - out.admitted, out.queue_wait(), id,
                       job.total});

    // Merge this job's best-profiled unit of every device kind into the
    // store — the warm-start capital for future jobs. Single shard writes
    // (and persists) immediately; sharded runs defer to the broker
    // barrier, where store writes are serialised in shard order.
    std::map<std::string, rt::UnitId> best;
    for (rt::UnitId g = 0; g < n; ++g) {
      const std::size_t size = job.exec_obs[g].size();
      if (size < 4) continue;
      const std::string kind = device_kind(g);
      const auto it = best.find(kind);
      if (it == best.end() || size > job.exec_obs[it->second].size()) {
        best[kind] = g;
      }
    }
    for (const auto& [kind, g] : best) {
      ProfileEntry entry =
          make_entry(specs[id].app_kind, kind, job.exec_obs[g],
                     job.transfer_obs[g], static_cast<double>(job.total),
                     options.scheduler.fit);
      if (nshards == 1) {
        store.put(std::move(entry));
      } else {
        sh.store_outbox.push_back(std::move(entry));
      }
    }
    if (nshards == 1 && !options.store_path.empty()) {
      (void)store.save(options.store_path);
    }

    for (const rt::UnitId g : std::vector<rt::UnitId>(job.held)) {
      units[g].leased = false;
      units[g].revoke_pending = false;
    }
    job.held.clear();
    job.pending.clear();
    job.global_to_local.clear();
    job.scheduler.reset();
    job.phase = JobPhase::kDone;
    erase_sorted_job(sh.active, id);
    renegotiate(sh);
  }

  void handle_completion(ShardRt& sh, const Ev& ev, bool failed) {
    UnitRt& un = units[ev.unit];
    PLBHEC_ASSERT(un.busy);
    un.busy = false;
    const InFlight task = un.task;
    JobRt& job = jobs[task.job];
    --job.in_flight;

    if (failed) {
      job.issued -= task.grains;  // grains return to the pool
      retire_unit(sh, task.job, ev.unit, task.grains);
      renegotiate(sh);
    } else {
      job.completed += task.grains;
      JobOutcome& out = res.jobs[task.job];
      ++out.tasks;
      out.busy_seconds += task.transfer_s + task.exec_s;
      sh.busy_unit_seconds += task.transfer_s + task.exec_s;
      if (task.grains > 0) {
        const double x = static_cast<double>(task.grains) /
                         static_cast<double>(job.total);
        job.exec_obs[ev.unit].add(x, task.exec_s);
        job.transfer_obs[ev.unit].add(x, task.transfer_s);
      }
      if (job.scheduler) {
        job.scheduler->on_complete({task.local, task.grains, task.transfer_s,
                                    task.exec_s, task.start, sh.now});
      }
      if (job.completed >= job.total) {
        complete_job(sh, task.job);
        assign_work(sh);
        return;
      }
      if (un.revoke_pending && !un.dead) {
        revoke_now(sh, task.job, ev.unit);
        renegotiate(sh);
      }
    }
    if (job.phase == JobPhase::kDraining && job.in_flight == 0 &&
        !job.held.empty()) {
      start_epoch(sh, task.job);
    }
    assign_work(sh);
  }

  // ---- the event loop(s) -----------------------------------------------

  /// Fires the shard's next event. Callers guarantee the queue is
  /// non-empty and the shard has not failed.
  void step(ShardRt& sh) {
    const Ev ev = sh.events.top();
    sh.events.pop();
    PLBHEC_ASSERT(ev.time >= sh.now);
    sh.now = ev.time;
    if (++sh.processed > options.max_events) {
      fail(sh, "service exceeded the event watchdog");
      return;
    }
    if (sh.now > options.max_sim_time) {
      fail(sh, "service exceeded the simulated-time watchdog");
      return;
    }
    switch (ev.kind) {
      case EvKind::kArrival:
        jobs[ev.job].phase = JobPhase::kQueued;
        sh.queue.push(ev.job);
        renegotiate(sh);
        assign_work(sh);
        break;
      case EvKind::kCompletion:
        handle_completion(sh, ev, /*failed=*/false);
        break;
      case EvKind::kFailure:
        handle_completion(sh, ev, /*failed=*/true);
        break;
    }
  }

  [[nodiscard]] double effective_quantum() const {
    if (options.broker_quantum > 0.0) return options.broker_quantum;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const JobSpec& spec : specs) {
      lo = std::min(lo, spec.arrival_time);
      hi = std::max(hi, spec.arrival_time);
    }
    const double span = hi - lo;
    if (specs.size() < 2 || span <= 0.0) return 1e-3;
    return std::max(1e-6,
                    4.0 * span / static_cast<double>(specs.size() - 1));
  }

  /// The sequential cross-shard barrier: merge deferred store writes,
  /// re-apportion unit entitlements by demand, migrate idle units from
  /// over-provisioned shards to starving ones, then let every shard
  /// renegotiate against its new budget at the barrier clock.
  void broker(double t) {
    ++res.broker_rounds;

    for (ShardRt& sh : shards) {
      for (ProfileEntry& entry : sh.store_outbox) store.put(std::move(entry));
      sh.store_outbox.clear();
    }

    std::vector<std::size_t> owned(nshards, 0);
    for (rt::UnitId g = 0; g < n; ++g) {
      if (!units[g].dead) ++owned[owner_shard[g]];
    }
    std::size_t total = 0;
    for (const std::size_t c : owned) total += c;
    if (total == 0) return;

    // Demand per shard: jobs it is running plus jobs it has queued.
    std::vector<std::size_t> weight(nshards, 0);
    bool any_demand = false;
    for (const ShardRt& sh : shards) {
      weight[sh.index] = sh.active.size() + sh.queue.size();
      any_demand = any_demand || weight[sh.index] > 0;
    }
    if (!any_demand) {
      for (ShardRt& sh : shards) sh.unit_budget = owned[sh.index];
      return;
    }

    // Entitlements: every demanding shard gets one unit while supply
    // lasts (the cross-shard fairness floor), the rest by largest
    // remainder over demand weights. Deterministic: shard-id order.
    std::vector<std::size_t> entitle(nshards, 0);
    std::size_t left = total;
    double wsum = 0.0;
    for (std::uint32_t s = 0; s < nshards; ++s) {
      if (weight[s] == 0 || left == 0) continue;
      entitle[s] = 1;
      --left;
      wsum += static_cast<double>(weight[s]);
    }
    if (left > 0 && wsum > 0.0) {
      std::vector<std::pair<double, std::uint32_t>> rem;
      std::size_t given = 0;
      for (std::uint32_t s = 0; s < nshards; ++s) {
        if (entitle[s] == 0) continue;
        const double exact = static_cast<double>(left) *
                             static_cast<double>(weight[s]) / wsum;
        const auto whole = static_cast<std::size_t>(exact);
        entitle[s] += whole;
        given += whole;
        rem.push_back({exact - static_cast<double>(whole), s});
      }
      std::sort(rem.begin(), rem.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      for (std::size_t i = 0; given < left && i < rem.size(); ++i, ++given) {
        ++entitle[rem[i].second];
      }
    }

    // Migrate idle unleased units toward entitlement. Leased surplus is
    // shed by the donor's own renegotiation (revoke at block boundary)
    // and crosses over on a later round.
    std::vector<std::size_t> give(nshards, 0);
    for (std::uint32_t s = 0; s < nshards; ++s) {
      if (owned[s] > entitle[s]) give[s] = owned[s] - entitle[s];
    }
    for (std::uint32_t r = 0; r < nshards; ++r) {
      std::size_t need =
          entitle[r] > owned[r] ? entitle[r] - owned[r] : 0;
      for (rt::UnitId g = 0; g < n && need > 0; ++g) {
        const std::uint32_t s = owner_shard[g];
        if (s == r || give[s] == 0) continue;
        const UnitRt& un = units[g];
        if (un.dead || un.leased || un.busy) continue;
        owner_shard[g] = r;
        --give[s];
        --need;
        ++owned[r];
        --owned[s];
        ++res.broker_migrations;
        PLBHEC_OBS_RECORD(options.sink,
                          {t, obs::EventKind::kShardMigration,
                           static_cast<std::uint32_t>(g), 0.0, 0.0, s, r});
      }
    }

    for (ShardRt& sh : shards) {
      sh.unit_budget = entitle[sh.index];
      sh.now = std::max(sh.now, t);
      renegotiate(sh);
      assign_work(sh);
    }
  }

  /// shards > 1: conservative windowed parallelism. Every round each
  /// shard independently fires its events up to window_end (disjoint
  /// state, no locks), then the broker runs sequentially. The window
  /// always covers the globally earliest pending event, so each round
  /// makes progress and the loop terminates exactly when no shard has
  /// events left.
  void windowed_loop() {
    exec::ThreadPool& pool = exec::ThreadPool::global();
    const double quantum = effective_quantum();
    double window_end = -std::numeric_limits<double>::infinity();
    for (;;) {
      double earliest = std::numeric_limits<double>::infinity();
      bool failed = false;
      for (const ShardRt& sh : shards) {
        if (!sh.error.empty()) failed = true;
        if (!sh.events.empty()) {
          earliest = std::min(earliest, sh.events.top().time);
        }
      }
      if (failed || earliest == std::numeric_limits<double>::infinity()) {
        break;
      }
      window_end = std::max(window_end, earliest) + quantum;
      pool.parallel_for(0, nshards, 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t s = begin; s < end; ++s) {
                            ShardRt& sh = shards[s];
                            while (!sh.events.empty() && sh.error.empty() &&
                                   sh.events.top().time <= window_end) {
                              step(sh);
                            }
                          }
                        });
      broker(window_end);
    }
  }

  void run() {
    n = cluster.size();
    nshards = std::max<std::size_t>(
        1, std::min(options.shards, std::max<std::size_t>(n, 1)));
    res.shards_used = nshards;
    units.assign(n, {});
    owner_shard.resize(n);
    for (rt::UnitId g = 0; g < n; ++g) {
      owner_shard[g] = static_cast<std::uint32_t>(g % nshards);
    }
    unit_rng.clear();
    unit_rng.reserve(n);
    Rng master(options.seed);
    for (rt::UnitId g = 0; g < n; ++g) unit_rng.push_back(master.fork(g + 1));

    shards.clear();
    shards.reserve(nshards);
    for (std::uint32_t s = 0; s < nshards; ++s) {
      shards.emplace_back(specs);
      shards.back().index = s;
    }
    for (ShardRt& sh : shards) sh.unit_budget = alive_owned(sh.index);

    jobs.resize(specs.size());
    res.jobs.resize(specs.size());
    res.ok = true;
    for (JobId id = 0; id < specs.size(); ++id) {
      const JobSpec& spec = specs[id];
      JobRt& job = jobs[id];
      job.shard = static_cast<std::uint32_t>(id % nshards);
      job.workload = spec.make_workload();
      PLBHEC_EXPECTS(job.workload != nullptr);
      job.total = job.workload->total_grains();
      PLBHEC_EXPECTS(job.total > 0);
      job.profile = job.workload->profile();
      job.bytes_per_grain = job.workload->bytes_per_grain();
      job.exec_obs.resize(n);
      job.transfer_obs.resize(n);
      JobOutcome& out = res.jobs[id];
      out.id = id;
      out.name = spec.name;
      out.app_kind = spec.app_kind;
      out.priority = spec.priority;
      out.arrival = spec.arrival_time;
      out.total_grains = job.total;
    }

    // Arrival events, sequenced by (time, submission order) per shard.
    std::vector<JobId> by_arrival(specs.size());
    for (JobId id = 0; id < specs.size(); ++id) by_arrival[id] = id;
    std::stable_sort(by_arrival.begin(), by_arrival.end(),
                     [&](JobId a, JobId b) {
                       return specs[a].arrival_time < specs[b].arrival_time;
                     });
    for (JobId id : by_arrival) {
      ShardRt& sh = shards[jobs[id].shard];
      sh.events.push(
          {specs[id].arrival_time, sh.seq++, EvKind::kArrival, id, 0});
    }

    if (nshards == 1) {
      ShardRt& sh = shards[0];
      while (!sh.events.empty() && sh.error.empty()) step(sh);
    } else {
      windowed_loop();
    }
    finalize();
  }

  void finalize() {
    for (const ShardRt& sh : shards) {
      if (!sh.error.empty() && res.error.empty()) res.error = sh.error;
    }
    if (res.error.empty()) {
      for (JobId id = 0; id < jobs.size(); ++id) {
        if (jobs[id].phase != JobPhase::kDone) {
          res.error = "job '" + specs[id].name +
                      "' never completed (service stalled)";
          break;
        }
      }
    }
    res.ok = res.error.empty();

    bool any_completed = false;
    for (ShardRt& sh : shards) {
      res.leases_granted += sh.leases_granted;
      res.leases_revoked += sh.leases_revoked;
      res.scheduler_restarts += sh.scheduler_restarts;
      res.busy_unit_seconds += sh.busy_unit_seconds;
      any_completed = any_completed || !sh.completion_order.empty();
    }
    if (nshards == 1) {
      res.completion_order = std::move(shards[0].completion_order);
    } else {
      for (const ShardRt& sh : shards) {
        res.completion_order.insert(res.completion_order.end(),
                                    sh.completion_order.begin(),
                                    sh.completion_order.end());
      }
      std::sort(res.completion_order.begin(), res.completion_order.end(),
                [&](JobId a, JobId b) {
                  if (res.jobs[a].finished != res.jobs[b].finished) {
                    return res.jobs[a].finished < res.jobs[b].finished;
                  }
                  return a < b;
                });
      // Late store writes (outboxes already drain at every broker round;
      // this catches a final window that ended the run) + one persist.
      for (ShardRt& sh : shards) {
        for (ProfileEntry& entry : sh.store_outbox) {
          store.put(std::move(entry));
        }
        sh.store_outbox.clear();
      }
      if (!options.store_path.empty() && any_completed) {
        (void)store.save(options.store_path);
      }
    }

    for (const JobOutcome& out : res.jobs) {
      res.makespan = std::max(res.makespan, out.finished);
      res.probe_blocks += out.probe_blocks;
      res.probe_blocks_saved += out.probe_blocks_saved;
      res.warm_hits += out.warm_hits;
      res.warm_misses += out.warm_misses;
      res.warm_stale_skips += out.warm_stale_skips;
      res.drift_detections += out.drift_detections;
      res.reprobe_blocks += out.reprobe_blocks;
      res.reprobe_swaps += out.reprobe_swaps;
    }
    if (res.makespan > 0.0 && n > 0) {
      res.utilization =
          res.busy_unit_seconds / (static_cast<double>(n) * res.makespan);
    }
  }
};

}  // namespace

JobManager::JobManager(const sim::SimCluster& cluster, ServiceOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  if (!options_.store_path.empty()) {
    store_status_ = ProfileStore::load(options_.store_path, store_);
    if (store_status_ != StoreLoadStatus::kOk &&
        store_status_ != StoreLoadStatus::kMissing &&
        options_.counters != nullptr) {
      options_.counters->add("svc.store.load_failed");
    }
  }
}

JobId JobManager::submit(JobSpec spec) {
  PLBHEC_EXPECTS(!ran_);
  PLBHEC_EXPECTS(spec.make_workload != nullptr);
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

ServiceResult JobManager::run() {
  PLBHEC_EXPECTS(!ran_);
  ran_ = true;
  ServiceSim sim(cluster_, options_, specs_, store_);
  sim.res.store_status = store_status_;
  if (specs_.empty()) {
    sim.res.ok = true;
    return std::move(sim.res);
  }
  sim.run();
  if (obs::CounterRegistry* reg = options_.counters) {
    reg->add("svc.jobs_submitted", specs_.size());
    reg->add("svc.jobs_completed", sim.res.completion_order.size());
    reg->add("svc.leases_granted", sim.res.leases_granted);
    reg->add("svc.leases_revoked", sim.res.leases_revoked);
    reg->add("svc.scheduler_restarts", sim.res.scheduler_restarts);
    reg->add("svc.warmstart.hits", sim.res.warm_hits);
    reg->add("svc.warmstart.misses", sim.res.warm_misses);
    reg->add("svc.warmstart.stale_skips", sim.res.warm_stale_skips);
    reg->add("svc.adapt.drift_detections", sim.res.drift_detections);
    reg->add("svc.adapt.reprobe_blocks", sim.res.reprobe_blocks);
    reg->add("svc.adapt.reprobe_swaps", sim.res.reprobe_swaps);
    reg->add("svc.probe_blocks", sim.res.probe_blocks);
    reg->add("svc.probe_blocks_saved", sim.res.probe_blocks_saved);
    reg->add("svc.shards", sim.res.shards_used);
    reg->add("svc.broker.rounds", sim.res.broker_rounds);
    reg->add("svc.broker.migrations", sim.res.broker_migrations);
  }
  return std::move(sim.res);
}

}  // namespace plbhec::svc
