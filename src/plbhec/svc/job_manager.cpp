#include "plbhec/svc/job_manager.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/obs/events.hpp"

namespace plbhec::svc {
namespace {

enum class EvKind { kArrival, kCompletion, kFailure };

struct Ev {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< tie-break: earlier-pushed event fires first
  EvKind kind = EvKind::kArrival;
  JobId job = 0;
  rt::UnitId unit = 0;
};

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct InFlight {
  JobId job = 0;
  rt::UnitId local = 0;
  std::size_t grains = 0;
  double start = 0.0;
  double transfer_s = 0.0;
  double exec_s = 0.0;
};

struct UnitRt {
  bool busy = false;
  bool dead = false;
  bool leased = false;
  JobId owner = 0;
  /// Lease marked for revocation at this unit's next block boundary.
  bool revoke_pending = false;
  InFlight task;
};

enum class JobPhase : std::uint8_t {
  kPending,   ///< not yet arrived
  kQueued,    ///< in the admission queue
  kForming,   ///< admitted, assembling its unit lease
  kRunning,   ///< scheduler active
  kDraining,  ///< lease grew: no new blocks until in-flight work drains
  kDone,
};

struct JobRt {
  JobPhase phase = JobPhase::kPending;
  std::unique_ptr<rt::Workload> workload;
  sim::WorkloadProfile profile;
  double bytes_per_grain = 0.0;
  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t issued = 0;
  std::size_t target = 0;  ///< lease policy's current unit entitlement
  std::vector<rt::UnitId> held;     ///< sorted global ids (incl. pending)
  std::vector<rt::UnitId> pending;  ///< granted but not yet integrated
  std::map<rt::UnitId, rt::UnitId> global_to_local;  ///< current epoch
  std::vector<rt::UnitId> local_to_global;
  std::unique_ptr<rt::Scheduler> scheduler;
  core::PlbHecScheduler* plb = nullptr;  ///< stats view; null once harvested
  std::size_t in_flight = 0;
  /// Service-side observation log in the *job* fraction domain (x =
  /// grains / total), per global unit — the warm seed for epoch restarts.
  std::vector<fit::SampleSet> exec_obs;
  std::vector<fit::SampleSet> transfer_obs;

  [[nodiscard]] std::size_t unassigned() const { return total - issued; }
};

void insert_sorted(std::vector<rt::UnitId>& v, rt::UnitId g) {
  v.insert(std::lower_bound(v.begin(), v.end(), g), g);
}

void erase_sorted(std::vector<rt::UnitId>& v, rt::UnitId g) {
  const auto it = std::lower_bound(v.begin(), v.end(), g);
  if (it != v.end() && *it == g) v.erase(it);
}

/// The whole per-run state; constructed fresh inside run() so the event
/// loop's working set dies with it.
struct ServiceSim {
  const sim::SimCluster& cluster;
  const ServiceOptions& options;
  const std::vector<JobSpec>& specs;
  ProfileStore& store;

  std::size_t n = 0;
  std::vector<UnitRt> units;
  std::vector<Rng> unit_rng;
  std::vector<JobRt> jobs;
  std::vector<JobId> queue;  ///< admission queue (JobIds, FIFO by arrival)
  std::priority_queue<Ev, std::vector<Ev>, EvLater> events;
  std::uint64_t seq = 0;
  double now = 0.0;
  ServiceResult res;

  ServiceSim(const sim::SimCluster& c, const ServiceOptions& o,
             const std::vector<JobSpec>& s, ProfileStore& st)
      : cluster(c), options(o), specs(s), store(st) {}

  // ---- helpers ---------------------------------------------------------

  [[nodiscard]] std::size_t alive_units() const {
    std::size_t count = 0;
    for (const UnitRt& u : units) {
      if (!u.dead) ++count;
    }
    return count;
  }

  [[nodiscard]] bool admission_before(JobId a, JobId b) const {
    const auto pa = static_cast<std::uint8_t>(specs[a].priority);
    const auto pb = static_cast<std::uint8_t>(specs[b].priority);
    if (pa != pb) return pa < pb;
    return a < b;  // FIFO within class (ids follow submission order)
  }

  [[nodiscard]] std::string device_kind(rt::UnitId g) const {
    return cluster.unit(g).device->description();
  }

  /// held minus the units already marked to leave at their block boundary.
  [[nodiscard]] std::size_t effective_held(const JobRt& job) const {
    std::size_t away = 0;
    for (rt::UnitId g : job.held) {
      if (units[g].revoke_pending) ++away;
    }
    return job.held.size() - away;
  }

  void fail(std::string message) {
    if (res.ok || res.error.empty()) {
      res.ok = false;
      res.error = std::move(message);
    }
  }

  // ---- lease bookkeeping ----------------------------------------------

  /// Takes an *idle* unit away from `job` immediately (block boundary
  /// already reached). Notifies the job's scheduler so PLB-HeC re-solves
  /// the distribution over the survivors.
  void revoke_now(JobId id, rt::UnitId g) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    PLBHEC_ASSERT(!un.busy && un.leased && un.owner == id);
    const auto it = job.global_to_local.find(g);
    if (it != job.global_to_local.end()) {
      if (job.scheduler) job.scheduler->on_unit_failed(it->second, 0, now);
      job.global_to_local.erase(it);
    }
    erase_sorted(job.held, g);
    erase_sorted(job.pending, g);
    un.leased = false;
    un.revoke_pending = false;
    ++res.leases_revoked;
    PLBHEC_OBS_RECORD(options.sink,
                      {now, obs::EventKind::kLeaseRevoked,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, id,
                       job.held.size()});
  }

  void grant(JobId id, rt::UnitId g) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    PLBHEC_ASSERT(!un.leased && !un.busy && !un.dead);
    un.leased = true;
    un.owner = id;
    insert_sorted(job.held, g);
    ++res.leases_granted;
    res.jobs[id].max_units_held =
        std::max(res.jobs[id].max_units_held, job.held.size());
    PLBHEC_OBS_RECORD(options.sink,
                      {now, obs::EventKind::kLeaseGranted,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, id,
                       job.held.size()});
    if (job.phase == JobPhase::kForming) {
      if (job.target > 0 && job.held.size() >= job.target) start_epoch(id);
    } else {
      // Running/draining: integrate at the drain boundary.
      insert_sorted(job.pending, g);
      if (job.phase == JobPhase::kRunning) job.phase = JobPhase::kDraining;
      if (job.in_flight == 0) start_epoch(id);
    }
  }

  /// Accumulates the scheduler's warm/probing statistics into the job
  /// outcome (once per scheduler instance).
  void harvest(JobId id) {
    JobRt& job = jobs[id];
    if (job.plb == nullptr) return;
    const core::PlbHecStats& s = job.plb->stats();
    JobOutcome& out = res.jobs[id];
    out.probe_blocks += s.probe_blocks;
    out.probe_blocks_saved += s.probe_blocks_saved;
    out.warm_hits += s.warm_hits;
    out.warm_misses += s.warm_misses;
    job.plb = nullptr;
  }

  [[nodiscard]] rt::WarmProfile warm_for(const JobRt& job, JobId id,
                                         rt::UnitId g) const {
    if (!options.warm_start) return {};
    // Prefer the job's own observations (same workload instance, same
    // unit) over the cross-job store; they exist from the second epoch on.
    if (job.exec_obs[g].size() >= 4) {
      rt::WarmProfile warm;
      warm.exec = job.exec_obs[g].items();
      warm.transfer = job.transfer_obs[g].items();
      warm.total_grains = static_cast<double>(job.total);
      warm.stored_r2 =
          fit::select_model(job.exec_obs[g], options.scheduler.fit).r2;
      warm.exec_moments = job.exec_obs[g].moments().snapshot();
      warm.transfer_moments = job.transfer_obs[g].moments().snapshot();
      warm.has_moments = true;
      return warm;
    }
    return store.warm_profile(specs[id].app_kind, device_kind(g));
  }

  /// (Re)starts the job's scheduler over its current lease with the
  /// remaining grains as the work total. Requires no in-flight tasks.
  void start_epoch(JobId id) {
    JobRt& job = jobs[id];
    PLBHEC_ASSERT(job.in_flight == 0);
    PLBHEC_ASSERT(!job.held.empty());
    const bool restart = job.scheduler != nullptr;
    if (restart) {
      harvest(id);
      ++res.jobs[id].lease_restarts;
      ++res.scheduler_restarts;
    }
    job.pending.clear();
    job.local_to_global = job.held;  // held is sorted: dense local ids
    job.global_to_local.clear();
    std::vector<rt::UnitInfo> infos;
    infos.reserve(job.held.size());
    std::vector<rt::WarmProfile> warm;
    warm.reserve(job.held.size());
    for (rt::UnitId local = 0; local < job.local_to_global.size(); ++local) {
      const rt::UnitId g = job.local_to_global[local];
      job.global_to_local[g] = local;
      const sim::SimUnit& su = cluster.unit(g);
      rt::UnitInfo info;
      info.id = local;
      info.name = su.name;
      info.kind = su.device->kind() == sim::DeviceKind::kGpu
                      ? rt::ProcKind::kGpu
                      : rt::ProcKind::kCpu;
      info.machine = su.machine_index;
      infos.push_back(std::move(info));
      warm.push_back(warm_for(job, id, g));
    }

    const std::size_t remaining = job.total - job.completed;
    PLBHEC_ASSERT(remaining > 0);
    job.issued = job.completed;  // lost in-flight grains are back in the pool
    rt::WorkInfo work;
    work.name = job.workload->name();
    work.total_grains = remaining;
    work.bytes_per_grain = job.bytes_per_grain;
    work.initial_block = std::max<std::size_t>(1, remaining / 512);

    if (options.make_scheduler) {
      job.scheduler =
          options.make_scheduler(specs[id], infos, work, std::move(warm));
      job.plb = dynamic_cast<core::PlbHecScheduler*>(job.scheduler.get());
    } else {
      core::PlbHecOptions opt = options.scheduler;
      opt.warm = std::move(warm);
      auto plb = std::make_unique<core::PlbHecScheduler>(std::move(opt));
      job.plb = plb.get();
      job.scheduler = std::move(plb);
    }
    job.scheduler->set_event_sink(options.sink);
    job.scheduler->start(infos, work);
    job.phase = JobPhase::kRunning;
  }

  // ---- admission & lease renegotiation --------------------------------

  /// Admits queued jobs up to the concurrency cap, then recomputes every
  /// active job's unit target and moves leases toward the targets. Called
  /// whenever the active-job set or the unit population changes.
  void renegotiate() {
    const std::size_t alive = alive_units();
    std::vector<JobId> active;
    for (JobId id = 0; id < jobs.size(); ++id) {
      const JobPhase p = jobs[id].phase;
      if (p == JobPhase::kForming || p == JobPhase::kRunning ||
          p == JobPhase::kDraining) {
        active.push_back(id);
      }
    }

    std::size_t cap = options.lease.max_active_jobs == 0
                          ? alive
                          : std::min(options.lease.max_active_jobs, alive);
    while (!queue.empty() && active.size() < cap) {
      auto best = queue.begin();
      for (auto it = std::next(queue.begin()); it != queue.end(); ++it) {
        if (admission_before(*it, *best)) best = it;
      }
      const JobId id = *best;
      queue.erase(best);
      jobs[id].phase = JobPhase::kForming;
      res.jobs[id].admitted = now;
      PLBHEC_OBS_RECORD(options.sink,
                        {now, obs::EventKind::kJobAdmitted, obs::kNoUnit,
                         now - res.jobs[id].arrival, 0.0, id, queue.size()});
      active.insert(std::lower_bound(active.begin(), active.end(), id), id);
    }
    if (active.empty()) return;

    // Unit targets: the first `alive` actives in admission order share the
    // cluster under the fairness floor; any beyond (possible only after
    // unit deaths shrank the cluster below the admitted count) wait at
    // target 0 for a completion to free capacity.
    std::vector<JobId> entitled = active;
    if (entitled.size() > alive) {
      std::sort(entitled.begin(), entitled.end(),
                [&](JobId a, JobId b) { return admission_before(a, b); });
      entitled.resize(alive);
      std::sort(entitled.begin(), entitled.end());
    }
    for (JobId id : active) jobs[id].target = 0;
    if (!entitled.empty() && alive > 0) {
      std::vector<ActiveJobView> views;
      views.reserve(entitled.size());
      for (JobId id : entitled) {
        views.push_back({id, specs[id].priority});
      }
      const std::vector<std::size_t> targets =
          lease_targets(views, alive, options.lease);
      for (std::size_t i = 0; i < entitled.size(); ++i) {
        jobs[entitled[i]].target = targets[i];
      }
    }
    rebalance(active);
  }

  void rebalance(const std::vector<JobId>& active) {
    // Phase A: shed surplus. Idle units are revoked at once (they are at a
    // block boundary by definition); busy units are marked and handed over
    // when their current task completes.
    for (JobId id : active) {
      JobRt& job = jobs[id];
      while (effective_held(job) > job.target) {
        rt::UnitId victim = rt::UnitId(-1);
        bool victim_idle = false;
        // Prefer (highest-id): unintegrated idle, then integrated idle,
        // then busy not yet marked.
        for (auto it = job.pending.rbegin(); it != job.pending.rend(); ++it) {
          if (!units[*it].busy && !units[*it].revoke_pending) {
            victim = *it;
            victim_idle = true;
            break;
          }
        }
        if (victim == rt::UnitId(-1)) {
          for (auto it = job.held.rbegin(); it != job.held.rend(); ++it) {
            if (!units[*it].busy && !units[*it].revoke_pending) {
              victim = *it;
              victim_idle = true;
              break;
            }
          }
        }
        if (victim == rt::UnitId(-1)) {
          for (auto it = job.held.rbegin(); it != job.held.rend(); ++it) {
            if (units[*it].busy && !units[*it].revoke_pending) {
              victim = *it;
              break;
            }
          }
        }
        if (victim == rt::UnitId(-1)) break;  // nothing left to shed
        if (victim_idle) {
          revoke_now(id, victim);
        } else {
          units[victim].revoke_pending = true;
        }
      }
    }

    // Phase B: grant free units to jobs under target, neediest-priority
    // first (admission order).
    std::vector<JobId> order = active;
    std::sort(order.begin(), order.end(),
              [&](JobId a, JobId b) { return admission_before(a, b); });
    for (JobId id : order) {
      JobRt& job = jobs[id];
      while (effective_held(job) < job.target) {
        rt::UnitId free_unit = rt::UnitId(-1);
        for (rt::UnitId g = 0; g < n; ++g) {
          if (!units[g].leased && !units[g].dead && !units[g].busy) {
            free_unit = g;
            break;
          }
        }
        if (free_unit == rt::UnitId(-1)) break;  // wait for boundaries
        grant(id, free_unit);
      }
    }
  }

  // ---- task issue & completion -----------------------------------------

  void retire_unit(JobId id, rt::UnitId g, std::size_t lost_grains) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    un.dead = true;
    un.leased = false;
    un.revoke_pending = false;
    const auto it = job.global_to_local.find(g);
    if (it != job.global_to_local.end()) {
      if (job.scheduler) {
        job.scheduler->on_unit_failed(it->second, lost_grains, now);
      }
      job.global_to_local.erase(it);
    }
    erase_sorted(job.held, g);
    erase_sorted(job.pending, g);
    PLBHEC_OBS_RECORD(options.sink,
                      {now, obs::EventKind::kUnitFailed,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, lost_grains,
                       id});
  }

  void issue(JobId id, rt::UnitId g, rt::UnitId local, std::size_t grains) {
    JobRt& job = jobs[id];
    UnitRt& un = units[g];
    const sim::SimUnit& su = cluster.unit(g);
    const double bytes = static_cast<double>(grains) * job.bytes_per_grain;
    const double transfer_s = options.noise.perturb_transfer(
        su.path.transfer_seconds(bytes), unit_rng[g]);
    const double speed = su.speed_factor(now);
    PLBHEC_ASSERT(speed > 0.0);
    const double exec_s = options.noise.perturb_exec(
        su.device->execution_seconds(job.profile, grains) / speed,
        unit_rng[g]);
    un.busy = true;
    un.task = {id, local, grains, now, transfer_s, exec_s};
    job.issued += grains;
    ++job.in_flight;
    PLBHEC_OBS_RECORD(options.sink,
                      {now, obs::EventKind::kBlockDispatched,
                       static_cast<std::uint32_t>(g), 0.0, 0.0, grains, seq});
    const double finish = now + transfer_s + exec_s;
    const auto failure = su.failure_time();
    if (failure && *failure < finish && *failure >= now) {
      events.push({*failure, seq++, EvKind::kFailure, id, g});
    } else {
      events.push({finish, seq++, EvKind::kCompletion, id, g});
    }
  }

  /// One assignment sweep over a job's leased units; returns the number of
  /// tasks issued.
  std::size_t assignment_round(JobId id) {
    JobRt& job = jobs[id];
    std::size_t assigned = 0;
    for (rt::UnitId local = 0; local < job.local_to_global.size(); ++local) {
      const rt::UnitId g = job.local_to_global[local];
      const auto it = job.global_to_local.find(g);
      if (it == job.global_to_local.end()) continue;  // revoked this epoch
      UnitRt& un = units[g];
      if (un.busy || un.dead) continue;
      if (cluster.unit(g).failed_at(now)) {  // failed while idle
        retire_unit(id, g, 0);
        continue;
      }
      if (job.unassigned() == 0) break;
      std::size_t grains = job.scheduler->next_block(local, now);
      grains = std::min(grains, job.unassigned());
      if (grains == 0) continue;
      issue(id, g, local, grains);
      ++assigned;
    }
    return assigned;
  }

  void assign_work() {
    for (JobId id = 0; id < jobs.size(); ++id) {
      JobRt& job = jobs[id];
      if (job.phase != JobPhase::kRunning) continue;
      if (job.held.empty()) {
        // Every unit was revoked between boundaries; wait for new grants.
        if (job.in_flight == 0) job.phase = JobPhase::kForming;
        continue;
      }
      std::size_t assigned = assignment_round(id);
      // Engine barrier protocol, per job: all units idle + work remains.
      if (assigned == 0 && job.in_flight == 0 && job.unassigned() > 0) {
        job.scheduler->on_barrier(now);
        PLBHEC_OBS_RECORD(options.sink,
                          {now, obs::EventKind::kBarrier, obs::kNoUnit, 0.0,
                           0.0, id, 0});
        assigned = assignment_round(id);
        if (assigned == 0 && job.in_flight == 0 &&
            !job.global_to_local.empty()) {
          fail("scheduler for job '" + specs[id].name +
               "' refused to assign work after a barrier");
        }
      }
    }
  }

  void complete_job(JobId id) {
    JobRt& job = jobs[id];
    harvest(id);
    JobOutcome& out = res.jobs[id];
    out.finished = now;
    out.ok = true;
    res.completion_order.push_back(id);
    PLBHEC_OBS_RECORD(options.sink,
                      {now, obs::EventKind::kJobCompleted, obs::kNoUnit,
                       now - out.admitted, out.queue_wait(), id, job.total});

    // Merge this job's best-profiled unit of every device kind into the
    // store, then persist — the warm-start capital for future jobs.
    std::map<std::string, rt::UnitId> best;
    for (rt::UnitId g = 0; g < n; ++g) {
      const std::size_t size = job.exec_obs[g].size();
      if (size < 4) continue;
      const std::string kind = device_kind(g);
      const auto it = best.find(kind);
      if (it == best.end() || size > job.exec_obs[it->second].size()) {
        best[kind] = g;
      }
    }
    for (const auto& [kind, g] : best) {
      store.put(make_entry(specs[id].app_kind, kind, job.exec_obs[g],
                           job.transfer_obs[g],
                           static_cast<double>(job.total),
                           options.scheduler.fit));
    }
    if (!options.store_path.empty()) (void)store.save(options.store_path);

    for (const rt::UnitId g : std::vector<rt::UnitId>(job.held)) {
      units[g].leased = false;
      units[g].revoke_pending = false;
    }
    job.held.clear();
    job.pending.clear();
    job.global_to_local.clear();
    job.scheduler.reset();
    job.phase = JobPhase::kDone;
    renegotiate();
  }

  void handle_completion(const Ev& ev, bool failed) {
    UnitRt& un = units[ev.unit];
    PLBHEC_ASSERT(un.busy);
    un.busy = false;
    const InFlight task = un.task;
    JobRt& job = jobs[task.job];
    --job.in_flight;

    if (failed) {
      job.issued -= task.grains;  // grains return to the pool
      retire_unit(task.job, ev.unit, task.grains);
      renegotiate();
    } else {
      job.completed += task.grains;
      JobOutcome& out = res.jobs[task.job];
      ++out.tasks;
      out.busy_seconds += task.transfer_s + task.exec_s;
      res.busy_unit_seconds += task.transfer_s + task.exec_s;
      if (task.grains > 0) {
        const double x = static_cast<double>(task.grains) /
                         static_cast<double>(job.total);
        job.exec_obs[ev.unit].add(x, task.exec_s);
        job.transfer_obs[ev.unit].add(x, task.transfer_s);
      }
      if (job.scheduler) {
        job.scheduler->on_complete({task.local, task.grains, task.transfer_s,
                                    task.exec_s, task.start, now});
      }
      if (job.completed >= job.total) {
        complete_job(task.job);
        assign_work();
        return;
      }
      if (un.revoke_pending && !un.dead) {
        revoke_now(task.job, ev.unit);
        renegotiate();
      }
    }
    if (job.phase == JobPhase::kDraining && job.in_flight == 0 &&
        !job.held.empty()) {
      start_epoch(task.job);
    }
    assign_work();
  }

  // ---- the event loop --------------------------------------------------

  void run() {
    n = cluster.size();
    units.assign(n, {});
    unit_rng.clear();
    unit_rng.reserve(n);
    Rng master(options.seed);
    for (rt::UnitId g = 0; g < n; ++g) unit_rng.push_back(master.fork(g + 1));

    jobs.resize(specs.size());
    res.jobs.resize(specs.size());
    res.ok = true;
    for (JobId id = 0; id < specs.size(); ++id) {
      const JobSpec& spec = specs[id];
      JobRt& job = jobs[id];
      job.workload = spec.make_workload();
      PLBHEC_EXPECTS(job.workload != nullptr);
      job.total = job.workload->total_grains();
      PLBHEC_EXPECTS(job.total > 0);
      job.profile = job.workload->profile();
      job.bytes_per_grain = job.workload->bytes_per_grain();
      job.exec_obs.resize(n);
      job.transfer_obs.resize(n);
      JobOutcome& out = res.jobs[id];
      out.id = id;
      out.name = spec.name;
      out.app_kind = spec.app_kind;
      out.priority = spec.priority;
      out.arrival = spec.arrival_time;
      out.total_grains = job.total;
    }

    // Arrival events, sequenced by (time, submission order).
    std::vector<JobId> by_arrival(specs.size());
    for (JobId id = 0; id < specs.size(); ++id) by_arrival[id] = id;
    std::stable_sort(by_arrival.begin(), by_arrival.end(),
                     [&](JobId a, JobId b) {
                       return specs[a].arrival_time < specs[b].arrival_time;
                     });
    for (JobId id : by_arrival) {
      events.push({specs[id].arrival_time, seq++, EvKind::kArrival, id, 0});
    }

    std::size_t processed = 0;
    while (!events.empty() && res.error.empty()) {
      const Ev ev = events.top();
      events.pop();
      PLBHEC_ASSERT(ev.time >= now);
      now = ev.time;
      if (++processed > options.max_events) {
        fail("service exceeded the event watchdog");
        break;
      }
      if (now > options.max_sim_time) {
        fail("service exceeded the simulated-time watchdog");
        break;
      }
      switch (ev.kind) {
        case EvKind::kArrival:
          jobs[ev.job].phase = JobPhase::kQueued;
          queue.push_back(ev.job);
          renegotiate();
          assign_work();
          break;
        case EvKind::kCompletion:
          handle_completion(ev, /*failed=*/false);
          break;
        case EvKind::kFailure:
          handle_completion(ev, /*failed=*/true);
          break;
      }
    }

    if (res.error.empty()) {
      for (JobId id = 0; id < jobs.size(); ++id) {
        if (jobs[id].phase != JobPhase::kDone) {
          fail("job '" + specs[id].name +
               "' never completed (service stalled)");
          break;
        }
      }
    }
    res.ok = res.error.empty();
    for (const JobOutcome& out : res.jobs) {
      res.makespan = std::max(res.makespan, out.finished);
      res.probe_blocks += out.probe_blocks;
      res.probe_blocks_saved += out.probe_blocks_saved;
      res.warm_hits += out.warm_hits;
      res.warm_misses += out.warm_misses;
    }
    if (res.makespan > 0.0 && n > 0) {
      res.utilization =
          res.busy_unit_seconds / (static_cast<double>(n) * res.makespan);
    }
  }
};

}  // namespace

JobManager::JobManager(const sim::SimCluster& cluster, ServiceOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  if (!options_.store_path.empty()) {
    store_status_ = ProfileStore::load(options_.store_path, store_);
    if (store_status_ != StoreLoadStatus::kOk &&
        store_status_ != StoreLoadStatus::kMissing &&
        options_.counters != nullptr) {
      options_.counters->add("svc.store.load_failed");
    }
  }
}

JobId JobManager::submit(JobSpec spec) {
  PLBHEC_EXPECTS(!ran_);
  PLBHEC_EXPECTS(spec.make_workload != nullptr);
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

ServiceResult JobManager::run() {
  PLBHEC_EXPECTS(!ran_);
  ran_ = true;
  ServiceSim sim(cluster_, options_, specs_, store_);
  sim.res.store_status = store_status_;
  if (specs_.empty()) {
    sim.res.ok = true;
    return std::move(sim.res);
  }
  sim.run();
  if (obs::CounterRegistry* reg = options_.counters) {
    reg->add("svc.jobs_submitted", specs_.size());
    reg->add("svc.jobs_completed", sim.res.completion_order.size());
    reg->add("svc.leases_granted", sim.res.leases_granted);
    reg->add("svc.leases_revoked", sim.res.leases_revoked);
    reg->add("svc.scheduler_restarts", sim.res.scheduler_restarts);
    reg->add("svc.warmstart.hits", sim.res.warm_hits);
    reg->add("svc.warmstart.misses", sim.res.warm_misses);
    reg->add("svc.probe_blocks", sim.res.probe_blocks);
    reg->add("svc.probe_blocks_saved", sim.res.probe_blocks_saved);
  }
  return std::move(sim.res);
}

}  // namespace plbhec::svc
