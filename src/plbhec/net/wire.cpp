#include "plbhec/net/wire.hpp"

#include <sys/uio.h>

#include <chrono>
#include <cstring>

#include "plbhec/common/codec.hpp"

namespace plbhec::net {
namespace {

using common::ByteReader;
using common::ByteWriter;
using common::fnv1a64;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

constexpr char kMagic[8] = {'P', 'L', 'B', 'H', 'E', 'C', 'N', 'T'};
constexpr std::size_t kMaxStringBytes = 4096;

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kBeginRun: return "begin_run";
    case MsgType::kRunAck: return "run_ack";
    case MsgType::kAssignBlock: return "assign_block";
    case MsgType::kBlockResult: return "block_result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kHeartbeatAck: return "heartbeat_ack";
    case MsgType::kProfileSync: return "profile_sync";
    case MsgType::kProfileSyncAck: return "profile_sync_ack";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kBlockResultBatch: return "block_result_batch";
  }
  return "unknown";
}

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kIoError: return "io_error";
    case FrameStatus::kBadMagic: return "bad_magic";
    case FrameStatus::kVersionSkew: return "version_skew";
    case FrameStatus::kBadType: return "bad_type";
    case FrameStatus::kTooLarge: return "too_large";
    case FrameStatus::kBadChecksum: return "bad_checksum";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  ByteWriter w{out};
  w.bytes(kMagic, sizeof(kMagic));
  w.u32(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(payload.size());
  w.bytes(payload.data(), payload.size());
  w.u64(fnv1a64(payload));
  return out;
}

FrameStatus decode_frame(std::span<const std::uint8_t> bytes, Frame* out,
                         std::size_t* consumed) {
  if (bytes.size() < kFrameHeaderBytes) return FrameStatus::kIoError;
  ByteReader r{bytes};
  char magic[8] = {};
  r.take(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return FrameStatus::kBadMagic;
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion) return FrameStatus::kVersionSkew;
  const std::uint8_t type = r.u8();
  if (type == 0 || type > kMaxMsgType) return FrameStatus::kBadType;
  const std::uint64_t payload_len = r.u64();
  if (payload_len > kMaxPayloadBytes) return FrameStatus::kTooLarge;
  if (r.remaining() < payload_len + kFrameTrailerBytes)
    return FrameStatus::kIoError;  // truncated

  const std::span<const std::uint8_t> payload =
      bytes.subspan(r.pos, static_cast<std::size_t>(payload_len));
  r.pos += static_cast<std::size_t>(payload_len);
  const std::uint64_t checksum = r.u64();
  if (checksum != fnv1a64(payload)) return FrameStatus::kBadChecksum;

  out->type = static_cast<MsgType>(type);
  out->payload.assign(payload.begin(), payload.end());
  if (consumed != nullptr) *consumed = r.pos;
  return FrameStatus::kOk;
}

bool write_frame(TcpConn& conn, MsgType type,
                 std::span<const std::uint8_t> payload,
                 FrameScratch& scratch) {
  scratch.head.clear();
  scratch.tail.clear();
  ByteWriter head{scratch.head};
  head.bytes(kMagic, sizeof(kMagic));
  head.u32(kProtocolVersion);
  head.u8(static_cast<std::uint8_t>(type));
  head.u64(payload.size());
  ByteWriter tail{scratch.tail};
  tail.u64(fnv1a64(payload));

  iovec iov[3];
  iov[0] = {scratch.head.data(), scratch.head.size()};
  iov[1] = {const_cast<std::uint8_t*>(payload.data()), payload.size()};
  iov[2] = {scratch.tail.data(), scratch.tail.size()};
  return conn.send_vectors(iov, 3);
}

bool write_frame(TcpConn& conn, MsgType type,
                 std::span<const std::uint8_t> payload) {
  FrameScratch scratch;
  return write_frame(conn, type, payload, scratch);
}

FrameStatus read_frame(TcpConn& conn, Frame* out, double timeout_seconds,
                       FrameReadTiming* timing) {
  const Clock::time_point t0 = Clock::now();
  std::uint8_t header[kFrameHeaderBytes];
  if (!conn.recv_all(header, sizeof(header), timeout_seconds))
    return FrameStatus::kIoError;
  const Clock::time_point t_header = Clock::now();

  ByteReader r{std::span<const std::uint8_t>(header, sizeof(header))};
  char magic[8] = {};
  r.take(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return FrameStatus::kBadMagic;
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion) return FrameStatus::kVersionSkew;
  const std::uint8_t type = r.u8();
  if (type == 0 || type > kMaxMsgType) return FrameStatus::kBadType;
  const std::uint64_t payload_len = r.u64();
  if (payload_len > kMaxPayloadBytes) return FrameStatus::kTooLarge;

  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_len));
  if (payload_len > 0 &&
      !conn.recv_all(payload.data(), payload.size(), timeout_seconds))
    return FrameStatus::kIoError;
  std::uint64_t checksum = 0;
  if (!conn.recv_all(&checksum, sizeof(checksum), timeout_seconds))
    return FrameStatus::kIoError;
  if (checksum != fnv1a64(payload)) return FrameStatus::kBadChecksum;

  if (timing != nullptr) {
    const Clock::time_point t_done = Clock::now();
    timing->wait_seconds = seconds_since(t0, t_header);
    timing->drain_seconds = seconds_since(t_header, t_done);
  }
  out->type = static_cast<MsgType>(type);
  out->payload = std::move(payload);
  return FrameStatus::kOk;
}

// --- Message bodies -------------------------------------------------------

std::vector<std::uint8_t> HelloMsg::encode() const {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u32(protocol);
  w.str(node);
  return out;
}

std::optional<HelloMsg> HelloMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  HelloMsg m;
  m.protocol = r.u32();
  r.str(m.node, kMaxStringBytes);
  if (!r.ok || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> HelloAckMsg::encode() const {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u32(protocol);
  w.str(daemon);
  w.u32(concurrency);
  return out;
}

std::optional<HelloAckMsg> HelloAckMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  HelloAckMsg m;
  m.protocol = r.u32();
  r.str(m.daemon, kMaxStringBytes);
  m.concurrency = r.u32();
  if (!r.ok || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> BeginRunMsg::encode() const {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u64(run_id);
  w.str(spec);
  return out;
}

std::optional<BeginRunMsg> BeginRunMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  BeginRunMsg m;
  m.run_id = r.u64();
  r.str(m.spec, kMaxStringBytes);
  if (!r.ok || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> RunAckMsg::encode() const {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u64(run_id);
  w.u8(ok ? 1 : 0);
  w.str(error);
  return out;
}

std::optional<RunAckMsg> RunAckMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  RunAckMsg m;
  m.run_id = r.u64();
  m.ok = r.u8() != 0;
  r.str(m.error, kMaxStringBytes);
  if (!r.ok || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> AssignBlockMsg::encode() const {
  std::vector<std::uint8_t> out;
  encode_into(out);
  return out;
}

void AssignBlockMsg::encode_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  ByteWriter w{out};
  w.u64(run_id);
  w.u64(sequence);
  w.var_u64(begin);
  w.var_u64(end);
}

std::optional<AssignBlockMsg> AssignBlockMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  AssignBlockMsg m;
  m.run_id = r.u64();
  m.sequence = r.u64();
  m.begin = r.var_u64();
  m.end = r.var_u64();
  if (!r.ok || r.remaining() != 0 || m.begin > m.end) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> BlockResultMsg::encode() const {
  std::vector<std::uint8_t> out;
  encode_into(out);
  return out;
}

void BlockResultMsg::encode_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  out.reserve(48 + error.size() + results.size());
  ByteWriter w{out};
  w.u64(run_id);
  w.u64(sequence);
  w.var_u64(begin);
  w.var_u64(end);
  w.f64(exec_seconds);
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.u64(results.size());
  w.bytes(results.data(), results.size());
}

std::optional<BlockResultMsg> BlockResultMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  BlockResultMsg m;
  m.run_id = r.u64();
  m.sequence = r.u64();
  m.begin = r.var_u64();
  m.end = r.var_u64();
  m.exec_seconds = r.f64();
  m.ok = r.u8() != 0;
  r.str(m.error, kMaxStringBytes);
  const std::uint64_t result_len = r.u64();
  if (!r.ok || result_len > kMaxPayloadBytes || r.remaining() < result_len)
    return std::nullopt;
  m.results.assign(payload.begin() + static_cast<std::ptrdiff_t>(r.pos),
                   payload.begin() + static_cast<std::ptrdiff_t>(
                                         r.pos + static_cast<std::size_t>(
                                                     result_len)));
  r.pos += static_cast<std::size_t>(result_len);
  if (r.remaining() != 0 || m.begin > m.end) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> BlockResultBatchMsg::encode() const {
  std::vector<std::uint8_t> out;
  encode_into(out);
  return out;
}

void BlockResultBatchMsg::encode_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  ByteWriter w{out};
  w.var_u64(results.size());
  std::vector<std::uint8_t> entry;  // capacity reused across entries
  for (const BlockResultMsg& result : results) {
    result.encode_into(entry);
    w.u64(entry.size());
    w.bytes(entry.data(), entry.size());
  }
}

std::optional<BlockResultBatchMsg> BlockResultBatchMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  const std::uint64_t count = r.var_u64();
  if (!r.ok || count == 0 || count > kMaxBatchedResults) return std::nullopt;
  BlockResultBatchMsg m;
  m.results.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.u64();
    if (!r.ok || len > kMaxPayloadBytes || r.remaining() < len)
      return std::nullopt;
    std::optional<BlockResultMsg> entry = BlockResultMsg::decode(
        payload.subspan(r.pos, static_cast<std::size_t>(len)));
    if (!entry) return std::nullopt;
    r.pos += static_cast<std::size_t>(len);
    m.results.push_back(std::move(*entry));
  }
  if (r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> HeartbeatMsg::encode() const {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u64(sequence);
  return out;
}

std::optional<HeartbeatMsg> HeartbeatMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  HeartbeatMsg m;
  m.sequence = r.u64();
  if (!r.ok || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> HeartbeatAckMsg::encode() const {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u64(sequence);
  return out;
}

std::optional<HeartbeatAckMsg> HeartbeatAckMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  HeartbeatAckMsg m;
  m.sequence = r.u64();
  if (!r.ok || r.remaining() != 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> ProfileSyncMsg::encode() const {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u64(store_image.size());
  w.bytes(store_image.data(), store_image.size());
  return out;
}

std::optional<ProfileSyncMsg> ProfileSyncMsg::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  ProfileSyncMsg m;
  const std::uint64_t len = r.u64();
  if (!r.ok || len > kMaxPayloadBytes || r.remaining() < len)
    return std::nullopt;
  m.store_image.assign(
      payload.begin() + static_cast<std::ptrdiff_t>(r.pos),
      payload.begin() +
          static_cast<std::ptrdiff_t>(r.pos + static_cast<std::size_t>(len)));
  r.pos += static_cast<std::size_t>(len);
  if (r.remaining() != 0) return std::nullopt;
  return m;
}

}  // namespace plbhec::net
