#pragma once
/// \file socket.hpp
/// Thin RAII layer over POSIX TCP sockets for the cluster transport:
/// a loopback/any-address listener and a connection with whole-buffer
/// send/recv, deadlines, and asynchronous cancellation. cancel() uses
/// ::shutdown so a blocked recv on another thread wakes immediately —
/// the heartbeat monitor relies on that to fail a dead worker's
/// in-flight block without waiting for a kernel-level TCP timeout.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

struct iovec;  // <sys/uio.h>; forward-declared to keep this header light

namespace plbhec::net {

/// One established, bidirectional TCP connection. Thread model: one
/// reader and one writer thread may use it concurrently; cancel() may be
/// called from any thread.
class TcpConn {
 public:
  /// Wraps an accepted/connected fd (takes ownership; sets TCP_NODELAY).
  explicit TcpConn(int fd);
  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connects to host:port; nullptr on refusal/timeout.
  [[nodiscard]] static std::unique_ptr<TcpConn> connect(
      const std::string& host, std::uint16_t port, double timeout_seconds);

  /// Sends exactly `size` bytes; false on error or cancellation.
  [[nodiscard]] bool send_all(const void* data, std::size_t size);

  /// Scatter-gather send: transmits the concatenation of `iov[0..count)`
  /// in order without first copying the pieces into one contiguous
  /// buffer (the framed-write hot path relies on this to ship
  /// header + payload + trailer as three vectors). Resumes across iovec
  /// boundaries on short writes; false on error or cancellation.
  [[nodiscard]] bool send_vectors(const iovec* iov, std::size_t count);

  /// The raw socket fd (ownership stays with the connection). Exposed
  /// for poll()-style readiness integration and for tests that shrink
  /// kernel buffers to force partial send/recv progress.
  [[nodiscard]] int native_handle() const { return fd_; }

  /// Receives exactly `size` bytes. `timeout_seconds` < 0 waits forever
  /// (until the peer closes or cancel()). False on EOF, error, timeout,
  /// or cancellation.
  [[nodiscard]] bool recv_all(void* data, std::size_t size,
                              double timeout_seconds = -1.0);

  /// True when at least one byte (or EOF) is ready to read within the
  /// timeout — lets a server loop poll for traffic without consuming the
  /// ability to distinguish "idle" from "dead".
  [[nodiscard]] bool readable(double timeout_seconds);

  /// Non-blocking receive for readiness-driven (epoll) reactors: reads
  /// whatever the kernel has, up to `cap` bytes. Returns the byte count
  /// (> 0), 0 when the socket has nothing buffered (would block), or -1
  /// on EOF, error, or cancellation.
  [[nodiscard]] long recv_nonblocking(void* data, std::size_t cap);

  /// Non-blocking send counterpart: writes as much of [data, data+size)
  /// as the kernel accepts. Returns bytes written (>= 0; 0 = send buffer
  /// full) or -1 on error/cancellation. The caller keeps the unsent tail
  /// and retries on the next writability notification.
  [[nodiscard]] long send_nonblocking(const void* data, std::size_t size);

  /// Permanently wakes and fails all in-flight and future I/O on this
  /// connection. Safe from any thread, idempotent.
  void cancel();

  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  int fd_ = -1;
  std::atomic<bool> cancelled_{false};
};

/// A listening TCP socket bound to 127.0.0.1 (the transport is built for
/// trusted cluster interconnects and the tests run over loopback).
class TcpListener {
 public:
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral); nullptr on
  /// failure.
  [[nodiscard]] static std::unique_ptr<TcpListener> bind_loopback(
      std::uint16_t port);

  /// The bound port (resolved when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The listening fd (ownership stays here) — for epoll registration.
  [[nodiscard]] int native_handle() const { return fd_; }

  /// Accepts one connection; nullptr on timeout or after close().
  /// `timeout_seconds` < 0 waits forever.
  [[nodiscard]] std::unique_ptr<TcpConn> accept(double timeout_seconds);

  /// Stops accepting: wakes a blocked accept() and fails future ones.
  /// Safe from any thread, idempotent.
  void close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace plbhec::net
