#pragma once
/// \file remote_unit.hpp
/// Coordinator-side ExecUnit backed by a worker daemon across TCP. The
/// ThreadEngine drives it exactly like a local unit; each block becomes an
/// AssignBlock/BlockResult round-trip, and the observation fed back to the
/// scheduler splits the measured wall time into the daemon's reported
/// kernel time (-> F_p(x) samples) and the remainder — serialization,
/// wire, deserialization — as transfer time (-> G_p(x) samples). The
/// transfer model the paper fits per unit is therefore learned from real
/// wire behavior, not an emulated memcpy.
///
/// Robustness: a dedicated heartbeat connection probes the daemon at a
/// fixed interval; after `max_missed_heartbeats` consecutive misses the
/// link is demoted and any blocked BlockResult wait is cancelled, so the
/// engine requeues the in-flight range (zero lost grains). Transient
/// connection drops are retried with bounded exponential backoff before
/// the unit gives up and reports permanent failure.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "plbhec/net/socket.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/exec_unit.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec::obs {
class CounterRegistry;
}  // namespace plbhec::obs

namespace plbhec::net {

struct RemoteUnitOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "remote.worker";
  std::uint32_t machine = 1;  ///< UnitInfo machine id (0 = coordinator host)
  double connect_timeout_seconds = 2.0;
  /// Bound on handshake/ack round-trips (not on block execution, whose
  /// liveness the heartbeat monitor owns).
  double control_timeout_seconds = 2.0;
  double heartbeat_interval_seconds = 0.05;
  std::size_t max_missed_heartbeats = 3;
  std::size_t max_reconnect_attempts = 3;
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 1.0;
  /// Event sink for msg/heartbeat/reconnect events; null = record
  /// nothing. Not owned.
  obs::EventSink* sink = nullptr;
  /// Unit id stamped on this link's events (the engine assigns ids in
  /// construction order, so the caller knows it).
  std::uint32_t event_unit = 0xffff'ffffu;
  /// Data-plane pipelining: how many chunk frames the unit keeps in
  /// flight on the data connection. 1 = the synchronous protocol (one
  /// AssignBlock/BlockResult round-trip per engine block). N > 1 splits
  /// every large enough block into up to 2N sequence-numbered chunks and
  /// streams them through a windowed in-flight queue, so the wire time
  /// of one chunk overlaps the daemon's kernel on another. Chunk results
  /// are buffered and applied to the workload only once the whole block
  /// completed — a failed block leaves the workload untouched and the
  /// engine requeues the full range, exactly as in the sync protocol.
  std::size_t pipeline_depth = 1;
  /// Smallest chunk worth a frame of its own; blocks shorter than two
  /// minimum chunks (probing blocks, tail blocks) always take the
  /// synchronous path, keeping modeling-phase samples pipeline-free.
  std::size_t min_chunk_grains = 4;
};

class RemoteUnit final : public rt::ExecUnit {
 public:
  explicit RemoteUnit(RemoteUnitOptions options);
  ~RemoteUnit() override;

  [[nodiscard]] rt::UnitInfo describe() const override;
  [[nodiscard]] bool begin_run(rt::Workload& workload) override;
  [[nodiscard]] bool execute(rt::Workload& workload, std::size_t begin,
                             std::size_t end,
                             rt::BlockTiming& timing) override;
  void end_run() override;

  /// Bidirectional profile sync over a fresh connection: pushes `store`
  /// to the daemon, merges the daemon's store image back into `store`.
  /// Usable outside runs; false on any transport failure.
  [[nodiscard]] bool sync_profiles(svc::ProfileStore& store);

  /// Permanently out of service (heartbeat timeout or exhausted
  /// reconnects).
  [[nodiscard]] bool demoted() const {
    return demoted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t reconnects_attempted() const {
    return reconnects_.load();
  }
  [[nodiscard]] std::uint64_t heartbeats_missed() const {
    return heartbeats_missed_.load();
  }

  /// Wire/pipeline statistics accumulated across execute() calls.
  /// Written by the engine worker thread that owns this unit during a
  /// run; read them after the run ended (the engine's thread joins
  /// establish the ordering).
  struct WireStats {
    std::uint64_t chunks_pipelined = 0;  ///< chunk frames sent windowed
    std::uint64_t batched_results = 0;   ///< results arrived in batches
    std::uint64_t inflight_peak = 0;     ///< max chunks in flight at once
    double overlap_saved_seconds = 0.0;  ///< sum of transfer+exec-wall
    double overlap_floor_seconds = 0.0;  ///< sum of min(transfer, exec)
  };
  [[nodiscard]] const WireStats& wire_stats() const { return wire_stats_; }
  /// Measured overlap fraction in [0, 1]: the share of the smaller phase
  /// (wire vs kernel) the pipeline hid. 0 under the sync protocol.
  [[nodiscard]] double overlap_fraction() const;
  /// Publishes this link's wire-health counters ("net.<name>.*").
  void publish_counters(obs::CounterRegistry& registry) const;

 private:
  enum class BlockOutcome { kOk, kIoError, kFatal };

  /// Opens a connection and completes the Hello round-trip, bounding both
  /// the connect and the HelloAck wait by `timeout_seconds`. Control paths
  /// pass the control timeout; the heartbeat loop passes its own interval
  /// so a probe can never outlast the liveness budget it is measuring.
  [[nodiscard]] std::unique_ptr<TcpConn> dial(double timeout_seconds);
  /// Sends BeginRun on `conn` and waits for a positive RunAck.
  [[nodiscard]] bool start_run_on(TcpConn& conn);
  [[nodiscard]] BlockOutcome try_block(rt::Workload& workload,
                                       std::size_t begin, std::size_t end,
                                       rt::BlockTiming& timing);
  /// Windowed multi-chunk execution of one engine block (the pipelined
  /// data plane); see RemoteUnitOptions::pipeline_depth.
  [[nodiscard]] BlockOutcome try_pipelined(rt::Workload& workload,
                                           std::size_t begin, std::size_t end,
                                           rt::BlockTiming& timing);
  /// Bounded-backoff re-dial + re-BeginRun; false when exhausted.
  [[nodiscard]] bool reconnect();
  void heartbeat_loop();
  /// Timed wait that end_run() (and, when `wake_on_demote`, a demotion)
  /// interrupts immediately — backoff and heartbeat pacing never hold a
  /// teardown hostage for a full interval.
  void interruptible_sleep(double seconds, bool wake_on_demote);

  RemoteUnitOptions options_;
  std::string spec_;        ///< current run's workload spec
  std::uint64_t run_id_ = 0;
  /// Monotonic frame sequence for the data plane; pipelined chunks are
  /// matched to their (possibly out-of-order, possibly batched) results
  /// by this number.
  std::uint64_t next_sequence_ = 0;
  WireStats wire_stats_;

  std::mutex conn_mutex_;   ///< guards data_conn_ replacement
  std::shared_ptr<TcpConn> data_conn_;

  std::thread heartbeat_thread_;
  std::atomic<bool> monitor_stop_{false};
  std::atomic<bool> demoted_{false};
  std::mutex wait_mutex_;              ///< pairs with wait_cv_ only
  std::condition_variable wait_cv_;    ///< wakes interruptible_sleep
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> heartbeats_missed_{0};
};

}  // namespace plbhec::net
