#pragma once
/// \file remote_unit.hpp
/// Coordinator-side ExecUnit backed by a worker daemon across TCP. The
/// ThreadEngine drives it exactly like a local unit; each block becomes an
/// AssignBlock/BlockResult round-trip, and the observation fed back to the
/// scheduler splits the measured wall time into the daemon's reported
/// kernel time (-> F_p(x) samples) and the remainder — serialization,
/// wire, deserialization — as transfer time (-> G_p(x) samples). The
/// transfer model the paper fits per unit is therefore learned from real
/// wire behavior, not an emulated memcpy.
///
/// Robustness: a dedicated heartbeat connection probes the daemon at a
/// fixed interval; after `max_missed_heartbeats` consecutive misses the
/// link is demoted and any blocked BlockResult wait is cancelled, so the
/// engine requeues the in-flight range (zero lost grains). Transient
/// connection drops are retried with bounded exponential backoff before
/// the unit gives up and reports permanent failure.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "plbhec/net/socket.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/exec_unit.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec::net {

struct RemoteUnitOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "remote.worker";
  std::uint32_t machine = 1;  ///< UnitInfo machine id (0 = coordinator host)
  double connect_timeout_seconds = 2.0;
  /// Bound on handshake/ack round-trips (not on block execution, whose
  /// liveness the heartbeat monitor owns).
  double control_timeout_seconds = 2.0;
  double heartbeat_interval_seconds = 0.05;
  std::size_t max_missed_heartbeats = 3;
  std::size_t max_reconnect_attempts = 3;
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 1.0;
  /// Event sink for msg/heartbeat/reconnect events; null = record
  /// nothing. Not owned.
  obs::EventSink* sink = nullptr;
  /// Unit id stamped on this link's events (the engine assigns ids in
  /// construction order, so the caller knows it).
  std::uint32_t event_unit = 0xffff'ffffu;
};

class RemoteUnit final : public rt::ExecUnit {
 public:
  explicit RemoteUnit(RemoteUnitOptions options);
  ~RemoteUnit() override;

  [[nodiscard]] rt::UnitInfo describe() const override;
  [[nodiscard]] bool begin_run(rt::Workload& workload) override;
  [[nodiscard]] bool execute(rt::Workload& workload, std::size_t begin,
                             std::size_t end,
                             rt::BlockTiming& timing) override;
  void end_run() override;

  /// Bidirectional profile sync over a fresh connection: pushes `store`
  /// to the daemon, merges the daemon's store image back into `store`.
  /// Usable outside runs; false on any transport failure.
  [[nodiscard]] bool sync_profiles(svc::ProfileStore& store);

  /// Permanently out of service (heartbeat timeout or exhausted
  /// reconnects).
  [[nodiscard]] bool demoted() const {
    return demoted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t reconnects_attempted() const {
    return reconnects_.load();
  }
  [[nodiscard]] std::uint64_t heartbeats_missed() const {
    return heartbeats_missed_.load();
  }

 private:
  enum class BlockOutcome { kOk, kIoError, kFatal };

  /// Opens a connection and completes the Hello round-trip, bounding both
  /// the connect and the HelloAck wait by `timeout_seconds`. Control paths
  /// pass the control timeout; the heartbeat loop passes its own interval
  /// so a probe can never outlast the liveness budget it is measuring.
  [[nodiscard]] std::unique_ptr<TcpConn> dial(double timeout_seconds);
  /// Sends BeginRun on `conn` and waits for a positive RunAck.
  [[nodiscard]] bool start_run_on(TcpConn& conn);
  [[nodiscard]] BlockOutcome try_block(rt::Workload& workload,
                                       std::size_t begin, std::size_t end,
                                       rt::BlockTiming& timing);
  /// Bounded-backoff re-dial + re-BeginRun; false when exhausted.
  [[nodiscard]] bool reconnect();
  void heartbeat_loop();

  RemoteUnitOptions options_;
  std::string spec_;        ///< current run's workload spec
  std::uint64_t run_id_ = 0;

  std::mutex conn_mutex_;   ///< guards data_conn_ replacement
  std::shared_ptr<TcpConn> data_conn_;

  std::thread heartbeat_thread_;
  std::atomic<bool> monitor_stop_{false};
  std::atomic<bool> demoted_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> heartbeats_missed_{0};
};

}  // namespace plbhec::net
