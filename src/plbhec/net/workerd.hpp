#pragma once
/// \file workerd.hpp
/// The worker daemon: listens for coordinator connections and executes
/// assigned blocks of a workload rebuilt locally from its remote_spec()
/// string (apps/registry.hpp), shipping result bytes and kernel timings
/// back. Every accepted connection is served by a three-thread pipeline —
/// a reader that decodes frames, an executor that runs kernels off a task
/// queue, and a sender that drains an outbox (batching small results into
/// one frame) — so the socket is never stalled by a running kernel and a
/// window of AssignBlocks can queue up while one executes. The reader
/// never writes and the sender never reads, preserving TcpConn's
/// one-reader/one-writer thread model. Each connection keeps its own
/// workload instance, so one daemon process can host several remote units
/// (and independent heartbeat links) concurrently — the kernels
/// themselves fan out over the process-wide exec::ThreadPool exactly as
/// local execution does.
///
/// For failure-injection tests the daemon can be killed (connections cut
/// mid-block, as if the process died) or frozen (connections stay open
/// but nothing is answered — the heartbeat-timeout path).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "plbhec/net/socket.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec::net {

struct WorkerDaemonOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::string name = "workerd";
  /// Artificially slow served kernels by this factor (>= 1.0), so a
  /// single-host test cluster exhibits real heterogeneity across daemons.
  double slowdown = 1.0;
};

class WorkerDaemon {
 public:
  /// Binds and starts the accept loop; aborts on bind failure (a daemon
  /// that cannot listen has no purpose — and tests pass port 0).
  explicit WorkerDaemon(WorkerDaemonOptions options);
  ~WorkerDaemon();
  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  [[nodiscard]] std::uint16_t port() const;

  /// Graceful stop: closes the listener, cancels all connections, joins
  /// all threads. Idempotent.
  void stop();

  /// Simulates a daemon crash: cuts every connection and the listener
  /// without draining in-flight blocks. The object stays joinable/usable
  /// for inspection; a coordinator sees I/O errors and missed heartbeats.
  void kill();

  /// Simulates a hung process: connections stay open but every serving
  /// thread stops reading/answering (including heartbeats) until
  /// unfreeze(). The heartbeat-timeout demotion path in RemoteUnit is
  /// exercised with this.
  void freeze();
  void unfreeze();

  /// Profiles pushed by coordinators via ProfileSync, merged.
  [[nodiscard]] svc::ProfileStore profiles() const;

  /// Lifetime counters (for tests/bench).
  [[nodiscard]] std::uint64_t blocks_served() const {
    return blocks_served_.load();
  }
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }
  /// Block results the per-connection sender coalesced into
  /// kBlockResultBatch frames (0 when every result shipped alone).
  [[nodiscard]] std::uint64_t results_batched() const {
    return results_batched_.load();
  }

 private:
  struct ConnPipeline;

  void accept_loop();
  void serve(TcpConn& conn);
  void execute_loop(ConnPipeline& pipe);
  void send_loop(TcpConn& conn, ConnPipeline& pipe);

  WorkerDaemonOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> frozen_{false};
  std::atomic<std::uint64_t> blocks_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> results_batched_{0};

  mutable std::mutex mutex_;  ///< guards conns_, threads_, profiles_
  std::vector<std::unique_ptr<TcpConn>> conns_;  ///< live until stop()
  std::vector<std::thread> threads_;
  svc::ProfileStore profiles_;
};

}  // namespace plbhec::net
