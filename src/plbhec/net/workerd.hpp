#pragma once
/// \file workerd.hpp
/// The worker daemon: listens for coordinator connections and executes
/// assigned blocks of a workload rebuilt locally from its remote_spec()
/// string (apps/registry.hpp), shipping result bytes and kernel timings
/// back.
///
/// Architecture: a single *epoll reactor thread* multiplexes the listener
/// and every coordinator connection. The reactor does all socket I/O —
/// incremental frame decode on the inbound side, a per-connection outbox
/// of encoded frames flushed via non-blocking writes (EPOLLOUT armed only
/// while a partial frame is pending) on the outbound side — and answers
/// pure control traffic (handshakes, heartbeats, profile sync) inline, so
/// liveness probes are never queued behind kernels. Workload construction
/// and block execution run on a small shared executor pool with strict
/// per-connection FIFO ordering (at most one in-flight task per
/// connection); finished results come back to the reactor through a
/// completion queue + eventfd wake, where small ones are coalesced into
/// kBlockResultBatch frames exactly like the old per-connection sender
/// did. There are no sleep/yield polls anywhere: the reactor blocks in
/// epoll_wait, executors block on a condition variable, and the
/// heterogeneity stretch is an interruptible timed wait.
///
/// For failure-injection tests the daemon can be killed (connections cut
/// mid-block, as if the process died) or frozen (connections stay open
/// but nothing is answered — the heartbeat-timeout path; implemented by
/// dropping every connection from the epoll interest set and gating the
/// executors until unfreeze()).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "plbhec/net/socket.hpp"
#include "plbhec/net/wire.hpp"
#include "plbhec/svc/profile_store.hpp"

namespace plbhec::obs {
class CounterRegistry;
}

namespace plbhec::net {

struct WorkerDaemonOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::string name = "workerd";
  /// Artificially slow served kernels by this factor (>= 1.0), so a
  /// single-host test cluster exhibits real heterogeneity across daemons.
  double slowdown = 1.0;
  /// Kernel lanes shared by all connections (each connection's tasks stay
  /// FIFO and never run concurrently with each other). Clamped to >= 1.
  std::size_t executor_threads = 4;
  /// When set, stop() publishes reactor/executor lifetime counters under
  /// "net.<name>.". Not owned; may be null.
  obs::CounterRegistry* counters = nullptr;
};

class WorkerDaemon {
 public:
  /// Binds, then starts the reactor and executor threads; aborts on bind
  /// failure (a daemon that cannot listen has no purpose — and tests pass
  /// port 0).
  explicit WorkerDaemon(WorkerDaemonOptions options);
  ~WorkerDaemon();
  WorkerDaemon(const WorkerDaemon&) = delete;
  WorkerDaemon& operator=(const WorkerDaemon&) = delete;

  [[nodiscard]] std::uint16_t port() const;

  /// Graceful stop: closes the listener, cancels all connections, joins
  /// the reactor and executors, publishes counters. Idempotent.
  void stop();

  /// Simulates a daemon crash: cuts every connection and the listener
  /// without draining in-flight blocks. The object stays joinable/usable
  /// for inspection; a coordinator sees I/O errors and missed heartbeats.
  void kill();

  /// Simulates a hung process: connections stay open but every serving
  /// thread stops reading/answering (including heartbeats) until
  /// unfreeze(). The heartbeat-timeout demotion path in RemoteUnit is
  /// exercised with this.
  void freeze();
  void unfreeze();

  /// Changes the heterogeneity stretch at runtime (>= 1.0). Chaos scripts
  /// deliver QoS-degradation events through this: blocks started after the
  /// call are padded to the new factor, which the coordinator observes as
  /// the unit's performance curve drifting — no demotion involved.
  void set_slowdown(double slowdown);
  [[nodiscard]] double slowdown() const {
    return slowdown_.load(std::memory_order_relaxed);
  }

  /// Profiles pushed by coordinators via ProfileSync, merged.
  [[nodiscard]] svc::ProfileStore profiles() const;

  /// Lifetime counters (for tests/bench).
  [[nodiscard]] std::uint64_t blocks_served() const {
    return blocks_served_.load();
  }
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }
  /// Block results the reactor coalesced into kBlockResultBatch frames
  /// (0 when every result shipped alone).
  [[nodiscard]] std::uint64_t results_batched() const {
    return results_batched_.load();
  }
  /// epoll_wait returns on the reactor thread.
  [[nodiscard]] std::uint64_t reactor_wakeups() const {
    return reactor_wakeups_.load();
  }
  /// Complete frames decoded from coordinator connections.
  [[nodiscard]] std::uint64_t frames_received() const {
    return frames_received_.load();
  }
  /// Most connections multiplexed by the reactor at any one time.
  [[nodiscard]] std::uint64_t peak_connections() const {
    return peak_connections_.load();
  }

 private:
  struct ConnState;
  struct Task;
  struct Done;

  void reactor_loop();
  void executor_loop();
  void wake();

  // Reactor-side helpers (reactor thread only).
  void accept_ready();
  void register_conn(std::unique_ptr<TcpConn> conn);
  void close_conn(const std::shared_ptr<ConnState>& state);
  void handle_readable(const std::shared_ptr<ConnState>& state);
  bool process_frame(const std::shared_ptr<ConnState>& state, Frame frame);
  void enqueue_frame(const std::shared_ptr<ConnState>& state, MsgType type,
                     std::span<const std::uint8_t> payload);
  void flush_writes(const std::shared_ptr<ConnState>& state);
  void update_interest(ConnState& state);
  void drain_completions();
  void apply_freeze(bool frozen);
  void push_exec_task(const std::shared_ptr<ConnState>& state, Task task);

  // Executor-side helpers.
  void run_task(const std::shared_ptr<ConnState>& state, Task& task);
  void stretch_interruptible(double measured_seconds);

  WorkerDaemonOptions options_;
  std::unique_ptr<TcpListener> listener_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread reactor_thread_;
  std::vector<std::thread> executor_threads_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> frozen_{false};
  std::atomic<double> slowdown_{1.0};  ///< live stretch factor (see above)
  std::atomic<bool> counters_published_{false};
  std::atomic<std::uint64_t> blocks_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> results_batched_{0};
  std::atomic<std::uint64_t> reactor_wakeups_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> peak_connections_{0};

  /// Reactor-owned connection table (fd -> state). Never touched off the
  /// reactor thread; kill() reaches connections through conns_ below.
  std::unordered_map<int, std::shared_ptr<ConnState>> by_fd_;

  /// Executor handoff: per-connection task queues feed a ready-list of
  /// connections; a connection is on the list iff it has tasks and no
  /// executor is currently serving it.
  std::mutex exec_mutex_;
  std::condition_variable exec_cv_;
  std::deque<std::shared_ptr<ConnState>> exec_ready_;

  /// Finished work travelling back to the reactor (+ eventfd wake).
  std::mutex done_mutex_;
  std::vector<Done> done_;

  mutable std::mutex mutex_;  ///< guards conns_ and profiles_
  std::vector<TcpConn*> conns_;  ///< live sockets, for kill() cancellation
  svc::ProfileStore profiles_;
};

}  // namespace plbhec::net
