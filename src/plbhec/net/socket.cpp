#include "plbhec/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace plbhec::net {
namespace {

using Clock = std::chrono::steady_clock;

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Remaining poll budget in milliseconds; -1 for "forever" deadlines,
/// clamped to >= 0 otherwise (poll treats negative as infinite).
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  const long long ms = left.count();
  if (ms <= 0) return 0;
  return ms > 60'000 ? 60'000 : static_cast<int>(ms);
}

}  // namespace

TcpConn::TcpConn(int fd) : fd_(fd) { set_nodelay(fd_); }

TcpConn::~TcpConn() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpConn> TcpConn::connect(const std::string& host,
                                          std::uint16_t port,
                                          double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }

  // Non-blocking connect with a poll deadline, then back to blocking.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ms = timeout_seconds < 0.0
                       ? -1
                       : static_cast<int>(timeout_seconds * 1000.0);
    if (::poll(&pfd, 1, ms) != 1) rc = -1;
    if (rc == 0 || (pfd.revents & POLLOUT) != 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      rc = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (rc == 0 && err != 0) rc = -1;
    } else {
      rc = -1;
    }
  }
  if (rc != 0) {
    ::close(fd);
    return nullptr;
  }
  ::fcntl(fd, F_SETFL, flags);
  return std::make_unique<TcpConn>(fd);
}

bool TcpConn::send_all(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    if (cancelled()) return false;
    const ssize_t n =
        ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool TcpConn::send_vectors(const iovec* iov, std::size_t count) {
  // Mutable copy so partial progress can advance base/len without
  // touching the caller's vectors. Frames are at most header + payload +
  // trailer, so a small fixed array suffices.
  constexpr std::size_t kMaxVectors = 8;
  if (count > kMaxVectors) return false;
  iovec local[kMaxVectors];
  std::memcpy(local, iov, count * sizeof(iovec));

  std::size_t first = 0;  // vectors fully transmitted so far
  while (first < count) {
    if (local[first].iov_len == 0) {
      ++first;
      continue;
    }
    if (cancelled()) return false;
    msghdr msg{};
    msg.msg_iov = local + first;
    msg.msg_iovlen = count - first;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    std::size_t advanced = static_cast<std::size_t>(n);
    while (first < count && advanced >= local[first].iov_len) {
      advanced -= local[first].iov_len;
      ++first;
    }
    if (first < count && advanced > 0) {
      local[first].iov_base =
          static_cast<std::uint8_t*>(local[first].iov_base) + advanced;
      local[first].iov_len -= advanced;
    }
  }
  return true;
}

bool TcpConn::recv_all(void* data, std::size_t size, double timeout_seconds) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  const bool has_deadline = timeout_seconds >= 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             has_deadline ? timeout_seconds : 0.0));
  while (got < size) {
    if (cancelled()) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (rc < 0 && errno == EINTR) continue;
    if (rc == 0) {
      if (has_deadline && Clock::now() >= deadline) return false;  // timeout
      continue;  // clamped slice of an infinite/long deadline
    }
    if (rc < 0) return false;
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
  return true;
}

long TcpConn::recv_nonblocking(void* data, std::size_t cap) {
  while (true) {
    if (cancelled()) return -1;
    const ssize_t n = ::recv(fd_, data, cap, MSG_DONTWAIT);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) return -1;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

long TcpConn::send_nonblocking(const void* data, std::size_t size) {
  while (true) {
    if (cancelled()) return -1;
    const ssize_t n = ::send(fd_, data, size, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

bool TcpConn::readable(double timeout_seconds) {
  if (cancelled()) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int ms = timeout_seconds < 0.0
                     ? -1
                     : static_cast<int>(timeout_seconds * 1000.0);
  return ::poll(&pfd, 1, ms) == 1;
}

void TcpConn::cancel() {
  if (!cancelled_.exchange(true, std::memory_order_acq_rel))
    ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::~TcpListener() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpListener> TcpListener::bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return nullptr;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(bound.sin_port)));
}

std::unique_ptr<TcpConn> TcpListener::accept(double timeout_seconds) {
  const bool has_deadline = timeout_seconds >= 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             has_deadline ? timeout_seconds : 0.0));
  while (true) {
    if (closed_.load(std::memory_order_acquire)) return nullptr;
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (rc < 0 && errno == EINTR) continue;
    if (rc == 0) {
      if (has_deadline && Clock::now() >= deadline) return nullptr;
      continue;
    }
    if (rc < 0) return nullptr;
    const int conn_fd = ::accept(fd_, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return nullptr;
    }
    return std::make_unique<TcpConn>(conn_fd);
  }
}

void TcpListener::close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel))
    ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace plbhec::net
