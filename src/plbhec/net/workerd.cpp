#include "plbhec/net/workerd.hpp"

#include <chrono>

#include "plbhec/apps/registry.hpp"
#include "plbhec/common/contracts.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/net/wire.hpp"
#include "plbhec/rt/workload.hpp"

namespace plbhec::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Busy-stretches a measured duration to `factor` times its length (the
/// same heterogeneity emulation LocalExecUnit applies).
void stretch(Clock::time_point start, double measured_s, double factor) {
  if (factor <= 1.0) return;
  const double target = measured_s * factor;
  while (std::chrono::duration<double>(Clock::now() - start).count() < target)
    std::this_thread::yield();
}

}  // namespace

WorkerDaemon::WorkerDaemon(WorkerDaemonOptions options)
    : options_(std::move(options)) {
  PLBHEC_EXPECTS(options_.slowdown >= 1.0);
  listener_ = TcpListener::bind_loopback(options_.port);
  PLBHEC_ASSERT(listener_ != nullptr);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

WorkerDaemon::~WorkerDaemon() { stop(); }

std::uint16_t WorkerDaemon::port() const { return listener_->port(); }

void WorkerDaemon::kill() {
  stopping_.store(true, std::memory_order_release);
  listener_->close();
  std::lock_guard lock(mutex_);
  for (auto& conn : conns_) conn->cancel();
}

void WorkerDaemon::stop() {
  kill();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mutex_);
    workers.swap(threads_);
  }
  for (std::thread& t : workers) t.join();
}

void WorkerDaemon::freeze() {
  frozen_.store(true, std::memory_order_release);
}

void WorkerDaemon::unfreeze() {
  frozen_.store(false, std::memory_order_release);
}

svc::ProfileStore WorkerDaemon::profiles() const {
  std::lock_guard lock(mutex_);
  return profiles_;
}

void WorkerDaemon::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::unique_ptr<TcpConn> conn = listener_->accept(0.25);
    if (conn == nullptr) continue;
    connections_accepted_.fetch_add(1);
    std::lock_guard lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      conn->cancel();
      return;
    }
    TcpConn* raw = conn.get();
    conns_.push_back(std::move(conn));
    threads_.emplace_back([this, raw] { serve(*raw); });
  }
}

void WorkerDaemon::serve(TcpConn& conn) {
  std::unique_ptr<rt::Workload> workload;
  std::uint64_t run_id = 0;
  std::vector<std::uint8_t> result_buf;

  while (!stopping_.load(std::memory_order_acquire)) {
    if (frozen_.load(std::memory_order_acquire)) {
      // Hung-process simulation: stay connected, answer nothing.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    if (!conn.readable(0.25)) {
      if (conn.cancelled()) return;
      continue;  // idle; re-check stop/freeze flags
    }

    Frame frame;
    if (read_frame(conn, &frame) != FrameStatus::kOk) return;

    switch (frame.type) {
      case MsgType::kHello: {
        const auto msg = HelloMsg::decode(frame.payload);
        if (!msg) return;
        HelloAckMsg ack;
        ack.daemon = options_.name;
        ack.concurrency = static_cast<std::uint32_t>(
            exec::ThreadPool::global().concurrency());
        if (!write_frame(conn, MsgType::kHelloAck, ack.encode())) return;
        break;
      }
      case MsgType::kBeginRun: {
        const auto msg = BeginRunMsg::decode(frame.payload);
        if (!msg) return;
        RunAckMsg ack;
        ack.run_id = msg->run_id;
        std::string error;
        workload = apps::make_workload(msg->spec, &error);
        if (workload != nullptr && !workload->supports_remote_execution()) {
          workload.reset();
          error = "workload does not support remote execution";
        }
        ack.ok = workload != nullptr;
        ack.error = error;
        run_id = msg->run_id;
        if (!write_frame(conn, MsgType::kRunAck, ack.encode())) return;
        break;
      }
      case MsgType::kAssignBlock: {
        const auto msg = AssignBlockMsg::decode(frame.payload);
        if (!msg) return;
        BlockResultMsg result;
        result.run_id = msg->run_id;
        result.sequence = msg->sequence;
        result.begin = msg->begin;
        result.end = msg->end;
        if (workload == nullptr || msg->run_id != run_id) {
          result.error = "no active run for this block";
        } else if (msg->end > workload->total_grains() ||
                   msg->begin >= msg->end) {
          result.error = "block range out of bounds";
        } else {
          const auto begin = static_cast<std::size_t>(msg->begin);
          const auto end = static_cast<std::size_t>(msg->end);
          const Clock::time_point t_exec = Clock::now();
          workload->execute_cpu(begin, end);
          const double measured =
              std::chrono::duration<double>(Clock::now() - t_exec).count();
          stretch(t_exec, measured, options_.slowdown);
          result.exec_seconds =
              std::chrono::duration<double>(Clock::now() - t_exec).count();
          result_buf.resize(workload->result_bytes(begin, end));
          workload->write_results(begin, end, result_buf.data());
          result.results = result_buf;
          result.ok = true;
          blocks_served_.fetch_add(1);
        }
        if (!write_frame(conn, MsgType::kBlockResult, result.encode()))
          return;
        break;
      }
      case MsgType::kHeartbeat: {
        const auto msg = HeartbeatMsg::decode(frame.payload);
        if (!msg) return;
        HeartbeatAckMsg ack;
        ack.sequence = msg->sequence;
        if (!write_frame(conn, MsgType::kHeartbeatAck, ack.encode())) return;
        break;
      }
      case MsgType::kProfileSync: {
        const auto msg = ProfileSyncMsg::decode(frame.payload);
        if (!msg) return;
        ProfileSyncMsg ack;
        {
          std::lock_guard lock(mutex_);
          svc::ProfileStore incoming;
          // A corrupt image is rejected wholesale; the ack still carries
          // this daemon's (unchanged) store.
          if (svc::ProfileStore::decode(msg->store_image, incoming) ==
              svc::StoreLoadStatus::kOk)
            profiles_.merge(incoming);
          ack.store_image = profiles_.encode();
        }
        if (!write_frame(conn, MsgType::kProfileSyncAck, ack.encode()))
          return;
        break;
      }
      case MsgType::kShutdown:
        return;
      default:
        return;  // protocol violation poisons the connection
    }
  }
}

}  // namespace plbhec::net
