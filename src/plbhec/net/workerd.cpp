#include "plbhec/net/workerd.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>

#include "plbhec/apps/registry.hpp"
#include "plbhec/common/contracts.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/net/wire.hpp"
#include "plbhec/rt/workload.hpp"

namespace plbhec::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Busy-stretches a measured duration to `factor` times its length (the
/// same heterogeneity emulation LocalExecUnit applies).
void stretch(Clock::time_point start, double measured_s, double factor) {
  if (factor <= 1.0) return;
  const double target = measured_s * factor;
  while (std::chrono::duration<double>(Clock::now() - start).count() < target)
    std::this_thread::yield();
}

}  // namespace

/// Per-connection pipeline state shared by the reader (serve), the
/// executor and the sender. The reader only pushes, the executor moves
/// tasks to results, the sender only pops — nobody but the reader
/// touches the socket's receive side and nobody but the sender its send
/// side.
struct WorkerDaemon::ConnPipeline {
  /// One frame awaiting the wire: either a pre-encoded control payload
  /// or a block result (kept structured so the sender can batch).
  struct Outgoing {
    MsgType type = MsgType::kShutdown;
    std::vector<std::uint8_t> payload;
    std::optional<BlockResultMsg> result;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<AssignBlockMsg> tasks;
  std::deque<Outgoing> outbox;
  std::shared_ptr<rt::Workload> workload;
  std::uint64_t run_id = 0;
  bool closing = false;
};

WorkerDaemon::WorkerDaemon(WorkerDaemonOptions options)
    : options_(std::move(options)) {
  PLBHEC_EXPECTS(options_.slowdown >= 1.0);
  listener_ = TcpListener::bind_loopback(options_.port);
  PLBHEC_ASSERT(listener_ != nullptr);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

WorkerDaemon::~WorkerDaemon() { stop(); }

std::uint16_t WorkerDaemon::port() const { return listener_->port(); }

void WorkerDaemon::kill() {
  stopping_.store(true, std::memory_order_release);
  listener_->close();
  std::lock_guard lock(mutex_);
  for (auto& conn : conns_) conn->cancel();
}

void WorkerDaemon::stop() {
  kill();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mutex_);
    workers.swap(threads_);
  }
  for (std::thread& t : workers) t.join();
}

void WorkerDaemon::freeze() {
  frozen_.store(true, std::memory_order_release);
}

void WorkerDaemon::unfreeze() {
  frozen_.store(false, std::memory_order_release);
}

svc::ProfileStore WorkerDaemon::profiles() const {
  std::lock_guard lock(mutex_);
  return profiles_;
}

void WorkerDaemon::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::unique_ptr<TcpConn> conn = listener_->accept(0.25);
    if (conn == nullptr) continue;
    connections_accepted_.fetch_add(1);
    std::lock_guard lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      conn->cancel();
      return;
    }
    TcpConn* raw = conn.get();
    conns_.push_back(std::move(conn));
    threads_.emplace_back([this, raw] { serve(*raw); });
  }
}

void WorkerDaemon::serve(TcpConn& conn) {
  ConnPipeline pipe;
  std::thread executor([this, &pipe] { execute_loop(pipe); });
  std::thread sender([this, &conn, &pipe] { send_loop(conn, pipe); });

  const auto enqueue = [&pipe](MsgType type,
                               std::vector<std::uint8_t> payload) {
    {
      std::lock_guard lock(pipe.mutex);
      pipe.outbox.push_back({type, std::move(payload), std::nullopt});
    }
    pipe.cv.notify_all();
  };

  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_acquire)) {
    if (frozen_.load(std::memory_order_acquire)) {
      // Hung-process simulation: stay connected, answer nothing (the
      // executor and sender freeze on the same flag).
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    if (!conn.readable(0.25)) {
      if (conn.cancelled()) break;
      continue;  // idle; re-check stop/freeze flags
    }

    Frame frame;
    if (read_frame(conn, &frame) != FrameStatus::kOk) break;

    switch (frame.type) {
      case MsgType::kHello: {
        const auto msg = HelloMsg::decode(frame.payload);
        if (!msg) {
          alive = false;
          break;
        }
        HelloAckMsg ack;
        ack.daemon = options_.name;
        ack.concurrency = static_cast<std::uint32_t>(
            exec::ThreadPool::global().concurrency());
        enqueue(MsgType::kHelloAck, ack.encode());
        break;
      }
      case MsgType::kBeginRun: {
        const auto msg = BeginRunMsg::decode(frame.payload);
        if (!msg) {
          alive = false;
          break;
        }
        RunAckMsg ack;
        ack.run_id = msg->run_id;
        std::string error;
        std::shared_ptr<rt::Workload> workload =
            apps::make_workload(msg->spec, &error);
        if (workload != nullptr && !workload->supports_remote_execution()) {
          workload.reset();
          error = "workload does not support remote execution";
        }
        ack.ok = workload != nullptr;
        ack.error = error;
        {
          std::lock_guard lock(pipe.mutex);
          pipe.workload = std::move(workload);
          pipe.run_id = msg->run_id;
          pipe.tasks.clear();  // stale blocks from a superseded run
        }
        enqueue(MsgType::kRunAck, ack.encode());
        break;
      }
      case MsgType::kAssignBlock: {
        const auto msg = AssignBlockMsg::decode(frame.payload);
        if (!msg) {
          alive = false;
          break;
        }
        {
          std::lock_guard lock(pipe.mutex);
          pipe.tasks.push_back(*msg);
        }
        pipe.cv.notify_all();
        break;
      }
      case MsgType::kHeartbeat: {
        const auto msg = HeartbeatMsg::decode(frame.payload);
        if (!msg) {
          alive = false;
          break;
        }
        HeartbeatAckMsg ack;
        ack.sequence = msg->sequence;
        enqueue(MsgType::kHeartbeatAck, ack.encode());
        break;
      }
      case MsgType::kProfileSync: {
        const auto msg = ProfileSyncMsg::decode(frame.payload);
        if (!msg) {
          alive = false;
          break;
        }
        ProfileSyncMsg ack;
        {
          std::lock_guard lock(mutex_);
          svc::ProfileStore incoming;
          // A corrupt image is rejected wholesale; the ack still carries
          // this daemon's (unchanged) store.
          if (svc::ProfileStore::decode(msg->store_image, incoming) ==
              svc::StoreLoadStatus::kOk)
            profiles_.merge(incoming);
          ack.store_image = profiles_.encode();
        }
        enqueue(MsgType::kProfileSyncAck, ack.encode());
        break;
      }
      case MsgType::kShutdown:
      default:  // protocol violation poisons the connection
        alive = false;
        break;
    }
  }

  // Teardown: the executor exits first (it may push one final result),
  // then the sender drains whatever is left and exits.
  {
    std::lock_guard lock(pipe.mutex);
    pipe.closing = true;
  }
  pipe.cv.notify_all();
  executor.join();
  pipe.cv.notify_all();
  sender.join();
}

void WorkerDaemon::execute_loop(ConnPipeline& pipe) {
  std::unique_lock lock(pipe.mutex);
  while (true) {
    pipe.cv.wait(lock, [&] { return pipe.closing || !pipe.tasks.empty(); });
    if (pipe.closing) return;
    while (frozen_.load(std::memory_order_acquire) && !pipe.closing)
      pipe.cv.wait_for(lock, std::chrono::milliseconds(5));
    if (pipe.closing) return;
    if (pipe.tasks.empty()) continue;
    const AssignBlockMsg msg = pipe.tasks.front();
    pipe.tasks.pop_front();
    std::shared_ptr<rt::Workload> workload = pipe.workload;
    const std::uint64_t run_id = pipe.run_id;
    lock.unlock();

    BlockResultMsg result;
    result.run_id = msg.run_id;
    result.sequence = msg.sequence;
    result.begin = msg.begin;
    result.end = msg.end;
    if (workload == nullptr || msg.run_id != run_id) {
      result.error = "no active run for this block";
    } else if (msg.end > workload->total_grains() || msg.begin >= msg.end) {
      result.error = "block range out of bounds";
    } else {
      const auto begin = static_cast<std::size_t>(msg.begin);
      const auto end = static_cast<std::size_t>(msg.end);
      const Clock::time_point t_exec = Clock::now();
      workload->execute_cpu(begin, end);
      const double measured =
          std::chrono::duration<double>(Clock::now() - t_exec).count();
      stretch(t_exec, measured, options_.slowdown);
      result.exec_seconds =
          std::chrono::duration<double>(Clock::now() - t_exec).count();
      result.results.resize(workload->result_bytes(begin, end));
      workload->write_results(begin, end, result.results.data());
      result.ok = true;
      blocks_served_.fetch_add(1);
    }

    lock.lock();
    pipe.outbox.push_back(
        {MsgType::kBlockResult, {}, std::move(result)});
    pipe.cv.notify_all();
  }
}

void WorkerDaemon::send_loop(TcpConn& conn, ConnPipeline& pipe) {
  FrameScratch scratch;
  std::vector<std::uint8_t> body;  // reused encode buffer
  std::unique_lock lock(pipe.mutex);
  while (true) {
    pipe.cv.wait(lock, [&] { return pipe.closing || !pipe.outbox.empty(); });
    if (pipe.outbox.empty()) return;  // closing and fully drained
    while (frozen_.load(std::memory_order_acquire) && !pipe.closing)
      pipe.cv.wait_for(lock, std::chrono::milliseconds(5));
    if (pipe.outbox.empty()) continue;
    ConnPipeline::Outgoing out = std::move(pipe.outbox.front());
    pipe.outbox.pop_front();

    if (!out.result) {
      lock.unlock();
      if (!write_frame(conn, out.type, out.payload, scratch)) {
        conn.cancel();  // wake the reader so the connection tears down
        return;
      }
      lock.lock();
      continue;
    }

    // Coalesce a run of small results queued behind this one into one
    // batch frame; a large result always ships alone so a heavy payload
    // never delays a window of small acks.
    BlockResultBatchMsg batch;
    const bool small = out.result->results.size() <= kBatchableResultBytes;
    batch.results.push_back(std::move(*out.result));
    while (small && batch.results.size() < kMaxBatchedResults &&
           !pipe.outbox.empty() && pipe.outbox.front().result &&
           pipe.outbox.front().result->results.size() <=
               kBatchableResultBytes) {
      batch.results.push_back(std::move(*pipe.outbox.front().result));
      pipe.outbox.pop_front();
    }
    lock.unlock();

    bool sent = false;
    if (batch.results.size() == 1) {
      batch.results.front().encode_into(body);
      sent = write_frame(conn, MsgType::kBlockResult, body, scratch);
    } else {
      batch.encode_into(body);
      sent = write_frame(conn, MsgType::kBlockResultBatch, body, scratch);
      results_batched_.fetch_add(batch.results.size());
    }
    if (!sent) {
      conn.cancel();
      return;
    }
    lock.lock();
  }
}

}  // namespace plbhec::net
