#include "plbhec/net/workerd.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <optional>
#include <utility>

#include "plbhec/apps/registry.hpp"
#include "plbhec/common/contracts.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/kdisp/registry.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/rt/workload.hpp"

namespace plbhec::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Reader chunk: one recv's worth of inbound bytes. Small enough to live
/// on the reactor's stack, large enough that a window of AssignBlocks
/// arrives in one syscall.
constexpr std::size_t kRecvChunk = 64 * 1024;

/// Inbound buffer compaction threshold: once this many decoded bytes sit
/// in front of the parse offset, shift the tail down.
constexpr std::size_t kCompactBytes = 256 * 1024;

}  // namespace

/// One unit of executor work, in strict per-connection FIFO order.
/// BeginRun travels through the same queue as the blocks so a window of
/// stale AssignBlocks can never execute after the run that supersedes
/// them was acknowledged.
struct WorkerDaemon::Task {
  bool is_begin_run = false;
  BeginRunMsg begin;
  AssignBlockMsg block;
};

/// A finished executor task on its way back to the reactor.
struct WorkerDaemon::Done {
  std::shared_ptr<ConnState> conn;
  MsgType type = MsgType::kShutdown;
  std::vector<std::uint8_t> payload;        ///< control body (e.g. RunAck)
  std::optional<BlockResultMsg> result;     ///< block result (batchable)
};

/// Per-connection state. The socket and every buffer are reactor-owned;
/// the task queue and run context are shared with the executors under
/// exec_mutex_ (the run context is only ever touched by the single
/// executor currently serving this connection, so the mutex provides
/// ordering, not exclusion, for it).
struct WorkerDaemon::ConnState {
  std::unique_ptr<TcpConn> conn;

  // Reactor-only.
  std::vector<std::uint8_t> in;  ///< undecoded inbound bytes
  std::size_t in_off = 0;        ///< decoded prefix of `in`
  std::deque<std::vector<std::uint8_t>> outq;  ///< encoded frames to ship
  std::size_t out_off = 0;       ///< sent bytes of outq.front()
  bool want_write = false;       ///< EPOLLOUT currently armed
  bool in_epoll = false;
  bool dead = false;

  // Shared with executors (exec_mutex_).
  std::deque<Task> tasks;
  bool exec_running = false;
  bool exec_dead = false;  ///< connection closed; drop queued work

  // Run context (serving-executor only; see struct comment).
  std::shared_ptr<rt::Workload> workload;
  std::uint64_t run_id = 0;
};

WorkerDaemon::WorkerDaemon(WorkerDaemonOptions options)
    : options_(std::move(options)) {
  PLBHEC_EXPECTS(options_.slowdown >= 1.0);
  slowdown_.store(options_.slowdown, std::memory_order_relaxed);
  listener_ = TcpListener::bind_loopback(options_.port);
  PLBHEC_ASSERT(listener_ != nullptr);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  PLBHEC_ASSERT(epoll_fd_ >= 0);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  PLBHEC_ASSERT(wake_fd_ >= 0);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_->native_handle();
  PLBHEC_ASSERT(
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, ev.data.fd, &ev) == 0);
  ev.data.fd = wake_fd_;
  PLBHEC_ASSERT(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);

  reactor_thread_ = std::thread([this] { reactor_loop(); });
  const std::size_t lanes = std::max<std::size_t>(1, options_.executor_threads);
  executor_threads_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    executor_threads_.emplace_back([this] { executor_loop(); });
  }
}

WorkerDaemon::~WorkerDaemon() { stop(); }

std::uint16_t WorkerDaemon::port() const { return listener_->port(); }

void WorkerDaemon::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void WorkerDaemon::kill() {
  stopping_.store(true, std::memory_order_release);
  listener_->close();
  {
    // Synchronous cut so a caller returning from kill() immediately sees
    // coordinator I/O failing, exactly like the old thread-per-connection
    // daemon; the reactor finishes the bookkeeping when it wakes.
    std::lock_guard lock(mutex_);
    for (TcpConn* conn : conns_) conn->cancel();
  }
  exec_cv_.notify_all();
  wake();
}

void WorkerDaemon::stop() {
  kill();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  for (std::thread& t : executor_threads_) {
    if (t.joinable()) t.join();
  }
  executor_threads_.clear();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (options_.counters != nullptr &&
      !counters_published_.exchange(true, std::memory_order_acq_rel)) {
    const std::string prefix = "net." + options_.name + ".";
    obs::CounterRegistry& reg = *options_.counters;
    reg.set(prefix + "reactor.wakeups", reactor_wakeups_.load());
    reg.set(prefix + "reactor.frames_in", frames_received_.load());
    reg.set(prefix + "reactor.peak_connections", peak_connections_.load());
    reg.set(prefix + "connections_accepted", connections_accepted_.load());
    reg.set(prefix + "blocks_served", blocks_served_.load());
    reg.set(prefix + "results_batched", results_batched_.load());
    // This daemon's kernel-dispatch table (host ISA probe + per-kernel
    // selections): the per-worker observable the wire protocol never
    // carries.
    kdisp::KernelRegistry::instance().publish_counters(reg);
  }
}

void WorkerDaemon::freeze() {
  frozen_.store(true, std::memory_order_release);
  wake();
}

void WorkerDaemon::unfreeze() {
  frozen_.store(false, std::memory_order_release);
  exec_cv_.notify_all();
  wake();
}

svc::ProfileStore WorkerDaemon::profiles() const {
  std::lock_guard lock(mutex_);
  return profiles_;
}

// ---- reactor -------------------------------------------------------------

void WorkerDaemon::reactor_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool frozen_applied = false;

  while (!stopping_.load(std::memory_order_acquire)) {
    const int nready = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (nready < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; shutting down
    }
    reactor_wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_acquire)) break;

    // Drain the wake eventfd (its payload is just "look around").
    std::uint64_t drained = 0;
    while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
    }

    const bool frozen = frozen_.load(std::memory_order_acquire);
    if (frozen != frozen_applied) {
      apply_freeze(frozen);
      frozen_applied = frozen;
    }
    if (!frozen) drain_completions();

    for (int i = 0; i < nready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;
      if (fd == listener_->native_handle()) {
        accept_ready();
        continue;
      }
      const auto it = by_fd_.find(fd);
      if (it == by_fd_.end()) continue;  // closed earlier this round
      std::shared_ptr<ConnState> state = it->second;
      if (frozen || state->dead) continue;
      if ((events[i].events & EPOLLIN) != 0) handle_readable(state);
      if (!state->dead && (events[i].events & EPOLLOUT) != 0) {
        flush_writes(state);
      }
      if (!state->dead &&
          (events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(state);
      }
    }
  }

  // Teardown: cut and forget every connection (executors drop queued
  // work for dead connections on their own).
  std::vector<std::shared_ptr<ConnState>> all;
  all.reserve(by_fd_.size());
  for (auto& [fd, state] : by_fd_) all.push_back(state);
  for (const auto& state : all) close_conn(state);
  // epoll_fd_/wake_fd_ stay open: kill() or an executor completion may
  // still write the eventfd until stop() has joined everything; stop()
  // closes both after the joins.
}

void WorkerDaemon::accept_ready() {
  while (true) {
    std::unique_ptr<TcpConn> conn = listener_->accept(0.0);
    if (conn == nullptr) return;
    if (stopping_.load(std::memory_order_acquire)) {
      conn->cancel();
      return;
    }
    connections_accepted_.fetch_add(1);
    register_conn(std::move(conn));
  }
}

void WorkerDaemon::register_conn(std::unique_ptr<TcpConn> conn) {
  auto state = std::make_shared<ConnState>();
  const int fd = conn->native_handle();
  state->conn = std::move(conn);
  {
    std::lock_guard lock(mutex_);
    conns_.push_back(state->conn.get());
  }
  by_fd_[fd] = state;
  std::uint64_t peak = peak_connections_.load(std::memory_order_relaxed);
  while (by_fd_.size() > peak &&
         !peak_connections_.compare_exchange_weak(peak, by_fd_.size())) {
  }
  // While frozen, the connection exists but is not watched; unfreeze
  // re-arms everything via apply_freeze(false).
  if (!frozen_.load(std::memory_order_acquire)) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
      state->in_epoll = true;
    } else {
      close_conn(state);
    }
  }
}

void WorkerDaemon::close_conn(const std::shared_ptr<ConnState>& state) {
  if (state->dead) return;
  state->dead = true;
  const int fd = state->conn->native_handle();
  if (state->in_epoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    state->in_epoll = false;
  }
  state->conn->cancel();
  {
    std::lock_guard lock(mutex_);
    std::erase(conns_, state->conn.get());
  }
  {
    std::lock_guard lock(exec_mutex_);
    state->exec_dead = true;
    state->tasks.clear();
  }
  by_fd_.erase(fd);
}

void WorkerDaemon::apply_freeze(bool frozen) {
  for (auto& [fd, state] : by_fd_) {
    if (frozen) {
      if (state->in_epoll) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        state->in_epoll = false;
      }
    } else if (!state->in_epoll) {
      epoll_event ev{};
      ev.events = static_cast<std::uint32_t>(
          EPOLLIN | (state->want_write ? EPOLLOUT : 0));
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
        state->in_epoll = true;
      }
      // Bytes that arrived during the freeze are sitting in the kernel
      // buffer; level-triggered epoll reports them immediately.
    }
  }
  if (!frozen) exec_cv_.notify_all();
}

void WorkerDaemon::handle_readable(const std::shared_ptr<ConnState>& state) {
  while (true) {
    std::uint8_t chunk[kRecvChunk];
    const long n = state->conn->recv_nonblocking(chunk, sizeof(chunk));
    if (n > 0) {
      state->in.insert(state->in.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;  // drained
      continue;
    }
    if (n == 0) break;  // would block: kernel buffer empty
    close_conn(state);  // EOF or error
    return;
  }

  // Decode every complete frame in the buffer. decode_frame is a pure
  // parser: kIoError here simply means "truncated — wait for more
  // bytes"; any other failure is a poisoned stream.
  while (!state->dead) {
    const std::span<const std::uint8_t> rest(
        state->in.data() + state->in_off, state->in.size() - state->in_off);
    if (rest.empty()) break;
    Frame frame;
    std::size_t consumed = 0;
    const FrameStatus status = decode_frame(rest, &frame, &consumed);
    if (status == FrameStatus::kIoError) break;  // incomplete
    if (status != FrameStatus::kOk) {
      close_conn(state);  // framing cannot resynchronize
      return;
    }
    state->in_off += consumed;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    if (!process_frame(state, std::move(frame))) {
      close_conn(state);  // protocol violation poisons the connection
      return;
    }
  }
  if (state->dead) return;
  if (state->in_off == state->in.size()) {
    state->in.clear();
    state->in_off = 0;
  } else if (state->in_off >= kCompactBytes) {
    state->in.erase(state->in.begin(),
                    state->in.begin() +
                        static_cast<std::ptrdiff_t>(state->in_off));
    state->in_off = 0;
  }
}

bool WorkerDaemon::process_frame(const std::shared_ptr<ConnState>& state,
                                 Frame frame) {
  switch (frame.type) {
    case MsgType::kHello: {
      const auto msg = HelloMsg::decode(frame.payload);
      if (!msg) return false;
      HelloAckMsg ack;
      ack.daemon = options_.name;
      ack.concurrency = static_cast<std::uint32_t>(
          exec::ThreadPool::global().concurrency());
      enqueue_frame(state, MsgType::kHelloAck, ack.encode());
      return true;
    }
    case MsgType::kBeginRun: {
      const auto msg = BeginRunMsg::decode(frame.payload);
      if (!msg) return false;
      Task task;
      task.is_begin_run = true;
      task.begin = *msg;
      push_exec_task(state, std::move(task));
      return true;
    }
    case MsgType::kAssignBlock: {
      const auto msg = AssignBlockMsg::decode(frame.payload);
      if (!msg) return false;
      Task task;
      task.block = *msg;
      push_exec_task(state, std::move(task));
      return true;
    }
    case MsgType::kHeartbeat: {
      // Answered by the reactor itself: liveness never queues behind a
      // kernel, and a frozen daemon (interest removed) answers nothing.
      const auto msg = HeartbeatMsg::decode(frame.payload);
      if (!msg) return false;
      HeartbeatAckMsg ack;
      ack.sequence = msg->sequence;
      enqueue_frame(state, MsgType::kHeartbeatAck, ack.encode());
      return true;
    }
    case MsgType::kProfileSync: {
      const auto msg = ProfileSyncMsg::decode(frame.payload);
      if (!msg) return false;
      ProfileSyncMsg ack;
      {
        std::lock_guard lock(mutex_);
        svc::ProfileStore incoming;
        // A corrupt image is rejected wholesale; the ack still carries
        // this daemon's (unchanged) store.
        if (svc::ProfileStore::decode(msg->store_image, incoming) ==
            svc::StoreLoadStatus::kOk)
          profiles_.merge(incoming);
        ack.store_image = profiles_.encode();
      }
      enqueue_frame(state, MsgType::kProfileSyncAck, ack.encode());
      return true;
    }
    case MsgType::kShutdown:
    default:
      return false;
  }
}

void WorkerDaemon::push_exec_task(const std::shared_ptr<ConnState>& state,
                                  Task task) {
  {
    std::lock_guard lock(exec_mutex_);
    if (state->exec_dead) return;
    // A new run supersedes any blocks still queued for the old one (the
    // old reader cleared its task deque at BeginRun receipt; queue
    // position equals receipt order here, so this is the same cut).
    if (task.is_begin_run) state->tasks.clear();
    state->tasks.push_back(std::move(task));
    if (!state->exec_running) {
      state->exec_running = true;
      exec_ready_.push_back(state);
    }
  }
  exec_cv_.notify_one();
}

void WorkerDaemon::enqueue_frame(const std::shared_ptr<ConnState>& state,
                                 MsgType type,
                                 std::span<const std::uint8_t> payload) {
  if (state->dead) return;
  state->outq.push_back(encode_frame(type, payload));
  flush_writes(state);
}

void WorkerDaemon::flush_writes(const std::shared_ptr<ConnState>& state) {
  while (!state->outq.empty()) {
    const std::vector<std::uint8_t>& front = state->outq.front();
    const long n = state->conn->send_nonblocking(
        front.data() + state->out_off, front.size() - state->out_off);
    if (n < 0) {
      close_conn(state);
      return;
    }
    if (n == 0) break;  // kernel send buffer full; wait for EPOLLOUT
    state->out_off += static_cast<std::size_t>(n);
    if (state->out_off == front.size()) {
      state->outq.pop_front();
      state->out_off = 0;
    }
  }
  const bool want = !state->outq.empty();
  if (want != state->want_write) {
    state->want_write = want;
    update_interest(*state);
  }
}

void WorkerDaemon::update_interest(ConnState& state) {
  if (!state.in_epoll) return;
  epoll_event ev{};
  ev.events = static_cast<std::uint32_t>(
      EPOLLIN | (state.want_write ? EPOLLOUT : 0));
  ev.data.fd = state.conn->native_handle();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, ev.data.fd, &ev);
}

void WorkerDaemon::drain_completions() {
  std::vector<Done> batch;
  {
    std::lock_guard lock(done_mutex_);
    batch.swap(done_);
  }
  if (batch.empty()) return;

  // Ship in arrival order (per connection this equals execution order —
  // one executor serves a connection at a time). Runs of small block
  // results to the same connection coalesce into one batch frame, same
  // policy as the old per-connection sender.
  std::vector<std::uint8_t> body;
  std::size_t i = 0;
  while (i < batch.size()) {
    Done& done = batch[i];
    if (done.conn->dead) {
      ++i;
      continue;
    }
    if (!done.result) {
      enqueue_frame(done.conn, done.type, done.payload);
      ++i;
      continue;
    }
    if (done.result->results.size() > kBatchableResultBytes) {
      done.result->encode_into(body);
      enqueue_frame(done.conn, MsgType::kBlockResult, body);
      ++i;
      continue;
    }
    BlockResultBatchMsg group;
    group.results.push_back(std::move(*done.result));
    ++i;
    while (i < batch.size() && group.results.size() < kMaxBatchedResults &&
           batch[i].conn == done.conn && batch[i].result &&
           batch[i].result->results.size() <= kBatchableResultBytes) {
      group.results.push_back(std::move(*batch[i].result));
      ++i;
    }
    if (group.results.size() == 1) {
      group.results.front().encode_into(body);
      enqueue_frame(done.conn, MsgType::kBlockResult, body);
    } else {
      group.encode_into(body);
      enqueue_frame(done.conn, MsgType::kBlockResultBatch, body);
      results_batched_.fetch_add(group.results.size());
    }
  }
}

// ---- executors -----------------------------------------------------------

void WorkerDaemon::executor_loop() {
  std::unique_lock lock(exec_mutex_);
  while (true) {
    exec_cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_acquire) ||
             (!exec_ready_.empty() &&
              !frozen_.load(std::memory_order_acquire));
    });
    if (stopping_.load(std::memory_order_acquire)) return;
    std::shared_ptr<ConnState> state = std::move(exec_ready_.front());
    exec_ready_.pop_front();
    if (state->tasks.empty() || state->exec_dead) {
      state->exec_running = false;
      continue;
    }
    Task task = std::move(state->tasks.front());
    state->tasks.pop_front();
    lock.unlock();

    run_task(state, task);

    lock.lock();
    if (!state->tasks.empty() && !state->exec_dead) {
      exec_ready_.push_back(state);  // round-robin across connections
      exec_cv_.notify_one();
    } else {
      state->exec_running = false;
    }
  }
}

void WorkerDaemon::run_task(const std::shared_ptr<ConnState>& state,
                            Task& task) {
  Done done;
  done.conn = state;

  if (task.is_begin_run) {
    const BeginRunMsg& msg = task.begin;
    RunAckMsg ack;
    ack.run_id = msg.run_id;
    std::string error;
    std::shared_ptr<rt::Workload> workload =
        apps::make_workload(msg.spec, &error);
    if (workload != nullptr && !workload->supports_remote_execution()) {
      workload.reset();
      error = "workload does not support remote execution";
    }
    ack.ok = workload != nullptr;
    ack.error = error;
    state->workload = std::move(workload);
    state->run_id = msg.run_id;
    done.type = MsgType::kRunAck;
    done.payload = ack.encode();
  } else {
    const AssignBlockMsg& msg = task.block;
    BlockResultMsg result;
    result.run_id = msg.run_id;
    result.sequence = msg.sequence;
    result.begin = msg.begin;
    result.end = msg.end;
    const std::shared_ptr<rt::Workload>& workload = state->workload;
    if (workload == nullptr || msg.run_id != state->run_id) {
      result.error = "no active run for this block";
    } else if (msg.end > workload->total_grains() || msg.begin >= msg.end) {
      result.error = "block range out of bounds";
    } else {
      const auto begin = static_cast<std::size_t>(msg.begin);
      const auto end = static_cast<std::size_t>(msg.end);
      const Clock::time_point t_exec = Clock::now();
      workload->execute_cpu(begin, end);
      const double measured =
          std::chrono::duration<double>(Clock::now() - t_exec).count();
      stretch_interruptible(measured);
      result.exec_seconds =
          std::chrono::duration<double>(Clock::now() - t_exec).count();
      result.results.resize(workload->result_bytes(begin, end));
      workload->write_results(begin, end, result.results.data());
      result.ok = true;
      blocks_served_.fetch_add(1);
    }
    done.result = std::move(result);
  }

  {
    std::lock_guard lock(done_mutex_);
    done_.push_back(std::move(done));
  }
  wake();
}

void WorkerDaemon::set_slowdown(double slowdown) {
  PLBHEC_EXPECTS(slowdown >= 1.0);
  slowdown_.store(slowdown, std::memory_order_relaxed);
}

/// Heterogeneity emulation: pads a measured kernel to `slowdown` times
/// its length. Unlike the old busy-stretch (a yield spin), this is a
/// timed condition wait — the same wall clock the G_p/F_p fits see,
/// without burning an executor lane, and kill()/stop() interrupt it.
void WorkerDaemon::stretch_interruptible(double measured_seconds) {
  const double slowdown = slowdown_.load(std::memory_order_relaxed);
  if (slowdown <= 1.0) return;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             measured_seconds * (slowdown - 1.0)));
  std::unique_lock lock(exec_mutex_);
  exec_cv_.wait_until(lock, deadline, [&] {
    return stopping_.load(std::memory_order_acquire);
  });
}

}  // namespace plbhec::net
