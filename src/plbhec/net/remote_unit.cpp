#include "plbhec/net/remote_unit.hpp"

#include <algorithm>
#include <chrono>

#include "plbhec/common/contracts.hpp"
#include "plbhec/net/wire.hpp"

namespace plbhec::net {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

RemoteUnit::RemoteUnit(RemoteUnitOptions options)
    : options_(std::move(options)) {
  PLBHEC_EXPECTS(options_.heartbeat_interval_seconds > 0.0);
  PLBHEC_EXPECTS(options_.max_missed_heartbeats > 0);
}

RemoteUnit::~RemoteUnit() { end_run(); }

rt::UnitInfo RemoteUnit::describe() const {
  rt::UnitInfo info;
  info.name = options_.name;
  info.kind = rt::ProcKind::kCpu;
  info.machine = options_.machine;
  return info;
}

std::unique_ptr<TcpConn> RemoteUnit::dial(double timeout_seconds) {
  std::unique_ptr<TcpConn> conn = TcpConn::connect(
      options_.host, options_.port,
      std::min(timeout_seconds, options_.connect_timeout_seconds));
  if (conn == nullptr) return nullptr;

  HelloMsg hello;
  hello.node = "coordinator";
  if (!write_frame(*conn, MsgType::kHello, hello.encode())) return nullptr;
  Frame frame;
  if (read_frame(*conn, &frame, timeout_seconds) != FrameStatus::kOk ||
      frame.type != MsgType::kHelloAck)
    return nullptr;
  const auto ack = HelloAckMsg::decode(frame.payload);
  if (!ack || ack->protocol != kProtocolVersion) return nullptr;
  return conn;
}

bool RemoteUnit::start_run_on(TcpConn& conn) {
  BeginRunMsg begin;
  begin.run_id = run_id_;
  begin.spec = spec_;
  if (!write_frame(conn, MsgType::kBeginRun, begin.encode())) return false;
  Frame frame;
  if (read_frame(conn, &frame, options_.control_timeout_seconds) !=
          FrameStatus::kOk ||
      frame.type != MsgType::kRunAck)
    return false;
  const auto ack = RunAckMsg::decode(frame.payload);
  return ack && ack->ok && ack->run_id == run_id_;
}

bool RemoteUnit::begin_run(rt::Workload& workload) {
  end_run();  // defensive: retire any previous run's monitor/connection
  spec_ = workload.remote_spec();
  if (spec_.empty()) return false;  // workload cannot execute remotely
  ++run_id_;
  demoted_.store(false, std::memory_order_release);

  std::unique_ptr<TcpConn> conn = dial(options_.control_timeout_seconds);
  if (conn == nullptr || !start_run_on(*conn)) return false;
  {
    std::lock_guard lock(conn_mutex_);
    data_conn_ = std::move(conn);
  }

  monitor_stop_.store(false, std::memory_order_release);
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  return true;
}

void RemoteUnit::end_run() {
  monitor_stop_.store(true, std::memory_order_release);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  std::shared_ptr<TcpConn> conn;
  {
    std::lock_guard lock(conn_mutex_);
    conn = std::move(data_conn_);
  }
  if (conn != nullptr && !conn->cancelled())
    (void)write_frame(*conn, MsgType::kShutdown, {});
}

RemoteUnit::BlockOutcome RemoteUnit::try_block(rt::Workload& workload,
                                               std::size_t begin,
                                               std::size_t end,
                                               rt::BlockTiming& timing) {
  std::shared_ptr<TcpConn> conn;
  {
    std::lock_guard lock(conn_mutex_);
    conn = data_conn_;
  }
  if (conn == nullptr || conn->cancelled()) return BlockOutcome::kIoError;

  AssignBlockMsg assign;
  assign.run_id = run_id_;
  assign.sequence = reconnects_.load() + 1;  // changes across reconnects
  assign.begin = begin;
  assign.end = end;
  const std::vector<std::uint8_t> payload = assign.encode();

  const Clock::time_point t_send = Clock::now();
  if (!write_frame(*conn, MsgType::kAssignBlock, payload))
    return BlockOutcome::kIoError;
  PLBHEC_OBS_RECORD(
      options_.sink,
      {seconds_between(t_send, Clock::now()), obs::EventKind::kMsgSent,
       options_.event_unit, 0.0, 0.0,
       kFrameHeaderBytes + payload.size() + kFrameTrailerBytes,
       static_cast<std::uint64_t>(MsgType::kAssignBlock)});

  // Block execution has no deadline of its own — the heartbeat monitor
  // cancels the connection if the daemon dies mid-block.
  Frame frame;
  if (read_frame(*conn, &frame) != FrameStatus::kOk)
    return BlockOutcome::kIoError;
  const Clock::time_point t_recv = Clock::now();
  if (frame.type != MsgType::kBlockResult) return BlockOutcome::kFatal;
  const auto result = BlockResultMsg::decode(frame.payload);
  if (!result) return BlockOutcome::kFatal;
  PLBHEC_OBS_RECORD(
      options_.sink,
      {seconds_between(t_send, t_recv), obs::EventKind::kMsgReceived,
       options_.event_unit, 0.0, 0.0,
       kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes,
       static_cast<std::uint64_t>(MsgType::kBlockResult)});

  // A daemon-side refusal (bad spec, bad range) is a configuration error
  // a reconnect cannot fix.
  if (!result->ok || result->begin != begin || result->end != end)
    return BlockOutcome::kFatal;
  if (result->results.size() != workload.result_bytes(begin, end))
    return BlockOutcome::kFatal;
  workload.read_results(begin, end, result->results.data());

  // The wall time of the round-trip minus the daemon's kernel time is
  // the transfer cost the scheduler's G_p(x) fit learns from.
  const double wall = seconds_between(t_send, t_recv);
  timing.exec_seconds = std::min(result->exec_seconds, wall);
  timing.transfer_seconds = std::max(0.0, wall - timing.exec_seconds);
  return BlockOutcome::kOk;
}

bool RemoteUnit::reconnect() {
  double backoff = options_.backoff_initial_seconds;
  for (std::size_t attempt = 1; attempt <= options_.max_reconnect_attempts;
       ++attempt) {
    if (demoted()) return false;
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    reconnects_.fetch_add(1);
    std::unique_ptr<TcpConn> conn = dial(options_.control_timeout_seconds);
    const bool ok = conn != nullptr && start_run_on(*conn);
    PLBHEC_OBS_RECORD(options_.sink,
                      {0.0, obs::EventKind::kReconnect, options_.event_unit,
                       backoff, 0.0, attempt, ok ? 1u : 0u});
    if (ok) {
      std::lock_guard lock(conn_mutex_);
      data_conn_ = std::move(conn);
      return true;
    }
    backoff = std::min(backoff * 2.0, options_.backoff_max_seconds);
  }
  return false;
}

bool RemoteUnit::execute(rt::Workload& workload, std::size_t begin,
                         std::size_t end, rt::BlockTiming& timing) {
  while (true) {
    if (demoted()) return false;
    switch (try_block(workload, begin, end, timing)) {
      case BlockOutcome::kOk:
        return true;
      case BlockOutcome::kFatal:
        demoted_.store(true, std::memory_order_release);
        return false;
      case BlockOutcome::kIoError:
        if (!reconnect()) {
          demoted_.store(true, std::memory_order_release);
          return false;
        }
        break;  // retry the block on the fresh connection
    }
  }
}

void RemoteUnit::heartbeat_loop() {
  std::unique_ptr<TcpConn> conn;  // dedicated liveness connection
  std::uint64_t sequence = 0;
  std::size_t missed = 0;
  const double interval = options_.heartbeat_interval_seconds;

  while (!monitor_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    if (monitor_stop_.load(std::memory_order_acquire)) return;

    bool alive = false;
    if (conn == nullptr) conn = dial(interval);
    if (conn != nullptr) {
      HeartbeatMsg hb;
      hb.sequence = ++sequence;
      Frame frame;
      if (write_frame(*conn, MsgType::kHeartbeat, hb.encode()) &&
          read_frame(*conn, &frame, interval) == FrameStatus::kOk &&
          frame.type == MsgType::kHeartbeatAck) {
        const auto ack = HeartbeatAckMsg::decode(frame.payload);
        alive = ack && ack->sequence == hb.sequence;
      }
      if (!alive) conn.reset();  // stale acks would desync; redial next tick
    }

    if (alive) {
      missed = 0;
      continue;
    }
    ++missed;
    heartbeats_missed_.fetch_add(1);
    PLBHEC_OBS_RECORD(options_.sink,
                      {0.0, obs::EventKind::kHeartbeatMissed,
                       options_.event_unit,
                       static_cast<double>(missed) * interval, 0.0, missed,
                       sequence});
    if (missed >= options_.max_missed_heartbeats) {
      // Declare the worker dead: demote and cut the data connection so a
      // blocked BlockResult wait fails now and the engine requeues.
      demoted_.store(true, std::memory_order_release);
      std::lock_guard lock(conn_mutex_);
      if (data_conn_ != nullptr) data_conn_->cancel();
      return;
    }
  }
}

bool RemoteUnit::sync_profiles(svc::ProfileStore& store) {
  std::unique_ptr<TcpConn> conn = dial(options_.control_timeout_seconds);
  if (conn == nullptr) return false;
  ProfileSyncMsg msg;
  msg.store_image = store.encode();
  if (!write_frame(*conn, MsgType::kProfileSync, msg.encode())) return false;
  Frame frame;
  if (read_frame(*conn, &frame, options_.control_timeout_seconds) !=
          FrameStatus::kOk ||
      frame.type != MsgType::kProfileSyncAck)
    return false;
  const auto ack = ProfileSyncMsg::decode(frame.payload);
  if (!ack) return false;
  svc::ProfileStore remote;
  if (svc::ProfileStore::decode(ack->store_image, remote) !=
      svc::StoreLoadStatus::kOk)
    return false;
  store.merge(remote);
  (void)write_frame(*conn, MsgType::kShutdown, {});
  return true;
}

}  // namespace plbhec::net
