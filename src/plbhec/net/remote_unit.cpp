#include "plbhec/net/remote_unit.hpp"

#include <algorithm>
#include <chrono>

#include "plbhec/common/contracts.hpp"
#include "plbhec/net/wire.hpp"
#include "plbhec/obs/counters.hpp"

namespace plbhec::net {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

RemoteUnit::RemoteUnit(RemoteUnitOptions options)
    : options_(std::move(options)) {
  PLBHEC_EXPECTS(options_.heartbeat_interval_seconds > 0.0);
  PLBHEC_EXPECTS(options_.max_missed_heartbeats > 0);
}

RemoteUnit::~RemoteUnit() { end_run(); }

rt::UnitInfo RemoteUnit::describe() const {
  rt::UnitInfo info;
  info.name = options_.name;
  info.kind = rt::ProcKind::kCpu;
  info.machine = options_.machine;
  return info;
}

std::unique_ptr<TcpConn> RemoteUnit::dial(double timeout_seconds) {
  std::unique_ptr<TcpConn> conn = TcpConn::connect(
      options_.host, options_.port,
      std::min(timeout_seconds, options_.connect_timeout_seconds));
  if (conn == nullptr) return nullptr;

  HelloMsg hello;
  hello.node = "coordinator";
  if (!write_frame(*conn, MsgType::kHello, hello.encode())) return nullptr;
  Frame frame;
  if (read_frame(*conn, &frame, timeout_seconds) != FrameStatus::kOk ||
      frame.type != MsgType::kHelloAck)
    return nullptr;
  const auto ack = HelloAckMsg::decode(frame.payload);
  if (!ack || ack->protocol != kProtocolVersion) return nullptr;
  return conn;
}

bool RemoteUnit::start_run_on(TcpConn& conn) {
  BeginRunMsg begin;
  begin.run_id = run_id_;
  begin.spec = spec_;
  if (!write_frame(conn, MsgType::kBeginRun, begin.encode())) return false;
  Frame frame;
  if (read_frame(conn, &frame, options_.control_timeout_seconds) !=
          FrameStatus::kOk ||
      frame.type != MsgType::kRunAck)
    return false;
  const auto ack = RunAckMsg::decode(frame.payload);
  return ack && ack->ok && ack->run_id == run_id_;
}

bool RemoteUnit::begin_run(rt::Workload& workload) {
  end_run();  // defensive: retire any previous run's monitor/connection
  spec_ = workload.remote_spec();
  if (spec_.empty()) return false;  // workload cannot execute remotely
  ++run_id_;
  demoted_.store(false, std::memory_order_release);

  std::unique_ptr<TcpConn> conn = dial(options_.control_timeout_seconds);
  if (conn == nullptr || !start_run_on(*conn)) return false;
  {
    std::lock_guard lock(conn_mutex_);
    data_conn_ = std::move(conn);
  }

  monitor_stop_.store(false, std::memory_order_release);
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
  return true;
}

void RemoteUnit::end_run() {
  monitor_stop_.store(true, std::memory_order_release);
  wait_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  std::shared_ptr<TcpConn> conn;
  {
    std::lock_guard lock(conn_mutex_);
    conn = std::move(data_conn_);
  }
  if (conn != nullptr && !conn->cancelled())
    (void)write_frame(*conn, MsgType::kShutdown, {});
}

RemoteUnit::BlockOutcome RemoteUnit::try_block(rt::Workload& workload,
                                               std::size_t begin,
                                               std::size_t end,
                                               rt::BlockTiming& timing) {
  std::shared_ptr<TcpConn> conn;
  {
    std::lock_guard lock(conn_mutex_);
    conn = data_conn_;
  }
  if (conn == nullptr || conn->cancelled()) return BlockOutcome::kIoError;

  AssignBlockMsg assign;
  assign.run_id = run_id_;
  assign.sequence = ++next_sequence_;
  assign.begin = begin;
  assign.end = end;
  const std::vector<std::uint8_t> payload = assign.encode();

  const Clock::time_point t_send = Clock::now();
  if (!write_frame(*conn, MsgType::kAssignBlock, payload))
    return BlockOutcome::kIoError;
  PLBHEC_OBS_RECORD(
      options_.sink,
      {seconds_between(t_send, Clock::now()), obs::EventKind::kMsgSent,
       options_.event_unit, 0.0, 0.0,
       kFrameHeaderBytes + payload.size() + kFrameTrailerBytes,
       static_cast<std::uint64_t>(MsgType::kAssignBlock)});

  // Block execution has no deadline of its own — the heartbeat monitor
  // cancels the connection if the daemon dies mid-block.
  Frame frame;
  if (read_frame(*conn, &frame) != FrameStatus::kOk)
    return BlockOutcome::kIoError;
  const Clock::time_point t_recv = Clock::now();
  if (frame.type != MsgType::kBlockResult) return BlockOutcome::kFatal;
  const auto result = BlockResultMsg::decode(frame.payload);
  if (!result) return BlockOutcome::kFatal;
  PLBHEC_OBS_RECORD(
      options_.sink,
      {seconds_between(t_send, t_recv), obs::EventKind::kMsgReceived,
       options_.event_unit, 0.0, 0.0,
       kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes,
       static_cast<std::uint64_t>(MsgType::kBlockResult)});

  // A daemon-side refusal (bad spec, bad range) is a configuration error
  // a reconnect cannot fix.
  if (!result->ok || result->sequence != assign.sequence ||
      result->begin != begin || result->end != end)
    return BlockOutcome::kFatal;
  if (result->results.size() != workload.result_bytes(begin, end))
    return BlockOutcome::kFatal;
  workload.read_results(begin, end, result->results.data());

  // The wall time of the round-trip minus the daemon's kernel time is
  // the transfer cost the scheduler's G_p(x) fit learns from.
  const double wall = seconds_between(t_send, t_recv);
  timing.exec_seconds = std::min(result->exec_seconds, wall);
  timing.transfer_seconds = std::max(0.0, wall - timing.exec_seconds);
  return BlockOutcome::kOk;
}

RemoteUnit::BlockOutcome RemoteUnit::try_pipelined(rt::Workload& workload,
                                                   std::size_t begin,
                                                   std::size_t end,
                                                   rt::BlockTiming& timing) {
  std::shared_ptr<TcpConn> conn;
  {
    std::lock_guard lock(conn_mutex_);
    conn = data_conn_;
  }
  if (conn == nullptr || conn->cancelled()) return BlockOutcome::kIoError;

  const std::size_t depth = options_.pipeline_depth;
  const std::size_t grains = end - begin;
  const std::size_t min_chunk =
      std::max<std::size_t>(1, options_.min_chunk_grains);
  // Up to two chunks per window slot, so a refill is always ready the
  // moment a result frees a slot; execute() guarantees >= 2 chunks fit.
  const std::size_t chunks = std::min(2 * depth, grains / min_chunk);

  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<std::uint8_t> results;
    double exec_seconds = 0.0;
    double wire_seconds = 0.0;
    bool done = false;
  };
  std::vector<Chunk> plan(chunks);
  const std::size_t chunk_base = grains / chunks;
  std::size_t extra = grains % chunks;
  std::size_t cursor = begin;
  for (Chunk& c : plan) {
    c.begin = cursor;
    c.end = cursor + chunk_base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    cursor = c.end;
  }
  const std::uint64_t base_seq = next_sequence_ + 1;
  next_sequence_ += chunks;

  std::size_t completed = 0;
  std::size_t in_flight = 0;
  bool fatal = false;
  // Buffers one chunk result; nothing touches `workload` until every
  // chunk arrived, so any failure exit leaves it untouched and the
  // engine can requeue the whole [begin, end) range.
  const auto accept = [&](BlockResultMsg&& entry, double wire_share) {
    if (entry.run_id != run_id_ || entry.sequence < base_seq ||
        entry.sequence >= base_seq + chunks) {
      fatal = true;
      return;
    }
    Chunk& c = plan[static_cast<std::size_t>(entry.sequence - base_seq)];
    if (c.done || !entry.ok || entry.begin != c.begin || entry.end != c.end ||
        entry.results.size() != workload.result_bytes(c.begin, c.end)) {
      fatal = true;
      return;
    }
    c.results = std::move(entry.results);
    c.exec_seconds = entry.exec_seconds;
    c.wire_seconds += wire_share;
    c.done = true;
    ++completed;
    --in_flight;
  };

  const Clock::time_point t_start = Clock::now();
  // Double-buffered serialization: the frame body of chunk k+1 is
  // encoded before chunk k hits the wire, so encode overlaps send.
  std::vector<std::uint8_t> bodies[2];
  FrameScratch scratch;
  std::size_t next_send = 0;
  std::size_t encoded = 0;
  const auto encode_chunk = [&](std::size_t i) {
    AssignBlockMsg assign;
    assign.run_id = run_id_;
    assign.sequence = base_seq + i;
    assign.begin = plan[i].begin;
    assign.end = plan[i].end;
    assign.encode_into(bodies[i & 1]);
  };

  while (completed < chunks) {
    while (in_flight < depth && next_send < chunks) {
      if (encoded == next_send) encode_chunk(encoded++);
      if (encoded == next_send + 1 && encoded < chunks)
        encode_chunk(encoded++);
      const std::vector<std::uint8_t>& body = bodies[next_send & 1];
      const Clock::time_point t_send = Clock::now();
      if (!write_frame(*conn, MsgType::kAssignBlock, body, scratch))
        return BlockOutcome::kIoError;
      plan[next_send].wire_seconds += seconds_between(t_send, Clock::now());
      PLBHEC_OBS_RECORD(
          options_.sink,
          {seconds_between(t_send, Clock::now()), obs::EventKind::kMsgSent,
           options_.event_unit, 0.0, 0.0,
           kFrameHeaderBytes + body.size() + kFrameTrailerBytes,
           static_cast<std::uint64_t>(MsgType::kAssignBlock)});
      ++next_send;
      ++in_flight;
      wire_stats_.chunks_pipelined += 1;
      wire_stats_.inflight_peak =
          std::max<std::uint64_t>(wire_stats_.inflight_peak, in_flight);
    }

    // One result frame — a single chunk or a batch, in any order. No
    // deadline of its own: the heartbeat monitor cancels the connection
    // if the daemon dies with chunks in flight.
    Frame frame;
    FrameReadTiming io;
    if (read_frame(*conn, &frame, -1.0, &io) != FrameStatus::kOk)
      return BlockOutcome::kIoError;
    PLBHEC_OBS_RECORD(
        options_.sink,
        {io.wait_seconds + io.drain_seconds, obs::EventKind::kMsgReceived,
         options_.event_unit, 0.0, 0.0,
         kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes,
         static_cast<std::uint64_t>(frame.type)});
    if (frame.type == MsgType::kBlockResult) {
      auto result = BlockResultMsg::decode(frame.payload);
      if (!result) return BlockOutcome::kFatal;
      accept(std::move(*result), io.drain_seconds);
    } else if (frame.type == MsgType::kBlockResultBatch) {
      auto batch = BlockResultBatchMsg::decode(frame.payload);
      if (!batch) return BlockOutcome::kFatal;
      // Apportion the frame's drain time by encoded-size share so the
      // per-chunk wire costs still sum to the measured drain.
      double total_weight = 0.0;
      for (const BlockResultMsg& r : batch->results)
        total_weight += static_cast<double>(r.results.size()) + 64.0;
      wire_stats_.batched_results += batch->results.size();
      for (BlockResultMsg& r : batch->results) {
        const double share =
            (static_cast<double>(r.results.size()) + 64.0) / total_weight;
        accept(std::move(r), io.drain_seconds * share);
      }
    } else {
      return BlockOutcome::kFatal;
    }
    if (fatal) return BlockOutcome::kFatal;
  }

  // Every chunk arrived: apply all results (all-or-nothing contract).
  for (const Chunk& c : plan)
    workload.read_results(c.begin, c.end, c.results.data());

  double exec_total = 0.0;
  double wire_total = 0.0;
  for (const Chunk& c : plan) {
    exec_total += c.exec_seconds;
    wire_total += c.wire_seconds;
  }
  const double wall = seconds_between(t_start, Clock::now());
  // Unlike the sync path, transfer is measured per chunk (send + result
  // drain), not inferred as wall - exec: under overlap that difference
  // no longer equals the wire cost.
  timing.exec_seconds = std::min(exec_total, wall);
  timing.transfer_seconds = std::clamp(wire_total, 0.0, wall);
  timing.wall_seconds = wall;

  const double lo = std::min(timing.transfer_seconds, timing.exec_seconds);
  if (lo > 0.0) {
    const double serial = timing.transfer_seconds + timing.exec_seconds;
    wire_stats_.overlap_saved_seconds += std::clamp(serial - wall, 0.0, lo);
    wire_stats_.overlap_floor_seconds += lo;
  }
  return BlockOutcome::kOk;
}

double RemoteUnit::overlap_fraction() const {
  if (wire_stats_.overlap_floor_seconds <= 0.0) return 0.0;
  return std::clamp(
      wire_stats_.overlap_saved_seconds / wire_stats_.overlap_floor_seconds,
      0.0, 1.0);
}

void RemoteUnit::publish_counters(obs::CounterRegistry& registry) const {
  const std::string prefix = "net." + options_.name + ".";
  registry.set(prefix + "chunks_pipelined", wire_stats_.chunks_pipelined);
  registry.set(prefix + "batched_results", wire_stats_.batched_results);
  registry.set(prefix + "inflight_peak", wire_stats_.inflight_peak);
  registry.set(prefix + "overlap_milli",
               static_cast<std::uint64_t>(overlap_fraction() * 1000.0 + 0.5));
  registry.set(prefix + "reconnects", reconnects_.load());
  registry.set(prefix + "heartbeats_missed", heartbeats_missed_.load());
}

void RemoteUnit::interruptible_sleep(double seconds, bool wake_on_demote) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  std::unique_lock lock(wait_mutex_);
  wait_cv_.wait_until(lock, deadline, [&] {
    return monitor_stop_.load(std::memory_order_acquire) ||
           (wake_on_demote && demoted_.load(std::memory_order_acquire));
  });
}

bool RemoteUnit::reconnect() {
  double backoff = options_.backoff_initial_seconds;
  for (std::size_t attempt = 1; attempt <= options_.max_reconnect_attempts;
       ++attempt) {
    if (demoted()) return false;
    interruptible_sleep(backoff, /*wake_on_demote=*/true);
    if (demoted()) return false;
    reconnects_.fetch_add(1);
    std::unique_ptr<TcpConn> conn = dial(options_.control_timeout_seconds);
    const bool ok = conn != nullptr && start_run_on(*conn);
    PLBHEC_OBS_RECORD(options_.sink,
                      {0.0, obs::EventKind::kReconnect, options_.event_unit,
                       backoff, 0.0, attempt, ok ? 1u : 0u});
    if (ok) {
      std::lock_guard lock(conn_mutex_);
      data_conn_ = std::move(conn);
      return true;
    }
    backoff = std::min(backoff * 2.0, options_.backoff_max_seconds);
  }
  return false;
}

bool RemoteUnit::execute(rt::Workload& workload, std::size_t begin,
                         std::size_t end, rt::BlockTiming& timing) {
  const std::size_t min_chunk =
      std::max<std::size_t>(1, options_.min_chunk_grains);
  const bool pipelined =
      options_.pipeline_depth > 1 && (end - begin) / min_chunk >= 2;
  while (true) {
    if (demoted()) return false;
    switch (pipelined ? try_pipelined(workload, begin, end, timing)
                      : try_block(workload, begin, end, timing)) {
      case BlockOutcome::kOk:
        return true;
      case BlockOutcome::kFatal:
        demoted_.store(true, std::memory_order_release);
        return false;
      case BlockOutcome::kIoError:
        if (!reconnect()) {
          demoted_.store(true, std::memory_order_release);
          return false;
        }
        break;  // retry the block on the fresh connection
    }
  }
}

void RemoteUnit::heartbeat_loop() {
  std::unique_ptr<TcpConn> conn;  // dedicated liveness connection
  std::uint64_t sequence = 0;
  std::size_t missed = 0;
  const double interval = options_.heartbeat_interval_seconds;

  while (!monitor_stop_.load(std::memory_order_acquire)) {
    // Not demote-woken: after a self-demotion this loop is the one that
    // already returned; end_run() is the only legitimate interrupter.
    interruptible_sleep(interval, /*wake_on_demote=*/false);
    if (monitor_stop_.load(std::memory_order_acquire)) return;

    bool alive = false;
    if (conn == nullptr) conn = dial(interval);
    if (conn != nullptr) {
      HeartbeatMsg hb;
      hb.sequence = ++sequence;
      Frame frame;
      if (write_frame(*conn, MsgType::kHeartbeat, hb.encode()) &&
          read_frame(*conn, &frame, interval) == FrameStatus::kOk &&
          frame.type == MsgType::kHeartbeatAck) {
        const auto ack = HeartbeatAckMsg::decode(frame.payload);
        alive = ack && ack->sequence == hb.sequence;
      }
      if (!alive) conn.reset();  // stale acks would desync; redial next tick
    }

    if (alive) {
      missed = 0;
      continue;
    }
    ++missed;
    heartbeats_missed_.fetch_add(1);
    PLBHEC_OBS_RECORD(options_.sink,
                      {0.0, obs::EventKind::kHeartbeatMissed,
                       options_.event_unit,
                       static_cast<double>(missed) * interval, 0.0, missed,
                       sequence});
    if (missed >= options_.max_missed_heartbeats) {
      // Declare the worker dead: demote and cut the data connection so a
      // blocked BlockResult wait fails now and the engine requeues.
      demoted_.store(true, std::memory_order_release);
      wait_cv_.notify_all();  // a reconnect backoff in progress gives up now
      std::lock_guard lock(conn_mutex_);
      if (data_conn_ != nullptr) data_conn_->cancel();
      return;
    }
  }
}

bool RemoteUnit::sync_profiles(svc::ProfileStore& store) {
  std::unique_ptr<TcpConn> conn = dial(options_.control_timeout_seconds);
  if (conn == nullptr) return false;
  ProfileSyncMsg msg;
  msg.store_image = store.encode();
  if (!write_frame(*conn, MsgType::kProfileSync, msg.encode())) return false;
  Frame frame;
  if (read_frame(*conn, &frame, options_.control_timeout_seconds) !=
          FrameStatus::kOk ||
      frame.type != MsgType::kProfileSyncAck)
    return false;
  const auto ack = ProfileSyncMsg::decode(frame.payload);
  if (!ack) return false;
  svc::ProfileStore remote;
  if (svc::ProfileStore::decode(ack->store_image, remote) !=
      svc::StoreLoadStatus::kOk)
    return false;
  store.merge(remote);
  (void)write_frame(*conn, MsgType::kShutdown, {});
  return true;
}

}  // namespace plbhec::net
