#pragma once
/// \file wire.hpp
/// Length-prefixed binary framing and message codecs for the cluster
/// transport. Every frame is
///
///   +0   magic      8 bytes  "PLBHECNT"
///   +8   version    u32      kProtocolVersion
///   +12  type       u8       MsgType
///   +13  payload    u64      byte length of the payload that follows
///   +21  payload    ...      message body (common::ByteWriter encoding)
///   end  checksum   u64      FNV-1a 64 over the payload bytes
///
/// Decoding is defensive in the same style as svc/profile_store.cpp: a
/// reader rejects — without crashing and without partially applying —
/// truncated frames, wrong magic, version skew, unknown types, oversized
/// payloads and checksum mismatches. A bad frame poisons the connection
/// (framing cannot resynchronize mid-stream), so readers treat anything
/// but kOk as a dead link.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "plbhec/net/socket.hpp"

namespace plbhec::net {

/// v2 added kBlockResultBatch (coalesced small results from the daemon's
/// pipelined sender). Framing rejects version skew outright, so both
/// ends must upgrade together — acceptable for a research transport.
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 1 + 8;
inline constexpr std::size_t kFrameTrailerBytes = 8;
/// Caps a frame's payload; a block of 4096 matmul rows at n=4096 is
/// ~128 MiB, so 256 MiB leaves headroom without letting a corrupt length
/// field allocate the host away.
inline constexpr std::size_t kMaxPayloadBytes = 256u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,        ///< coordinator -> daemon: protocol handshake
  kHelloAck,         ///< daemon -> coordinator: handshake accepted
  kBeginRun,         ///< coordinator -> daemon: instantiate workload spec
  kRunAck,           ///< daemon -> coordinator: workload built (or not)
  kAssignBlock,      ///< coordinator -> daemon: execute grains [begin,end)
  kBlockResult,      ///< daemon -> coordinator: timings + result bytes
  kHeartbeat,        ///< coordinator -> daemon: liveness probe
  kHeartbeatAck,     ///< daemon -> coordinator: liveness echo
  kProfileSync,      ///< coordinator -> daemon: merge this profile store
  kProfileSyncAck,   ///< daemon -> coordinator: daemon's store image back
  kShutdown,         ///< either side: close the connection cleanly
  kBlockResultBatch, ///< daemon -> coordinator: several small results (v2)
};

/// Largest valid MsgType value (frame decoding rejects anything above).
inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::kBlockResultBatch);

[[nodiscard]] const char* to_string(MsgType type);

enum class FrameStatus : std::uint8_t {
  kOk,
  kIoError,      ///< short read / connection gone
  kBadMagic,     ///< stream does not start with the frame magic
  kVersionSkew,  ///< peer speaks an incompatible protocol version
  kBadType,      ///< unknown MsgType value
  kTooLarge,     ///< payload length exceeds kMaxPayloadBytes
  kBadChecksum,  ///< payload bytes do not match the trailing checksum
};

[[nodiscard]] const char* to_string(FrameStatus status);

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::vector<std::uint8_t> payload;
};

/// Encodes a complete frame (header + payload + checksum) into a buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    MsgType type, std::span<const std::uint8_t> payload);

/// Decodes one frame from `bytes`. On kOk, `*out` holds the frame and
/// `*consumed` the total frame size; on failure `out` is unchanged.
[[nodiscard]] FrameStatus decode_frame(std::span<const std::uint8_t> bytes,
                                       Frame* out, std::size_t* consumed);

/// Reusable per-connection serialization buffers for the framed-write
/// hot path: the 21-byte header and 8-byte checksum trailer are built in
/// place and shipped with the payload as three scatter-gather vectors,
/// so a steady stream of frames performs no per-frame allocation and
/// never copies the payload into a contiguous staging buffer.
struct FrameScratch {
  std::vector<std::uint8_t> head;
  std::vector<std::uint8_t> tail;
};

/// Writes one frame to the connection; false on I/O error. The scratch
/// overload is the zero-copy path (see FrameScratch); the plain overload
/// keeps a local scratch and is fine off the hot path.
[[nodiscard]] bool write_frame(TcpConn& conn, MsgType type,
                               std::span<const std::uint8_t> payload,
                               FrameScratch& scratch);
[[nodiscard]] bool write_frame(TcpConn& conn, MsgType type,
                               std::span<const std::uint8_t> payload);

/// Wall-clock decomposition of one read_frame call, separating "waiting
/// for the frame to exist" from "moving its bytes". `wait_seconds`
/// covers the 21-byte header (dominated by idle/queueing time),
/// `drain_seconds` the payload + trailer (dominated by the bandwidth
/// term of G_p). The pipelined coordinator samples drain time as its
/// per-chunk wire cost so queue waits never contaminate the G_p fit.
struct FrameReadTiming {
  double wait_seconds = 0.0;
  double drain_seconds = 0.0;
};

/// Reads one frame. `timeout_seconds` bounds the wait for the *header*;
/// once a header arrives the payload read gets the same bound again
/// (< 0 = wait forever). `timing`, when non-null, receives the
/// wait/drain split for this frame.
[[nodiscard]] FrameStatus read_frame(TcpConn& conn, Frame* out,
                                     double timeout_seconds = -1.0,
                                     FrameReadTiming* timing = nullptr);

// --- Message bodies -------------------------------------------------------
// Each struct encodes with encode() and decodes with the static decode(),
// which returns nullopt on any structural error (latched ByteReader).

struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::string node;  ///< coordinator's self-reported name
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<HelloMsg> decode(
      std::span<const std::uint8_t> payload);
};

struct HelloAckMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::string daemon;        ///< daemon's self-reported name
  std::uint32_t concurrency = 1;  ///< daemon-side kernel threads
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<HelloAckMsg> decode(
      std::span<const std::uint8_t> payload);
};

struct BeginRunMsg {
  std::uint64_t run_id = 0;
  std::string spec;  ///< Workload::remote_spec() string
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<BeginRunMsg> decode(
      std::span<const std::uint8_t> payload);
};

struct RunAckMsg {
  std::uint64_t run_id = 0;
  bool ok = false;
  std::string error;
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<RunAckMsg> decode(
      std::span<const std::uint8_t> payload);
};

struct AssignBlockMsg {
  std::uint64_t run_id = 0;
  std::uint64_t sequence = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Hot-path encode into a caller-owned reusable buffer (cleared first).
  void encode_into(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static std::optional<AssignBlockMsg> decode(
      std::span<const std::uint8_t> payload);
};

struct BlockResultMsg {
  std::uint64_t run_id = 0;
  std::uint64_t sequence = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  double exec_seconds = 0.0;  ///< kernel time on the daemon host
  bool ok = false;
  std::string error;
  std::vector<std::uint8_t> results;  ///< Workload::write_results bytes
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Hot-path encode into a caller-owned reusable buffer (cleared first).
  void encode_into(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static std::optional<BlockResultMsg> decode(
      std::span<const std::uint8_t> payload);
};

/// Several small BlockResults coalesced into one kBlockResultBatch frame:
/// the daemon's sender drains its outbox into a batch so the fixed
/// header/checksum/syscall cost amortizes across pipelined chunk
/// results. Each entry is an individually encoded BlockResultMsg body,
/// length-prefixed so decode slices without resynchronizing.
struct BlockResultBatchMsg {
  std::vector<BlockResultMsg> results;
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  void encode_into(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static std::optional<BlockResultBatchMsg> decode(
      std::span<const std::uint8_t> payload);
};

/// Batch size cap (decode rejects larger counts before allocating).
inline constexpr std::size_t kMaxBatchedResults = 256;
/// Results at most this large are eligible for batching; anything bigger
/// ships alone so one slow frame never delays a window of small acks.
inline constexpr std::size_t kBatchableResultBytes = 4096;

struct HeartbeatMsg {
  std::uint64_t sequence = 0;
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<HeartbeatMsg> decode(
      std::span<const std::uint8_t> payload);
};

struct HeartbeatAckMsg {
  std::uint64_t sequence = 0;
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<HeartbeatAckMsg> decode(
      std::span<const std::uint8_t> payload);
};

/// Carries a svc::ProfileStore image (already versioned and checksummed
/// by the store's own format) in either direction.
struct ProfileSyncMsg {
  std::vector<std::uint8_t> store_image;
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<ProfileSyncMsg> decode(
      std::span<const std::uint8_t> payload);
};

}  // namespace plbhec::net
