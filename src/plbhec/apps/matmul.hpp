#pragma once
/// \file matmul.hpp
/// Matrix multiplication workload (§IV-A). The paper distributes a copy of
/// one matrix to every processing unit and splits the other by lines; a
/// grain here is one output row: C[i,:] = A[i,:] * B. Complexity O(n^3).
///
/// In simulated runs only the cost profile matters (any n up to the
/// paper's 65536 is cheap). In real-threaded runs the blocked GEMM kernel
/// actually computes C for a small n, validated against a reference.

#include <cstddef>
#include <vector>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

class MatMulWorkload final : public rt::Workload {
 public:
  /// `n` = matrix order. `materialize` allocates real matrices and enables
  /// real execution (keep n <= ~1024 in that mode).
  explicit MatMulWorkload(std::size_t n, bool materialize = false);

  [[nodiscard]] std::string name() const override { return "MatMul"; }
  [[nodiscard]] std::size_t total_grains() const override { return n_; }
  [[nodiscard]] double bytes_per_grain() const override;
  [[nodiscard]] sim::WorkloadProfile profile() const override;

  void execute_cpu(std::size_t begin, std::size_t end) override;
  [[nodiscard]] bool supports_real_execution() const override {
    return materialized_;
  }

  /// Remote execution: a daemon rebuilds the same deterministic A/B and
  /// ships computed C rows back.
  [[nodiscard]] std::string remote_spec() const override;
  [[nodiscard]] std::size_t result_bytes(std::size_t begin,
                                         std::size_t end) const override;
  void write_results(std::size_t begin, std::size_t end,
                     std::uint8_t* out) const override;
  void read_results(std::size_t begin, std::size_t end,
                    const std::uint8_t* in) override;

  /// Result access for validation (real mode only).
  [[nodiscard]] const std::vector<double>& result() const { return c_; }
  [[nodiscard]] const std::vector<double>& a() const { return a_; }
  [[nodiscard]] const std::vector<double>& b() const { return b_; }

 private:
  std::size_t n_;
  bool materialized_;
  std::vector<double> a_, b_, c_;
};

}  // namespace plbhec::apps
