#include "plbhec/apps/registry.hpp"

#include <cstdint>
#include <map>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/nbody.hpp"
#include "plbhec/apps/spmv.hpp"
#include "plbhec/apps/stencil.hpp"
#include "plbhec/apps/synthetic.hpp"

namespace plbhec::apps {

namespace {

constexpr std::size_t kMaxRemoteGrains = 1u << 22;  // cap daemon allocations

/// Parses "k=v,k=v" into a map; returns false on any malformed pair.
bool parse_params(const std::string& body,
                  std::map<std::string, std::uint64_t>& params) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::size_t eq = body.find('=', pos);
    if (eq == std::string::npos || eq >= comma || eq == pos) return false;
    const std::string key = body.substr(pos, eq - pos);
    const std::string value = body.substr(eq + 1, comma - eq - 1);
    if (value.empty()) return false;
    std::uint64_t parsed = 0;
    for (char c : value) {
      if (c < '0' || c > '9') return false;
      if (parsed > (UINT64_MAX - 9) / 10) return false;
      parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (params.count(key) != 0) return false;
    params[key] = parsed;
    pos = comma + 1;
  }
  return true;
}

std::unique_ptr<rt::Workload> fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return nullptr;
}

}  // namespace

std::unique_ptr<rt::Workload> make_workload(const std::string& spec,
                                            std::string* error) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  std::map<std::string, std::uint64_t> params;
  if (colon != std::string::npos &&
      !parse_params(spec.substr(colon + 1), params))
    return fail(error, "malformed parameters in spec '" + spec + "'");

  const auto get = [&](const char* key,
                       std::uint64_t fallback) -> std::uint64_t {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  };

  if (name == "matmul") {
    const std::uint64_t n = get("n", 0);
    if (n == 0 || n > 4096) return fail(error, "matmul: n out of range");
    return std::make_unique<MatMulWorkload>(static_cast<std::size_t>(n),
                                            /*materialize=*/true);
  }
  if (name == "blackscholes") {
    BlackScholesWorkload::Config cfg;
    cfg.options = static_cast<std::size_t>(get("options", 0));
    cfg.mc_paths = static_cast<std::size_t>(get("paths", 0));
    cfg.mc_steps = static_cast<std::size_t>(get("steps", 32));
    cfg.seed = get("seed", 0x5eed);
    if (cfg.options == 0 || cfg.options > kMaxRemoteGrains)
      return fail(error, "blackscholes: options out of range");
    return std::make_unique<BlackScholesWorkload>(cfg);
  }
  if (name == "grn") {
    GrnWorkload::Config cfg;
    cfg.genes = static_cast<std::size_t>(get("genes", 0));
    cfg.samples = static_cast<std::size_t>(get("samples", 64));
    cfg.pair_window = static_cast<std::size_t>(get("window", 32));
    cfg.seed = get("seed", 0x9e11e5);
    cfg.materialize = true;
    if (cfg.genes == 0 || cfg.genes > 200'000 || cfg.samples == 0 ||
        cfg.samples > 65'536 || cfg.pair_window == 0)
      return fail(error, "grn: parameters out of range");
    return std::make_unique<GrnWorkload>(cfg);
  }
  if (name == "spmv") {
    SpmvWorkload::Config cfg;
    cfg.rows = static_cast<std::size_t>(get("rows", 0));
    cfg.nnz_per_row = static_cast<std::size_t>(get("nnz", 32));
    cfg.seed = get("seed", 0x59a125);
    cfg.materialize = true;
    // The degree skew multiplies hub rows by 6; cap mean degree so total
    // nonzeros stay comfortably inside 32-bit offsets.
    if (cfg.rows == 0 || cfg.rows > kMaxRemoteGrains ||
        cfg.nnz_per_row == 0 || cfg.nnz_per_row > 256)
      return fail(error, "spmv: parameters out of range");
    return std::make_unique<SpmvWorkload>(cfg);
  }
  if (name == "stencil") {
    StencilWorkload::Config cfg;
    cfg.nx = static_cast<std::size_t>(get("nx", 512));
    cfg.ny = static_cast<std::size_t>(get("ny", 0));
    cfg.seed = get("seed", 0x57e4c11);
    cfg.materialize = true;
    if (cfg.nx == 0 || cfg.nx > 16'384 || cfg.ny == 0 ||
        cfg.ny > kMaxRemoteGrains)
      return fail(error, "stencil: parameters out of range");
    return std::make_unique<StencilWorkload>(cfg);
  }
  if (name == "nbody") {
    NbodyWorkload::Config cfg;
    cfg.bodies = static_cast<std::size_t>(get("bodies", 0));
    cfg.seed = get("seed", 0xb0d1e5);
    cfg.materialize = true;
    // O(n^2) per sweep: keep real instances at validation scale.
    if (cfg.bodies == 0 || cfg.bodies > 262'144)
      return fail(error, "nbody: bodies out of range");
    return std::make_unique<NbodyWorkload>(cfg);
  }
  if (name == "synthetic") {
    SyntheticWorkload::Config cfg;
    cfg.grains = static_cast<std::size_t>(get("grains", 0));
    cfg.spin_iters_per_grain = static_cast<std::size_t>(get("spin", 2'000));
    cfg.result_payload_per_grain =
        static_cast<std::size_t>(get("payload", 0));
    if (cfg.grains == 0 || cfg.grains > kMaxRemoteGrains)
      return fail(error, "synthetic: grains out of range");
    if (cfg.result_payload_per_grain > (1u << 20))
      return fail(error, "synthetic: payload out of range");
    return std::make_unique<SyntheticWorkload>(cfg);
  }
  return fail(error, "unknown workload '" + name + "'");
}

}  // namespace plbhec::apps
