#include "plbhec/apps/synthetic.hpp"

#include <cmath>

#include "plbhec/common/contracts.hpp"

namespace plbhec::apps {

sim::WorkloadProfile SyntheticWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "synthetic";
  p.flops_per_grain = config_.flops_per_grain;
  p.bytes_per_grain = config_.bytes_per_grain;
  p.device_bytes_per_grain = config_.device_bytes_per_grain;
  p.gpu_threads_per_grain = config_.gpu_threads_per_grain;
  p.cpu_parallel_fraction = config_.cpu_parallel_fraction;
  p.gpu_efficiency = config_.gpu_efficiency;
  p.cpu_efficiency = config_.cpu_efficiency;
  return p;
}

void SyntheticWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(begin <= end && end <= config_.grains);
  double local = 0.0;
  for (std::size_t g = begin; g < end; ++g) {
    // Deterministic per-grain value independent of execution order.
    double acc = static_cast<double>(g % 97) + 1.0;
    for (std::size_t i = 0; i < config_.spin_iters_per_grain; ++i)
      acc = acc * 1.0000001 + 1e-9;
    local += std::fmod(acc, 1000.0);
  }
  // Atomic accumulate (relaxed FP reorder tolerated by the tests' epsilon).
  double expected = checksum_.load();
  while (!checksum_.compare_exchange_weak(expected, expected + local)) {
  }
  executed_.fetch_add(end - begin);
}

}  // namespace plbhec::apps
