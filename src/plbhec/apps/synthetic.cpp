#include "plbhec/apps/synthetic.hpp"

#include <cmath>
#include <cstring>

#include "plbhec/common/contracts.hpp"

namespace plbhec::apps {

namespace {

/// Deterministic per-grain value independent of execution order (and of
/// which host computes it — remote daemons reproduce it bit-identically).
double grain_value(std::size_t g, std::size_t spin_iters) {
  double acc = static_cast<double>(g % 97) + 1.0;
  for (std::size_t i = 0; i < spin_iters; ++i) acc = acc * 1.0000001 + 1e-9;
  return std::fmod(acc, 1000.0);
}

}  // namespace

sim::WorkloadProfile SyntheticWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "synthetic";
  p.flops_per_grain = config_.flops_per_grain;
  p.bytes_per_grain = config_.bytes_per_grain;
  p.device_bytes_per_grain = config_.device_bytes_per_grain;
  p.gpu_threads_per_grain = config_.gpu_threads_per_grain;
  p.cpu_parallel_fraction = config_.cpu_parallel_fraction;
  p.gpu_efficiency = config_.gpu_efficiency;
  p.cpu_efficiency = config_.cpu_efficiency;
  return p;
}

void SyntheticWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(begin <= end && end <= config_.grains);
  double local = 0.0;
  for (std::size_t g = begin; g < end; ++g)
    local += grain_value(g, config_.spin_iters_per_grain);
  // Atomic accumulate (relaxed FP reorder tolerated by the tests' epsilon).
  double expected = checksum_.load();
  while (!checksum_.compare_exchange_weak(expected, expected + local)) {
  }
  executed_.fetch_add(end - begin);
}

std::string SyntheticWorkload::remote_spec() const {
  return "synthetic:grains=" + std::to_string(config_.grains) +
         ",spin=" + std::to_string(config_.spin_iters_per_grain) +
         ",payload=" + std::to_string(config_.result_payload_per_grain);
}

std::size_t SyntheticWorkload::result_bytes(std::size_t begin,
                                            std::size_t end) const {
  PLBHEC_EXPECTS(begin <= end && end <= config_.grains);
  return sizeof(double) + (end - begin) * config_.result_payload_per_grain;
}

void SyntheticWorkload::write_results(std::size_t begin, std::size_t end,
                                      std::uint8_t* out) const {
  PLBHEC_EXPECTS(begin <= end && end <= config_.grains);
  // The block's partial sum is a pure function of the grain range, so
  // recompute it instead of tracking per-block partials.
  double local = 0.0;
  for (std::size_t g = begin; g < end; ++g)
    local += grain_value(g, config_.spin_iters_per_grain);
  std::memcpy(out, &local, sizeof(double));
  // Deterministic filler so the coordinator can verify the payload
  // end-to-end regardless of which host produced it.
  std::uint8_t* filler = out + sizeof(double);
  for (std::size_t g = begin; g < end; ++g)
    for (std::size_t b = 0; b < config_.result_payload_per_grain; ++b)
      *filler++ = static_cast<std::uint8_t>((g * 131 + b * 29) & 0xff);
}

void SyntheticWorkload::read_results(std::size_t begin, std::size_t end,
                                     const std::uint8_t* in) {
  PLBHEC_EXPECTS(begin <= end && end <= config_.grains);
  double local = 0.0;
  std::memcpy(&local, in, sizeof(double));
  // Reject corrupted filler outright — a transport bug must not silently
  // pass as a correct run just because the checksum word survived.
  const std::uint8_t* filler = in + sizeof(double);
  for (std::size_t g = begin; g < end; ++g)
    for (std::size_t b = 0; b < config_.result_payload_per_grain; ++b)
      PLBHEC_EXPECTS(*filler++ ==
                     static_cast<std::uint8_t>((g * 131 + b * 29) & 0xff));
  double expected = checksum_.load();
  while (!checksum_.compare_exchange_weak(expected, expected + local)) {
  }
  executed_.fetch_add(end - begin);
}

}  // namespace plbhec::apps
