#pragma once
/// \file synthetic.hpp
/// Synthetic workload with a tunable cost profile. Used by property tests
/// (sweeping arithmetic intensity, parallel fraction, grain counts) and by
/// the threaded-engine tests, where the real kernel performs a
/// deterministic amount of floating-point work per grain.

#include <atomic>
#include <cstdint>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

class SyntheticWorkload final : public rt::Workload {
 public:
  struct Config {
    std::size_t grains = 10'000;
    double flops_per_grain = 1e6;
    double bytes_per_grain = 1024.0;
    double device_bytes_per_grain = 256.0;
    double gpu_threads_per_grain = 4.0;
    double cpu_parallel_fraction = 0.97;
    double gpu_efficiency = 0.5;
    double cpu_efficiency = 0.5;
    /// Real-mode kernel iterations per grain (keep small in tests).
    std::size_t spin_iters_per_grain = 2'000;
    /// Extra deterministic filler bytes per grain appended to each remote
    /// block result (after the 8-byte partial checksum). 0 keeps the
    /// original tiny result; bench_net raises it to make the wire cost
    /// comparable to the kernel cost when measuring pipelining overlap.
    std::size_t result_payload_per_grain = 0;
  };

  explicit SyntheticWorkload(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Synthetic"; }
  [[nodiscard]] std::size_t total_grains() const override {
    return config_.grains;
  }
  [[nodiscard]] double bytes_per_grain() const override {
    return config_.bytes_per_grain;
  }
  [[nodiscard]] sim::WorkloadProfile profile() const override;

  void execute_cpu(std::size_t begin, std::size_t end) override;
  [[nodiscard]] bool supports_real_execution() const override { return true; }

  /// Remote execution: each block's result is its 8-byte partial checksum,
  /// recomputed deterministically from the grain indices on either side.
  [[nodiscard]] std::string remote_spec() const override;
  [[nodiscard]] std::size_t result_bytes(std::size_t begin,
                                         std::size_t end) const override;
  void write_results(std::size_t begin, std::size_t end,
                     std::uint8_t* out) const override;
  void read_results(std::size_t begin, std::size_t end,
                    const std::uint8_t* in) override;

  /// Deterministic checksum accumulated by real executions; equal grain
  /// coverage yields equal checksums regardless of the schedule.
  [[nodiscard]] double checksum() const { return checksum_.load(); }
  /// Total grains actually executed in real mode.
  [[nodiscard]] std::uint64_t executed_grains() const {
    return executed_.load();
  }

 private:
  Config config_;
  std::atomic<double> checksum_{0.0};
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace plbhec::apps
