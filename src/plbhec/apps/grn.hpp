#pragma once
/// \file grn.hpp
/// Gene Regulatory Network inference workload (§IV-A; Borelli et al., BMC
/// Bioinformatics 2013): exhaustive feature selection — for a target gene,
/// search the predictor gene subsets that minimize the conditional entropy
/// of the target given the subset, over discretized expression data.
///
/// A grain is one candidate gene: evaluating it means scoring the pairs it
/// forms with the next `pair_window` genes against the target. In real
/// mode the kernel performs genuine contingency counting and entropy
/// computation over a synthetic (deterministically generated) binary
/// expression matrix; in simulated mode only the O(n * window * samples)
/// cost profile matters (the paper runs 60,000-140,000 genes).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

class GrnWorkload final : public rt::Workload {
 public:
  struct Config {
    std::size_t genes = 1000;        ///< number of candidate genes (grains)
    std::size_t samples = 64;        ///< expression samples per gene
    std::size_t pair_window = 32;    ///< partners evaluated per gene
    bool materialize = false;        ///< allocate real expression data
    std::uint64_t seed = 0x9e11e5;
  };

  explicit GrnWorkload(Config config);

  /// The paper-scale instance: exhaustive pair search, so each gene is
  /// scored against half of the others (simulation-only; real execution
  /// at this scale would take the actual cluster the paper used).
  [[nodiscard]] static Config paper_instance(std::size_t genes) {
    return Config{genes, 64, genes / 2, false, 0x9e11e5};
  }

  [[nodiscard]] std::string name() const override { return "GRN"; }
  [[nodiscard]] std::size_t total_grains() const override {
    return config_.genes;
  }
  [[nodiscard]] double bytes_per_grain() const override {
    return static_cast<double>(config_.samples);  // one expression row
  }
  [[nodiscard]] sim::WorkloadProfile profile() const override;

  void execute_cpu(std::size_t begin, std::size_t end) override;
  [[nodiscard]] bool supports_real_execution() const override {
    return config_.materialize;
  }

  /// Remote execution: expression data is seeded-deterministic; a daemon
  /// ships per-gene (score, best partner) pairs back.
  [[nodiscard]] std::string remote_spec() const override;
  [[nodiscard]] std::size_t result_bytes(std::size_t begin,
                                         std::size_t end) const override;
  void write_results(std::size_t begin, std::size_t end,
                     std::uint8_t* out) const override;
  void read_results(std::size_t begin, std::size_t end,
                    const std::uint8_t* in) override;

  /// Best (lowest conditional entropy) score found per gene; real mode.
  [[nodiscard]] const std::vector<float>& scores() const { return scores_; }
  /// Best partner index per gene; real mode.
  [[nodiscard]] const std::vector<std::uint32_t>& best_partner() const {
    return best_partner_;
  }

  /// Conditional entropy H(target | a, b) over the binary expression data
  /// (exposed so tests can cross-check the kernel).
  [[nodiscard]] double conditional_entropy(std::size_t gene_a,
                                           std::size_t gene_b) const;

 private:
  Config config_;
  std::vector<std::uint8_t> expression_;  ///< genes x samples, binarized
  std::vector<std::uint8_t> target_;      ///< samples
  std::vector<float> scores_;
  std::vector<std::uint32_t> best_partner_;
};

}  // namespace plbhec::apps
