#pragma once
/// \file blackscholes.hpp
/// Black-Scholes option pricing workload (§IV-A): a grain is one European
/// option priced with the closed-form solution. Complexity O(n). The real
/// kernel computes genuine call/put prices (validated against put-call
/// parity and reference values in the tests).

#include <cstddef>
#include <vector>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

/// Closed-form Black-Scholes prices for a European option.
struct OptionQuote {
  double spot = 100.0;
  double strike = 100.0;
  double rate = 0.05;
  double volatility = 0.2;
  double expiry_years = 1.0;
};

struct OptionPrice {
  double call = 0.0;
  double put = 0.0;
};

/// Prices one option with the closed-form Black-Scholes formula.
[[nodiscard]] OptionPrice black_scholes(const OptionQuote& quote);

/// Standard normal CDF via erfc (double precision).
[[nodiscard]] double normal_cdf(double x);

class BlackScholesWorkload final : public rt::Workload {
 public:
  struct Config {
    std::size_t options = 100'000;  ///< portfolio size (grains)
    /// Monte Carlo paths per option. 0 = closed-form pricing only. The
    /// paper's kernel "includes a random walk term, which models random
    /// fluctuations of prices over time" — i.e. Monte Carlo simulation;
    /// the closed form serves as the correctness oracle for the MC path.
    std::size_t mc_paths = 0;
    std::size_t mc_steps = 32;  ///< time steps per simulated path
    std::uint64_t seed = 0x5eed;
  };

  explicit BlackScholesWorkload(Config config);
  /// Convenience: closed-form portfolio of `options` quotes.
  explicit BlackScholesWorkload(std::size_t options,
                                std::uint64_t seed = 0x5eed)
      : BlackScholesWorkload(Config{options, 0, 32, seed}) {}

  /// The configuration the paper's evaluation corresponds to (Monte Carlo
  /// pricing — compute-heavy enough that a GPU cluster is warranted).
  [[nodiscard]] static Config paper_instance(std::size_t options) {
    return Config{options, 512, 32, 0x5eed};
  }

  [[nodiscard]] std::string name() const override { return "BlackScholes"; }
  [[nodiscard]] std::size_t total_grains() const override {
    return quotes_.size();
  }
  [[nodiscard]] double bytes_per_grain() const override {
    return 5 * sizeof(double);
  }
  [[nodiscard]] sim::WorkloadProfile profile() const override;

  void execute_cpu(std::size_t begin, std::size_t end) override;
  [[nodiscard]] bool supports_real_execution() const override { return true; }

  /// Remote execution: the quote portfolio is a pure function of the
  /// config, so a daemon regenerates it and ships prices back.
  [[nodiscard]] std::string remote_spec() const override;
  [[nodiscard]] std::size_t result_bytes(std::size_t begin,
                                         std::size_t end) const override;
  void write_results(std::size_t begin, std::size_t end,
                     std::uint8_t* out) const override;
  void read_results(std::size_t begin, std::size_t end,
                    const std::uint8_t* in) override;

  [[nodiscard]] const std::vector<OptionQuote>& quotes() const {
    return quotes_;
  }
  [[nodiscard]] const std::vector<OptionPrice>& prices() const {
    return prices_;
  }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Monte Carlo price of one option under geometric Brownian motion
  /// (antithetic variates). Exposed for the accuracy tests.
  [[nodiscard]] OptionPrice monte_carlo_price(const OptionQuote& quote,
                                              std::uint64_t seed) const;

 private:
  Config config_;
  std::vector<OptionQuote> quotes_;
  std::vector<OptionPrice> prices_;
};

}  // namespace plbhec::apps
