#include "plbhec/apps/matmul.hpp"

#include <cstring>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/linalg/blas.hpp"

namespace plbhec::apps {

MatMulWorkload::MatMulWorkload(std::size_t n, bool materialize)
    : n_(n), materialized_(materialize) {
  PLBHEC_EXPECTS(n > 0);
  if (materialized_) {
    PLBHEC_EXPECTS(n <= 4096);  // real mode is for validation-scale inputs
    a_.resize(n * n);
    b_.resize(n * n);
    c_.assign(n * n, 0.0);
    Rng rng(0xABCD1234u);
    for (auto& v : a_) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b_) v = rng.uniform(-1.0, 1.0);
  }
}

double MatMulWorkload::bytes_per_grain() const {
  // One row of A is shipped per output row; B is predistributed once and
  // amortized (the paper ships B's split and keeps A resident — symmetric).
  return static_cast<double>(n_) * sizeof(double);
}

sim::WorkloadProfile MatMulWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "matmul";
  const double n = static_cast<double>(n_);
  p.flops_per_grain = 2.0 * n * n;  // n dot products of length n per row
  p.bytes_per_grain = bytes_per_grain();
  // Blocked kernel: each element of A/B is reused ~tile times; effective
  // traffic per output row ~ 4 doubles per output element.
  p.device_bytes_per_grain = 4.0 * n * sizeof(double);
  p.gpu_threads_per_grain = n;  // one thread per output element of the row
  p.cpu_parallel_fraction = 0.98;
  p.gpu_efficiency = 0.65;  // CUBLAS-grade kernel
  p.cpu_efficiency = 0.55;  // blocked, vectorized host kernel
  // GEMM slices approach peak only past a few hundred rows (tile
  // quantization across SMs) — the nonlinearity of paper Fig. 1.
  p.gpu_saturation_grains = 256.0;
  return p;
}

std::string MatMulWorkload::remote_spec() const {
  if (!materialized_) return {};
  return "matmul:n=" + std::to_string(n_);
}

std::size_t MatMulWorkload::result_bytes(std::size_t begin,
                                         std::size_t end) const {
  PLBHEC_EXPECTS(begin <= end && end <= n_);
  return materialized_ ? (end - begin) * n_ * sizeof(double) : 0;
}

void MatMulWorkload::write_results(std::size_t begin, std::size_t end,
                                   std::uint8_t* out) const {
  PLBHEC_EXPECTS(materialized_);
  PLBHEC_EXPECTS(begin <= end && end <= n_);
  std::memcpy(out, c_.data() + begin * n_, (end - begin) * n_ * sizeof(double));
}

void MatMulWorkload::read_results(std::size_t begin, std::size_t end,
                                  const std::uint8_t* in) {
  PLBHEC_EXPECTS(materialized_);
  PLBHEC_EXPECTS(begin <= end && end <= n_);
  std::memcpy(c_.data() + begin * n_, in, (end - begin) * n_ * sizeof(double));
}

void MatMulWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(materialized_);
  PLBHEC_EXPECTS(begin <= end && end <= n_);
  if (begin == end) return;
  // Row panels of this block fan out over the shared persistent pool (the
  // pool runs the caller inline when it has no spare workers).
  linalg::blas::gemm_parallel(end - begin, n_, n_,
                              {a_.data() + begin * n_, (end - begin) * n_}, b_,
                              {c_.data() + begin * n_, (end - begin) * n_},
                              exec::ThreadPool::global().concurrency());
}

}  // namespace plbhec::apps
