#include "plbhec/apps/grn.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/exec/thread_pool.hpp"

namespace plbhec::apps {

GrnWorkload::GrnWorkload(Config config) : config_(config) {
  PLBHEC_EXPECTS(config_.genes > 0);
  PLBHEC_EXPECTS(config_.samples > 0);
  PLBHEC_EXPECTS(config_.pair_window > 0);
  if (config_.materialize) {
    PLBHEC_EXPECTS(config_.genes <= 200'000);
    expression_.resize(config_.genes * config_.samples);
    target_.resize(config_.samples);
    Rng rng(config_.seed);
    for (auto& v : expression_)
      v = static_cast<std::uint8_t>(rng.uniform() < 0.5 ? 0 : 1);
    // Make the target partially predictable from gene 0 XOR gene 1 so the
    // search has real structure to find.
    for (std::size_t s = 0; s < config_.samples; ++s) {
      const std::uint8_t g0 = expression_[0 * config_.samples + s];
      const std::uint8_t g1 = expression_[1 * config_.samples + s];
      const bool noisy = rng.uniform() < 0.1;
      target_[s] = noisy ? static_cast<std::uint8_t>(rng.uniform() < 0.5)
                         : static_cast<std::uint8_t>(g0 ^ g1);
    }
    scores_.assign(config_.genes, std::numeric_limits<float>::infinity());
    best_partner_.assign(config_.genes, 0);
  }
}

sim::WorkloadProfile GrnWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "grn";
  const double m = static_cast<double>(config_.samples);
  const double w = static_cast<double>(config_.pair_window);
  // Per gene: `w` pair evaluations, each counting over `m` samples plus an
  // 8-cell entropy reduction (~4 flops per sample per pair).
  p.flops_per_grain = w * (4.0 * m + 64.0);
  p.bytes_per_grain = bytes_per_grain();
  p.device_bytes_per_grain = (w + 1.0) * m;  // partner rows re-read
  p.gpu_threads_per_grain = w;               // one thread per pair
  p.cpu_parallel_fraction = 0.99;
  p.gpu_efficiency = 0.30;  // integer counting, divergent accesses
  p.cpu_efficiency = 0.35;
  // Divergent pair-counting kernels need many resident gene sets to hide
  // memory latency.
  p.gpu_saturation_grains = 512.0;
  return p;
}

std::string GrnWorkload::remote_spec() const {
  if (!config_.materialize) return {};
  return "grn:genes=" + std::to_string(config_.genes) +
         ",samples=" + std::to_string(config_.samples) +
         ",window=" + std::to_string(config_.pair_window) +
         ",seed=" + std::to_string(config_.seed);
}

std::size_t GrnWorkload::result_bytes(std::size_t begin,
                                      std::size_t end) const {
  PLBHEC_EXPECTS(begin <= end && end <= config_.genes);
  return config_.materialize
             ? (end - begin) * (sizeof(float) + sizeof(std::uint32_t))
             : 0;
}

void GrnWorkload::write_results(std::size_t begin, std::size_t end,
                                std::uint8_t* out) const {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.genes);
  for (std::size_t g = begin; g < end; ++g) {
    std::memcpy(out, &scores_[g], sizeof(float));
    std::memcpy(out + sizeof(float), &best_partner_[g], sizeof(std::uint32_t));
    out += sizeof(float) + sizeof(std::uint32_t);
  }
}

void GrnWorkload::read_results(std::size_t begin, std::size_t end,
                               const std::uint8_t* in) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.genes);
  for (std::size_t g = begin; g < end; ++g) {
    std::memcpy(&scores_[g], in, sizeof(float));
    std::memcpy(&best_partner_[g], in + sizeof(float), sizeof(std::uint32_t));
    in += sizeof(float) + sizeof(std::uint32_t);
  }
}

double GrnWorkload::conditional_entropy(std::size_t gene_a,
                                        std::size_t gene_b) const {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(gene_a < config_.genes && gene_b < config_.genes);
  const std::uint8_t* a = &expression_[gene_a * config_.samples];
  const std::uint8_t* b = &expression_[gene_b * config_.samples];

  // Joint counts over (a, b, target): 8 cells.
  std::size_t counts[8] = {};
  for (std::size_t s = 0; s < config_.samples; ++s) {
    const unsigned idx = static_cast<unsigned>(a[s] << 2) |
                         static_cast<unsigned>(b[s] << 1) |
                         static_cast<unsigned>(target_[s]);
    ++counts[idx];
  }

  // H(target | a, b) = sum_{ab} p(ab) H(target | ab).
  const double total = static_cast<double>(config_.samples);
  double h = 0.0;
  for (unsigned ab = 0; ab < 4; ++ab) {
    const double n0 = static_cast<double>(counts[ab << 1]);
    const double n1 = static_cast<double>(counts[(ab << 1) | 1]);
    const double nab = n0 + n1;
    if (nab == 0.0) continue;
    double h_cond = 0.0;
    if (n0 > 0.0) h_cond -= (n0 / nab) * std::log2(n0 / nab);
    if (n1 > 0.0) h_cond -= (n1 / nab) * std::log2(n1 / nab);
    h += (nab / total) * h_cond;
  }
  return h;
}

void GrnWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.genes);
  // Genes are independent (per-gene writes only), so the pair search fans
  // out over the shared pool; each gene costs pair_window * samples work.
  exec::parallel_for(begin, end, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t g = lo; g < hi; ++g) {
      float best = std::numeric_limits<float>::infinity();
      std::uint32_t best_partner = 0;
      for (std::size_t k = 1; k <= config_.pair_window; ++k) {
        const std::size_t partner = (g + k) % config_.genes;
        if (partner == g) continue;
        const auto h = static_cast<float>(conditional_entropy(g, partner));
        if (h < best) {
          best = h;
          best_partner = static_cast<std::uint32_t>(partner);
        }
      }
      scores_[g] = best;
      best_partner_[g] = best_partner;
    }
  });
}

}  // namespace plbhec::apps
