#pragma once
/// \file registry.hpp
/// Maps a workload's `remote_spec()` string (e.g. "matmul:n=256") back to a
/// live Workload instance. A worker daemon uses this to rebuild the same
/// deterministic problem the coordinator holds, so block results computed
/// remotely are bit-identical to local execution.

#include <memory>
#include <string>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

/// Constructs the workload described by `spec` ("name:key=value,...").
/// Returns nullptr and fills `*error` (if given) when the spec names an
/// unknown workload, has malformed parameters, or is out of range.
[[nodiscard]] std::unique_ptr<rt::Workload> make_workload(
    const std::string& spec, std::string* error = nullptr);

}  // namespace plbhec::apps
