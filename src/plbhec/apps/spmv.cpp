#include "plbhec/apps/spmv.hpp"

#include <cstring>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

namespace plbhec::apps {

SpmvWorkload::SpmvWorkload(Config config) : config_(config) {
  PLBHEC_EXPECTS(config_.rows > 0);
  PLBHEC_EXPECTS(config_.nnz_per_row > 0);
  if (!config_.materialize) return;

  // Grow the graph sequentially from the seed: both sides of a remote run
  // rebuild the identical structure. Degrees are uniform around the mean,
  // with every ~32nd row upgraded to a hub — the skew that breaks
  // uniform-cost partitioning of sparse workloads.
  Rng rng(config_.seed);
  row_ptr_.resize(config_.rows + 1);
  row_ptr_[0] = 0;
  std::uint64_t nnz = 0;
  for (std::size_t i = 0; i < config_.rows; ++i) {
    const std::int64_t mean = static_cast<std::int64_t>(config_.nnz_per_row);
    std::uint64_t degree = static_cast<std::uint64_t>(
        rng.uniform_int(1, 2 * mean - 1));
    if (rng.uniform() < 1.0 / 32.0)
      degree *= 6;  // hub row
    nnz += degree;
    PLBHEC_EXPECTS(nnz <= UINT32_MAX);
    row_ptr_[i + 1] = static_cast<std::uint32_t>(nnz);
  }
  cols_.resize(nnz);
  vals_.resize(nnz);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    cols_[e] = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config_.rows) - 1));
    vals_[e] = rng.uniform(-1.0, 1.0);
  }
  x_.resize(config_.rows);
  for (auto& v : x_) v = rng.uniform(-1.0, 1.0);
  y_.assign(config_.rows, 0.0);
}

sim::WorkloadProfile SpmvWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "spmv";
  const double nnz = static_cast<double>(config_.nnz_per_row);
  p.flops_per_grain = 2.0 * nnz;  // one multiply-add per nonzero
  p.bytes_per_grain = bytes_per_grain();
  // Streaming cols+vals plus a near-random x gather (each nonzero pulls
  // its own cache line's worth) plus the y store: firmly bandwidth-bound.
  p.device_bytes_per_grain = nnz * 20.0 + 16.0;
  p.gpu_threads_per_grain = 1.0;  // row-per-thread CSR-scalar kernel
  p.cpu_parallel_fraction = 0.95;
  // Sparse kernels run far from peak flops on both device kinds.
  p.gpu_efficiency = 0.12;
  p.cpu_efficiency = 0.25;
  // A GPU needs tens of thousands of rows in flight before the gather
  // latency is covered.
  p.gpu_saturation_grains = 16384.0;
  return p;
}

std::string SpmvWorkload::remote_spec() const {
  if (!config_.materialize) return {};
  return "spmv:rows=" + std::to_string(config_.rows) +
         ",nnz=" + std::to_string(config_.nnz_per_row) +
         ",seed=" + std::to_string(config_.seed);
}

std::size_t SpmvWorkload::result_bytes(std::size_t begin,
                                       std::size_t end) const {
  PLBHEC_EXPECTS(begin <= end && end <= config_.rows);
  return config_.materialize ? (end - begin) * sizeof(double) : 0;
}

void SpmvWorkload::write_results(std::size_t begin, std::size_t end,
                                 std::uint8_t* out) const {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.rows);
  std::memcpy(out, y_.data() + begin, (end - begin) * sizeof(double));
}

void SpmvWorkload::read_results(std::size_t begin, std::size_t end,
                                const std::uint8_t* in) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.rows);
  std::memcpy(y_.data() + begin, in, (end - begin) * sizeof(double));
}

void SpmvWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.rows);
  if (begin == end) return;
  // Resolved per block so a pinned dispatch ceiling (PLBHEC_KDISP_FORCE,
  // tests) always takes effect; one mutex-guarded lookup per block is
  // noise next to the row work.
  auto* const kernel =
      kdisp::KernelRegistry::instance().select<kdisp::SpmvRowsFn>(
          kdisp::kSpmvKernel, kdisp::classify_width(config_.nnz_per_row));
  kernel(row_ptr_.data(), cols_.data(), vals_.data(), x_.data(), y_.data(),
         begin, end);
}

}  // namespace plbhec::apps
