#pragma once
/// \file nbody.hpp
/// Softened all-pairs gravitational n-body step (the compute-bound O(n²)
/// family): a grain is one body, whose acceleration is accumulated against
/// every body in the system. Positions and masses are seeded-deterministic;
/// a step computes accelerations only (no integration), so blocks write
/// disjoint acceleration entries and read immutable positions — race-free
/// under any partition. The interaction kernel is resolved through the
/// kdisp registry (scalar / AVX2 variants, bit-identical by contract:
/// correctly-rounded sqrt/div, no FMA, fixed 4-lane reduction tree).
///
/// Arithmetic intensity is ~20 flops per body-pair against 32 bytes of
/// position data that stays cache-resident: the opposite regime from
/// SpMV/stencil, which is exactly the diversity the profile fits need.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

class NbodyWorkload final : public rt::Workload {
 public:
  struct Config {
    std::size_t bodies = 50'000;  ///< bodies (grains)
    bool materialize = false;     ///< allocate the real state
    std::uint64_t seed = 0xb0d1e5;
  };

  explicit NbodyWorkload(Config config);

  /// Galaxy-scale instance for simulation-only studies.
  [[nodiscard]] static Config paper_instance(std::size_t bodies) {
    return Config{bodies, false, 0xb0d1e5};
  }

  [[nodiscard]] std::string name() const override { return "NBody"; }
  [[nodiscard]] std::size_t total_grains() const override {
    return config_.bodies;
  }
  [[nodiscard]] double bytes_per_grain() const override {
    // The body set is predistributed; per grain only its own position and
    // mass identify the work.
    return 4.0 * sizeof(double);
  }
  [[nodiscard]] sim::WorkloadProfile profile() const override;

  void execute_cpu(std::size_t begin, std::size_t end) override;
  [[nodiscard]] bool supports_real_execution() const override {
    return config_.materialize;
  }

  /// Remote execution: the daemon rebuilds the same seeded system and
  /// ships computed accelerations back.
  [[nodiscard]] std::string remote_spec() const override;
  [[nodiscard]] std::size_t result_bytes(std::size_t begin,
                                         std::size_t end) const override;
  void write_results(std::size_t begin, std::size_t end,
                     std::uint8_t* out) const override;
  void read_results(std::size_t begin, std::size_t end,
                    const std::uint8_t* in) override;

  /// State access for validation (real mode only).
  [[nodiscard]] const std::vector<double>& ax() const { return ax_; }
  [[nodiscard]] const std::vector<double>& ay() const { return ay_; }
  [[nodiscard]] const std::vector<double>& az() const { return az_; }
  [[nodiscard]] const std::vector<double>& mass() const { return mass_; }

  /// Softening length squared (self-interaction contributes a finite,
  /// branch-free zero-direction term).
  static constexpr double kEps2 = 1e-2;

 private:
  Config config_;
  std::vector<double> px_, py_, pz_, mass_;
  std::vector<double> ax_, ay_, az_;
};

}  // namespace plbhec::apps
