#include "plbhec/apps/stencil.hpp"

#include <cstring>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

namespace plbhec::apps {

StencilWorkload::StencilWorkload(Config config) : config_(config) {
  PLBHEC_EXPECTS(config_.nx > 0);
  PLBHEC_EXPECTS(config_.ny > 0);
  if (!config_.materialize) return;
  const std::size_t cells = (config_.ny + 2) * stride();
  in_.resize(cells);
  Rng rng(config_.seed);
  for (auto& v : in_) v = rng.uniform(-1.0, 1.0);
  out_.assign(cells, 0.0);
}

sim::WorkloadProfile StencilWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "stencil";
  const double nx = static_cast<double>(config_.nx);
  p.flops_per_grain = 6.0 * nx;  // 4 adds + 2 muls per cell
  p.bytes_per_grain = bytes_per_grain();
  // Streaming: ~2 rows read (center cached from the previous row's south
  // neighbor) + 1 row written per grain.
  p.device_bytes_per_grain = 24.0 * nx;
  p.gpu_threads_per_grain = nx;  // cell-per-thread sweep
  p.cpu_parallel_fraction = 0.97;
  // Far below peak flops on both device kinds — the memory roof binds.
  p.gpu_efficiency = 0.40;
  p.cpu_efficiency = 0.30;
  // Streaming kernels saturate bandwidth with comparatively few rows.
  p.gpu_saturation_grains = 1024.0;
  return p;
}

std::string StencilWorkload::remote_spec() const {
  if (!config_.materialize) return {};
  return "stencil:nx=" + std::to_string(config_.nx) +
         ",ny=" + std::to_string(config_.ny) +
         ",seed=" + std::to_string(config_.seed);
}

std::size_t StencilWorkload::result_bytes(std::size_t begin,
                                          std::size_t end) const {
  PLBHEC_EXPECTS(begin <= end && end <= config_.ny);
  return config_.materialize ? (end - begin) * config_.nx * sizeof(double)
                             : 0;
}

void StencilWorkload::write_results(std::size_t begin, std::size_t end,
                                    std::uint8_t* out) const {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.ny);
  for (std::size_t i = begin; i < end; ++i) {
    std::memcpy(out + (i - begin) * config_.nx * sizeof(double),
                out_.data() + (i + 1) * stride() + 1,
                config_.nx * sizeof(double));
  }
}

void StencilWorkload::read_results(std::size_t begin, std::size_t end,
                                   const std::uint8_t* in) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.ny);
  for (std::size_t i = begin; i < end; ++i) {
    std::memcpy(out_.data() + (i + 1) * stride() + 1,
                in + (i - begin) * config_.nx * sizeof(double),
                config_.nx * sizeof(double));
  }
}

void StencilWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.ny);
  if (begin == end) return;
  auto* const kernel =
      kdisp::KernelRegistry::instance().select<kdisp::StencilRowsFn>(
          kdisp::kStencilKernel, kdisp::classify_width(config_.nx));
  kernel(in_.data(), out_.data(), config_.nx, begin, end, kC0, kC1);
}

}  // namespace plbhec::apps
