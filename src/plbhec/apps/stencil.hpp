#pragma once
/// \file stencil.hpp
/// 2D 5-point stencil sweep (the memory-streaming family): one Jacobi-style
/// relaxation step over an (ny x nx) interior with a fixed halo,
///   out = c0*in[c] + c1*((in[w]+in[e]) + (in[n]+in[s])).
/// A grain is one interior row; blocks write disjoint output rows and only
/// read the immutable input grid, so any partition is race-free. The row
/// kernel is resolved through the kdisp registry (scalar / AVX2 / AVX-512
/// variants — elementwise, so every lane width is bit-identical).
///
/// Arithmetic intensity is ~6 flops per 16+ streamed bytes: the family
/// lives on the memory roof, the opposite regime from matmul/n-body.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

class StencilWorkload final : public rt::Workload {
 public:
  struct Config {
    std::size_t nx = 512;      ///< interior row width (cells)
    std::size_t ny = 100'000;  ///< interior rows (grains)
    bool materialize = false;  ///< allocate the real grids
    std::uint64_t seed = 0x57e4c11;
  };

  explicit StencilWorkload(Config config);

  /// Production-mesh-scale instance for simulation-only studies.
  [[nodiscard]] static Config paper_instance(std::size_t ny) {
    return Config{2048, ny, false, 0x57e4c11};
  }

  [[nodiscard]] std::string name() const override { return "Stencil"; }
  [[nodiscard]] std::size_t total_grains() const override {
    return config_.ny;
  }
  [[nodiscard]] double bytes_per_grain() const override {
    // One padded input row per grain; the two halo rows a block also reads
    // are amortized across its rows.
    return static_cast<double>(config_.nx + 2) * sizeof(double);
  }
  [[nodiscard]] sim::WorkloadProfile profile() const override;

  void execute_cpu(std::size_t begin, std::size_t end) override;
  [[nodiscard]] bool supports_real_execution() const override {
    return config_.materialize;
  }

  /// Remote execution: the daemon rebuilds the same seeded grid and ships
  /// swept interior rows back.
  [[nodiscard]] std::string remote_spec() const override;
  [[nodiscard]] std::size_t result_bytes(std::size_t begin,
                                         std::size_t end) const override;
  void write_results(std::size_t begin, std::size_t end,
                     std::uint8_t* out) const override;
  void read_results(std::size_t begin, std::size_t end,
                    const std::uint8_t* in) override;

  /// Grid access for validation (real mode only); padded (ny+2) x (nx+2),
  /// row-major.
  [[nodiscard]] const std::vector<double>& input() const { return in_; }
  [[nodiscard]] const std::vector<double>& output() const { return out_; }

  static constexpr double kC0 = 0.5;
  static constexpr double kC1 = 0.125;

 private:
  [[nodiscard]] std::size_t stride() const { return config_.nx + 2; }

  Config config_;
  std::vector<double> in_, out_;
};

}  // namespace plbhec::apps
