#include "plbhec/apps/nbody.hpp"

#include <cstring>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"

namespace plbhec::apps {

NbodyWorkload::NbodyWorkload(Config config) : config_(config) {
  PLBHEC_EXPECTS(config_.bodies > 0);
  if (!config_.materialize) return;
  Rng rng(config_.seed);
  px_.resize(config_.bodies);
  py_.resize(config_.bodies);
  pz_.resize(config_.bodies);
  mass_.resize(config_.bodies);
  for (std::size_t i = 0; i < config_.bodies; ++i) {
    px_[i] = rng.uniform(-1.0, 1.0);
    py_[i] = rng.uniform(-1.0, 1.0);
    pz_[i] = rng.uniform(-1.0, 1.0);
    mass_[i] = rng.uniform(0.1, 1.0);
  }
  ax_.assign(config_.bodies, 0.0);
  ay_.assign(config_.bodies, 0.0);
  az_.assign(config_.bodies, 0.0);
}

sim::WorkloadProfile NbodyWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "nbody";
  const double n = static_cast<double>(config_.bodies);
  // ~20 flops per pair (3 sub, 6 mul/add for r2, rsqrt-equivalent ~5, 6
  // accumulate).
  p.flops_per_grain = 20.0 * n;
  p.bytes_per_grain = bytes_per_grain();
  // Position tiles stay cache/shared-memory resident; effective traffic
  // per grain is a small multiple of the body record.
  p.device_bytes_per_grain = 64.0;
  p.gpu_threads_per_grain = 1.0;  // body-per-thread kernel
  p.cpu_parallel_fraction = 0.995;
  // Dense FMA-rich arithmetic runs near peak on both device kinds.
  p.gpu_efficiency = 0.75;
  p.cpu_efficiency = 0.60;
  // A GPU covers its pipeline with a few thousand bodies in flight.
  p.gpu_saturation_grains = 4096.0;
  return p;
}

std::string NbodyWorkload::remote_spec() const {
  if (!config_.materialize) return {};
  return "nbody:bodies=" + std::to_string(config_.bodies) +
         ",seed=" + std::to_string(config_.seed);
}

std::size_t NbodyWorkload::result_bytes(std::size_t begin,
                                        std::size_t end) const {
  PLBHEC_EXPECTS(begin <= end && end <= config_.bodies);
  return config_.materialize ? (end - begin) * 3 * sizeof(double) : 0;
}

void NbodyWorkload::write_results(std::size_t begin, std::size_t end,
                                  std::uint8_t* out) const {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.bodies);
  for (std::size_t i = begin; i < end; ++i) {
    const double triple[3] = {ax_[i], ay_[i], az_[i]};
    std::memcpy(out + (i - begin) * sizeof(triple), triple, sizeof(triple));
  }
}

void NbodyWorkload::read_results(std::size_t begin, std::size_t end,
                                 const std::uint8_t* in) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.bodies);
  for (std::size_t i = begin; i < end; ++i) {
    double triple[3];
    std::memcpy(triple, in + (i - begin) * sizeof(triple), sizeof(triple));
    ax_[i] = triple[0];
    ay_[i] = triple[1];
    az_[i] = triple[2];
  }
}

void NbodyWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(config_.materialize);
  PLBHEC_EXPECTS(begin <= end && end <= config_.bodies);
  if (begin == end) return;
  auto* const kernel =
      kdisp::KernelRegistry::instance().select<kdisp::NbodyAccelFn>(
          kdisp::kNbodyKernel, kdisp::classify_width(config_.bodies));
  kernel(px_.data(), py_.data(), pz_.data(), mass_.data(), config_.bodies,
         kEps2, ax_.data(), ay_.data(), az_.data(), begin, end);
}

}  // namespace plbhec::apps
