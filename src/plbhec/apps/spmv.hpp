#pragma once
/// \file spmv.hpp
/// CSR sparse matrix-vector product over a deterministic synthetic graph
/// (the irregular, bandwidth-bound family; cf. the sparse-distribution
/// study in PAPERS.md). A grain is one matrix row: y[i] = A[i,:] * x. Row
/// degrees are deliberately skewed — most rows carry ~nnz_per_row entries
/// but a deterministic minority are hubs with several times the mean — so
/// per-grain cost is non-uniform and the x-gather has no locality. The
/// row kernel itself is resolved through the kdisp registry (scalar /
/// AVX2-gather variants, bit-identical by contract).
///
/// In real mode the CSR arrays, x and y are materialized from the seed;
/// in simulated runs only the cost profile matters.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "plbhec/rt/workload.hpp"

namespace plbhec::apps {

class SpmvWorkload final : public rt::Workload {
 public:
  struct Config {
    std::size_t rows = 100'000;     ///< matrix rows (grains)
    std::size_t nnz_per_row = 32;   ///< mean nonzeros per row
    bool materialize = false;       ///< allocate the real CSR arrays
    std::uint64_t seed = 0x59a125;
  };

  explicit SpmvWorkload(Config config);

  /// Web-graph-scale instance for simulation-only studies.
  [[nodiscard]] static Config paper_instance(std::size_t rows) {
    return Config{rows, 48, false, 0x59a125};
  }

  [[nodiscard]] std::string name() const override { return "SpMV"; }
  [[nodiscard]] std::size_t total_grains() const override {
    return config_.rows;
  }
  [[nodiscard]] double bytes_per_grain() const override {
    // One CSR row is shipped per grain (4-byte column + 8-byte value per
    // nonzero); x is predistributed to every unit like matmul's B.
    return static_cast<double>(config_.nnz_per_row) * 12.0;
  }
  [[nodiscard]] sim::WorkloadProfile profile() const override;

  void execute_cpu(std::size_t begin, std::size_t end) override;
  [[nodiscard]] bool supports_real_execution() const override {
    return config_.materialize;
  }

  /// Remote execution: the daemon regrows the same seeded graph and ships
  /// computed y entries back.
  [[nodiscard]] std::string remote_spec() const override;
  [[nodiscard]] std::size_t result_bytes(std::size_t begin,
                                         std::size_t end) const override;
  void write_results(std::size_t begin, std::size_t end,
                     std::uint8_t* out) const override;
  void read_results(std::size_t begin, std::size_t end,
                    const std::uint8_t* in) override;

  /// Result / structure access for validation (real mode only).
  [[nodiscard]] const std::vector<double>& y() const { return y_; }
  [[nodiscard]] const std::vector<std::uint32_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& cols() const {
    return cols_;
  }
  [[nodiscard]] const std::vector<double>& vals() const { return vals_; }
  [[nodiscard]] const std::vector<double>& x() const { return x_; }

 private:
  Config config_;
  std::vector<std::uint32_t> row_ptr_;  ///< rows + 1 offsets
  std::vector<std::uint32_t> cols_;
  std::vector<double> vals_;
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace plbhec::apps
