#include "plbhec/apps/blackscholes.hpp"

#include <cmath>
#include <cstring>

#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/exec/thread_pool.hpp"

namespace plbhec::apps {

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

OptionPrice black_scholes(const OptionQuote& q) {
  PLBHEC_EXPECTS(q.spot > 0.0 && q.strike > 0.0);
  PLBHEC_EXPECTS(q.volatility > 0.0 && q.expiry_years > 0.0);
  const double sqrt_t = std::sqrt(q.expiry_years);
  const double d1 =
      (std::log(q.spot / q.strike) +
       (q.rate + 0.5 * q.volatility * q.volatility) * q.expiry_years) /
      (q.volatility * sqrt_t);
  const double d2 = d1 - q.volatility * sqrt_t;
  const double discount = std::exp(-q.rate * q.expiry_years);

  OptionPrice p;
  p.call = q.spot * normal_cdf(d1) - q.strike * discount * normal_cdf(d2);
  p.put = q.strike * discount * normal_cdf(-d2) - q.spot * normal_cdf(-d1);
  return p;
}

BlackScholesWorkload::BlackScholesWorkload(Config config) : config_(config) {
  PLBHEC_EXPECTS(config_.options > 0);
  quotes_.resize(config_.options);
  prices_.assign(config_.options, {});
  Rng rng(config_.seed);
  for (auto& q : quotes_) {
    q.spot = rng.uniform(5.0, 250.0);
    q.strike = rng.uniform(5.0, 250.0);
    q.rate = rng.uniform(0.005, 0.08);
    q.volatility = rng.uniform(0.05, 0.9);
    q.expiry_years = rng.uniform(0.1, 5.0);
  }
}

sim::WorkloadProfile BlackScholesWorkload::profile() const {
  sim::WorkloadProfile p;
  p.name = "blackscholes";
  if (config_.mc_paths == 0) {
    // log, exp, sqrt, two erfc and arithmetic: ~200 flop-equivalents.
    p.flops_per_grain = 200.0;
  } else {
    // Each path-step: one Gaussian draw plus the GBM update (~10 flops).
    p.flops_per_grain = 10.0 * static_cast<double>(config_.mc_paths) *
                        static_cast<double>(config_.mc_steps);
  }
  p.bytes_per_grain = bytes_per_grain();
  p.device_bytes_per_grain = 7 * sizeof(double);  // 5 in + 2 out
  p.gpu_threads_per_grain =
      config_.mc_paths == 0 ? 1.0 : static_cast<double>(config_.mc_paths);
  p.cpu_parallel_fraction = 0.995;
  p.gpu_efficiency = 0.35;  // transcendental-heavy kernel
  p.cpu_efficiency = 0.40;
  // Streaming/batched kernels saturate the pipeline only with very many
  // in-flight options.
  p.gpu_saturation_grains = config_.mc_paths == 0 ? 16384.0 : 2048.0;
  return p;
}

OptionPrice BlackScholesWorkload::monte_carlo_price(
    const OptionQuote& q, std::uint64_t seed) const {
  PLBHEC_EXPECTS(config_.mc_paths > 0);
  Rng rng(seed);
  const double dt =
      q.expiry_years / static_cast<double>(config_.mc_steps);
  const double drift = (q.rate - 0.5 * q.volatility * q.volatility) * dt;
  const double diffusion = q.volatility * std::sqrt(dt);
  const double discount = std::exp(-q.rate * q.expiry_years);

  double call_sum = 0.0;
  double put_sum = 0.0;
  // Antithetic variates: each draw drives a +z and a -z path.
  for (std::size_t path = 0; path < config_.mc_paths; path += 2) {
    double log_s_pos = std::log(q.spot);
    double log_s_neg = log_s_pos;
    for (std::size_t step = 0; step < config_.mc_steps; ++step) {
      const double z = rng.normal();
      log_s_pos += drift + diffusion * z;
      log_s_neg += drift - diffusion * z;
    }
    for (double log_s : {log_s_pos, log_s_neg}) {
      const double terminal = std::exp(log_s);
      call_sum += std::max(terminal - q.strike, 0.0);
      put_sum += std::max(q.strike - terminal, 0.0);
    }
  }
  const double paths = static_cast<double>((config_.mc_paths + 1) / 2 * 2);
  OptionPrice p;
  p.call = discount * call_sum / paths;
  p.put = discount * put_sum / paths;
  return p;
}

std::string BlackScholesWorkload::remote_spec() const {
  return "blackscholes:options=" + std::to_string(config_.options) +
         ",paths=" + std::to_string(config_.mc_paths) +
         ",steps=" + std::to_string(config_.mc_steps) +
         ",seed=" + std::to_string(config_.seed);
}

std::size_t BlackScholesWorkload::result_bytes(std::size_t begin,
                                               std::size_t end) const {
  PLBHEC_EXPECTS(begin <= end && end <= quotes_.size());
  return (end - begin) * 2 * sizeof(double);
}

void BlackScholesWorkload::write_results(std::size_t begin, std::size_t end,
                                         std::uint8_t* out) const {
  PLBHEC_EXPECTS(begin <= end && end <= quotes_.size());
  for (std::size_t i = begin; i < end; ++i) {
    std::memcpy(out, &prices_[i].call, sizeof(double));
    std::memcpy(out + sizeof(double), &prices_[i].put, sizeof(double));
    out += 2 * sizeof(double);
  }
}

void BlackScholesWorkload::read_results(std::size_t begin, std::size_t end,
                                        const std::uint8_t* in) {
  PLBHEC_EXPECTS(begin <= end && end <= quotes_.size());
  for (std::size_t i = begin; i < end; ++i) {
    std::memcpy(&prices_[i].call, in, sizeof(double));
    std::memcpy(&prices_[i].put, in + sizeof(double), sizeof(double));
    in += 2 * sizeof(double);
  }
}

void BlackScholesWorkload::execute_cpu(std::size_t begin, std::size_t end) {
  PLBHEC_EXPECTS(begin <= end && end <= quotes_.size());
  // Closed-form pricing is cheap per option, Monte Carlo is paths*steps
  // heavier — size the parallel grain so small blocks stay inline.
  const std::size_t grain = config_.mc_paths == 0 ? 512 : 16;
  exec::parallel_for(begin, end, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (config_.mc_paths == 0)
        prices_[i] = black_scholes(quotes_[i]);
      else
        prices_[i] =
            monte_carlo_price(quotes_[i], config_.seed ^ (i * 0x9e37u));
    }
  });
}

}  // namespace plbhec::apps
