#include "plbhec/linalg/cholesky.hpp"

#include <cmath>

namespace plbhec::linalg {

std::optional<Cholesky> Cholesky::factor(const Matrix& a, double tol) {
  PLBHEC_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= tol) return std::nullopt;
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s * inv;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  PLBHEC_EXPECTS(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

bool is_positive_definite(const Matrix& a) {
  return Cholesky::factor(a).has_value();
}

}  // namespace plbhec::linalg
