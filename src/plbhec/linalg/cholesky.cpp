#include "plbhec/linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace plbhec::linalg {

std::optional<Cholesky> Cholesky::factor(const Matrix& a, double tol) {
  PLBHEC_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= tol) return std::nullopt;
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s * inv;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  PLBHEC_EXPECTS(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

bool is_positive_definite(const Matrix& a) {
  return Cholesky::factor(a).has_value();
}

std::optional<SpdSolve> solve_equilibrated_spd(const Matrix& g,
                                               std::span<const double> b,
                                               double rcond_floor,
                                               double refine_tol) {
  PLBHEC_EXPECTS(g.rows() == g.cols());
  PLBHEC_EXPECTS(b.size() == g.rows());
  const std::size_t n = g.rows();
  if (n == 0) return std::nullopt;

  Vector d(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double gjj = g(j, j);
    if (!(gjj > 0.0) || !std::isfinite(gjj)) return std::nullopt;
    d[j] = 1.0 / std::sqrt(gjj);
  }

  Matrix gs(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) gs(i, j) = g(i, j) * d[i] * d[j];

  const auto chol = Cholesky::factor(gs);
  if (!chol) return std::nullopt;

  // Cholesky pivots of an SPD matrix lie in [lambda_min, lambda_max]; on
  // the unit-diagonal system lambda_max <= n, so the smallest pivot over n
  // bounds the inverse condition number cheaply.
  double min_pivot = std::numeric_limits<double>::infinity();
  double max_pivot = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double p = chol->l()(j, j) * chol->l()(j, j);
    min_pivot = std::min(min_pivot, p);
    max_pivot = std::max(max_pivot, p);
  }
  const double rcond =
      min_pivot / (std::max(max_pivot, 1.0) * static_cast<double>(n));
  if (rcond < rcond_floor) return std::nullopt;

  Vector bs(n);
  for (std::size_t i = 0; i < n; ++i) bs[i] = b[i] * d[i];
  Vector xs = chol->solve(bs);

  // One refinement step in the scaled system; the correction magnitude
  // doubles as a direct accuracy certificate.
  Vector r(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = bs[i];
    for (std::size_t j = 0; j < n; ++j) acc -= gs(i, j) * xs[j];
    r[i] = acc;
  }
  const Vector dx = chol->solve(r);
  double nx = 0.0;
  double ndx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    nx += xs[i] * xs[i];
    ndx += dx[i] * dx[i];
    xs[i] += dx[i];
  }
  if (std::sqrt(ndx) > refine_tol * std::max(std::sqrt(nx), 1e-300))
    return std::nullopt;

  SpdSolve out;
  out.rcond_estimate = rcond;
  out.x.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.x[i] = xs[i] * d[i];
  return out;
}

}  // namespace plbhec::linalg
