#pragma once
/// \file qr.hpp
/// Householder QR factorization and least-squares solve. This is the
/// numerical core of the performance-curve fitting phase: design matrices
/// built from the paper's basis set {ln x, x, x^2, x^3, e^x, x e^x, x ln x}
/// are ill-conditioned, so we solve the LS problem with QR with column
/// norm equilibration rather than normal equations.

#include <optional>

#include "plbhec/linalg/matrix.hpp"

namespace plbhec::linalg {

/// Result of a least-squares solve.
struct LsSolution {
  Vector coefficients;   ///< minimizer of ||A c - b||_2
  double residual_norm;  ///< ||A c - b||_2
  std::size_t rank;      ///< numerical rank detected during factorization
};

/// Householder QR of an m x n matrix (m >= n stored compactly).
class Qr {
 public:
  /// Factorizes `a` (m >= n required).
  [[nodiscard]] static Qr factor(Matrix a);

  /// Minimizes ||A x - b||_2. Rank-deficient columns (|R_kk| below
  /// `rank_tol` * max |R_ii|) receive a zero coefficient, mimicking a
  /// truncated / pivot-free rank-revealing behaviour good enough for basis
  /// subsets of <= 8 columns.
  [[nodiscard]] LsSolution solve(std::span<const double> b,
                                 double rank_tol = 1e-10) const;

  [[nodiscard]] std::size_t rows() const { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const { return qr_.cols(); }

  /// |R_00 / R_{n-1,n-1}|-style conditioning diagnostic.
  [[nodiscard]] double r_diag_ratio() const;

 private:
  explicit Qr(Matrix qr, Vector beta) : qr_(std::move(qr)), beta_(std::move(beta)) {}

  Matrix qr_;    // R in the upper triangle, Householder vectors below
  Vector beta_;  // Householder scalars
};

/// One-shot least squares: minimizes ||A x - b||_2 with column scaling for
/// conditioning. Returns nullopt when A has zero columns only.
[[nodiscard]] std::optional<LsSolution> least_squares(const Matrix& a,
                                                      std::span<const double> b);

}  // namespace plbhec::linalg
