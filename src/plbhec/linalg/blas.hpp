#pragma once
/// \file blas.hpp
/// GEMM used as the *real* CPU kernel of the matrix multiplication
/// application (the paper uses CUBLAS on the GPU side; our host kernel
/// validates numerics while the simulator provides GPU timing). Both entry
/// points dispatch to the packed register-blocked micro-kernel in
/// exec/gemm_micro.hpp; the parallel variant fans row panels out over the
/// persistent work-stealing pool instead of spawning threads per call.

#include <cstddef>
#include <span>

namespace plbhec::linalg::blas {

/// C (m x n) += A (m x k) * B (k x n); row-major, leading dimensions =
/// logical widths. Serial packed micro-kernel.
void gemm(std::size_t m, std::size_t n, std::size_t k,
          std::span<const double> a, std::span<const double> b,
          std::span<double> c);

/// Multi-threaded variant: splits the m dimension into row panels executed
/// on the shared persistent pool, capped at `threads` lanes (>= 1). Falls
/// back to the serial kernel for small work.
void gemm_parallel(std::size_t m, std::size_t n, std::size_t k,
                   std::span<const double> a, std::span<const double> b,
                   std::span<double> c, unsigned threads);

}  // namespace plbhec::linalg::blas
