#pragma once
/// \file blas.hpp
/// Cache-blocked GEMM used as the *real* CPU kernel of the matrix
/// multiplication application (the paper uses CUBLAS on the GPU side; our
/// host kernel validates numerics while the simulator provides GPU timing).

#include <cstddef>
#include <span>

namespace plbhec::linalg::blas {

/// C (m x n) += A (m x k) * B (k x n); row-major, leading dimensions =
/// logical widths. Cache-blocked with an i-k-j loop order.
void gemm(std::size_t m, std::size_t n, std::size_t k,
          std::span<const double> a, std::span<const double> b,
          std::span<double> c);

/// Multi-threaded variant: splits the m dimension across `threads` host
/// threads (>= 1). Falls back to the serial kernel for small work.
void gemm_parallel(std::size_t m, std::size_t n, std::size_t k,
                   std::span<const double> a, std::span<const double> b,
                   std::span<double> c, unsigned threads);

}  // namespace plbhec::linalg::blas
