#pragma once
/// \file cholesky.hpp
/// Cholesky (LL^T) factorization for symmetric positive-definite systems.
/// Used for the normal-equation fallback in curve fitting and as a cheap
/// positive-definiteness probe in the interior-point Hessian regularization.

#include <optional>

#include "plbhec/linalg/matrix.hpp"

namespace plbhec::linalg {

class Cholesky {
 public:
  /// Factorizes a symmetric positive-definite matrix. Returns nullopt when
  /// a non-positive pivot is met (matrix not PD within tolerance).
  [[nodiscard]] static std::optional<Cholesky> factor(const Matrix& a,
                                                      double tol = 0.0);

  [[nodiscard]] Vector solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t size() const { return l_.rows(); }
  [[nodiscard]] const Matrix& l() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;  // lower-triangular factor
};

/// True iff `a` (assumed symmetric) is positive definite.
[[nodiscard]] bool is_positive_definite(const Matrix& a);

}  // namespace plbhec::linalg
