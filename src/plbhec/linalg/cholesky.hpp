#pragma once
/// \file cholesky.hpp
/// Cholesky (LL^T) factorization for symmetric positive-definite systems.
/// Used for the normal-equation fallback in curve fitting and as a cheap
/// positive-definiteness probe in the interior-point Hessian regularization.

#include <optional>

#include "plbhec/linalg/matrix.hpp"

namespace plbhec::linalg {

class Cholesky {
 public:
  /// Factorizes a symmetric positive-definite matrix. Returns nullopt when
  /// a non-positive pivot is met (matrix not PD within tolerance).
  [[nodiscard]] static std::optional<Cholesky> factor(const Matrix& a,
                                                      double tol = 0.0);

  [[nodiscard]] Vector solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t size() const { return l_.rows(); }
  [[nodiscard]] const Matrix& l() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;  // lower-triangular factor
};

/// True iff `a` (assumed symmetric) is positive definite.
[[nodiscard]] bool is_positive_definite(const Matrix& a);

/// Result of an equilibrated SPD solve.
struct SpdSolve {
  Vector x;                     ///< solution of G x = b
  double rcond_estimate = 0.0;  ///< pivot-based estimate of 1/cond of the
                                ///< unit-diagonal scaled system
};

/// Solves the SPD system G x = b after symmetric diagonal equilibration
/// (scaling G to unit diagonal, which undoes the magnitude disparities of
/// Gram matrices built from mixed basis functions), with one step of
/// iterative refinement. Returns nullopt when G is not positive definite,
/// when the Cholesky pivots of the scaled system signal conditioning worse
/// than `rcond_floor`, or when the refinement correction shows the solution
/// is not trustworthy to ~`refine_tol` relative — callers should then fall
/// back to an orthogonal factorization of the original least-squares
/// problem instead of trusting squared-condition normal equations. The
/// default floor of 1e-7 caps the solve's forward error near
/// cond(G) * eps ~ 1e-9, keeping Gram-path coefficients within 1e-8 of a
/// QR solve of the unsquared system.
[[nodiscard]] std::optional<SpdSolve> solve_equilibrated_spd(
    const Matrix& g, std::span<const double> b, double rcond_floor = 1e-7,
    double refine_tol = 1e-9);

}  // namespace plbhec::linalg
