#include "plbhec/linalg/lu.hpp"

#include <cmath>
#include <limits>

namespace plbhec::linalg {

std::optional<Lu> Lu::factor(Matrix a, double pivot_tol) {
  PLBHEC_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude entry in column k.
    std::size_t piv = k;
    double piv_val = std::fabs(a(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(a(r, k));
      if (v > piv_val) {
        piv_val = v;
        piv = r;
      }
    }
    if (piv_val < pivot_tol) return std::nullopt;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(piv, c));
      std::swap(perm[k], perm[piv]);
      sign = -sign;
    }
    const double inv_piv = 1.0 / a(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = a(r, k) * inv_piv;
      a(r, k) = m;  // store L factor in-place
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) a(r, c) -= m * a(k, c);
    }
  }
  return Lu(std::move(a), std::move(perm), sign);
}

Vector Lu::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  PLBHEC_EXPECTS(b.size() == n);
  Vector x(n);
  // Apply permutation and forward-substitute L y = P b.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back-substitute U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  PLBHEC_EXPECTS(b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double Lu::determinant() const {
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::size_t Lu::negative_pivots() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < lu_.rows(); ++i)
    if (lu_(i, i) < 0.0) ++count;
  return count;
}

std::optional<Vector> solve(const Matrix& a, std::span<const double> b) {
  auto lu = Lu::factor(a);
  if (!lu) return std::nullopt;
  return lu->solve(b);
}

double condition_estimate(const Matrix& a) {
  PLBHEC_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  if (n == 0) return 0.0;
  auto lu = Lu::factor(a);
  if (!lu) return std::numeric_limits<double>::infinity();

  double norm_a = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) row_sum += std::fabs(a(r, c));
    norm_a = std::max(norm_a, row_sum);
  }

  // One step of Hager's estimator for ||A^{-1}||_inf using A^{-1} e / n.
  Vector e(n, 1.0 / static_cast<double>(n));
  Vector x = lu->solve(e);
  double norm_inv = 0.0;
  for (double v : x) norm_inv += std::fabs(v);
  return norm_a * norm_inv;
}

}  // namespace plbhec::linalg
