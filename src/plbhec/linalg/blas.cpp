#include "plbhec/linalg/blas.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "plbhec/common/contracts.hpp"

namespace plbhec::linalg::blas {
namespace {

constexpr std::size_t kBlockI = 64;
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

void gemm_rows(std::size_t row_begin, std::size_t row_end, std::size_t n,
               std::size_t k, std::span<const double> a,
               std::span<const double> b, std::span<double> c) {
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += kBlockI) {
    const std::size_t i1 = std::min(i0 + kBlockI, row_end);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
        const std::size_t j1 = std::min(j0 + kBlockJ, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* crow = &c[i * n];
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double aik = a[i * k + kk];
            if (aik == 0.0) continue;
            const double* brow = &b[kk * n];
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k,
          std::span<const double> a, std::span<const double> b,
          std::span<double> c) {
  PLBHEC_EXPECTS(a.size() >= m * k);
  PLBHEC_EXPECTS(b.size() >= k * n);
  PLBHEC_EXPECTS(c.size() >= m * n);
  gemm_rows(0, m, n, k, a, b, c);
}

void gemm_parallel(std::size_t m, std::size_t n, std::size_t k,
                   std::span<const double> a, std::span<const double> b,
                   std::span<double> c, unsigned threads) {
  PLBHEC_EXPECTS(threads >= 1);
  PLBHEC_EXPECTS(a.size() >= m * k);
  PLBHEC_EXPECTS(b.size() >= k * n);
  PLBHEC_EXPECTS(c.size() >= m * n);
  if (threads == 1 || m * n * k < 1u << 18) {
    gemm_rows(0, m, n, k, a, b, c);
    return;
  }
  const std::size_t chunk = (m + threads - 1) / threads;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t lo = std::min<std::size_t>(t * chunk, m);
    const std::size_t hi = std::min(lo + chunk, m);
    if (lo >= hi) break;
    pool.emplace_back([=] { gemm_rows(lo, hi, n, k, a, b, c); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace plbhec::linalg::blas
