#include "plbhec/linalg/blas.hpp"

#include "plbhec/common/contracts.hpp"
#include "plbhec/exec/gemm_micro.hpp"
#include "plbhec/exec/thread_pool.hpp"

namespace plbhec::linalg::blas {

void gemm(std::size_t m, std::size_t n, std::size_t k,
          std::span<const double> a, std::span<const double> b,
          std::span<double> c) {
  PLBHEC_EXPECTS(a.size() >= m * k);
  PLBHEC_EXPECTS(b.size() >= k * n);
  PLBHEC_EXPECTS(c.size() >= m * n);
  exec::gemm_packed(m, n, k, a.data(), b.data(), c.data());
}

void gemm_parallel(std::size_t m, std::size_t n, std::size_t k,
                   std::span<const double> a, std::span<const double> b,
                   std::span<double> c, unsigned threads) {
  PLBHEC_EXPECTS(threads >= 1);
  PLBHEC_EXPECTS(a.size() >= m * k);
  PLBHEC_EXPECTS(b.size() >= k * n);
  PLBHEC_EXPECTS(c.size() >= m * n);
  if (threads == 1 || m * n * k < 1u << 18) {
    exec::gemm_packed(m, n, k, a.data(), b.data(), c.data());
    return;
  }
  exec::gemm_packed_parallel(m, n, k, a.data(), b.data(), c.data(),
                             exec::ThreadPool::global(), threads);
}

}  // namespace plbhec::linalg::blas
