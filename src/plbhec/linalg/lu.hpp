#pragma once
/// \file lu.hpp
/// LU factorization with partial pivoting. Used to solve the (symmetric
/// indefinite, diagonally regularized) KKT systems of the interior-point
/// solver and for general small linear solves.

#include <optional>

#include "plbhec/linalg/matrix.hpp"

namespace plbhec::linalg {

/// PA = LU factorization holder.
class Lu {
 public:
  /// Factorizes `a` (square). Returns std::nullopt if the matrix is
  /// numerically singular (a pivot below `pivot_tol` in magnitude).
  [[nodiscard]] static std::optional<Lu> factor(Matrix a,
                                                double pivot_tol = 1e-13);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Solves A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// det(A) (product of pivots with sign of the permutation).
  [[nodiscard]] double determinant() const;

  /// Number of negative pivots in U. For a *symmetric* input this estimates
  /// the count of negative eigenvalues (matrix inertia), which the
  /// interior-point method uses to decide when to regularize the KKT system.
  [[nodiscard]] std::size_t negative_pivots() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

 private:
  Lu(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(sign) {}

  Matrix lu_;                        // combined L (unit diag) and U factors
  std::vector<std::size_t> perm_;    // row permutation
  int perm_sign_ = 1;
};

/// Convenience one-shot solve; returns nullopt when singular.
[[nodiscard]] std::optional<Vector> solve(const Matrix& a,
                                          std::span<const double> b);

/// Infinity-norm condition-number estimate via one LU solve with the
/// classic Hager/Higham power step. Returns +inf when singular.
[[nodiscard]] double condition_estimate(const Matrix& a);

}  // namespace plbhec::linalg
