#include "plbhec/linalg/matrix.hpp"

#include <cmath>

namespace plbhec::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    PLBHEC_EXPECTS(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Vector equilibrate_columns(Matrix& a) {
  Vector factor(a.cols(), 1.0);
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double norm = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) norm += a(r, c) * a(r, c);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      factor[c] = 1.0 / norm;
      for (std::size_t r = 0; r < a.rows(); ++r) a(r, c) *= factor[c];
    }
  }
  return factor;
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  PLBHEC_EXPECTS(a.cols() == x.size());
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, std::span<const double> x) {
  PLBHEC_EXPECTS(a.rows() == x.size());
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  PLBHEC_EXPECTS(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

double dot(std::span<const double> a, std::span<const double> b) {
  PLBHEC_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  PLBHEC_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

}  // namespace plbhec::linalg
