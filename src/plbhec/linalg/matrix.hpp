#pragma once
/// \file matrix.hpp
/// Dense row-major matrix and vector types. Sized for the library's needs:
/// curve-fitting design matrices (tens of rows, <10 columns), KKT systems for
/// the interior-point solver (a few dozen unknowns) and the real blocked-GEMM
/// kernel of the matrix-multiplication application.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "plbhec/common/contracts.hpp"

namespace plbhec::linalg {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    PLBHEC_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    PLBHEC_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    PLBHEC_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    PLBHEC_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Max absolute entry.
  [[nodiscard]] double max_abs() const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Scales each nonzero column of `a` to unit 2-norm in place and returns
/// the per-column factors applied (1 for all-zero columns). Solutions of
/// the scaled system map back via x[c] *= factor[c]. Shared by the QR
/// least-squares path and the Gram-matrix fast path so both see the same
/// conditioning treatment of wildly different basis magnitudes (x^3 vs
/// e^x vs ln x).
Vector equilibrate_columns(Matrix& a);

/// y = A x. Sizes must agree.
[[nodiscard]] Vector matvec(const Matrix& a, std::span<const double> x);
/// y = A^T x.
[[nodiscard]] Vector matvec_transposed(const Matrix& a,
                                       std::span<const double> x);
/// C = A B (naive; for small systems — use blas::gemm for the app kernel).
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double norm2(std::span<const double> a);
[[nodiscard]] double norm_inf(std::span<const double> a);
/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
/// x *= alpha
void scale(std::span<double> x, double alpha);

}  // namespace plbhec::linalg
