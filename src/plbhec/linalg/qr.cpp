#include "plbhec/linalg/qr.hpp"

#include <cmath>
#include <limits>

namespace plbhec::linalg {

Qr Qr::factor(Matrix a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  PLBHEC_EXPECTS(m >= n);
  Vector beta(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta[k] = 0.0;
      continue;
    }
    const double alpha = a(k, k) >= 0.0 ? -norm : norm;
    const double v0 = a(k, k) - alpha;
    // v = [v0, a(k+1..m-1, k)]; normalize so v[0] = 1 (stored implicitly).
    double vtv = v0 * v0;
    for (std::size_t i = k + 1; i < m; ++i) vtv += a(i, k) * a(i, k);
    if (vtv == 0.0) {
      beta[k] = 0.0;
      a(k, k) = alpha;
      continue;
    }
    beta[k] = 2.0 * v0 * v0 / vtv;  // beta for the v/v0-scaled vector
    const double inv_v0 = 1.0 / v0;
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) *= inv_v0;
    a(k, k) = alpha;

    // Apply H = I - beta v v^T to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * a(i, j);
      s *= beta[k];
      a(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= s * a(i, k);
    }
  }
  return Qr(std::move(a), std::move(beta));
}

LsSolution Qr::solve(std::span<const double> b, double rank_tol) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  PLBHEC_EXPECTS(b.size() == m);

  // y = Q^T b by applying the stored Householder reflections in order.
  Vector y(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }

  double max_diag = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    max_diag = std::max(max_diag, std::fabs(qr_(k, k)));
  const double tol = rank_tol * (max_diag > 0.0 ? max_diag : 1.0);

  LsSolution sol;
  sol.coefficients.assign(n, 0.0);
  sol.rank = 0;
  // Back substitution on R, zeroing rank-deficient coordinates.
  for (std::size_t kk = n; kk-- > 0;) {
    if (std::fabs(qr_(kk, kk)) <= tol) {
      sol.coefficients[kk] = 0.0;
      continue;
    }
    double acc = y[kk];
    for (std::size_t j = kk + 1; j < n; ++j)
      acc -= qr_(kk, j) * sol.coefficients[j];
    sol.coefficients[kk] = acc / qr_(kk, kk);
    ++sol.rank;
  }

  double res = 0.0;
  for (std::size_t i = n; i < m; ++i) res += y[i] * y[i];
  // Add contributions from zeroed (rank-deficient) rows.
  for (std::size_t k = 0; k < n; ++k) {
    if (std::fabs(qr_(k, k)) <= tol) {
      double acc = y[k];
      for (std::size_t j = k + 1; j < n; ++j)
        acc -= qr_(k, j) * sol.coefficients[j];
      res += acc * acc;
    }
  }
  sol.residual_norm = std::sqrt(res);
  return sol;
}

double Qr::r_diag_ratio() const {
  const std::size_t n = qr_.cols();
  if (n == 0) return 0.0;
  double mx = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    const double d = std::fabs(qr_(k, k));
    mx = std::max(mx, d);
    mn = std::min(mn, d);
  }
  return mn == 0.0 ? std::numeric_limits<double>::infinity() : mx / mn;
}

std::optional<LsSolution> least_squares(const Matrix& a,
                                        std::span<const double> b) {
  PLBHEC_EXPECTS(a.rows() == b.size());
  const std::size_t n = a.cols();
  if (n == 0 || a.rows() < n) return std::nullopt;

  // Column equilibration: scale each column to unit 2-norm so the wildly
  // different magnitudes of the basis functions (x^3 vs ln x) do not destroy
  // the factorization.
  Matrix scaled = a;
  const Vector col_scale = equilibrate_columns(scaled);
  if (scaled.max_abs() == 0.0) return std::nullopt;  // every column zero

  auto sol = Qr::factor(std::move(scaled)).solve(b);
  for (std::size_t c = 0; c < n; ++c) sol.coefficients[c] *= col_scale[c];
  return sol;
}

}  // namespace plbhec::linalg
