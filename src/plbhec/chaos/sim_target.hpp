#pragma once
/// \file sim_target.hpp
/// FaultTarget over the simulated cluster. Delivery is pre-registration:
/// every event lands on the SimCluster's virtual timeline (speed / link
/// event lists) before the engine runs, so a whole script is injected with
/// one chaos::inject() call and the run is bit-deterministic per seed.
///
/// Kind mapping (the scheduler-visible contract of fault.hpp):
///  * kill / freeze / partition -> a speed-0 event, which SimEngine turns
///    into a permanent failure + on_unit_failed at exactly that virtual
///    time. The three detection mechanisms of the real transport collapse
///    to one in virtual time — deliberately, since the scheduler cannot
///    tell them apart either.
///  * slow-down -> a speed event with the given factor.
///  * link-degrade -> a link event (extra latency, scaled bandwidth).

#include "plbhec/chaos/fault.hpp"
#include "plbhec/sim/cluster.hpp"

namespace plbhec::chaos {

class SimFaultTarget final : public FaultTarget {
 public:
  explicit SimFaultTarget(sim::SimCluster& cluster) : cluster_(cluster) {}

  [[nodiscard]] std::size_t unit_count() const override {
    return cluster_.size();
  }
  [[nodiscard]] bool supports(FaultKind) const override { return true; }
  void deliver(const FaultEvent& event) override;

 private:
  sim::SimCluster& cluster_;
};

}  // namespace plbhec::chaos
