#pragma once
/// \file fault.hpp
/// The fault-injection seam: one scripted description of worker and link
/// faults, keyed on virtual time, replayable unchanged against any
/// FaultTarget — the simulated cluster (events pre-registered on the
/// virtual timeline, chaos/sim_target.hpp) or a rig of real worker
/// daemons (events delivered by a wall-clock player, chaos/net_target.hpp).
///
/// The contract every target honors is the *scheduler-visible* one, not a
/// mechanism-level one: kill, freeze and partition all end in the unit's
/// permanent demotion (Scheduler::on_unit_failed) with zero lost grains —
/// they differ only in the detection path (I/O error, heartbeat timeout,
/// heartbeat timeout) — while slow-down and link degradation change the
/// observed timings without demotion. A script that demotes units in a
/// given order therefore produces the same demotion order on either side
/// of the seam, which tests/test_chaos.cpp asserts.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace plbhec::chaos {

enum class FaultKind : std::uint8_t {
  kKill,         ///< process crash: connections cut, immediate-error demotion
  kFreeze,       ///< hung process: open but silent, heartbeat-timeout demotion
  kPartition,    ///< network partition: unreachable worker, same demotion path
  kSlowDown,     ///< QoS degradation: unit runs at `factor` of nominal speed
  kLinkDegrade,  ///< extra path latency and/or scaled bandwidth, no demotion
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// True for the kinds whose scheduler-visible outcome is a permanent
/// demotion of the unit (kill / freeze / partition).
[[nodiscard]] constexpr bool demotes(FaultKind kind) {
  return kind == FaultKind::kKill || kind == FaultKind::kFreeze ||
         kind == FaultKind::kPartition;
}

struct FaultEvent {
  double time_s = 0.0;   ///< virtual delivery time, relative to run start
  std::size_t unit = 0;  ///< target processing unit (engine id order)
  FaultKind kind = FaultKind::kKill;
  double factor = 1.0;  ///< kSlowDown: speed multiplier in (0, 1];
                        ///< kLinkDegrade: bandwidth multiplier in (0, 1]
  double extra_latency_s = 0.0;  ///< kLinkDegrade: added path latency
};

/// An ordered fault schedule. Built through the fluent helpers so scripts
/// read like the scenario they describe; events may be added in any order
/// and are delivered sorted by time (ties in insertion order).
struct FaultScript {
  std::string name = "none";
  std::vector<FaultEvent> events;

  FaultScript& kill(std::size_t unit, double time_s);
  FaultScript& freeze(std::size_t unit, double time_s);
  FaultScript& partition(std::size_t unit, double time_s);
  FaultScript& slow_down(std::size_t unit, double time_s, double factor);
  FaultScript& degrade_link(std::size_t unit, double time_s,
                            double extra_latency_s, double bandwidth_factor);

  /// Events in delivery order (stable sort by time).
  [[nodiscard]] std::vector<FaultEvent> sorted() const;
  /// Units the script permanently demotes, in delivery order.
  [[nodiscard]] std::vector<std::size_t> demoted_units() const;
  /// Largest unit index referenced; 0 for an empty script.
  [[nodiscard]] std::size_t max_unit() const;
  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// One side of the seam: anything that can realize scripted faults.
class FaultTarget {
 public:
  virtual ~FaultTarget() = default;

  /// Number of addressable processing units.
  [[nodiscard]] virtual std::size_t unit_count() const = 0;

  /// Capability probe: a target that cannot express a fault kind (e.g.
  /// real TCP sockets have no scriptable link bandwidth) rejects the
  /// whole script up front instead of silently dropping events.
  [[nodiscard]] virtual bool supports(FaultKind kind) const = 0;

  /// Realizes one event. The simulated target registers it on the virtual
  /// timeline at event.time_s; the networked target acts immediately (the
  /// ScriptPlayer is responsible for calling at the right wall moment).
  virtual void deliver(const FaultEvent& event) = 0;
};

/// Validates `script` against `target` (unit range + capabilities) and
/// delivers every event in time order. Returns false — with nothing
/// delivered — when any event is out of range or unsupported. For
/// timeline-based targets this is the whole injection; wall-clock targets
/// are driven through chaos::ScriptPlayer instead, which uses the same
/// validation.
bool inject(const FaultScript& script, FaultTarget& target);

/// The validation half of inject(), shared with ScriptPlayer.
[[nodiscard]] bool validate(const FaultScript& script,
                            const FaultTarget& target);

}  // namespace plbhec::chaos
