#pragma once
/// \file scenario.hpp
/// The scenario matrix: the cross-product of cluster shapes (2–256 units,
/// mild to extreme heterogeneity), workload mixes (regular / irregular /
/// mixed profile shapes) and fault scripts, each cell run for PLB-HeC and
/// every baseline on the simulated executor. This is the large-scale
/// counterpart of the paper's three-app, four-machine evaluation: the
/// regime where scheduler rankings flip with cluster shape and workload
/// irregularity, which a single-scenario bench gate cannot see.
///
/// Everything is deterministic per cell id: the cluster, the workload, the
/// fault script and the engine noise streams are all derived from the
/// cell's (shape, workload, fault, seed) tuple, so any cell replays
/// bit-identically from its id alone — `bench/matrix --cell '<id>'` — and
/// CI failures can name the exact cell to reproduce.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plbhec/chaos/fault.hpp"
#include "plbhec/rt/workload.hpp"
#include "plbhec/sim/cluster.hpp"
#include "plbhec/sim/workload_profile.hpp"

namespace plbhec::chaos {

/// PLB-HeC wins a cell when its makespan is within this fraction of the
/// best baseline's (ties caused by FP noise must not flip the win bit).
inline constexpr double kTieTolerance = 0.02;

/// Cell coordinates. The id round-trips: parse_cell_id(c.id()) == c.
struct ScenarioCell {
  std::string shape;     ///< e.g. "u16-mild" (see shape_names())
  std::string workload;  ///< "regular" | "irregular" | "mixed"
  std::string fault;     ///< see fault_names()
  std::uint64_t seed = 1;

  [[nodiscard]] std::string id() const;
  bool operator==(const ScenarioCell&) const = default;
};

/// "u<N>-<het>/<workload>/<fault>@<seed>" -> cell; nullopt on malformed
/// ids or names outside the registries.
[[nodiscard]] std::optional<ScenarioCell> parse_cell_id(
    const std::string& id);

/// The grid axes. Shapes are "u<units>-<heterogeneity>" with units in
/// {2, 4, 8, 16, 32, 64, 128, 256} and heterogeneity mild (unit speeds
/// within ~2x of each other) or extreme (~2 orders of magnitude spread,
/// slow edge links — the regime where single-number weight models break).
[[nodiscard]] const std::vector<std::string>& shape_names();
[[nodiscard]] const std::vector<std::string>& workload_names();
[[nodiscard]] const std::vector<std::string>& fault_names();
[[nodiscard]] const std::vector<std::string>& scheduler_names();

/// The full cross-product, `seeds` seeds per coordinate (nightly CI).
[[nodiscard]] std::vector<ScenarioCell> full_grid(std::size_t seeds = 1);
/// Deterministic ~20-cell subset covering every axis value at least once
/// (the per-PR smoke gate).
[[nodiscard]] std::vector<ScenarioCell> smoke_grid();

// ---- Cell ingredients (exposed for tests) --------------------------------

/// Instance sizes are weak-scaled: each workload's size knob doubles from
/// its paper-instance floor until the ideal equal-finish-time makespan
/// reaches this horizon, so per-unit work stays substantive (and probing
/// amortizable) at every cluster size instead of shrinking toward
/// per-block latency noise at 256 units.
inline constexpr double kTargetHorizon = 1.0;

/// Deterministic cluster for a shape name; aborts on unknown shapes.
[[nodiscard]] sim::SimCluster make_cluster(const std::string& shape,
                                           std::uint64_t seed);
/// The paper's applications plus the dispatched kernel families as grid
/// workload mixes: "regular" = MatMul (uniform compute-bound grains).
/// "irregular" alternates on the cell seed between GRN inference (odd
/// seeds: divergent pair search, nonlinear GPU curves) and CSR SpMV
/// (even seeds: skewed row degrees, bandwidth-bound gathers), "mixed"
/// between Monte-Carlo BlackScholes (odd: cheap compute-heavy grains in
/// bulk) and the 2D stencil sweep (even: memory-streaming) — so the
/// grid's irregular/mixed columns cover both members of each regime
/// while every cell stays deterministic per (mix, cluster, seed).
/// Aborts on unknown names.
[[nodiscard]] std::unique_ptr<rt::Workload> make_workload(
    const std::string& mix, const sim::SimCluster& cluster,
    std::uint64_t seed = 1);
/// Equal-finish-time estimate of the cell's makespan (noise-free); fault
/// scripts key their event times on fractions of this horizon. With
/// `bytes_per_grain` > 0 each unit's share includes its nominal wire
/// time, which is what keeps the bandwidth-bound families (spmv,
/// stencil: heavy bytes per cheap grain) from being weak-scaled into
/// transfer-dominated degenerate cells where every fault fires at t~0.
[[nodiscard]] double nominal_horizon(const sim::SimCluster& cluster,
                                     const sim::WorkloadProfile& profile,
                                     std::size_t total_grains,
                                     double bytes_per_grain = 0.0);
/// Named fault script for a cluster of `units` units and horizon `T`;
/// aborts on unknown names. Scripts never demote every unit.
[[nodiscard]] FaultScript make_fault_script(const std::string& fault,
                                            std::size_t units, double horizon);

// ---- Running a cell ------------------------------------------------------

/// One scheduler's row entry in a cell.
struct SchedulerOutcome {
  std::string scheduler;
  bool ok = false;
  std::string error;
  double makespan = 0.0;
  std::size_t grains_completed = 0;
  std::size_t grains_requeued = 0;  ///< in-flight grains faults bounced
  /// total_grains - grains_completed on a finished run: the gate's
  /// "lost grain" — work that silently vanished. Always 0 on ok runs.
  std::size_t lost_grains = 0;
  std::size_t failed_units = 0;
  std::size_t barriers = 0;
  std::size_t rebalances = 0;      ///< PLB-HeC only
  std::size_t solves = 0;          ///< PLB-HeC only
  double probe_overhead = 0.0;     ///< PLB-HeC modeling grains / total
};

struct CellResult {
  ScenarioCell cell;
  std::size_t units = 0;
  std::size_t total_grains = 0;
  std::vector<SchedulerOutcome> outcomes;  ///< scheduler_names() order
  double plb_makespan = 0.0;
  double best_baseline_makespan = 0.0;
  std::string best_baseline;
  double plb_vs_best = 0.0;  ///< plb_makespan / best_baseline_makespan
  bool plb_win = false;      ///< plb <= best * (1 + kTieTolerance)
  bool grains_accounted = false;  ///< every scheduler finished every grain
};

/// Runs every scheduler on the cell. Bit-deterministic per cell id.
[[nodiscard]] CellResult run_cell(const ScenarioCell& cell);

}  // namespace plbhec::chaos
