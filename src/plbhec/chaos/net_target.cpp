#include "plbhec/chaos/net_target.hpp"

#include <algorithm>

#include "plbhec/common/contracts.hpp"

namespace plbhec::chaos {

void NetFaultTarget::deliver(const FaultEvent& event) {
  PLBHEC_EXPECTS(event.unit < daemons_.size());
  net::WorkerDaemon* daemon = daemons_[event.unit];
  PLBHEC_EXPECTS(daemon != nullptr);  // local units are not behind the seam
  switch (event.kind) {
    case FaultKind::kKill:
      daemon->kill();
      break;
    case FaultKind::kFreeze:
    case FaultKind::kPartition:
      daemon->freeze();
      break;
    case FaultKind::kSlowDown:
      // factor is the fraction of nominal speed the unit keeps; the daemon
      // expresses that as a stretch of >= 1.
      daemon->set_slowdown(std::max(1.0, daemon->slowdown() / event.factor));
      break;
    case FaultKind::kLinkDegrade:
      PLBHEC_ASSERT(false && "rejected by supports()");
  }
}

ScriptPlayer::ScriptPlayer(FaultScript script, FaultTarget& target,
                           Options options)
    : script_(std::move(script)), target_(target),
      options_(std::move(options)) {
  PLBHEC_EXPECTS(validate(script_, target_));
  PLBHEC_EXPECTS(options_.time_scale > 0.0);
}

ScriptPlayer::~ScriptPlayer() { join(); }

void ScriptPlayer::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void ScriptPlayer::join() {
  if (thread_.joinable()) thread_.join();
}

void ScriptPlayer::run() {
  using Clock = std::chrono::steady_clock;
  if (options_.armed) {
    const auto give_up = Clock::now() + options_.arm_timeout;
    while (!options_.armed()) {
      if (Clock::now() >= give_up) {
        dropped_ = script_.events.size();
        return;
      }
      std::this_thread::sleep_for(options_.poll);
    }
  }
  const auto t0 = Clock::now();
  for (const auto& event : script_.sorted()) {
    const auto due =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(event.time_s *
                                               options_.time_scale));
    std::this_thread::sleep_until(due);
    target_.deliver(event);
    ++delivered_;
  }
}

}  // namespace plbhec::chaos
