#include "plbhec/chaos/fault.hpp"

#include <algorithm>

#include "plbhec/common/contracts.hpp"

namespace plbhec::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill:
      return "kill";
    case FaultKind::kFreeze:
      return "freeze";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kSlowDown:
      return "slow-down";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
  }
  return "?";
}

FaultScript& FaultScript::kill(std::size_t unit, double time_s) {
  events.push_back({time_s, unit, FaultKind::kKill, 1.0, 0.0});
  return *this;
}

FaultScript& FaultScript::freeze(std::size_t unit, double time_s) {
  events.push_back({time_s, unit, FaultKind::kFreeze, 1.0, 0.0});
  return *this;
}

FaultScript& FaultScript::partition(std::size_t unit, double time_s) {
  events.push_back({time_s, unit, FaultKind::kPartition, 1.0, 0.0});
  return *this;
}

FaultScript& FaultScript::slow_down(std::size_t unit, double time_s,
                                    double factor) {
  PLBHEC_EXPECTS(factor > 0.0 && factor <= 1.0);
  events.push_back({time_s, unit, FaultKind::kSlowDown, factor, 0.0});
  return *this;
}

FaultScript& FaultScript::degrade_link(std::size_t unit, double time_s,
                                       double extra_latency_s,
                                       double bandwidth_factor) {
  PLBHEC_EXPECTS(extra_latency_s >= 0.0);
  PLBHEC_EXPECTS(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0);
  events.push_back(
      {time_s, unit, FaultKind::kLinkDegrade, bandwidth_factor,
       extra_latency_s});
  return *this;
}

std::vector<FaultEvent> FaultScript::sorted() const {
  std::vector<FaultEvent> out = events;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return out;
}

std::vector<std::size_t> FaultScript::demoted_units() const {
  std::vector<std::size_t> out;
  for (const auto& e : sorted())
    if (demotes(e.kind) &&
        std::find(out.begin(), out.end(), e.unit) == out.end())
      out.push_back(e.unit);
  return out;
}

std::size_t FaultScript::max_unit() const {
  std::size_t max = 0;
  for (const auto& e : events) max = std::max(max, e.unit);
  return max;
}

bool validate(const FaultScript& script, const FaultTarget& target) {
  for (const auto& e : script.events) {
    if (e.unit >= target.unit_count()) return false;
    if (!target.supports(e.kind)) return false;
    if (e.time_s < 0.0) return false;
  }
  return true;
}

bool inject(const FaultScript& script, FaultTarget& target) {
  if (!validate(script, target)) return false;
  for (const auto& e : script.sorted()) target.deliver(e);
  return true;
}

}  // namespace plbhec::chaos
