#pragma once
/// \file net_target.hpp
/// FaultTarget over a rig of real worker daemons, plus the wall-clock
/// ScriptPlayer that delivers a FaultScript against it. Together they are
/// the other side of the seam: the same script object that pre-registers
/// virtual-time events on a SimCluster drives kill()/freeze()/
/// set_slowdown() on live plbhec-workerd processes — the hooks the
/// failover tests in test_net.cpp already exercise by hand.
///
/// Kind mapping:
///  * kill      -> WorkerDaemon::kill() (connections cut; RemoteUnit sees
///                 I/O errors, reconnect fails, demotion)
///  * freeze    -> WorkerDaemon::freeze() (open but silent; heartbeat
///                 timeout, demotion)
///  * partition -> WorkerDaemon::freeze() as well — a blackholed network
///                 path and a hung process are indistinguishable from the
///                 coordinator side (open connections, silence), and both
///                 resolve through the heartbeat-timeout demotion path.
///  * slow-down -> WorkerDaemon::set_slowdown(nominal / factor): the unit
///                 runs at `factor` of its nominal speed from then on.
///  * link-degrade is NOT supported: a real loopback socket has no
///                 scriptable bandwidth. supports() says so and the
///                 validation in fault.hpp rejects such scripts up front.
///
/// Units map to daemons positionally; entries may be nullptr for units
/// that are local to the coordinator (a LocalExecUnit) — scripting a fault
/// on those is rejected by deliver() (contract violation), since the local
/// unit is not behind the seam.

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "plbhec/chaos/fault.hpp"
#include "plbhec/net/workerd.hpp"

namespace plbhec::chaos {

class NetFaultTarget final : public FaultTarget {
 public:
  /// `daemons[i]` backs unit i; nullptr marks a coordinator-local unit.
  /// Daemons are borrowed, not owned.
  explicit NetFaultTarget(std::vector<net::WorkerDaemon*> daemons)
      : daemons_(std::move(daemons)) {}

  [[nodiscard]] std::size_t unit_count() const override {
    return daemons_.size();
  }
  [[nodiscard]] bool supports(FaultKind kind) const override {
    return kind != FaultKind::kLinkDegrade;
  }
  void deliver(const FaultEvent& event) override;

 private:
  std::vector<net::WorkerDaemon*> daemons_;
};

/// Replays a FaultScript against a wall-clock target from a background
/// thread. Virtual script times become wall offsets (scaled by
/// `time_scale`) from the moment the `armed` predicate first returns true
/// — typically "the run is demonstrably in flight" (first block served),
/// the same anchor the hand-written failover tests use, so fault delivery
/// cannot race run startup.
class ScriptPlayer {
 public:
  struct Options {
    /// Polled until true before the clock starts. Default: armed at once.
    std::function<bool()> armed;
    /// Wall seconds per script second (scripts are usually written in
    /// virtual time much shorter than real runs).
    double time_scale = 1.0;
    std::chrono::milliseconds poll{1};
    /// Give up arming after this long (the run finished too fast); the
    /// remaining events are dropped and dropped_events() reports them.
    std::chrono::milliseconds arm_timeout{10'000};
  };

  /// Validates eagerly: aborts on a script the target cannot realize
  /// (fault.hpp validate()), so a bad rig is a test bug, not a silent
  /// no-op chaos run.
  ScriptPlayer(FaultScript script, FaultTarget& target, Options options);
  ~ScriptPlayer();
  ScriptPlayer(const ScriptPlayer&) = delete;
  ScriptPlayer& operator=(const ScriptPlayer&) = delete;

  /// Starts the delivery thread (idempotent).
  void start();
  /// Waits for every event to be delivered (or dropped by arm timeout).
  void join();

  [[nodiscard]] std::size_t delivered_events() const { return delivered_; }
  [[nodiscard]] std::size_t dropped_events() const { return dropped_; }

 private:
  void run();

  FaultScript script_;
  FaultTarget& target_;
  Options options_;
  std::thread thread_;
  bool started_ = false;
  std::size_t delivered_ = 0;  ///< written by the thread, read after join()
  std::size_t dropped_ = 0;
};

}  // namespace plbhec::chaos
