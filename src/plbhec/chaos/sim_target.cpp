#include "plbhec/chaos/sim_target.hpp"

namespace plbhec::chaos {

void SimFaultTarget::deliver(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kKill:
    case FaultKind::kFreeze:
    case FaultKind::kPartition:
      cluster_.fail_unit(event.unit, event.time_s);
      break;
    case FaultKind::kSlowDown:
      cluster_.add_speed_event(event.unit, event.time_s, event.factor);
      break;
    case FaultKind::kLinkDegrade:
      cluster_.add_link_event(event.unit, event.time_s,
                              event.extra_latency_s, event.factor);
      break;
  }
}

}  // namespace plbhec::chaos
