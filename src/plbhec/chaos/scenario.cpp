#include "plbhec/chaos/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <functional>
#include <memory>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/spmv.hpp"
#include "plbhec/apps/stencil.hpp"
#include "plbhec/baselines/acosta.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/baselines/hdss.hpp"
#include "plbhec/baselines/static_profile.hpp"
#include "plbhec/chaos/sim_target.hpp"
#include "plbhec/common/contracts.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/rt/workload.hpp"
#include "plbhec/sim/device.hpp"
#include "plbhec/sim/link.hpp"

namespace plbhec::chaos {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct ShapeSpec {
  std::size_t units = 0;
  /// Log-uniform half-spread of per-unit compute speed (1.5 = units within
  /// ~2x of each other, 12 = two orders of magnitude end to end).
  double speed_spread = 1.5;
  double link_spread = 1.2;
};

ShapeSpec parse_shape(const std::string& shape) {
  // "u<N>-mild" | "u<N>-extreme"
  PLBHEC_EXPECTS(shape.size() > 2 && shape[0] == 'u');
  const auto dash = shape.find('-');
  PLBHEC_EXPECTS(dash != std::string::npos);
  std::size_t units = 0;
  const auto [ptr, ec] = std::from_chars(
      shape.data() + 1, shape.data() + dash, units);
  PLBHEC_EXPECTS(ec == std::errc() && ptr == shape.data() + dash);
  PLBHEC_EXPECTS(units >= 2);
  const std::string het = shape.substr(dash + 1);
  ShapeSpec spec;
  spec.units = units;
  if (het == "mild") {
    spec.speed_spread = 1.5;
    spec.link_spread = 1.2;
  } else if (het == "extreme") {
    spec.speed_spread = 12.0;
    spec.link_spread = 8.0;
  } else {
    PLBHEC_EXPECTS(false && "unknown heterogeneity level");
  }
  return spec;
}

/// Log-uniform factor in [1/spread, spread].
double spread_factor(Rng& rng, double spread) {
  if (spread <= 1.0) return 1.0;
  return std::exp(rng.uniform(-std::log(spread), std::log(spread)));
}

/// Doubles a workload's size knob from its paper-instance floor until the
/// ideal equal-finish-time makespan reaches kTargetHorizon (weak scaling:
/// bigger clusters get proportionally bigger instances, so per-unit work
/// never degenerates into per-block latency noise).
std::unique_ptr<rt::Workload> scale_to_horizon(
    const sim::SimCluster& cluster,
    const std::function<std::unique_ptr<rt::Workload>(std::size_t)>& make,
    std::size_t floor_size) {
  std::size_t size = floor_size;
  auto workload = make(size);
  for (int i = 0; i < 24; ++i) {
    if (nominal_horizon(cluster, workload->profile(),
                        workload->total_grains(),
                        workload->bytes_per_grain()) >= kTargetHorizon)
      break;
    size *= 2;
    workload = make(size);
  }
  return workload;
}

}  // namespace

std::string ScenarioCell::id() const {
  return shape + "/" + workload + "/" + fault + "@" + std::to_string(seed);
}

std::optional<ScenarioCell> parse_cell_id(const std::string& id) {
  const auto s1 = id.find('/');
  if (s1 == std::string::npos) return std::nullopt;
  const auto s2 = id.find('/', s1 + 1);
  if (s2 == std::string::npos) return std::nullopt;
  const auto at = id.find('@', s2 + 1);
  if (at == std::string::npos) return std::nullopt;

  ScenarioCell cell;
  cell.shape = id.substr(0, s1);
  cell.workload = id.substr(s1 + 1, s2 - s1 - 1);
  cell.fault = id.substr(s2 + 1, at - s2 - 1);
  const std::string seed_str = id.substr(at + 1);
  const auto [ptr, ec] = std::from_chars(
      seed_str.data(), seed_str.data() + seed_str.size(), cell.seed);
  if (ec != std::errc() || ptr != seed_str.data() + seed_str.size())
    return std::nullopt;

  const auto known = [](const std::vector<std::string>& names,
                        const std::string& value) {
    return std::find(names.begin(), names.end(), value) != names.end();
  };
  if (!known(shape_names(), cell.shape) ||
      !known(workload_names(), cell.workload) ||
      !known(fault_names(), cell.fault))
    return std::nullopt;
  return cell;
}

const std::vector<std::string>& shape_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const int units : {2, 4, 8, 16, 32, 64, 128, 256}) {
      for (const char* het : {"mild", "extreme"}) {
        std::string name = "u";
        name += std::to_string(units);
        name += "-";
        name += het;
        out.push_back(std::move(name));
      }
    }
    return out;
  }();
  return names;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names{"regular", "irregular",
                                              "mixed"};
  return names;
}

const std::vector<std::string>& fault_names() {
  static const std::vector<std::string> names{
      "none",    "kill1",    "cascade", "freeze1",
      "slowdown", "linkdeg", "partition1"};
  return names;
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names{
      "PLB-HeC", "HDSS", "Acosta", "Greedy", "StaticProfile"};
  return names;
}

std::vector<ScenarioCell> full_grid(std::size_t seeds) {
  PLBHEC_EXPECTS(seeds >= 1);
  std::vector<ScenarioCell> cells;
  for (const auto& shape : shape_names())
    for (const auto& workload : workload_names())
      for (const auto& fault : fault_names())
        for (std::uint64_t seed = 1; seed <= seeds; ++seed)
          cells.push_back({shape, workload, fault, seed});
  return cells;
}

std::vector<ScenarioCell> smoke_grid() {
  // Hand-picked so every shape, workload mix and fault script appears at
  // least once, weighted toward small clusters (PR latency) with single
  // 128- and 256-unit cells to keep the scale path exercised.
  static const std::vector<std::string> ids{
      "u2-mild/regular/none@1",
      "u2-extreme/irregular/kill1@1",
      "u4-mild/mixed/freeze1@1",
      "u4-extreme/regular/slowdown@1",
      "u8-mild/irregular/cascade@1",
      "u8-extreme/mixed/partition1@1",
      "u16-mild/regular/linkdeg@1",
      "u16-extreme/irregular/freeze1@1",
      "u16-mild/mixed/none@2",
      "u32-mild/regular/kill1@1",
      "u32-extreme/mixed/cascade@1",
      "u32-mild/irregular/slowdown@2",
      "u64-mild/irregular/none@1",
      "u64-extreme/regular/partition1@1",
      "u64-mild/mixed/linkdeg@1",
      "u128-mild/regular/freeze1@1",
      "u128-extreme/irregular/slowdown@1",
      "u256-mild/mixed/kill1@1",
      "u256-extreme/regular/none@1",
      "u2-mild/irregular/partition1@2",
  };
  std::vector<ScenarioCell> cells;
  for (const auto& id : ids) {
    auto cell = parse_cell_id(id);
    PLBHEC_ASSERT(cell.has_value());
    cells.push_back(*cell);
  }
  return cells;
}

sim::SimCluster make_cluster(const std::string& shape, std::uint64_t seed) {
  const ShapeSpec spec = parse_shape(shape);
  Rng rng(fnv1a(shape) ^ (seed * 0x9e3779b97f4a7c15ULL));

  std::vector<sim::MachineConfig> machines;
  machines.reserve(spec.units);
  for (std::size_t i = 0; i < spec.units; ++i) {
    sim::MachineConfig machine;
    machine.name = "m";
    machine.name += std::to_string(i);
    sim::UnitConfig unit;
    const double speed = spread_factor(rng, spec.speed_spread);
    const double link = spread_factor(rng, spec.link_spread);
    sim::LinkModel net = sim::gigabit_ethernet();
    net.bandwidth_bps *= link;

    if (i % 2 == 0) {
      sim::CpuModel::Params p;
      p.name = machine.name + ".cpu";
      p.cores = 8;
      p.clock_ghz = 3.0 * speed;
      unit.name = p.name;
      unit.device = std::make_shared<sim::CpuModel>(p);
      unit.path = net.then(sim::local_memory_bus());
      machine.cpu_info = p.name;
    } else {
      sim::GpuModel::Params p;
      p.name = machine.name + ".gpu";
      p.sm_count = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::lround(16.0 * speed)));
      p.cores = p.sm_count * 64;
      p.clock_ghz = 1.2;
      p.mem_bandwidth_bps = 200e9 * std::sqrt(speed);
      unit.name = p.name;
      unit.device = std::make_shared<sim::GpuModel>(p);
      unit.path = net.then(sim::pcie2_x16());
      machine.gpu_info = p.name;
    }
    machine.units.push_back(std::move(unit));
    machines.push_back(std::move(machine));
  }
  return sim::SimCluster(machines);
}

std::unique_ptr<rt::Workload> make_workload(const std::string& mix,
                                            const sim::SimCluster& cluster,
                                            std::uint64_t seed) {
  const std::size_t units = cluster.size();
  if (mix == "regular") {
    // MatMul: uniform compute-bound grains (one output row each), linear
    // in the block size — the regime every scheduler models well. The
    // matrix order is the size knob (per-grain cost grows with n^2).
    return scale_to_horizon(
        cluster,
        [](std::size_t n) {
          return std::make_unique<apps::MatMulWorkload>(n);
        },
        /*floor_size=*/8192);
  }
  if (mix == "irregular") {
    if (seed % 2 == 0) {
      // CSR SpMV over the skewed synthetic graph: hub rows several times
      // the mean degree, gathers with no locality — irregular per-grain
      // cost on the memory roof. The row count is the size knob.
      return scale_to_horizon(
          cluster,
          [](std::size_t rows) {
            return std::make_unique<apps::SpmvWorkload>(
                apps::SpmvWorkload::paper_instance(rows));
          },
          /*floor_size=*/100'000);
    }
    // GRN inference, exhaustive pair search: divergent integer kernels,
    // nonlinear GPU saturation, per-grain cost growing with the gene
    // count — the regime single-number weight models get wrong.
    return scale_to_horizon(
        cluster,
        [](std::size_t genes) {
          return std::make_unique<apps::GrnWorkload>(
              apps::GrnWorkload::paper_instance(genes));
        },
        /*floor_size=*/30000);
  }
  if (mix == "mixed") {
    if (seed % 2 == 0) {
      // 2D stencil sweep: uniform memory-streaming rows, ~6 flops per
      // 16+ streamed bytes — the pure bandwidth regime, where compute
      // speed spreads matter least and link spreads most. The interior
      // row count is the size knob.
      return scale_to_horizon(
          cluster,
          [](std::size_t ny) {
            return std::make_unique<apps::StencilWorkload>(
                apps::StencilWorkload::paper_instance(ny));
          },
          /*floor_size=*/100'000);
    }
    // Monte-Carlo BlackScholes: a large portfolio of cheap grains whose
    // per-grain cost is set by the path count — compute scales while the
    // wire bytes per grain stay fixed, so compute/transfer balance shifts
    // with the knob. Grain count grows mildly with the cluster; the path
    // count is the doubling knob (memory stays O(options)).
    const std::size_t options = std::max<std::size_t>(100'000, 500 * units);
    return scale_to_horizon(
        cluster,
        [options](std::size_t paths) {
          apps::BlackScholesWorkload::Config config =
              apps::BlackScholesWorkload::paper_instance(options);
          config.mc_paths = paths;
          return std::make_unique<apps::BlackScholesWorkload>(config);
        },
        /*floor_size=*/512);
  }
  PLBHEC_EXPECTS(false && "unknown workload mix");
  return nullptr;
}

double nominal_horizon(const sim::SimCluster& cluster,
                       const sim::WorkloadProfile& profile,
                       std::size_t total_grains, double bytes_per_grain) {
  // Equal-finish-time bound: every unit processes its proportional share,
  // T = 1 / sum(1 / t_u) with t_u the unit's whole-input time — execution
  // plus, when the caller passes the grain's wire weight, the nominal
  // transfer of the whole input over the unit's path.
  double inv_sum = 0.0;
  for (const auto& unit : cluster.units()) {
    const double bytes =
        static_cast<double>(total_grains) * bytes_per_grain;
    const double t = unit.device->execution_seconds(
                         profile, static_cast<double>(total_grains)) +
                     unit.path.transfer_seconds(bytes);
    PLBHEC_ASSERT(t > 0.0);
    inv_sum += 1.0 / t;
  }
  return 1.0 / inv_sum;
}

FaultScript make_fault_script(const std::string& fault, std::size_t units,
                              double horizon) {
  PLBHEC_EXPECTS(units >= 2);
  PLBHEC_EXPECTS(horizon > 0.0);
  FaultScript script;
  script.name = fault;
  if (fault == "none") return script;
  if (fault == "kill1") {
    script.kill(units / 2, 0.25 * horizon);
  } else if (fault == "cascade") {
    // A QoS dip followed by a staggered loss of up to a quarter of the
    // cluster (never unit 0, which keeps at least one unit alive).
    script.slow_down(0, 0.15 * horizon, 0.5);
    const std::size_t kills = std::max<std::size_t>(1, units / 4);
    for (std::size_t i = 0; i < kills; ++i) {
      const std::size_t victim = 1 + 2 * i;
      if (victim >= units) break;
      script.kill(victim, (0.20 + 0.08 * static_cast<double>(i)) * horizon);
    }
  } else if (fault == "freeze1") {
    script.freeze(units - 1, 0.4 * horizon);
  } else if (fault == "slowdown") {
    for (std::size_t i = 0; i < units; i += 2)
      script.slow_down(i, 0.3 * horizon, 0.35);
  } else if (fault == "linkdeg") {
    for (std::size_t i = 1; i < units; i += 2)
      script.degrade_link(i, 0.25 * horizon, 2e-3, 0.2);
  } else if (fault == "partition1") {
    script.partition(0, 0.5 * horizon);
  } else {
    PLBHEC_EXPECTS(false && "unknown fault script");
  }
  return script;
}

CellResult run_cell(const ScenarioCell& cell) {
  CellResult result;
  result.cell = cell;

  sim::SimCluster cluster = make_cluster(cell.shape, cell.seed);
  result.units = cluster.size();
  const std::unique_ptr<rt::Workload> sized =
      make_workload(cell.workload, cluster, cell.seed);
  const std::size_t total = sized->total_grains();
  result.total_grains = total;
  const double horizon = nominal_horizon(cluster, sized->profile(), total,
                                         sized->bytes_per_grain());
  const FaultScript script =
      make_fault_script(cell.fault, cluster.size(), horizon);

  // The static-profile baseline is deliberately *stale*: its weights come
  // from profiling the regular (MatMul) reference on this cluster, the
  // way a profile database would have been populated once and reused. On
  // regular cells it is near-oracle; on irregular mixes and under
  // mid-run faults its weights are wrong in exactly the way static
  // profiling is wrong in practice.
  const std::unique_ptr<rt::Workload> reference =
      make_workload("regular", cluster);
  const std::vector<double> static_weights = baselines::oracle_static_weights(
      cluster, reference->profile(), reference->total_grains(),
      reference->bytes_per_grain());

  SimFaultTarget target(cluster);
  const bool injected = inject(script, target);
  PLBHEC_ASSERT(injected);

  const std::uint64_t cell_hash = fnv1a(cell.id());

  for (const auto& name : scheduler_names()) {
    std::unique_ptr<rt::Scheduler> scheduler;
    if (name == "PLB-HeC") {
      // The engine's initial-block hint (total/512) ignores the unit
      // count; at 128-256 units the 1,2,4,8 schedule then exhausts the
      // 20% modeling budget in the first probe wave and fast units spin
      // single-grain probes while the slowest finishes its mandatory
      // rounds. Sizing the first probe per unit keeps the whole schedule
      // inside the budget at every grid shape.
      core::PlbHecOptions popts;
      popts.initial_block =
          std::max<std::size_t>(4, total / (64 * cluster.size()));
      // Bounded preemption latency: under mid-run slow-downs the stale
      // equal-time fractions would otherwise hand the degraded unit one
      // huge tail block that becomes the whole cell's critical path.
      // Capping a block's predicted duration keeps tail exposure to a
      // fraction of the horizon; re-prediction after each completion then
      // shrinks the slow unit's blocks instead of stranding grains on it.
      popts.max_block_seconds = 0.5 * kTargetHorizon;
      scheduler = std::make_unique<core::PlbHecScheduler>(popts);
    } else if (name == "HDSS") {
      scheduler = std::make_unique<baselines::HdssScheduler>();
    } else if (name == "Acosta") {
      scheduler = std::make_unique<baselines::AcostaScheduler>();
    } else if (name == "Greedy") {
      scheduler = std::make_unique<baselines::GreedyScheduler>();
    } else {
      scheduler =
          std::make_unique<baselines::StaticProfileScheduler>(static_weights);
    }

    const std::unique_ptr<rt::Workload> workload =
        make_workload(cell.workload, cluster, cell.seed);
    rt::EngineOptions opts;
    opts.seed = cell_hash;
    opts.record_trace = false;
    rt::SimEngine engine(cluster, opts);
    const rt::RunResult run = engine.run(*workload, *scheduler);

    SchedulerOutcome outcome;
    outcome.scheduler = name;
    outcome.ok = run.ok;
    outcome.error = run.error;
    outcome.makespan = run.makespan;
    outcome.grains_completed = run.grains_completed;
    outcome.grains_requeued = run.grains_requeued;
    outcome.lost_grains =
        run.ok ? total - std::min(total, run.grains_completed) : 0;
    outcome.barriers = run.barriers;
    for (const auto& stats : run.unit_stats)
      if (stats.failed) ++outcome.failed_units;
    if (const auto* plb = dynamic_cast<core::PlbHecScheduler*>(
            scheduler.get())) {
      outcome.rebalances = plb->stats().rebalances;
      outcome.solves = plb->stats().solves;
      outcome.probe_overhead =
          plb->stats().modeling_grains / static_cast<double>(total);
    }
    result.outcomes.push_back(std::move(outcome));
  }

  const auto& outcomes = result.outcomes;
  result.plb_makespan = outcomes[0].ok ? outcomes[0].makespan : 0.0;
  double best = 0.0;
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) continue;
    if (best <= 0.0 || outcomes[i].makespan < best) {
      best = outcomes[i].makespan;
      result.best_baseline = outcomes[i].scheduler;
    }
  }
  result.best_baseline_makespan = best;
  if (outcomes[0].ok && best > 0.0) {
    result.plb_vs_best = result.plb_makespan / best;
    result.plb_win = result.plb_vs_best <= 1.0 + kTieTolerance;
  }
  result.grains_accounted = std::all_of(
      outcomes.begin(), outcomes.end(), [total](const SchedulerOutcome& o) {
        return o.ok && o.grains_completed == total && o.lost_grains == 0;
      });
  return result;
}

}  // namespace plbhec::chaos
