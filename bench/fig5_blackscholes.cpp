/// Reproduces Fig. 5 (Black-Scholes): execution time and speedup relative
/// to Greedy for 1-4 machines, 10,000-500,000 options (paper range), using
/// the Monte Carlo pricing kernel (the paper's "random walk term").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const bool full = cli.full();
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", full ? 10 : 3));
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{10'000, 50'000, 100'000, 250'000,
                                      500'000}
           : std::vector<std::size_t>{50'000, 500'000};

  bench::print_header("Fig. 5 — Black-Scholes execution time",
                      sim::scenario(4, true));
  bench::exec_time_figure(
      "BlackScholes", sizes,
      [](std::size_t options) {
        return std::make_unique<apps::BlackScholesWorkload>(
            apps::BlackScholesWorkload::paper_instance(options));
      },
      reps, /*dual_gpus=*/true);
  std::printf(
      "\nPaper reference: smaller but consistent gains for PLB-HeC; greedy "
      "can win for the smallest inputs.\n");
  return 0;
}
