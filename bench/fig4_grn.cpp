/// Reproduces Fig. 4 (GRN inference): execution time and speedup relative
/// to Greedy for 1-4 machines, 60,000-140,000 genes (paper range).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const bool full = cli.full();
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", full ? 10 : 3));
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{60'000, 80'000, 100'000, 120'000,
                                      140'000}
           : std::vector<std::size_t>{60'000, 140'000};

  bench::print_header("Fig. 4 — GRN inference execution time",
                      sim::scenario(4, true));
  bench::exec_time_figure(
      "GRN", sizes,
      [](std::size_t genes) {
        return std::make_unique<apps::GrnWorkload>(
            apps::GrnWorkload::paper_instance(genes));
      },
      reps, /*dual_gpus=*/true);
  std::printf(
      "\nPaper reference: speedups consistently above 1.2x for 3+ machines "
      "(except GRN with 3 machines).\n");
  return 0;
}
