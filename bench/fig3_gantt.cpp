/// Reproduces the schematic of Figs. 2-3: the phases of the algorithm and
/// the rebalancing Gantt. Runs PLB-HeC on three processing units (machine
/// A + half of machine B), prints the ASCII Gantt of the stable run, then
/// injects a mid-run QoS drop so the threshold sync of Fig. 3 actually
/// fires, and prints that Gantt too. `--trace-json <path>` additionally
/// writes the drift run as Chrome trace-event JSON (open in Perfetto or
/// chrome://tracing): busy segments as slices, scheduler decisions as
/// instant events.

#include "bench_common.hpp"
#include "plbhec/obs/exporters.hpp"
#include "plbhec/obs/sink.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto genes =
      static_cast<std::size_t>(cli.get_int("genes", 30'000));
  const std::string trace_path = cli.get("trace-json", "");

  bench::print_header("Fig. 3 — execution phases and rebalancing Gantt",
                      sim::scenario(2));

  apps::GrnWorkload w(apps::GrnWorkload::paper_instance(genes));
  sim::SimCluster cluster(sim::scenario(2));
  rt::SimEngine engine(cluster, {});
  core::PlbHecScheduler plb;
  const rt::RunResult stable = engine.run(w, plb);
  if (!stable.ok) {
    std::printf("stable run failed: %s\n", stable.error.c_str());
    return 1;
  }
  std::printf("\nStable cluster ('#'=exec, '-'=transfer, '.'=idle):\n%s",
              metrics::ascii_gantt(stable, 100).c_str());
  std::printf(
      "probe rounds=%zu selections=%zu refinements=%zu rebalances=%zu "
      "(paper: rebalancing not executed on stable machines)\n",
      plb.stats().probe_rounds, plb.stats().solves,
      plb.stats().refinements, plb.stats().rebalances);

  // Now with a QoS drop that forces the Fig. 3 sync.
  sim::SimCluster drifting(sim::scenario(2));
  drifting.add_speed_event(1, stable.makespan * 0.45, 0.3);
  obs::EventSink sink;
  rt::EngineOptions eopts;
  eopts.sink = &sink;
  rt::SimEngine engine2(drifting, eopts);
  core::PlbHecOptions opts;
  opts.step_fraction = 0.0625;
  core::PlbHecScheduler plb2(opts);
  const rt::RunResult drift = engine2.run(w, plb2);
  if (!drift.ok) {
    std::printf("drift run failed: %s\n", drift.error.c_str());
    return 1;
  }
  std::printf("\nA.gpu0 drops to 0.3x speed at t=%.4f s:\n%s",
              stable.makespan * 0.45,
              metrics::ascii_gantt(drift, 100).c_str());
  std::printf("rebalances=%zu selections=%zu makespan %.4f -> %.4f s\n",
              plb2.stats().rebalances, plb2.stats().solves, stable.makespan,
              drift.makespan);

  if (!trace_path.empty()) {
    const std::vector<obs::Event> events = sink.drain();
    if (!obs::write_chrome_trace(drift, events, trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %zu decision events + %zu segments to %s\n",
                events.size(), drift.trace.segments().size(),
                trace_path.c_str());
  }
  return 0;
}
