/// Reproduces Fig. 4 (matrix multiplication): execution time and speedup
/// relative to the Greedy scheduler for 1-4 machines across input sizes.
/// Paper setup: matrices 4096^2 .. 65536^2, dual-GPU boards active.
/// `--quick` (default) sweeps reduced sizes; `--full` the paper's range.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const bool full = cli.full();
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", full ? 10 : 3));
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{4096, 8192, 16384, 32768, 65536}
           : std::vector<std::size_t>{4096, 16384, 65536};

  bench::print_header("Fig. 4 — Matrix Multiplication execution time",
                      sim::scenario(4, true));
  bench::exec_time_figure(
      "MatMul", sizes,
      [](std::size_t n) {
        return std::make_unique<apps::MatMulWorkload>(n);
      },
      reps, /*dual_gpus=*/true);
  std::printf(
      "\nPaper reference (65536, 4 machines): PLB-HeC 2.2x, HDSS 1.2x, "
      "Acosta 1.04x vs Greedy.\n");
  return 0;
}
