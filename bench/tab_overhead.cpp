/// Reproduces the §V-a scalar: the time spent computing the task-size
/// distribution with the interior-point method (paper: mean 170 ms,
/// sd 32.3 ms, for 4 machines and 65536^2 matrices — on 2015 hardware).
/// Google-benchmark micro-benchmarks of the full block-size selection
/// (fit + interior point) and of its parts, across processing-unit counts.

#include <benchmark/benchmark.h>

#include "plbhec/common/rng.hpp"
#include "plbhec/fit/least_squares.hpp"
#include "plbhec/solver/block_selection.hpp"
#include "plbhec/solver/equal_time.hpp"

namespace {

using namespace plbhec;

/// Builds realistic fitted models for `n` heterogeneous units.
std::vector<fit::PerfModel> make_models(std::size_t n) {
  Rng rng(n * 31 + 7);
  std::vector<fit::PerfModel> models;
  for (std::size_t u = 0; u < n; ++u) {
    fit::PerfModel m;
    m.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX,
                    fit::BasisFn::kXLnX};
    m.exec.coefficients = {rng.uniform(0.001, 0.05),
                           rng.uniform(50.0, 12'000.0),
                           rng.uniform(0.0, 20.0)};
    m.transfer.slope = rng.uniform(15.0, 25.0);
    m.transfer.latency = rng.uniform(0.0, 0.01);
    models.push_back(m);
  }
  return models;
}

fit::SampleSet make_samples(std::size_t count) {
  Rng rng(count);
  fit::SampleSet s;
  double x = 0.002;
  for (std::size_t i = 0; i < count; ++i) {
    s.add(x, (0.01 + 3.0 * x) * rng.lognormal_factor(0.02));
    x *= 1.6;
    if (x > 0.4) x = 0.002 * rng.uniform(1.0, 2.0);
  }
  return s;
}

void BM_BlockSelection(benchmark::State& state) {
  const auto models = make_models(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto sel = solver::select_block_sizes(models);
    benchmark::DoNotOptimize(sel.fractions.data());
  }
}
BENCHMARK(BM_BlockSelection)->Arg(4)->Arg(8)->Arg(10)->Arg(16)->Arg(32);

void BM_EqualTimeAnalytic(benchmark::State& state) {
  const auto models = make_models(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto eq = solver::solve_equal_time(models);
    benchmark::DoNotOptimize(eq.fractions.data());
  }
}
BENCHMARK(BM_EqualTimeAnalytic)->Arg(8)->Arg(32);

void BM_ModelSelection(benchmark::State& state) {
  const auto samples = make_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto fitres = fit::select_model(samples);
    benchmark::DoNotOptimize(&fitres);
  }
}
BENCHMARK(BM_ModelSelection)->Arg(6)->Arg(12)->Arg(30);

void BM_FullSelectionPipeline(benchmark::State& state) {
  // Fit 8 units from samples, then solve — the whole "solveEquationSystem"
  // path of Algorithm 2, which the paper reports at 170 +- 32 ms.
  std::vector<fit::SampleSet> sample_sets;
  for (std::size_t u = 0; u < 8; ++u) sample_sets.push_back(make_samples(10));
  for (auto _ : state) {
    std::vector<fit::PerfModel> models;
    for (const auto& s : sample_sets) {
      fit::PerfModel m;
      m.exec = fit::select_model(s).model;
      m.transfer = fit::fit_transfer(s);
      models.push_back(m);
    }
    const auto sel = solver::select_block_sizes(models);
    benchmark::DoNotOptimize(sel.fractions.data());
  }
}
BENCHMARK(BM_FullSelectionPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
