/// Ablation: interior-point vs analytic equal-time solver. Verifies the
/// two agree on well-conditioned systems (they solve the same equations),
/// measures their cost across unit counts, and reports how often the
/// interior-point path needs its fallback.

#include <chrono>

#include "bench_common.hpp"
#include "plbhec/solver/block_selection.hpp"
#include "plbhec/solver/equal_time.hpp"

namespace {

using namespace plbhec;

std::vector<fit::PerfModel> random_models(std::size_t n, Rng& rng) {
  std::vector<fit::PerfModel> models;
  for (std::size_t u = 0; u < n; ++u) {
    fit::PerfModel m;
    const int family = static_cast<int>(rng.uniform_int(0, 2));
    if (family == 0) {
      m.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX};
      m.exec.coefficients = {rng.uniform(0.0, 0.05),
                             rng.uniform(10.0, 5000.0)};
    } else if (family == 1) {
      m.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX,
                      fit::BasisFn::kXLnX};
      m.exec.coefficients = {rng.uniform(0.0, 0.05),
                             rng.uniform(10.0, 2000.0),
                             rng.uniform(0.0, 50.0)};
    } else {
      m.exec.terms = {fit::BasisFn::kOne, fit::BasisFn::kX, fit::BasisFn::kX2};
      m.exec.coefficients = {rng.uniform(0.0, 0.05),
                             rng.uniform(10.0, 2000.0),
                             rng.uniform(0.0, 500.0)};
    }
    m.transfer.slope = rng.uniform(5.0, 30.0);
    m.transfer.latency = rng.uniform(0.0, 0.005);
    models.push_back(m);
  }
  return models;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto trials =
      static_cast<std::size_t>(cli.get_int("trials", cli.full() ? 200 : 50));

  std::printf("=== Ablation — interior-point vs analytic equal-time ===\n");
  Table t({"units", "max |x_ip - x_analytic|", "max time spread (IP)",
           "IP ms (mean)", "analytic ms (mean)", "fallbacks"});
  Rng rng(11);
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    RunningStats diff, spread, ip_ms, an_ms;
    std::size_t fallbacks = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const auto models = random_models(n, rng);

      const auto t0 = std::chrono::steady_clock::now();
      const auto sel = solver::select_block_sizes(models);
      const auto t1 = std::chrono::steady_clock::now();
      const auto eq = solver::solve_equal_time(models);
      const auto t2 = std::chrono::steady_clock::now();
      if (!sel.ok || !eq.ok) continue;
      if (sel.used_fallback) ++fallbacks;

      double worst = 0.0;
      for (std::size_t u = 0; u < n; ++u)
        worst = std::max(worst,
                         std::fabs(sel.fractions[u] - eq.fractions[u]));
      diff.add(worst);

      double tmin = 1e300, tmax = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        const double tu = models[u].total_time(sel.fractions[u]);
        tmin = std::min(tmin, tu);
        tmax = std::max(tmax, tu);
      }
      spread.add((tmax - tmin) / std::max(tmax, 1e-12));
      ip_ms.add(std::chrono::duration<double, std::milli>(t1 - t0).count());
      an_ms.add(std::chrono::duration<double, std::milli>(t2 - t1).count());
    }
    t.row()
        .add(n)
        .add(diff.max(), 4)
        .add(spread.max(), 4)
        .add(ip_ms.mean(), 3)
        .add(an_ms.mean(), 3)
        .add(fallbacks);
  }
  t.print();
  std::printf(
      "\nExpected: both solvers agree to a few percent, the equal-time\n"
      "constraint is met (small spread), and fallbacks are rare. The paper\n"
      "reports 170 +- 32 ms per IPOPT solve on 2015 hardware; our dense\n"
      "solver at 8-10 units is far cheaper, so the overhead argument of\n"
      "§V-a holds a fortiori.\n");
  return 0;
}
