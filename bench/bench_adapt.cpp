// Drift-adaptation benchmark: injects mid-run QoS drift into one unit of
// the simulated cluster (via the chaos slow-down scripts the matrix
// harness uses) and compares three scheduler configurations on the same
// deterministic trace:
//
//   fitonce   -- the model is frozen after the first selection
//                (refinements = 0, rebalancing disabled, adapt off);
//   rebalance -- the stock execution-phase machinery (progressive
//                refinements + threshold rebalancing), adapt off;
//   adaptive  -- the same frozen base as fitonce plus the drift subsystem
//                (per-unit residual CUSUM -> targeted re-probe ladder ->
//                recent-window refit), isolating what the new subsystem
//                buys on its own.
//
// Three drift traces: a step throttle (the run's workhorse unit drops to
// 2% speed), a ramp (the unit degrades in four steps) and a transient
// co-tenant (the unit slows, then recovers). Per cell the JSON reports
// the three makespans, the adaptive/fitonce and adaptive/rebalance
// ratios, the detection latency of the first trip (absolute and as a
// fraction of the undrifted makespan) and the re-probe confinement
// counters: the drifted unit's ladder blocks vs the sum over every other
// unit. On the step cell the latter must be zero -- re-probe is targeted,
// not global. (The other cells report the same counters but are not
// confinement-gated: after a workhorse collapses, the survivors' blocks
// grow several-fold and a frozen model's size-dependent error can become
// a persistent residual shift — a legitimate model change point whose
// appearance depends on build-specific block timings, so the report
// keeps those counters visible instead of gating them.)
//
// A final section drives the same step drift through the real-execution
// ThreadEngine: two LocalExecUnits, with a stimulus thread throttling one
// via set_slowdown() mid-run. Wall-clock numbers are machine-dependent
// and reported unchecked; the sim cells carry the gates (AdaptGate in
// tools/check_bench.py): step-cell adaptive_vs_fitonce <= 0.90,
// detection-latency fraction <= 0.30, step-cell reprobe_confined, >= 1
// detection, zero lost grains. `--smoke` enforces the same claims via
// the exit code; the committed baseline lives in
// bench/results/bench_adapt.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/chaos/fault.hpp"
#include "plbhec/chaos/sim_target.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/rt/thread_engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace {

using namespace plbhec;

constexpr std::size_t kMachines = 2;
constexpr std::size_t kGrains = 60'000;
constexpr std::uint64_t kSeed = 42;
constexpr double kStepFactor = 0.02;   ///< step cell: unit drops to 2%
constexpr double kDriftAt = 0.30;      ///< drift onset, fraction of M0
constexpr double kTransientEnd = 0.55; ///< transient cell recovery point
constexpr std::size_t kThreadGrains = 24'000;  ///< real-execution section

/// The three scheduler configurations share one base so the comparison
/// isolates the drift subsystem (small windows give the CUSUM enough
/// execution-phase observations to arm before the drift lands).
core::PlbHecOptions base_options() {
  core::PlbHecOptions opts;
  opts.step_fraction = 0.05;
  return opts;
}

core::PlbHecOptions fitonce_options() {
  core::PlbHecOptions opts = base_options();
  opts.refinements = 0;
  opts.rebalance_threshold = 1e9;  // never fires
  return opts;
}

core::PlbHecOptions rebalance_options() { return base_options(); }

core::PlbHecOptions adaptive_options() {
  core::PlbHecOptions opts = fitonce_options();
  opts.adapt.enabled = true;
  opts.adapt.lambda = 0.9;
  // Exec-phase observations start after ~20% of the input (the modeling
  // cap); the drift lands at 30%, so the warmup must finish on the two or
  // three windows in between. The sim is noise-free, so a 2-sample
  // baseline (spread at the sigma floor) is safe.
  opts.adapt.min_stable = 2;
  opts.adapt.reprobe_rounds = 2;
  return opts;
}

/// The real-execution section re-tunes the detector for wall-clock noise:
/// blocks on a busy host jitter by tens of percent, so the baseline needs
/// the full default warmup and the ingest path takes per-block minima.
core::PlbHecOptions thread_adaptive_options() {
  core::PlbHecOptions opts = fitonce_options();
  opts.adapt.enabled = true;
  opts.adapt.lambda = 0.9;
  opts.adapt.cusum_h = 8.0;
  opts.adapt.robust_ingest = true;
  opts.adapt.reprobe_rounds = 2;
  return opts;
}

/// One drift trace, replayed identically under every configuration.
struct DriftCell {
  std::string id;
  chaos::FaultScript script;       ///< slow-down events (chaos seam)
  std::vector<sim::SpeedEvent> restores;  ///< recovery steps, if any
  std::size_t unit = 0;
  double onset = 0.0;  ///< virtual time of the first drift event
};

struct CellRun {
  rt::RunResult result;
  core::PlbHecStats stats;
  double first_detection = -1.0;  ///< virtual time of the first CUSUM trip
};

bool g_verbose = false;  ///< --verbose: drift/swap event log on stderr

CellRun run_cell(const DriftCell& cell, const core::PlbHecOptions& opts) {
  sim::SimCluster cluster(sim::scenario(kMachines));
  chaos::SimFaultTarget target(cluster);
  if (!cell.script.empty()) {
    const bool injected = chaos::inject(cell.script, target);
    PLBHEC_ASSERT(injected);
  }
  for (const sim::SpeedEvent& ev : cell.restores)
    cluster.add_speed_event(cell.unit, ev.time_s, ev.factor);

  apps::GrnWorkload workload(apps::GrnWorkload::paper_instance(kGrains));
  obs::EventSink sink;
  rt::EngineOptions eopts;
  eopts.seed = kSeed;
  eopts.noise = sim::NoiseModel::none();
  eopts.record_trace = false;
  eopts.sink = &sink;
  rt::SimEngine engine(cluster, eopts);
  core::PlbHecScheduler plb(opts);

  CellRun run;
  run.result = engine.run(workload, plb);
  run.stats = plb.stats();
  for (const obs::Event& ev : sink.drain()) {
    if (ev.kind != obs::EventKind::kDriftDetected &&
        ev.kind != obs::EventKind::kReprobeSwap)
      continue;
    if (g_verbose)
      std::fprintf(stderr, "  [%s] t=%.4f unit=%u %s a=%.3f b=%.3f\n",
                   cell.id.c_str(), ev.time, ev.unit,
                   obs::to_string(ev.kind), ev.a, ev.b);
    if (ev.kind == obs::EventKind::kDriftDetected &&
        run.first_detection < 0.0)
      run.first_detection = ev.time;
  }
  return run;
}

struct CellReport {
  std::string id;
  std::size_t unit = 0;
  double onset = 0.0;
  double makespan_fitonce = 0.0;
  double makespan_rebalance = 0.0;
  double makespan_adaptive = 0.0;
  double adaptive_vs_fitonce = 0.0;
  double adaptive_vs_rebalance = 0.0;
  std::size_t detections = 0;
  std::size_t swaps = 0;
  std::size_t ladder_drifted = 0;
  std::size_t ladder_other = 0;
  bool confined = false;
  double detection_latency = -1.0;
  double detection_fraction = -1.0;
  std::size_t rebalances_stock = 0;
  std::size_t lost = 0;
  bool ok = false;
};

CellReport measure_cell(const DriftCell& cell, double nominal_makespan) {
  const CellRun fitonce = run_cell(cell, fitonce_options());
  const CellRun rebal = run_cell(cell, rebalance_options());
  const CellRun adaptive = run_cell(cell, adaptive_options());

  CellReport rep;
  rep.id = cell.id;
  rep.unit = cell.unit;
  rep.onset = cell.onset;
  rep.makespan_fitonce = fitonce.result.makespan;
  rep.makespan_rebalance = rebal.result.makespan;
  rep.makespan_adaptive = adaptive.result.makespan;
  rep.adaptive_vs_fitonce =
      fitonce.result.makespan > 0.0
          ? adaptive.result.makespan / fitonce.result.makespan
          : -1.0;
  rep.adaptive_vs_rebalance =
      rebal.result.makespan > 0.0
          ? adaptive.result.makespan / rebal.result.makespan
          : -1.0;
  rep.detections = adaptive.stats.drift_detections;
  rep.swaps = adaptive.stats.reprobe_swaps;
  const auto& per_unit = adaptive.stats.reprobe_blocks_per_unit;
  for (std::size_t u = 0; u < per_unit.size(); ++u) {
    if (u == cell.unit)
      rep.ladder_drifted = per_unit[u];
    else
      rep.ladder_other += per_unit[u];
  }
  rep.confined = rep.ladder_other == 0;
  if (adaptive.first_detection >= 0.0) {
    rep.detection_latency = adaptive.first_detection - cell.onset;
    rep.detection_fraction =
        nominal_makespan > 0.0 ? rep.detection_latency / nominal_makespan
                               : -1.0;
  }
  rep.rebalances_stock = rebal.stats.rebalances;
  const auto lost_of = [](const rt::RunResult& r) {
    return r.total_grains - std::min(r.grains_completed, r.total_grains);
  };
  rep.lost = lost_of(fitonce.result) + lost_of(rebal.result) +
             lost_of(adaptive.result);
  rep.ok = fitonce.result.ok && rebal.result.ok && adaptive.result.ok;
  return rep;
}

// --- Real-execution section (ThreadEngine + LocalExecUnit). ----------------

struct ThreadReport {
  double wall_nominal = 0.0;   ///< fitonce, no drift (timing yardstick)
  double wall_fitonce = 0.0;   ///< fitonce under the step drift
  double wall_adaptive = 0.0;  ///< adaptive under the step drift
  std::size_t detections = 0;
  std::size_t swaps = 0;
  bool confined = true;
  std::size_t lost = 0;
  bool ok = false;
};

double run_thread(const core::PlbHecOptions& opts, std::size_t grains,
                  double throttle_after_s, double throttle_factor,
                  core::PlbHecStats* stats, rt::RunResult* result) {
  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  rt::LocalExecUnit::Options cpu0;
  cpu0.name = "host.cpu0";
  rt::LocalExecUnit::Options cpu1;
  cpu1.name = "host.cpu1";
  cpu1.slowdown = 2.0;
  units.push_back(std::make_unique<rt::LocalExecUnit>(cpu0));
  units.push_back(std::make_unique<rt::LocalExecUnit>(cpu1));
  auto* drift_unit = static_cast<rt::LocalExecUnit*>(units[0].get());

  rt::ThreadEngineOptions eopts;
  eopts.pin_workers = false;
  rt::ThreadEngine engine(std::move(eopts), std::move(units));
  core::PlbHecScheduler plb(opts);
  // Monte Carlo pricing (the paper's configuration): heavy enough per
  // grain that the run spans hundreds of milliseconds and a mid-run
  // throttle lands well inside the execution phase.
  apps::BlackScholesWorkload workload(
      apps::BlackScholesWorkload::paper_instance(grains));

  std::thread stimulus;
  if (throttle_after_s > 0.0) {
    stimulus = std::thread([drift_unit, throttle_after_s, throttle_factor] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(throttle_after_s));
      drift_unit->set_slowdown(throttle_factor);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  rt::RunResult r = engine.run(workload, plb);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (stimulus.joinable()) stimulus.join();
  if (stats != nullptr) *stats = plb.stats();
  if (result != nullptr) *result = std::move(r);
  return wall;
}

ThreadReport measure_thread(std::size_t grains) {
  ThreadReport rep;
  rt::RunResult nominal, fitonce, adaptive;
  core::PlbHecStats astats;
  rep.wall_nominal =
      run_thread(fitonce_options(), grains, 0.0, 1.0, nullptr, &nominal);
  const double throttle_at = kDriftAt * rep.wall_nominal;
  rep.wall_fitonce = run_thread(fitonce_options(), grains, throttle_at, 8.0,
                                nullptr, &fitonce);
  rep.wall_adaptive = run_thread(thread_adaptive_options(), grains,
                                 throttle_at, 8.0, &astats, &adaptive);
  rep.detections = astats.drift_detections;
  rep.swaps = astats.reprobe_swaps;
  for (std::size_t u = 1; u < astats.reprobe_blocks_per_unit.size(); ++u)
    rep.confined = rep.confined && astats.reprobe_blocks_per_unit[u] == 0;
  const auto lost_of = [](const rt::RunResult& r) {
    return r.total_grains - std::min(r.grains_completed, r.total_grains);
  };
  rep.lost = lost_of(nominal) + lost_of(fitonce) + lost_of(adaptive);
  rep.ok = nominal.ok && fitonce.ok && adaptive.ok;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else if (arg == "--verbose")
      g_verbose = true;
    else
      out_path = arg;
  }

  // The trace is identical in smoke and full mode on purpose: CI runs
  // `--smoke fresh.json` and gates fresh.json against the committed
  // baseline, so both must describe the same drift traces.

  // Undrifted yardstick: the fit-once configuration on the clean cluster.
  // Drift times are fractions of this makespan, and the drifted unit is
  // the one carrying the largest share of the clean run (throttling the
  // workhorse is the hard case for a frozen model).
  DriftCell clean;
  clean.id = "clean";
  const CellRun nominal = run_cell(clean, fitonce_options());
  const double m0 = nominal.result.makespan;
  std::size_t drift_unit = 0;
  for (std::size_t u = 0; u < nominal.result.unit_stats.size(); ++u) {
    if (nominal.result.unit_stats[u].grains >
        nominal.result.unit_stats[drift_unit].grains)
      drift_unit = u;
  }
  const double onset = kDriftAt * m0;

  std::vector<DriftCell> cells;
  {
    DriftCell step;
    step.id = "step-throttle";
    step.unit = drift_unit;
    step.onset = onset;
    step.script.name = "step";
    step.script.slow_down(drift_unit, onset, kStepFactor);
    cells.push_back(std::move(step));
  }
  {
    DriftCell ramp;
    ramp.id = "ramp-throttle";
    ramp.unit = drift_unit;
    ramp.onset = onset;
    ramp.script.name = "ramp";
    const double ramp_step = 0.04 * m0;
    const double factors[] = {0.7, 0.5, 0.3, 0.1};
    for (std::size_t k = 0; k < 4; ++k)
      ramp.script.slow_down(drift_unit,
                            onset + static_cast<double>(k) * ramp_step,
                            factors[k]);
    cells.push_back(std::move(ramp));
  }
  {
    DriftCell transient;
    transient.id = "transient-cotenant";
    transient.unit = drift_unit;
    transient.onset = onset;
    transient.script.name = "transient";
    transient.script.slow_down(drift_unit, onset, 0.25);
    // FaultScript has no restore primitive (a real co-tenant leaving is
    // not a fault); the recovery lands on the timeline directly.
    transient.restores.push_back({kTransientEnd * m0, 1.0});
    cells.push_back(std::move(transient));
  }

  std::vector<CellReport> reports;
  reports.reserve(cells.size());
  for (const DriftCell& cell : cells) reports.push_back(measure_cell(cell, m0));

  const ThreadReport thread_rep = measure_thread(kThreadGrains);

  std::size_t detections_total = 0;
  std::size_t lost_total = 0;
  bool ok_all = nominal.result.ok;
  for (const CellReport& rep : reports) {
    detections_total += rep.detections;
    lost_total += rep.lost;
    ok_all = ok_all && rep.ok;
  }

  const CellReport* step = nullptr;
  for (const CellReport& rep : reports)
    if (rep.id == "step-throttle") step = &rep;
  PLBHEC_ASSERT(step != nullptr);

  char buf[1024];
  std::string json = "{\n  \"benchmark\": \"bench_adapt\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"units\": %zu, \"seed\": %llu,\n"
                "  \"total_grains\": %zu,\n"
                "  \"drift_unit\": %zu,\n"
                "  \"drift_onset_fraction\": %.2f,\n"
                "  \"step_factor\": %.2f,\n"
                "  \"makespan_nominal\": %.17g,\n",
                nominal.result.units.size(),
                static_cast<unsigned long long>(kSeed), kGrains, drift_unit,
                kDriftAt, kStepFactor, m0);
  json += buf;

  json += "  \"cells\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CellReport& rep = reports[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"cell\": \"%s\", \"drift_onset\": %.17g,\n"
        "     \"makespan_fitonce\": %.17g,\n"
        "     \"makespan_rebalance\": %.17g,\n"
        "     \"makespan_adaptive\": %.17g,\n"
        "     \"adaptive_vs_fitonce\": %.4f,\n"
        "     \"adaptive_vs_rebalance\": %.4f,\n"
        "     \"drift_detections\": %zu, \"reprobe_swaps\": %zu,\n"
        "     \"reprobe_blocks_drifted\": %zu, \"reprobe_blocks_other\": %zu,\n"
        "     \"reprobe_confined\": %s,\n"
        "     \"detection_latency_s\": %.17g,\n"
        "     \"detection_latency_fraction\": %.4f,\n"
        "     \"rebalances_stock\": %zu,\n"
        "     \"lost_grains\": %zu, \"run_ok\": %s}%s\n",
        rep.id.c_str(), rep.onset, rep.makespan_fitonce,
        rep.makespan_rebalance, rep.makespan_adaptive, rep.adaptive_vs_fitonce,
        rep.adaptive_vs_rebalance, rep.detections, rep.swaps,
        rep.ladder_drifted, rep.ladder_other, rep.confined ? "true" : "false",
        rep.detection_latency, rep.detection_fraction, rep.rebalances_stock,
        rep.lost, rep.ok ? "true" : "false",
        i + 1 < reports.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";

  std::snprintf(
      buf, sizeof(buf),
      "  \"drift_detections_total\": %zu,\n"
      "  \"lost_grains\": %zu,\n"
      "  \"thread_grains\": %zu,\n"
      "  \"thread_wall_nominal_us\": %.0f,\n"
      "  \"thread_wall_fitonce_us\": %.0f,\n"
      "  \"thread_wall_adaptive_us\": %.0f,\n"
      "  \"thread_drift_detections\": %zu,\n"
      "  \"thread_reprobe_swaps\": %zu,\n"
      "  \"thread_reprobe_confined\": %s,\n"
      "  \"thread_lost_grains\": %zu,\n"
      "  \"thread_ok\": %s,\n"
      "  \"all_ok\": %s\n}\n",
      detections_total, lost_total,
      kThreadGrains, thread_rep.wall_nominal * 1e6,
      thread_rep.wall_fitonce * 1e6, thread_rep.wall_adaptive * 1e6,
      thread_rep.detections, thread_rep.swaps,
      thread_rep.confined ? "true" : "false", thread_rep.lost,
      thread_rep.ok ? "true" : "false",
      (ok_all && thread_rep.ok) ? "true" : "false");
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  if (smoke) {
    int rc = 0;
    if (!ok_all || !thread_rep.ok) {
      std::fputs("smoke FAIL: a run did not finish\n", stderr);
      rc = 1;
    }
    if (lost_total != 0 || thread_rep.lost != 0) {
      std::fprintf(stderr, "smoke FAIL: %zu grain(s) lost\n",
                   lost_total + thread_rep.lost);
      rc = 1;
    }
    if (step->detections == 0) {
      std::fputs("smoke FAIL: step throttle produced no CUSUM trip\n",
                 stderr);
      rc = 1;
    }
    if (!step->confined) {
      std::fputs(
          "smoke FAIL: step-cell re-probe ladder touched an undrifted unit\n",
          stderr);
      rc = 1;
    }
    if (step->adaptive_vs_fitonce > 0.90) {
      std::fprintf(stderr,
                   "smoke FAIL: step-cell adaptive/fitonce makespan ratio "
                   "%.3f > 0.90\n",
                   step->adaptive_vs_fitonce);
      rc = 1;
    }
    if (step->detection_fraction < 0.0 || step->detection_fraction > 0.30) {
      std::fprintf(stderr,
                   "smoke FAIL: step-cell detection latency fraction %.3f "
                   "outside (0, 0.30]\n",
                   step->detection_fraction);
      rc = 1;
    }
    if (rc == 0) std::fputs("smoke OK\n", stderr);
    return rc;
  }
  return (ok_all && thread_rep.ok) ? 0 : 1;
}
