/// Ablation: measurement-noise sensitivity. The paper ran on dedicated
/// resources ("the standard deviations ... were small"); here we sweep
/// the log-normal noise level of the simulated measurements and watch how
/// each balancer's makespan and PLB-HeC's solver activity respond. This
/// quantifies how much of PLB-HeC's advantage survives noisy profiling.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", cli.full() ? 10 : 3));
  const std::size_t n = cli.full() ? 65536 : 16384;

  bench::print_header("Ablation — measurement-noise sensitivity (MatMul)",
                      sim::scenario(4, true));

  Table t({"sigma", "PLB-HeC [s]", "HDSS [s]", "Greedy [s]", "sp(PLB)",
           "PLB solves", "PLB rebalances"});
  for (double sigma : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    RunningStats plb_ms, hdss_ms, greedy_ms, solves, rebalances;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      apps::MatMulWorkload w(n);
      sim::SimCluster cluster(sim::scenario(4, true));
      rt::EngineOptions opts;
      opts.seed = 8000 + rep;
      opts.record_trace = false;
      opts.noise.exec_sigma = sigma;
      opts.noise.transfer_sigma = sigma * 1.5;
      rt::SimEngine engine(cluster, opts);

      core::PlbHecScheduler plb;
      const rt::RunResult rp = engine.run(w, plb);
      baselines::HdssScheduler hdss;
      const rt::RunResult rh = engine.run(w, hdss);
      baselines::GreedyScheduler greedy;
      const rt::RunResult rg = engine.run(w, greedy);
      if (!rp.ok || !rh.ok || !rg.ok) continue;
      plb_ms.add(rp.makespan);
      hdss_ms.add(rh.makespan);
      greedy_ms.add(rg.makespan);
      solves.add(static_cast<double>(plb.stats().solves));
      rebalances.add(static_cast<double>(plb.stats().rebalances));
    }
    t.row()
        .add(sigma, 2)
        .add(plb_ms.mean(), 3)
        .add(hdss_ms.mean(), 3)
        .add(greedy_ms.mean(), 3)
        .add(greedy_ms.mean() / plb_ms.mean(), 2)
        .add(solves.mean(), 1)
        .add(rebalances.mean(), 1);
  }
  t.print();
  std::printf(
      "\nExpected: the advantage persists through realistic noise (2-5%%);\n"
      "heavy noise (>=10%%) degrades the fits and triggers threshold\n"
      "activity, eroding — but not inverting — the gap to Greedy.\n");
  return 0;
}
