/// Reproduces Fig. 1: measured execution-time points and the fitted model
/// curves for a GPU and a CPU, for Black-Scholes and matrix multiplication
/// (machine A's Tesla K20c and Xeon E5-2690V2). Prints measured-vs-model
/// tables and the selected formula per unit.

#include <memory>

#include "bench_common.hpp"
#include "plbhec/fit/least_squares.hpp"

namespace {

using namespace plbhec;

void profile_app(const std::string& label, rt::Workload& workload,
                 std::size_t samples_per_unit) {
  sim::SimCluster cluster(sim::scenario(1));  // machine A: CPU + K20c
  Rng rng(7);
  sim::NoiseModel noise;

  std::printf("\n--- %s ---\n", label.c_str());
  for (std::size_t u = 0; u < cluster.size(); ++u) {
    const auto& su = cluster.unit(u);
    fit::SampleSet exec_samples;
    const double total = static_cast<double>(workload.total_grains());
    Table t({"block (grains)", "fraction", "measured F [s]", "model F [s]"});

    // Exponentially spaced block sizes, like the modeling phase.
    std::vector<double> fractions;
    double f = 1.0 / 1024.0;
    for (std::size_t i = 0; i < samples_per_unit; ++i) {
      fractions.push_back(f);
      f *= 1.7;
      if (f > 0.45) break;
    }
    for (double frac : fractions) {
      const double grains = frac * total;
      const double t_exec = noise.perturb_exec(
          su.device->execution_seconds(workload.profile(), grains), rng);
      exec_samples.add(frac, t_exec);
    }
    const fit::FitResult fitres = fit::select_model(exec_samples);
    for (const auto& s : exec_samples.items()) {
      t.row()
          .add(static_cast<std::size_t>(s.x * total))
          .add(s.x, 5)
          .add(s.time, 6)
          .add(fitres.model.valid() ? fitres.model(s.x) : 0.0, 6);
    }
    std::printf("%s (%s):\n", su.name.c_str(),
                su.device->description().c_str());
    t.print();
    std::printf("  fitted F_p[x] = %s   (R^2 = %.4f%s)\n",
                fitres.model.to_string().c_str(), fitres.r2,
                fitres.acceptable ? ", accepted" : ", below 0.7");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const bool full = cli.full();
  bench::print_header(
      "Fig. 1 — Execution times and performance models (machine A)",
      sim::scenario(1));

  apps::BlackScholesWorkload bs(
      apps::BlackScholesWorkload::paper_instance(full ? 500'000 : 100'000));
  profile_app("Black-Scholes", bs, full ? 14 : 10);

  apps::MatMulWorkload mm(full ? 32768 : 16384);
  profile_app("Matrix multiplication", mm, full ? 14 : 10);

  std::printf(
      "\nShape check vs the paper: the GPU curves bend (launch overhead +\n"
      "warmup at small blocks, linear beyond), the CPU curves are close to\n"
      "affine; different basis subsets are selected accordingly.\n");
  return 0;
}
