/// Reproduces Fig. 7: per-processing-unit idle time as a percentage of
/// total execution time, PLB-HeC vs HDSS, two input sizes per application
/// on the 8-unit cluster.

#include "bench_common.hpp"

namespace {

using namespace plbhec;

void idleness_for(
    const std::string& app_label, std::size_t size,
    const std::function<std::unique_ptr<rt::Workload>()>& make,
    std::size_t reps) {
  sim::SimCluster cluster(sim::scenario(4, false));
  const std::size_t n = cluster.size();
  std::vector<RunningStats> plb_idle(n), hdss_idle(n);

  for (std::size_t rep = 0; rep < reps; ++rep) {
    rt::EngineOptions opts;
    opts.seed = 3000 + rep;
    rt::SimEngine engine(cluster, opts);
    {
      auto w = make();
      core::PlbHecScheduler plb;
      const rt::RunResult r = engine.run(*w, plb);
      if (r.ok) {
        const auto idle = metrics::idle_percent(r);
        for (std::size_t u = 0; u < n; ++u) plb_idle[u].add(idle[u]);
      }
    }
    {
      auto w = make();
      baselines::HdssScheduler hdss;
      const rt::RunResult r = engine.run(*w, hdss);
      if (r.ok) {
        const auto idle = metrics::idle_percent(r);
        for (std::size_t u = 0; u < n; ++u) hdss_idle[u].add(idle[u]);
      }
    }
  }

  std::printf("\n%s, input %zu — idle %% of total execution (mean of %zu runs):\n",
              app_label.c_str(), size, reps);
  Table t({"Unit", "PLB-HeC idle %", "HDSS idle %"});
  double plb_mean = 0.0, hdss_mean = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    t.row()
        .add(cluster.unit(u).name)
        .add(plb_idle[u].mean(), 1)
        .add(hdss_idle[u].mean(), 1);
    plb_mean += plb_idle[u].mean() / static_cast<double>(n);
    hdss_mean += hdss_idle[u].mean() / static_cast<double>(n);
  }
  t.print();
  std::printf("cluster mean: PLB-HeC %.1f%%  HDSS %.1f%%\n", plb_mean,
              hdss_mean);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const bool full = cli.full();
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", full ? 10 : 3));

  bench::print_header("Fig. 7 — processing-unit idle time",
                      sim::scenario(4, false));

  for (std::size_t n : {4096u, full ? 65536u : 16384u})
    idleness_for("MatMul", n, [n] {
      return std::make_unique<apps::MatMulWorkload>(n);
    }, reps);
  for (std::size_t g : {60'000u, 140'000u})
    idleness_for("GRN", g, [g] {
      return std::make_unique<apps::GrnWorkload>(
          apps::GrnWorkload::paper_instance(g));
    }, reps);
  for (std::size_t o : {100'000u, 500'000u})
    idleness_for("BlackScholes", o, [o] {
      return std::make_unique<apps::BlackScholesWorkload>(
          apps::BlackScholesWorkload::paper_instance(o));
    }, reps);

  std::printf(
      "\nShape check vs the paper: idleness concentrates in HDSS's first\n"
      "(adaptive) phase; PLB-HeC's idleness shrinks as the input grows\n"
      "because the modeling phase amortizes.\n");
  return 0;
}
