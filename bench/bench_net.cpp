// Network transport benchmark: measures the framed TCP path between a
// coordinator-side RemoteUnit and an in-process WorkerDaemon on loopback.
//
// Four experiments, one JSON:
//  1. transfer curve -- a RemoteUnit executes matmul blocks of swept sizes
//     and the per-size minimum wire time (round-trip wall minus daemon
//     kernel time, best of several interleaved rounds) is fitted to the
//     paper's G_p(x) = a1*x + a2. The fit R^2 on real socket timings is
//     the headline number: the transport must be regular enough that the
//     scheduler's transfer model means something.
//  2. distributed run -- a ThreadEngine drives one local unit plus two
//     daemons through PLB-HeC; the distributed product must be
//     bit-identical to a single-threaded reference and every grain
//     accounted for. Run twice: synchronous protocol and pipelined
//     (depth 4), which must agree bit for bit.
//  3. worker kill -- a daemon is frozen mid-run (connections open, nothing
//     answered); the heartbeat timeout must demote it and the engine
//     requeue its in-flight range, finishing with zero lost grains. Run
//     twice as well: the pipelined variant freezes the daemon with a
//     whole chunk window in flight.
//  4. pipeline comparison -- three daemons execute the same fine-grained
//     synthetic stream under both protocols: the sync leg pays one
//     round-trip of coordinator<->daemon thread handoffs per 8-grain
//     frame, the pipelined leg streams identical frames through a
//     depth-8 window so the turnaround idle is amortized. The headline
//     `pipelined_vs_sync_makespan_ratio` (best of 3 interleaved rounds)
//     is gated at an absolute 0.75 ceiling.
//
// Emits JSON (stdout, plus an output path if given); the committed
// baseline lives in bench/results/bench_net.json and tools/check_bench.py
// gates transfer_r2, the makespan ratio, plus the structural identities
// (bit_identical, lost_grains, demoted, and their pipeline_* twins).
// `--smoke` exits nonzero when R^2 < 0.7, either distributed result
// diverges, either kill run loses grains, or the pipelined leg fails to
// beat sync by 25% -- the acceptance gate CI runs on every push.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/synthetic.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/samples.hpp"
#include "plbhec/net/remote_unit.hpp"
#include "plbhec/net/workerd.hpp"
#include "plbhec/rt/thread_engine.hpp"

namespace {

namespace apps = plbhec::apps;
namespace fit = plbhec::fit;
namespace net = plbhec::net;
namespace rt = plbhec::rt;

// Tight liveness budget (60 ms) for the worker-kill experiment, where
// fast demotion is the behavior under test.
net::RemoteUnitOptions fast_options(std::uint16_t port, std::string name) {
  net::RemoteUnitOptions ro;
  ro.port = port;
  ro.name = std::move(name);
  ro.heartbeat_interval_seconds = 0.02;
  ro.max_missed_heartbeats = 3;
  ro.max_reconnect_attempts = 2;
  ro.backoff_initial_seconds = 0.01;
  ro.backoff_max_seconds = 0.05;
  return ro;
}

// Generous liveness budget (3 s) for the functional experiments: a noisy
// CI machine stalls threads long enough that a 60 ms heartbeat window
// falsely demotes a healthy loopback daemon.
net::RemoteUnitOptions steady_options(std::uint16_t port, std::string name) {
  net::RemoteUnitOptions ro = fast_options(port, std::move(name));
  ro.heartbeat_interval_seconds = 0.2;
  ro.max_missed_heartbeats = 15;
  return ro;
}

net::RemoteUnitOptions pipelined_options(std::uint16_t port, std::string name,
                                         std::size_t depth) {
  net::RemoteUnitOptions ro = steady_options(port, std::move(name));
  ro.pipeline_depth = depth;
  return ro;
}

/// Experiment 1: sweep matmul block sizes through one remote unit and fit
/// G_p(x) from the measured wire times. `x` is the block's grain fraction
/// (the same domain the scheduler fits in).
struct TransferCurve {
  fit::TransferModel model;
  std::size_t samples = 0;
  std::size_t payload_min_bytes = 0;
  std::size_t payload_max_bytes = 0;
  bool ok = false;
};

TransferCurve measure_transfer_curve(std::size_t n) {
  TransferCurve out;
  net::WorkerDaemon daemon({0, "curve", 1.0});
  apps::MatMulWorkload workload(n, /*materialize=*/true);
  net::RemoteUnit unit(steady_options(daemon.port(), "curve.remote"));
  if (!unit.begin_run(workload)) return out;

  // Block sizes from 1/64 to 1/4 of the matrix (n=512: result payloads
  // 32 KiB .. 512 KiB per block). G_p(x) models the *uncontended* wire
  // cost (latency + bandwidth-linear), so each size's sample is the
  // minimum over kRounds round-trips — on a shared host, neighbor bursts
  // add multi-millisecond preemption spikes to individual timings, and
  // any mean/median estimator drags the fit with them. Rounds interleave
  // the sizes so one burst window cannot poison every repetition of a
  // single size, and the first (untimed) round absorbs cold-path warmup.
  const std::size_t sizes[] = {n / 64, n / 32, n / 16, n / 8, n / 4};
  constexpr std::size_t kSizes = sizeof(sizes) / sizeof(sizes[0]);
  constexpr int kRounds = 9;
  double best[kSizes];
  std::fill(best, best + kSizes, std::numeric_limits<double>::infinity());
  out.payload_min_bytes = workload.result_bytes(0, sizes[0]);
  out.payload_max_bytes = workload.result_bytes(0, sizes[kSizes - 1]);
  for (int round = 0; round < kRounds + 1; ++round) {
    std::size_t row = 0;
    for (std::size_t s = 0; s < kSizes; ++s) {
      const std::size_t block = sizes[s];
      if (row + block > n) row = 0;
      rt::BlockTiming timing;
      if (!unit.execute(workload, row, row + block, timing)) return out;
      if (round > 0) best[s] = std::min(best[s], timing.transfer_seconds);
      row += block;
    }
  }
  fit::SampleSet samples;
  for (std::size_t s = 0; s < kSizes; ++s)
    samples.add(static_cast<double>(sizes[s]) / static_cast<double>(n),
                best[s]);
  unit.end_run();
  daemon.stop();

  out.model = fit::fit_transfer(samples);
  out.samples = samples.size();
  out.ok = true;
  return out;
}

/// Experiment 2: PLB-HeC schedules a real matmul across one local unit and
/// two daemons; the distributed product must match a single-threaded
/// reference bit for bit.
struct DistributedRun {
  bool ok = false;
  bool bit_identical = false;
  std::size_t total_grains = 0;
  std::size_t grains_counted = 0;
  std::uint64_t remote_blocks = 0;
  double makespan = 0.0;
};

DistributedRun run_distributed(std::size_t n, std::size_t depth) {
  DistributedRun out;
  net::WorkerDaemon d1({0, "node1", 1.0});
  net::WorkerDaemon d2({0, "node2", 2.0});

  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  units.push_back(std::make_unique<rt::LocalExecUnit>(
      rt::LocalExecUnit::Options{"coord.cpu0", 1.0, true}));
  units.push_back(std::make_unique<net::RemoteUnit>(
      pipelined_options(d1.port(), "remote.1", depth)));
  units.push_back(std::make_unique<net::RemoteUnit>(
      pipelined_options(d2.port(), "remote.2", depth)));

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));
  apps::MatMulWorkload workload(n, /*materialize=*/true);
  plbhec::core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  if (!r.ok) return out;

  apps::MatMulWorkload reference(n, /*materialize=*/true);
  reference.execute_cpu(0, n);

  out.ok = true;
  out.bit_identical = workload.result() == reference.result();
  out.total_grains = r.total_grains;
  for (const rt::UnitStats& stats : r.unit_stats)
    out.grains_counted += stats.grains;
  out.remote_blocks = d1.blocks_served() + d2.blocks_served();
  out.makespan = r.makespan;
  d1.stop();
  d2.stop();
  return out;
}

/// Experiment 3: freeze a daemon once it has served a block; the run must
/// still complete with every grain executed exactly once.
struct KillRun {
  bool ok = false;
  bool demoted = false;
  std::size_t total_grains = 0;
  std::uint64_t executed_grains = 0;
  std::uint64_t lost_grains = 0;
  std::uint64_t heartbeats_missed = 0;
};

KillRun run_worker_kill(std::size_t grains, std::size_t depth) {
  KillRun out;
  net::WorkerDaemon healthy({0, "ok", 1.0});
  net::WorkerDaemon doomed({0, "doomed", 1.0});

  net::RemoteUnitOptions healthy_opts =
      pipelined_options(healthy.port(), "remote.ok", depth);
  net::RemoteUnitOptions doomed_opts =
      fast_options(doomed.port(), "remote.doomed");
  doomed_opts.pipeline_depth = depth;

  std::vector<std::unique_ptr<rt::ExecUnit>> units;
  units.push_back(std::make_unique<rt::LocalExecUnit>(
      rt::LocalExecUnit::Options{"coord.cpu0", 1.0, true}));
  units.push_back(
      std::make_unique<net::RemoteUnit>(std::move(healthy_opts)));
  auto doomed_unit =
      std::make_unique<net::RemoteUnit>(std::move(doomed_opts));
  net::RemoteUnit* doomed_ptr = doomed_unit.get();
  units.push_back(std::move(doomed_unit));

  rt::ThreadEngineOptions eopts;
  rt::ThreadEngine engine(eopts, std::move(units));
  apps::SyntheticWorkload workload(
      apps::SyntheticWorkload::Config{grains, 1e6, 64.0, 16.0, 2.0, 0.97,
                                      0.5, 0.5, 6'000});

  std::thread killer([&] {
    for (int i = 0; i < 2000 && doomed.blocks_served() == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    doomed.freeze();
  });
  plbhec::core::PlbHecScheduler plb;
  const rt::RunResult r = engine.run(workload, plb);
  killer.join();
  doomed.unfreeze();

  out.ok = r.ok;
  out.demoted = doomed_ptr->demoted();
  out.total_grains = grains;
  out.executed_grains = workload.executed_grains();
  out.lost_grains = out.executed_grains >= grains
                        ? 0
                        : grains - out.executed_grains;
  out.heartbeats_missed = doomed_ptr->heartbeats_missed();
  healthy.stop();
  doomed.stop();
  return out;
}

/// Experiment 4: sync vs pipelined makespan over the same frame stream.
///
/// Three daemons each execute one third of a fine-grained synthetic
/// workload. Both legs ship identical 8-grain result frames; they differ
/// only in windowing. The sync leg (depth 1) issues one 8-grain block per
/// round-trip, so every frame pays the full coordinator -> daemon reader
/// -> executor -> sender -> coordinator turnaround — on a loaded host
/// that is mostly scheduler-wakeup idle, not CPU. The pipelined leg
/// issues 128-grain blocks that chunk into the same 8-grain frames
/// streamed through a depth-8 window, so the daemon's queue never drains
/// and the turnaround idle is paid once per block instead of once per
/// frame. Per-grain kernel cost is kept small (spin 100) so the
/// turnaround is a large share of the sync leg's critical path; the
/// ratio is the best (minimum) of kPipeRounds interleaved rounds per
/// leg, for the same robustness reasons as the transfer curve.
struct PipelineComparison {
  bool ok = false;
  bool grains_exact = false;   ///< both legs executed every grain once
  bool checksum_match = false; ///< both legs match the local reference
  double sync_makespan = 0.0;      ///< best-of-rounds, depth 1
  double pipelined_makespan = 0.0; ///< best-of-rounds, depth kPipeDepth
  double ratio = 0.0;
  double overlap_fraction = 0.0;  ///< aggregate, pipelined leg
  std::uint64_t chunks_pipelined = 0;   ///< last pipelined round
  std::uint64_t batched_results = 0;    ///< last pipelined round
};

constexpr std::size_t kPipeUnits = 3;
constexpr std::size_t kPipeGrains = 12'288;
constexpr std::size_t kPipeChunkGrains = 8;
constexpr std::size_t kPipeDepth = 8;
constexpr int kPipeRounds = 3;

/// One leg of experiment 4: every unit drives its own contiguous range
/// through the unit's data plane from a dedicated thread (the engine's
/// per-unit worker arrangement without scheduler interference). Returns
/// the wall time, or a negative value on any transport/verification
/// failure.
double run_pipeline_leg(std::size_t depth, PipelineComparison& out) {
  std::vector<std::unique_ptr<net::WorkerDaemon>> daemons;
  std::vector<std::unique_ptr<net::RemoteUnit>> units;
  for (std::size_t i = 0; i < kPipeUnits; ++i) {
    daemons.push_back(std::make_unique<net::WorkerDaemon>(
        net::WorkerDaemonOptions{0, "pipe" + std::to_string(i), 1.0}));
    units.push_back(std::make_unique<net::RemoteUnit>(pipelined_options(
        daemons.back()->port(), "pipe.remote" + std::to_string(i), depth)));
  }
  apps::SyntheticWorkload::Config cfg;
  cfg.grains = kPipeGrains;
  cfg.spin_iters_per_grain = 100;
  cfg.result_payload_per_grain = 16;
  apps::SyntheticWorkload workload(cfg);
  for (auto& unit : units)
    if (!unit->begin_run(workload)) return -1.0;

  // Sync blocks are one chunk; pipelined blocks are 2*depth chunks, which
  // RemoteUnit splits back into chunk-sized frames.
  const std::size_t block =
      depth > 1 ? kPipeChunkGrains * 2 * depth : kPipeChunkGrains;
  const std::size_t per_unit = kPipeGrains / kPipeUnits;
  std::atomic<bool> failed{false};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (std::size_t i = 0; i < kPipeUnits; ++i) {
    drivers.emplace_back([&, i] {
      const std::size_t lo = i * per_unit;
      const std::size_t hi =
          i + 1 == kPipeUnits ? kPipeGrains : lo + per_unit;
      for (std::size_t b = lo; b < hi && !failed.load();) {
        const std::size_t e = std::min(b + block, hi);
        rt::BlockTiming timing;
        if (!units[i]->execute(workload, b, e, timing)) failed.store(true);
        b = e;
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  if (depth > 1) {
    std::uint64_t chunks = 0;
    std::uint64_t batched = 0;
    double saved = 0.0;
    double floor = 0.0;
    for (auto& unit : units) {
      chunks += unit->wire_stats().chunks_pipelined;
      batched += unit->wire_stats().batched_results;
      saved += unit->wire_stats().overlap_saved_seconds;
      floor += unit->wire_stats().overlap_floor_seconds;
    }
    out.chunks_pipelined = chunks;
    out.batched_results = batched;
    out.overlap_fraction =
        floor > 0.0 ? std::min(1.0, std::max(0.0, saved / floor)) : 0.0;
  }
  for (auto& unit : units) unit->end_run();
  for (auto& daemon : daemons) daemon->stop();

  if (failed.load() ||
      workload.executed_grains() != kPipeGrains) return -1.0;
  apps::SyntheticWorkload reference(cfg);
  reference.execute_cpu(0, kPipeGrains);
  // FP accumulation order differs between decompositions; relative
  // near-equality is the decomposition-invariant claim (matmul covers
  // bit identity).
  const double ref = reference.checksum();
  if (std::abs(workload.checksum() - ref) >
      1e-9 * std::max(1.0, std::abs(ref)))
    return -1.0;
  return wall;
}

PipelineComparison run_pipeline_comparison() {
  PipelineComparison out;
  double best_sync = std::numeric_limits<double>::infinity();
  double best_pipe = std::numeric_limits<double>::infinity();
  out.grains_exact = true;
  out.checksum_match = true;
  for (int round = 0; round < kPipeRounds; ++round) {
    const double sync_wall = run_pipeline_leg(1, out);
    const double pipe_wall = run_pipeline_leg(kPipeDepth, out);
    if (sync_wall < 0.0 || pipe_wall < 0.0) {
      out.grains_exact = false;
      out.checksum_match = false;
      return out;
    }
    best_sync = std::min(best_sync, sync_wall);
    best_pipe = std::min(best_pipe, pipe_wall);
  }
  out.ok = true;
  out.sync_makespan = best_sync;
  out.pipelined_makespan = best_pipe;
  out.ratio = best_pipe / best_sync;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else
      out_path = arg;
  }

  const std::size_t curve_n = 512;
  const std::size_t dist_n = 256;
  const std::size_t kill_grains = 10'000;
  const std::size_t dist_depth = 4;  // pipelined twins of experiments 2+3

  const TransferCurve curve = measure_transfer_curve(curve_n);
  const DistributedRun dist = run_distributed(dist_n, 1);
  const DistributedRun pdist = run_distributed(dist_n, dist_depth);
  const KillRun kill = run_worker_kill(kill_grains, 1);
  const KillRun pkill = run_worker_kill(kill_grains, dist_depth);
  const PipelineComparison pipe = run_pipeline_comparison();

  char buf[1024];
  std::string json = "{\n  \"benchmark\": \"bench_net\",\n";
  std::snprintf(
      buf, sizeof(buf),
      "  \"curve_n\": %zu,\n  \"dist_n\": %zu,\n  \"kill_grains\": %zu,\n"
      "  \"units\": 3,\n",
      curve_n, dist_n, kill_grains);
  json += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  \"transfer_r2\": %.4f,\n"
      "  \"transfer_slope_us\": %.17g,\n"
      "  \"transfer_latency_us\": %.17g,\n"
      "  \"transfer_samples\": %zu,\n"
      "  \"payload_min_bytes\": %zu,\n  \"payload_max_bytes\": %zu,\n",
      curve.model.r2, curve.model.slope * 1e6, curve.model.latency * 1e6,
      curve.samples, curve.payload_min_bytes, curve.payload_max_bytes);
  json += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  \"bit_identical\": %s,\n  \"dist_total_grains\": %zu,\n"
      "  \"dist_grains_counted\": %zu,\n"
      "  \"dist_remote_blocks\": %llu,\n  \"dist_makespan_us\": %.17g,\n",
      dist.bit_identical ? "true" : "false", dist.total_grains,
      dist.grains_counted,
      static_cast<unsigned long long>(dist.remote_blocks),
      dist.makespan * 1e6);
  json += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  \"demoted\": %s,\n  \"lost_grains\": %llu,\n"
      "  \"kill_executed_grains\": %llu,\n"
      "  \"kill_heartbeats_missed\": %llu,\n",
      kill.demoted ? "true" : "false",
      static_cast<unsigned long long>(kill.lost_grains),
      static_cast<unsigned long long>(kill.executed_grains),
      static_cast<unsigned long long>(kill.heartbeats_missed));
  json += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  \"pipeline_depth\": %zu,\n  \"pipeline_units\": %zu,\n"
      "  \"pipeline_grains\": %zu,\n  \"pipeline_chunk_grains\": %zu,\n"
      "  \"pipelined_vs_sync_makespan_ratio\": %.4f,\n"
      "  \"pipeline_sync_makespan_us\": %.17g,\n"
      "  \"pipeline_makespan_us\": %.17g,\n"
      "  \"pipeline_overlap_fraction\": %.4f,\n"
      "  \"pipeline_chunks\": %llu,\n"
      "  \"pipeline_batched_results\": %llu,\n"
      "  \"pipeline_grains_exact\": %s,\n",
      kPipeDepth, kPipeUnits, kPipeGrains, kPipeChunkGrains, pipe.ratio,
      pipe.sync_makespan * 1e6, pipe.pipelined_makespan * 1e6,
      pipe.overlap_fraction,
      static_cast<unsigned long long>(pipe.chunks_pipelined),
      static_cast<unsigned long long>(pipe.batched_results),
      pipe.ok && pipe.grains_exact && pipe.checksum_match ? "true"
                                                         : "false");
  json += buf;

  std::snprintf(
      buf, sizeof(buf),
      "  \"pipeline_bit_identical\": %s,\n"
      "  \"pipeline_dist_remote_blocks\": %llu,\n"
      "  \"pipeline_demoted\": %s,\n  \"pipeline_lost_grains\": %llu,\n"
      "  \"pipeline_kill_executed_grains\": %llu\n}\n",
      pdist.ok && pdist.bit_identical ? "true" : "false",
      static_cast<unsigned long long>(pdist.remote_blocks),
      pkill.demoted ? "true" : "false",
      static_cast<unsigned long long>(pkill.lost_grains),
      static_cast<unsigned long long>(pkill.executed_grains));
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    if (std::FILE* out = std::fopen(out_path.c_str(), "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  if (smoke) {
    bool fail = false;
    if (!curve.ok || curve.model.r2 < 0.7) {
      std::fprintf(stderr,
                   "smoke FAIL: G_p fit R^2 %.4f < 0.7 over %zu wire "
                   "samples\n",
                   curve.model.r2, curve.samples);
      fail = true;
    }
    if (!dist.ok || !dist.bit_identical) {
      std::fputs("smoke FAIL: distributed matmul diverged from the "
                 "single-threaded reference\n",
                 stderr);
      fail = true;
    }
    if (dist.grains_counted != dist.total_grains) {
      std::fprintf(stderr,
                   "smoke FAIL: distributed run counted %zu of %zu "
                   "grains\n",
                   dist.grains_counted, dist.total_grains);
      fail = true;
    }
    if (!kill.ok || !kill.demoted || kill.lost_grains != 0 ||
        kill.executed_grains != kill.total_grains) {
      std::fprintf(stderr,
                   "smoke FAIL: worker-kill run lost %llu grains "
                   "(executed %llu of %zu, demoted=%d)\n",
                   static_cast<unsigned long long>(kill.lost_grains),
                   static_cast<unsigned long long>(kill.executed_grains),
                   kill.total_grains, kill.demoted ? 1 : 0);
      fail = true;
    }
    if (!pdist.ok || !pdist.bit_identical) {
      std::fputs("smoke FAIL: pipelined distributed matmul diverged from "
                 "the single-threaded reference\n",
                 stderr);
      fail = true;
    }
    if (!pkill.ok || !pkill.demoted || pkill.lost_grains != 0 ||
        pkill.executed_grains != pkill.total_grains) {
      std::fprintf(stderr,
                   "smoke FAIL: pipelined worker-kill run lost %llu "
                   "grains (executed %llu of %zu, demoted=%d)\n",
                   static_cast<unsigned long long>(pkill.lost_grains),
                   static_cast<unsigned long long>(pkill.executed_grains),
                   pkill.total_grains, pkill.demoted ? 1 : 0);
      fail = true;
    }
    if (!pipe.ok || !pipe.grains_exact || !pipe.checksum_match) {
      std::fputs("smoke FAIL: pipeline comparison leg failed transport "
                 "or verification\n",
                 stderr);
      fail = true;
    } else if (pipe.ratio > 0.75) {
      std::fprintf(stderr,
                   "smoke FAIL: pipelined/sync makespan ratio %.3f > "
                   "0.75 (sync %.1f us, pipelined %.1f us)\n",
                   pipe.ratio, pipe.sync_makespan * 1e6,
                   pipe.pipelined_makespan * 1e6);
      fail = true;
    }
    if (pipe.overlap_fraction < 0.0 || pipe.overlap_fraction > 1.0) {
      std::fprintf(stderr,
                   "smoke FAIL: overlap fraction %.3f outside [0, 1]\n",
                   pipe.overlap_fraction);
      fail = true;
    }
    if (fail) return 1;
    std::fputs("smoke OK\n", stderr);
  }
  return curve.ok && dist.ok && pdist.ok && kill.ok && pkill.ok && pipe.ok
             ? 0
             : 1;
}
