/// Ablation of the execution-phase adaptation machinery (§V-c and §VI):
/// on a stable cluster the threshold never fires (reproducing the paper's
/// observation); under QoS drift and failures, compares full adaptation
/// (refinement + rebalancing) against partially and fully frozen variants.

#include "bench_common.hpp"

namespace {

using namespace plbhec;

struct Variant {
  const char* label;
  std::size_t refinements;
  double threshold;
};

const std::vector<Variant> kVariants{
    {"full (refine + rebalance)", 2, 0.15},
    {"refine only", 2, 1e9},
    {"rebalance only", 0, 0.15},
    {"frozen after first selection", 0, 1e9},
};

void scenario_table(const char* label, double drift_at, double factor,
                    double fail_at, std::size_t reps) {
  Table t({"variant", "makespan [s]", "rebalances", "refinements"});
  for (const auto& v : kVariants) {
    RunningStats ms, reb, refi;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      apps::GrnWorkload w(apps::GrnWorkload::paper_instance(60'000));
      sim::SimCluster cluster(sim::scenario(4, false));
      // The nominal makespan of this workload is ~0.1-0.2 s.
      if (drift_at > 0.0) cluster.add_speed_event(7, drift_at, factor);
      if (fail_at > 0.0) cluster.fail_unit(5, fail_at);
      rt::EngineOptions eopts;
      eopts.seed = 7000 + rep;
      eopts.record_trace = false;
      rt::SimEngine engine(cluster, eopts);
      core::PlbHecOptions opts;
      opts.refinements = v.refinements;
      opts.rebalance_threshold = v.threshold;
      opts.step_fraction = 0.0625;
      core::PlbHecScheduler plb(opts);
      const rt::RunResult r = engine.run(w, plb);
      if (!r.ok) continue;
      ms.add(r.makespan);
      reb.add(static_cast<double>(plb.stats().rebalances));
      refi.add(static_cast<double>(plb.stats().refinements));
    }
    t.row().add(v.label).add(ms.mean(), 4).add(reb.mean(), 1).add(
        refi.mean(), 1);
  }
  std::printf("\n%s:\n", label);
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", cli.full() ? 10 : 3));
  bench::print_header("Ablation — execution-phase adaptation (GRN 60k)",
                      sim::scenario(4, false));
  scenario_table("Stable cluster (paper: rebalancing never executed)", 0.0,
                 1.0, 0.0, reps);
  scenario_table("QoS drift: D.gpu0 to 0.3x at t=0.05s", 0.05, 0.3, 0.0,
                 reps);
  scenario_table("Failure: C.gpu0 dies at t=0.06s (paper §VI)", 0.0, 1.0,
                 0.06, reps);
  return 0;
}
