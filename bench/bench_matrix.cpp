/// \file bench_matrix.cpp
/// Scenario-matrix chaos harness: runs the cross-product of cluster
/// shapes x workload mixes x fault scripts (chaos/scenario.hpp) for
/// PLB-HeC vs HDSS / Acosta / Greedy / StaticProfile on the simulated
/// executor and emits one JSON row per cell (makespans, win bit, lost
/// grains, rebalance count, probe overhead) plus the summary the CI gate
/// reads: `win_rate` (PLB-HeC beats-or-ties the best baseline),
/// `lost_grain_violations` (must be zero everywhere) and
/// `replay_identical` (the first cell re-run row-for-row, proving the
/// per-(cell, seed) determinism any replay relies on).
///
/// Modes:
///   bench_matrix [--out out.json]           ~20-cell smoke (per-PR gate)
///   bench_matrix --full [--seeds N] [--out] full grid (nightly CI)
///   bench_matrix --cell '<id>'              replay one cell, print its row
///
/// Every row carries its exact replay command; tools/check_bench.py
/// prints it for any cell that regresses. The committed smoke baseline
/// lives in bench/results/bench_matrix.json.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "plbhec/chaos/scenario.hpp"
#include "plbhec/common/cli.hpp"

namespace {

using plbhec::chaos::CellResult;
using plbhec::chaos::ScenarioCell;

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string replay_command(const ScenarioCell& cell) {
  return "./build/bench/bench_matrix --cell '" + cell.id() + "'";
}

/// One cell as a JSON object. The serialization IS the determinism
/// contract: two runs of the same cell must produce byte-identical rows.
std::string row_json(const CellResult& r) {
  std::string out = "    {\"cell\": \"" + r.cell.id() + "\"";
  out += ", \"units\": " + std::to_string(r.units);
  out += ", \"total_grains\": " + std::to_string(r.total_grains);
  out += std::string(", \"plb_win\": ") + (r.plb_win ? "true" : "false");
  out += ", \"plb_vs_best\": " + fmt(r.plb_vs_best);
  out += ", \"best_baseline\": \"" + r.best_baseline + "\"";
  std::size_t lost = 0;
  std::size_t requeued = 0;
  std::size_t failed_units = 0;
  for (const auto& o : r.outcomes) {
    lost += o.lost_grains;
    requeued += o.grains_requeued;
    failed_units = std::max(failed_units, o.failed_units);
  }
  out += ", \"lost_grains\": " + std::to_string(lost);
  out += ", \"grains_requeued\": " + std::to_string(requeued);
  out += ", \"failed_units\": " + std::to_string(failed_units);
  out += ", \"rebalances\": " + std::to_string(r.outcomes[0].rebalances);
  out += ", \"solves\": " + std::to_string(r.outcomes[0].solves);
  out += ", \"probe_overhead\": " + fmt(r.outcomes[0].probe_overhead);
  for (const auto& o : r.outcomes) {
    std::string key = o.scheduler;
    for (auto& c : key) c = c == '-' ? '_' : static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
    out += ", \"makespan_" + key + "_s\": " + (o.ok ? fmt(o.makespan) : "-1");
  }
  out += ", \"replay\": \"" + replay_command(r.cell) + "\"}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  plbhec::Cli cli(argc, argv);

  if (cli.has("cell")) {
    const std::string id = cli.get("cell", "");
    const auto cell = plbhec::chaos::parse_cell_id(id);
    if (!cell) {
      std::fprintf(stderr,
                   "unknown cell id '%s' (format: "
                   "u<units>-<het>/<workload>/<fault>@<seed>)\n",
                   id.c_str());
      return 2;
    }
    const CellResult r = plbhec::chaos::run_cell(*cell);
    std::printf("%s\n", row_json(r).c_str());
    if (!r.grains_accounted) {
      std::fprintf(stderr, "LOST-GRAIN VIOLATION in cell %s\n",
                   cell->id().c_str());
      return 1;
    }
    return 0;
  }

  const bool full = cli.full();
  const auto seeds =
      static_cast<std::size_t>(cli.get_int("seeds", 1));
  const std::vector<ScenarioCell> cells =
      full ? plbhec::chaos::full_grid(seeds) : plbhec::chaos::smoke_grid();

  std::vector<std::string> rows;
  rows.reserve(cells.size());
  std::size_t wins = 0;
  std::size_t violations = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult r = plbhec::chaos::run_cell(cells[i]);
    if (r.plb_win) ++wins;
    if (!r.grains_accounted) {
      ++violations;
      std::fprintf(stderr, "LOST-GRAIN VIOLATION: %s\n",
                   replay_command(r.cell).c_str());
    }
    rows.push_back(row_json(r));
    std::fprintf(stderr, "[%3zu/%zu] %-40s %s  plb/best=%.3f\n", i + 1,
                 cells.size(), r.cell.id().c_str(),
                 r.plb_win ? "win " : "LOSS", r.plb_vs_best);
  }

  // Determinism proof: the first cell, re-run from its id alone, must
  // reproduce its committed row byte-for-byte.
  const bool replay_identical =
      row_json(plbhec::chaos::run_cell(cells.front())) == rows.front();

  std::string sched_list;
  for (const auto& name : plbhec::chaos::scheduler_names())
    sched_list += (sched_list.empty() ? "" : ",") + name;

  std::string json = "{\n  \"benchmark\": \"bench_matrix\",\n";
  json += std::string("  \"mode\": \"") + (full ? "full" : "smoke") + "\",\n";
  json += "  \"schedulers\": \"" + sched_list + "\",\n";
  json += "  \"cells\": " + std::to_string(cells.size()) + ",\n";
  json += "  \"tie_tolerance\": " + fmt(plbhec::chaos::kTieTolerance) + ",\n";
  json += "  \"wins\": " + std::to_string(wins) + ",\n";
  json += "  \"win_rate\": " +
          fmt(static_cast<double>(wins) / static_cast<double>(cells.size())) +
          ",\n";
  json += "  \"lost_grain_violations\": " + std::to_string(violations) + ",\n";
  json += std::string("  \"replay_identical\": ") +
          (replay_identical ? "true" : "false") + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i)
    json += rows[i] + (i + 1 < rows.size() ? ",\n" : "\n");
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::vector<std::string> out_paths = cli.positional();
  if (const std::string out = cli.get("out", ""); !out.empty())
    out_paths.push_back(out);
  for (const auto& path : out_paths) {
    if (FILE* out = std::fopen(path.c_str(), "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }

  if (violations > 0 || !replay_identical) {
    std::fprintf(stderr,
                 "FAIL: violations=%zu replay_identical=%d (win-rate "
                 "floor is gated by tools/check_bench.py)\n",
                 violations, replay_identical ? 1 : 0);
    return 1;
  }
  std::fprintf(stderr, "win rate %.2f (%zu/%zu cells)\n",
               static_cast<double>(wins) / static_cast<double>(cells.size()),
               wins, cells.size());
  return 0;
}
