// Open-loop service benchmark: replays a fixed-seed Poisson arrival trace
// of mixed matmul / Black-Scholes / GRN / SpMV / stencil jobs through the
// multi-tenant
// JobManager twice against the same on-disk ProfileStore -- once cold
// (store file absent) and once warm (store populated by the cold run) --
// and reports per-job stretch vs running alone, queue wait, utilization
// and the probing blocks the warm start saved. Emits JSON (stdout, plus
// an output path if given); the committed baseline lives in
// bench/results/bench_service.json and tools/check_bench.py gates the
// probing-saved ratio and the structural identity of the arrival trace.
// `--smoke` runs a smaller trace and exits nonzero when the warm run does
// not beat the cold run on probing blocks or when two warm replays from
// identical store images diverge (completion order or makespan).
//
// A second section replays a 10k-job Poisson trace through the sharded
// coordinator (ServiceOptions::shards) and through the classic single
// event loop, reporting p50/p95/p99 job stretch and queue wait (virtual
// time, deterministic), the shard/broker counters, the wall-clock of
// both coordinators and their throughput ratio (sharded_speedup), and a
// digest of the sharded completion order for replay identity.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <chrono>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/spmv.hpp"
#include "plbhec/apps/stencil.hpp"
#include "plbhec/apps/synthetic.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/sim/machine.hpp"
#include "plbhec/svc/job_manager.hpp"

namespace {

namespace apps = plbhec::apps;
namespace sim = plbhec::sim;
namespace svc = plbhec::svc;
namespace fs = std::filesystem;

/// One templated job kind the trace draws from. The same app_kind string
/// recurs across the trace, so the warm run can reuse stored profiles.
struct KindTemplate {
  std::string app_kind;
  std::function<std::unique_ptr<plbhec::rt::Workload>()> make;
};

std::vector<KindTemplate> kind_pool() {
  std::vector<KindTemplate> pool;
  pool.push_back({"matmul-1024",
                  [] { return std::make_unique<apps::MatMulWorkload>(1024); }});
  pool.push_back({"bs-300k", [] {
                    return std::make_unique<apps::BlackScholesWorkload>(
                        300'000);
                  }});
  pool.push_back({"grn-10k", [] {
                    return std::make_unique<apps::GrnWorkload>(
                        apps::GrnWorkload::paper_instance(10'000));
                  }});
  pool.push_back({"spmv-200k", [] {
                    return std::make_unique<apps::SpmvWorkload>(
                        apps::SpmvWorkload::paper_instance(200'000));
                  }});
  pool.push_back({"stencil-100k", [] {
                    return std::make_unique<apps::StencilWorkload>(
                        apps::StencilWorkload::paper_instance(100'000));
                  }});
  return pool;
}

/// Lightweight kind pool for the 10k trace. JobManager materializes every
/// workload up-front, so 10k matmul-1024 jobs would hold ~250 GB of
/// matrices; SyntheticWorkload carries only its cost profile and keeps
/// the trace a pure coordinator-throughput measurement.
std::vector<KindTemplate> synthetic_pool() {
  const auto syn = [](std::size_t grains, double flops) {
    apps::SyntheticWorkload::Config config;
    config.grains = grains;
    config.flops_per_grain = flops;
    config.bytes_per_grain = 2048.0;
    return [config] { return std::make_unique<apps::SyntheticWorkload>(config); };
  };
  std::vector<KindTemplate> pool;
  pool.push_back({"syn-small", syn(2'000, 8e5)});
  pool.push_back({"syn-medium", syn(5'000, 4e5)});
  pool.push_back({"syn-large", syn(12'000, 2e5)});
  return pool;
}

/// Deterministic open-loop trace: exponential inter-arrivals (Poisson
/// process) from the integer RNG stream, kinds cycling through the pool,
/// priorities drawn 20% high / 60% normal / 20% low.
std::vector<svc::JobSpec> make_trace(std::size_t jobs, std::uint64_t seed,
                                     double mean_gap,
                                     const std::vector<KindTemplate>& pool) {
  plbhec::Rng rng(seed);
  std::vector<svc::JobSpec> trace;
  double t = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    const KindTemplate& kind = pool[i % pool.size()];
    const std::int64_t draw = rng.uniform_int(0, 9);
    const svc::PriorityClass priority =
        draw < 2   ? svc::PriorityClass::kHigh
        : draw < 8 ? svc::PriorityClass::kNormal
                   : svc::PriorityClass::kLow;
    const double u = rng.uniform();
    t += -mean_gap * std::log(1.0 - std::min(u, 1.0 - 1e-12));
    trace.push_back({kind.app_kind + "/" + std::to_string(i), kind.app_kind,
                     priority, t, kind.make});
  }
  return trace;
}

svc::ServiceResult run_trace(const sim::SimCluster& cluster,
                             const std::vector<svc::JobSpec>& trace,
                             const std::string& store_path,
                             std::uint64_t seed) {
  svc::ServiceOptions options;
  options.noise = sim::NoiseModel::none();
  options.seed = seed;
  options.store_path = store_path;
  svc::JobManager manager(cluster, options);
  for (const svc::JobSpec& spec : trace) manager.submit(spec);
  return manager.run();
}

/// Makespan of the job running alone on the whole cluster, cold store.
/// Used as the denominator of the per-job stretch.
double solo_makespan(const sim::SimCluster& cluster, const svc::JobSpec& spec,
                     std::uint64_t seed) {
  svc::ServiceOptions options;
  options.noise = sim::NoiseModel::none();
  options.seed = seed;
  svc::JobManager manager(cluster, options);
  svc::JobSpec solo = spec;
  solo.arrival_time = 0.0;
  manager.submit(std::move(solo));
  const svc::ServiceResult r = manager.run();
  return r.ok ? r.makespan : -1.0;
}

std::string order_string(const std::vector<svc::JobId>& order) {
  std::string s;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(order[i]);
  }
  return s;
}

double mean_queue_wait(const svc::ServiceResult& r) {
  if (r.jobs.empty()) return 0.0;
  double sum = 0.0;
  for (const svc::JobOutcome& job : r.jobs) sum += job.queue_wait();
  return sum / static_cast<double>(r.jobs.size());
}

/// Nearest-rank percentile (p in [0, 100]) of an unsorted sample.
double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size());
  const std::size_t idx = static_cast<std::size_t>(std::max(
      0.0, std::ceil(rank) - 1.0));
  return values[std::min(idx, values.size() - 1)];
}

/// FNV-1a 64 digest of a completion order + makespan bits: one identity
/// token for "the sharded 10k replay came out exactly the same".
std::uint64_t order_digest(const svc::ServiceResult& r) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const svc::JobId id : r.completion_order) mix(id);
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(r.makespan));
  std::memcpy(&bits, &r.makespan, sizeof(bits));
  mix(bits);
  return h;
}

/// One 10k-trace coordinator pass; wall-clock is the DES throughput
/// measurement, everything inside the result is virtual time.
svc::ServiceResult run_trace10k(const sim::SimCluster& cluster,
                                const std::vector<svc::JobSpec>& trace,
                                std::size_t shards, std::uint64_t seed,
                                plbhec::obs::CounterRegistry* counters,
                                double* wall_seconds) {
  svc::ServiceOptions options;
  options.noise = sim::NoiseModel::none();
  options.seed = seed;
  options.shards = shards;
  options.counters = counters;
  svc::JobManager manager(cluster, options);
  for (const svc::JobSpec& spec : trace) manager.submit(spec);
  const auto t0 = std::chrono::steady_clock::now();
  svc::ServiceResult result = manager.run();
  *wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else
      out_path = arg;
  }

  // The trace is identical in smoke and full mode on purpose: CI runs
  // `--smoke fresh.json` and gates fresh.json against the committed
  // baseline, so the two must describe the same arrival trace.
  const std::size_t machines = 2;
  const std::size_t jobs = 12;
  const std::uint64_t seed = 42;
  const double mean_gap = 0.008;

  const sim::SimCluster cluster(sim::scenario(machines));
  const std::size_t units = cluster.size();
  const std::vector<svc::JobSpec> trace =
      make_trace(jobs, seed, mean_gap, kind_pool());

  const fs::path dir = fs::temp_directory_path();
  const fs::path store_cold = dir / "plbhec_bench_service_cold.store";
  const fs::path store_w1 = dir / "plbhec_bench_service_warm1.store";
  const fs::path store_w2 = dir / "plbhec_bench_service_warm2.store";
  std::error_code ec;
  for (const fs::path& p : {store_cold, store_w1, store_w2})
    fs::remove(p, ec);

  // Cold: store file absent, every job probes from scratch (jobs of the
  // same kind still share profiles in memory within the run). The run
  // persists the fitted profiles to store_cold.
  const svc::ServiceResult cold =
      run_trace(cluster, trace, store_cold.string(), seed);

  // Warm: same trace, same seed, against the store the cold run produced.
  // Two replays from identical store images double as the determinism
  // check (the first replay mutates its own copy on job completion, so
  // each replay gets a private copy).
  fs::copy_file(store_cold, store_w1, fs::copy_options::overwrite_existing,
                ec);
  fs::copy_file(store_cold, store_w2, fs::copy_options::overwrite_existing,
                ec);
  const svc::ServiceResult warm =
      run_trace(cluster, trace, store_w1.string(), seed);
  const svc::ServiceResult replay =
      run_trace(cluster, trace, store_w2.string(), seed);

  const bool all_ok = cold.ok && warm.ok && replay.ok;
  const bool replay_identical =
      warm.completion_order == replay.completion_order &&
      warm.makespan == replay.makespan;
  const double probing_saved_ratio =
      static_cast<double>(warm.probe_blocks_saved) /
      static_cast<double>(std::max<std::size_t>(cold.probe_blocks, 1));

  // Per-job stretch in the warm run vs running alone (solo baselines are
  // computed once per app kind; every trace job of a kind is identical).
  std::map<std::string, double> solo;
  for (const svc::JobSpec& spec : trace)
    if (!solo.count(spec.app_kind))
      solo[spec.app_kind] = solo_makespan(cluster, spec, seed);

  // --- 10k-job Poisson trace: sharded coordinator vs single event loop.
  // Same seed discipline as the 12-job section but a synthetic kind pool
  // (see synthetic_pool()); no profile store, so both passes start cold
  // and the comparison is pure coordinator throughput. Tail metrics come
  // from the sharded pass (the scaled-out configuration this trace exists
  // to exercise).
  // The gap puts the offered load around 85% of cluster capacity (mean
  // service demand is ~0.037 s/unit per job): queues form and drain, so
  // the tails reflect the scheduler rather than an unbounded backlog.
  const std::size_t jobs10k = 10'000;
  const double mean_gap10k = 0.045;
  const std::size_t shards10k = std::min<std::size_t>(4, units);
  const std::vector<svc::JobSpec> trace10k =
      make_trace(jobs10k, seed, mean_gap10k, synthetic_pool());

  // Solo baselines for the 10k kinds (stretch denominators).
  for (const svc::JobSpec& spec : trace10k)
    if (!solo.count(spec.app_kind))
      solo[spec.app_kind] = solo_makespan(cluster, spec, seed);

  double wall_single = 0.0;
  double wall_sharded = 0.0;
  const svc::ServiceResult single10k =
      run_trace10k(cluster, trace10k, 1, seed, nullptr, &wall_single);
  plbhec::obs::CounterRegistry counters10k;
  const svc::ServiceResult sharded10k = run_trace10k(
      cluster, trace10k, shards10k, seed, &counters10k, &wall_sharded);
  const bool ok10k = single10k.ok && sharded10k.ok;

  std::vector<double> stretches, waits;
  stretches.reserve(sharded10k.jobs.size());
  waits.reserve(sharded10k.jobs.size());
  for (const svc::JobOutcome& job : sharded10k.jobs) {
    const double base = solo.count(job.app_kind) ? solo.at(job.app_kind)
                                                 : -1.0;
    if (base > 0.0) stretches.push_back(job.turnaround() / base);
    waits.push_back(job.queue_wait());
  }
  const double sharded_speedup =
      wall_sharded > 0.0 ? wall_single / wall_sharded : 0.0;

  char buf[1024];
  std::string json = "{\n  \"benchmark\": \"bench_service\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"jobs\": %zu,\n  \"units\": %zu,\n  \"seed\": %llu,\n"
                "  \"mean_gap\": %.17g,\n",
                jobs, units, static_cast<unsigned long long>(seed), mean_gap);
  json += buf;

  std::string kinds, prios;
  json += "  \"arrival_times\": [";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      kinds += ",";
      prios += ",";
      json += ", ";
    }
    kinds += trace[i].app_kind;
    prios += svc::to_string(trace[i].priority);
    std::snprintf(buf, sizeof(buf), "%.17g", trace[i].arrival_time);
    json += buf;
  }
  json += "],\n";
  json += "  \"trace_kinds\": \"" + kinds + "\",\n";
  json += "  \"trace_priorities\": \"" + prios + "\",\n";

  std::snprintf(
      buf, sizeof(buf),
      "  \"makespan_cold\": %.17g,\n  \"makespan_warm\": %.17g,\n"
      "  \"utilization_cold\": %.4f,\n  \"utilization_warm\": %.4f,\n"
      "  \"queue_wait_mean_cold\": %.17g,\n"
      "  \"queue_wait_mean_warm\": %.17g,\n"
      "  \"probe_blocks_cold\": %zu,\n  \"probe_blocks_warm\": %zu,\n"
      "  \"probe_blocks_saved_warm\": %zu,\n"
      "  \"warm_hits\": %zu,\n  \"warm_misses\": %zu,\n"
      "  \"probing_saved_ratio\": %.4f,\n"
      "  \"leases_granted\": %zu,\n  \"leases_revoked\": %zu,\n"
      "  \"scheduler_restarts\": %zu,\n",
      cold.makespan, warm.makespan, cold.utilization, warm.utilization,
      mean_queue_wait(cold), mean_queue_wait(warm), cold.probe_blocks,
      warm.probe_blocks, warm.probe_blocks_saved, warm.warm_hits,
      warm.warm_misses, probing_saved_ratio, warm.leases_granted,
      warm.leases_revoked, warm.scheduler_restarts);
  json += buf;

  const double warm_vs_cold = cold.makespan > 0.0
                                  ? warm.makespan / cold.makespan
                                  : -1.0;
  std::snprintf(
      buf, sizeof(buf),
      "  \"warm_vs_cold_makespan_ratio\": %.4f,\n"
      "  \"trace10k_jobs\": %zu,\n  \"trace10k_shards\": %zu,\n"
      "  \"trace10k_mean_gap\": %.17g,\n"
      "  \"trace10k_makespan\": %.17g,\n"
      "  \"trace10k_utilization\": %.4f,\n"
      "  \"stretch_p50\": %.4f,\n  \"stretch_p95\": %.4f,\n"
      "  \"stretch_p99\": %.4f,\n"
      "  \"queue_wait_p50\": %.6f,\n  \"queue_wait_p95\": %.6f,\n"
      "  \"queue_wait_p99\": %.6f,\n"
      "  \"broker_rounds\": %zu,\n  \"broker_migrations\": %zu,\n"
      "  \"trace10k_order_digest\": \"%016llx\",\n"
      "  \"wall_single_loop_us\": %.0f,\n  \"wall_sharded_us\": %.0f,\n"
      "  \"sharded_speedup\": %.4f,\n",
      warm_vs_cold, jobs10k, shards10k, mean_gap10k, sharded10k.makespan,
      sharded10k.utilization, percentile(stretches, 50.0),
      percentile(stretches, 95.0), percentile(stretches, 99.0),
      percentile(waits, 50.0), percentile(waits, 95.0),
      percentile(waits, 99.0), sharded10k.broker_rounds,
      sharded10k.broker_migrations,
      static_cast<unsigned long long>(order_digest(sharded10k)),
      wall_single * 1e6, wall_sharded * 1e6, sharded_speedup);
  json += buf;

  json += "  \"completion_order_cold\": \"" +
          order_string(cold.completion_order) + "\",\n";
  json += "  \"completion_order_warm\": \"" +
          order_string(warm.completion_order) + "\",\n";
  json += std::string("  \"replay_identical\": ") +
          (replay_identical ? "true" : "false") + ",\n";

  json += "  \"per_job\": [\n";
  for (std::size_t i = 0; i < warm.jobs.size(); ++i) {
    const svc::JobOutcome& job = warm.jobs[i];
    const double base = solo.count(job.app_kind) ? solo.at(job.app_kind) : -1.0;
    const double stretch = base > 0.0 ? job.turnaround() / base : -1.0;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"kind\": \"%s\", \"priority\": \"%s\",\n"
        "     \"arrival\": %.17g, \"queue_wait\": %.17g,\n"
        "     \"turnaround\": %.17g, \"stretch\": %.4f,\n"
        "     \"probe_blocks\": %zu, \"probe_blocks_saved\": %zu,\n"
        "     \"warm_hits\": %zu, \"warm_misses\": %zu}%s\n",
        job.name.c_str(), job.app_kind.c_str(), svc::to_string(job.priority),
        job.arrival, job.queue_wait(), job.turnaround(), stretch,
        job.probe_blocks, job.probe_blocks_saved, job.warm_hits,
        job.warm_misses, i + 1 < warm.jobs.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    if (std::FILE* out = std::fopen(out_path.c_str(), "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  for (const fs::path& p : {store_cold, store_w1, store_w2})
    fs::remove(p, ec);

  if (smoke) {
    if (!all_ok) {
      std::fputs("smoke FAIL: a service run did not finish\n", stderr);
      return 1;
    }
    if (!ok10k) {
      std::fprintf(stderr,
                   "smoke FAIL: 10k trace did not finish (single \"%s\", "
                   "sharded \"%s\")\n",
                   single10k.error.c_str(), sharded10k.error.c_str());
      return 1;
    }
    if (sharded10k.completion_order.size() != jobs10k ||
        single10k.completion_order.size() != jobs10k) {
      std::fputs("smoke FAIL: 10k trace lost jobs\n", stderr);
      return 1;
    }
    if (shards10k > 1 &&
        (sharded10k.shards_used != shards10k ||
         sharded10k.broker_rounds == 0)) {
      std::fputs("smoke FAIL: sharded pass did not exercise the broker\n",
                 stderr);
      return 1;
    }
    if (counters10k.value("svc.broker.rounds") != sharded10k.broker_rounds ||
        counters10k.value("svc.broker.migrations") !=
            sharded10k.broker_migrations) {
      std::fputs("smoke FAIL: published broker counters disagree with the "
                 "service result\n",
                 stderr);
      return 1;
    }
    if (warm.probe_blocks >= cold.probe_blocks) {
      std::fprintf(stderr,
                   "smoke FAIL: warm run probed %zu blocks, cold %zu -- "
                   "warm start saved nothing\n",
                   warm.probe_blocks, cold.probe_blocks);
      return 1;
    }
    if (warm.warm_hits == 0 || warm.probe_blocks_saved == 0) {
      std::fputs("smoke FAIL: warm run validated no stored profile\n",
                 stderr);
      return 1;
    }
    if (!replay_identical) {
      std::fprintf(stderr,
                   "smoke FAIL: replay diverged (order \"%s\" vs \"%s\", "
                   "makespan %.17g vs %.17g)\n",
                   order_string(warm.completion_order).c_str(),
                   order_string(replay.completion_order).c_str(),
                   warm.makespan, replay.makespan);
      return 1;
    }
    std::fputs("smoke OK\n", stderr);
  }
  return all_ok ? 0 : 1;
}
