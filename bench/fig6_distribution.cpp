/// Reproduces Fig. 6: the block-size distribution across the 8 processing
/// units (CPU + GPU of machines A-D, one GPU per machine) selected by
/// Acosta, HDSS and PLB-HeC, for two input sizes per application,
/// normalized to 1. Mean and standard deviation over repeated runs.

#include "bench_common.hpp"

namespace {

using namespace plbhec;

void distribution_for(
    const std::string& app_label, std::size_t size,
    const std::function<std::unique_ptr<rt::Workload>()>& make,
    std::size_t reps) {
  sim::SimCluster cluster(sim::scenario(4, /*dual_gpu_boards=*/false));
  const std::size_t n = cluster.size();

  // algorithm -> unit -> stats over repetitions
  std::vector<std::vector<RunningStats>> shares(
      3, std::vector<RunningStats>(n));
  const std::vector<std::string> algos{"Acosta", "HDSS", "PLB-HeC"};

  for (std::size_t rep = 0; rep < reps; ++rep) {
    rt::EngineOptions opts;
    opts.seed = 2000 + rep;
    opts.record_trace = false;
    rt::SimEngine engine(cluster, opts);

    {
      auto w = make();
      baselines::AcostaScheduler acosta;
      if (engine.run(*w, acosta).ok)
        for (std::size_t u = 0; u < n; ++u)
          shares[0][u].add(acosta.shares()[u]);
    }
    {
      auto w = make();
      baselines::HdssScheduler hdss;
      if (engine.run(*w, hdss).ok) {
        const auto wf = hdss.weight_fractions();
        for (std::size_t u = 0; u < n; ++u) shares[1][u].add(wf[u]);
      }
    }
    {
      auto w = make();
      core::PlbHecScheduler plb;
      if (engine.run(*w, plb).ok)
        for (std::size_t u = 0; u < n; ++u)
          shares[2][u].add(plb.fractions()[u]);
    }
  }

  std::printf("\n%s, input %zu — block-size shares (mean +- sd over %zu runs):\n",
              app_label.c_str(), size, reps);
  Table t({"Unit", "Acosta", "HDSS", "PLB-HeC"});
  for (std::size_t u = 0; u < n; ++u) {
    t.row().add(cluster.unit(u).name);
    for (std::size_t a = 0; a < 3; ++a)
      t.add(format_double(shares[a][u].mean(), 3) + " +- " +
            format_double(shares[a][u].stddev(), 3));
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const bool full = cli.full();
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", full ? 10 : 3));

  bench::print_header(
      "Fig. 6 — block size distribution among processing units",
      sim::scenario(4, false));

  for (std::size_t n : {16384u, full ? 65536u : 32768u})
    distribution_for("MatMul", n, [n] {
      return std::make_unique<apps::MatMulWorkload>(n);
    }, reps);
  for (std::size_t g : {60'000u, 140'000u})
    distribution_for("GRN", g, [g] {
      return std::make_unique<apps::GrnWorkload>(
          apps::GrnWorkload::paper_instance(g));
    }, reps);
  for (std::size_t o : {100'000u, 500'000u})
    distribution_for("BlackScholes", o, [o] {
      return std::make_unique<apps::BlackScholesWorkload>(
          apps::BlackScholesWorkload::paper_instance(o));
    }, reps);

  std::printf(
      "\nShape check vs the paper: PLB-HeC assigns proportionally smaller\n"
      "blocks to CPUs and larger to GPUs than Acosta/HDSS (which use\n"
      "linear weighted means and produce similar distributions); standard\n"
      "deviations are small (stable across runs).\n");
  return 0;
}
