/// Ablation: the basis-function set of Eq. (1). Compares the paper's full
/// 7-function set against restricted families (linear-only, log-only,
/// polynomial-only) on fit quality over device curves and on the makespan
/// PLB-HeC achieves with each.

#include "bench_common.hpp"
#include "plbhec/fit/least_squares.hpp"

namespace {

using namespace plbhec;

struct BasisVariant {
  const char* label;
  std::vector<fit::BasisFn> terms;
};

const std::vector<BasisVariant> kVariants{
    {"paper set (7 fn)",
     {fit::BasisFn::kX, fit::BasisFn::kXLnX, fit::BasisFn::kLnX,
      fit::BasisFn::kX2, fit::BasisFn::kX3, fit::BasisFn::kExpX,
      fit::BasisFn::kXExpX}},
    {"linear only", {fit::BasisFn::kX}},
    {"log family", {fit::BasisFn::kLnX, fit::BasisFn::kXLnX}},
    {"polynomial", {fit::BasisFn::kX, fit::BasisFn::kX2, fit::BasisFn::kX3}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", cli.full() ? 10 : 3));
  bench::print_header("Ablation — basis set for F_p[x] (MatMul 16384)",
                      sim::scenario(4, true));

  // Fit quality on the true K20c matmul curve.
  apps::MatMulWorkload mm(16384);
  sim::SimCluster cluster(sim::scenario(4, true));
  const auto& gpu = cluster.unit(1);
  Rng rng(5);
  sim::NoiseModel noise;
  fit::SampleSet samples;
  for (double x = 1.0 / 512.0; x < 0.12; x *= 1.8)
    samples.add(x, noise.perturb_exec(gpu.device->execution_seconds(
                                          mm.profile(), x * 16384.0),
                                      rng));

  Table fit_table({"basis", "R^2", "rel. err @ x=0.25 (extrapolated)"});
  for (const auto& variant : kVariants) {
    const fit::FitResult f = fit::select_model_from(samples, variant.terms);
    const double truth =
        gpu.device->execution_seconds(mm.profile(), 0.25 * 16384.0);
    const double rel =
        f.model.valid() ? std::fabs(f.model(0.25) - truth) / truth : 1.0;
    fit_table.row().add(variant.label).add(f.r2, 4).add(rel, 3);
  }
  std::printf("\nFit quality on the K20c matmul curve:\n");
  fit_table.print();

  // End-to-end makespan with each basis.
  Table mk({"basis", "PLB-HeC makespan [s]"});
  for (const auto& variant : kVariants) {
    RunningStats stats;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      apps::MatMulWorkload w(16384);
      rt::EngineOptions eopts;
      eopts.seed = 5000 + rep;
      eopts.record_trace = false;
      sim::SimCluster c(sim::scenario(4, true));
      rt::SimEngine engine(c, eopts);
      core::PlbHecScheduler plb;  // default uses the paper set
      if (variant.terms.size() == 7) {
        const rt::RunResult r = engine.run(w, plb);
        if (r.ok) stats.add(r.makespan);
      } else {
        // Restricted fits are applied by narrowing the candidate list.
        core::PlbHecOptions opts;
        core::PlbHecScheduler restricted(opts);
        const rt::RunResult r = engine.run(w, restricted);
        // The scheduler API keeps the paper set internally; emulate the
        // restriction by refitting its samples and re-solving.
        if (!r.ok) continue;
        std::vector<fit::PerfModel> models;
        bool valid = true;
        for (rt::UnitId u = 0; u < c.size(); ++u) {
          fit::PerfModel m;
          m.exec = fit::select_model_from(
                       restricted.profiles().exec_samples(u), variant.terms)
                       .model;
          m.transfer =
              fit::fit_transfer(restricted.profiles().transfer_samples(u));
          valid = valid && m.valid();
          models.push_back(m);
        }
        if (!valid) continue;
        const auto sel = solver::select_block_sizes(models);
        if (!sel.ok) continue;
        // Run a static schedule with those shares to price the fit error.
        baselines::StaticProfileScheduler sched(sel.fractions);
        const rt::RunResult rs = engine.run(w, sched);
        if (rs.ok) stats.add(rs.makespan);
      }
    }
    mk.row().add(variant.label).add(stats.mean(), 4);
  }
  std::printf("\nEnd-to-end cost of the selected distribution:\n");
  mk.print();
  std::printf(
      "\nExpected: the full set and the log family capture the GPU warmup\n"
      "curvature; linear-only overestimates large-block times and degrades\n"
      "the split when the operating point is far from the probes.\n");
  return 0;
}
