// Fitting-pipeline microbenchmark: select_model latency of the cached-moment
// Gram/Cholesky engine against the legacy design-matrix QR engine across the
// sample-count range the scheduler sees, and fit_all scaling of the per-unit
// parallel fan-out against a serial loop. Emits JSON (stdout, plus an output
// path if given) — see bench/results/bench_fit.json for the committed
// numbers. `--smoke` runs a fast version and exits nonzero unless the Gram
// engine agrees with QR and beats it at 64 samples (used by CI).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "plbhec/common/rng.hpp"
#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/samples.hpp"
#include "plbhec/rt/profile_db.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using plbhec::Rng;
namespace fit = plbhec::fit;
namespace rt = plbhec::rt;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-reps wall time for `fn`, running until ~`budget` seconds elapse.
double time_best(double budget, auto&& fn) {
  fn();  // warm-up
  double best = 1e300;
  double elapsed = 0.0;
  std::size_t reps = 0;
  while (elapsed < budget || reps < 3) {
    const Clock::time_point t0 = Clock::now();
    fn();
    const double s = seconds_since(t0);
    best = std::min(best, s);
    elapsed += s;
    ++reps;
  }
  return best;
}

fit::SampleSet noisy_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  fit::SampleSet s;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.002, 0.9);
    s.add(x, (0.03 + 2.0 * x + 5.0 * x * x) * rng.lognormal_factor(0.05));
  }
  return s;
}

struct SelectTimes {
  double qr_us = 0.0;
  double gram_us = 0.0;
  double max_rel_diff = 0.0;  ///< prediction disagreement (sanity)
};

SelectTimes bench_select(std::size_t n, double budget) {
  const fit::SampleSet s = noisy_samples(n, 0xf17 + n);
  fit::SelectionOptions qr_opts, gram_opts;
  qr_opts.engine = fit::FitEngine::kQr;
  gram_opts.engine = fit::FitEngine::kGram;

  SelectTimes out;
  volatile double sink = 0.0;
  out.qr_us = 1e6 * time_best(budget, [&] {
    sink = fit::select_model(s, qr_opts).bic;
  });
  out.gram_us = 1e6 * time_best(budget, [&] {
    sink = fit::select_model(s, gram_opts).bic;
  });
  (void)sink;

  const fit::FitResult a = fit::select_model(s, qr_opts);
  const fit::FitResult b = fit::select_model(s, gram_opts);
  for (double x : {0.01, 0.05, 0.2, 0.5, 0.9}) {
    const double pa = a.model(x);
    const double pb = b.model(x);
    out.max_rel_diff = std::max(
        out.max_rel_diff, std::fabs(pa - pb) / std::max(1e-12, std::fabs(pa)));
  }
  return out;
}

struct FitAllTimes {
  double serial_us = 0.0;
  double pool_us = 0.0;
  double cached_us = 0.0;  ///< second fit_all, served from the cache
};

FitAllTimes bench_fit_all(std::size_t units, std::size_t samples,
                          double budget) {
  rt::ProfileDb db(units, 100000);
  Rng rng(0xa11);
  rt::TaskObservation obs;
  for (rt::UnitId u = 0; u < units; ++u) {
    obs.unit = u;
    for (std::size_t i = 0; i < samples; ++i) {
      obs.grains = 100 + static_cast<std::size_t>(rng.uniform(0.0, 50000.0));
      const double x = db.grains_to_fraction(obs.grains);
      obs.exec_seconds =
          (0.02 + (1.0 + 0.3 * u) * x + 4.0 * x * x) *
          rng.lognormal_factor(0.05);
      obs.transfer_seconds = 0.001 + 0.5 * x;
      db.record(obs);
    }
  }

  FitAllTimes out;
  out.serial_us = 1e6 * time_best(budget, [&] {
    db.clear_fit_cache();
    for (rt::UnitId u = 0; u < units; ++u) (void)db.fit_unit(u);
  });
  out.pool_us = 1e6 * time_best(budget, [&] {
    db.clear_fit_cache();
    (void)db.fit_all();
  });
  (void)db.fit_all();  // prime the cache
  out.cached_us = 1e6 * time_best(budget, [&] { (void)db.fit_all(); });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else
      out_path = arg;
  }
  const double budget = smoke ? 0.02 : 0.25;

  const std::vector<std::size_t> counts{8, 16, 32, 64, 128, 256};
  std::string json = "{\n  \"benchmark\": \"bench_fit\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"select_model\": [\n";
  double speedup_n64 = 0.0;
  double worst_rel_diff = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const SelectTimes t = bench_select(counts[i], budget);
    const double speedup = t.qr_us / t.gram_us;
    if (counts[i] == 64) speedup_n64 = speedup;
    worst_rel_diff = std::max(worst_rel_diff, t.max_rel_diff);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"samples\": %zu, \"qr_us\": %.2f, \"gram_us\": %.2f, "
                  "\"speedup\": %.2f, \"max_rel_diff\": %.3e}%s\n",
                  counts[i], t.qr_us, t.gram_us, speedup, t.max_rel_diff,
                  i + 1 < counts.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";

  const std::size_t units = 16;
  const FitAllTimes f = bench_fit_all(units, 64, budget);
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"fit_all\": {\"units\": %zu, \"samples_per_unit\": 64, "
                "\"serial_us\": %.2f, \"pool_us\": %.2f, "
                "\"parallel_speedup\": %.2f, \"cached_us\": %.2f, "
                "\"cache_speedup\": %.1f}\n}\n",
                units, f.serial_us, f.pool_us, f.serial_us / f.pool_us,
                f.cached_us, f.serial_us / f.cached_us);
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    if (std::FILE* out = std::fopen(out_path.c_str(), "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  if (smoke) {
    // Wide margins: CI machines are noisy, and the committed numbers in
    // bench/results/bench_fit.json carry the real ratios.
    if (worst_rel_diff > 1e-6) {
      std::fprintf(stderr, "smoke FAIL: engines disagree (%.3e)\n",
                   worst_rel_diff);
      return 1;
    }
    if (speedup_n64 < 1.5) {
      std::fprintf(stderr, "smoke FAIL: gram speedup %.2f < 1.5 at n=64\n",
                   speedup_n64);
      return 1;
    }
    std::fputs("smoke OK\n", stderr);
  }
  return 0;
}
