// Performance-backbone microbenchmark: packed GEMM micro-kernel GFLOP/s
// against the seed scalar kernel, and per-block dispatch overhead of the
// persistent work-stealing pool against the seed's spawn/join pattern.
// Emits JSON (stdout, plus an output path if given) so the perf trajectory
// of the real-execution path is tracked from PR 1 onward; see
// bench/results/bench_kernels.json for the committed numbers. `--smoke`
// runs with reduced timing budgets but the same JSON structure (used by
// the CI regression gate, tools/check_bench.py).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "plbhec/common/rng.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/linalg/blas.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- The seed scalar kernel, verbatim (cache-blocked i-k-j loop with the
// --- zero-skip branch), kept as the GFLOP/s baseline. ---
constexpr std::size_t kBlockI = 64;
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 256;

void seed_gemm(std::size_t m, std::size_t n, std::size_t k, const double* a,
               const double* b, double* c) {
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockI) {
    const std::size_t i1 = std::min(i0 + kBlockI, m);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k0 + kBlockK, k);
      for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
        const std::size_t j1 = std::min(j0 + kBlockJ, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* crow = &c[i * n];
          for (std::size_t kk = k0; kk < k1; ++kk) {
            const double aik = a[i * k + kk];
            if (aik == 0.0) continue;
            const double* brow = &b[kk * n];
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

struct GemmTimes {
  double seed_gflops = 0.0;
  double packed_gflops = 0.0;
  double max_abs_diff = 0.0;  ///< packed vs seed result (sanity)
};

GemmTimes bench_gemm(std::size_t n, double budget) {
  plbhec::Rng rng(0x5eed + n);
  std::vector<double> a(n * n), b(n * n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  std::vector<double> c_seed(n * n, 0.0), c_packed(n * n, 0.0);

  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const auto time_reps = [&](auto&& fn, std::vector<double>& c) {
    // Warm up once, then run until ~`budget` seconds have elapsed.
    std::fill(c.begin(), c.end(), 0.0);
    fn(c);
    double best = 1e300;
    double elapsed = 0.0;
    std::size_t reps = 0;
    while (elapsed < budget || reps < 3) {
      std::fill(c.begin(), c.end(), 0.0);
      const Clock::time_point t0 = Clock::now();
      fn(c);
      const double s = seconds_since(t0);
      best = std::min(best, s);
      elapsed += s;
      ++reps;
    }
    return best;
  };

  GemmTimes out;
  const double t_seed = time_reps(
      [&](std::vector<double>& c) {
        seed_gemm(n, n, n, a.data(), b.data(), c.data());
      },
      c_seed);
  const double t_packed = time_reps(
      [&](std::vector<double>& c) {
        plbhec::linalg::blas::gemm(n, n, n, {a.data(), n * n},
                                   {b.data(), n * n}, {c.data(), n * n});
      },
      c_packed);
  out.seed_gflops = flops / t_seed / 1e9;
  out.packed_gflops = flops / t_packed / 1e9;
  for (std::size_t i = 0; i < n * n; ++i)
    out.max_abs_diff =
        std::max(out.max_abs_diff, std::fabs(c_seed[i] - c_packed[i]));
  return out;
}

struct DispatchTimes {
  double spawn_join_us = 0.0;    ///< seed pattern: threads spawned per block
  double pool_dispatch_us = 0.0; ///< persistent pool parallel_for per block
};

DispatchTimes bench_dispatch(unsigned lanes, bool smoke) {
  DispatchTimes out;
  std::vector<std::size_t> sink(lanes, 0);

  {  // Seed gemm_parallel pattern: a fresh spawn + join per block.
    const std::size_t reps = smoke ? 60 : 300;
    const Clock::time_point t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      std::vector<std::thread> threads;
      threads.reserve(lanes);
      for (unsigned t = 0; t < lanes; ++t)
        threads.emplace_back([&sink, t] { ++sink[t]; });
      for (auto& th : threads) th.join();
    }
    out.spawn_join_us = seconds_since(t0) / static_cast<double>(reps) * 1e6;
  }

  {  // Persistent pool: same fan-out shape, workers already parked.
    plbhec::exec::ThreadPool pool(lanes - 1);
    const std::size_t reps = smoke ? 1000 : 5000;
    // Warm up (first dispatch wakes the workers cold).
    pool.parallel_for(0, lanes, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ++sink[i];
    });
    const Clock::time_point t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r)
      pool.parallel_for(0, lanes, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++sink[i];
      });
    out.pool_dispatch_us = seconds_since(t0) / static_cast<double>(reps) * 1e6;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else
      out_path = arg;
  }
  const double budget = smoke ? 0.03 : 0.3;

  const std::vector<std::size_t> sizes{128, 256, 512};
  std::string json = "{\n  \"benchmark\": \"bench_kernels\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"gemm\": [\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const GemmTimes t = bench_gemm(sizes[i], budget);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"n\": %zu, \"seed_gflops\": %.3f, "
                  "\"packed_gflops\": %.3f, \"speedup\": %.2f, "
                  "\"max_abs_diff\": %.3e}%s\n",
                  sizes[i], t.seed_gflops, t.packed_gflops,
                  t.packed_gflops / t.seed_gflops, t.max_abs_diff,
                  i + 1 < sizes.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";

  const unsigned lanes = 4;
  const DispatchTimes d = bench_dispatch(lanes, smoke);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"dispatch\": {\"lanes\": %u, \"spawn_join_us\": %.2f, "
                "\"pool_dispatch_us\": %.2f, \"overhead_ratio\": %.1f}\n}\n",
                lanes, d.spawn_join_us, d.pool_dispatch_us,
                d.spawn_join_us / d.pool_dispatch_us);
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  return 0;
}
