// Observability-overhead benchmark: the full PLB-HeC simulation with the
// event sink attached against the identical run with a null sink. Virtual
// results must be bitwise identical (the sink only observes; it never
// perturbs scheduling), and the wall-clock cost of recording must stay
// under 2% of the run. Emits JSON (stdout, plus an output path if given).
// `--smoke` runs a fast version and exits nonzero on either violation
// (used by CI); in a PLBHEC_OBS=OFF build the sink compiles to no-ops and
// the same assertions hold trivially.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "plbhec/apps/grn.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/obs/exporters.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace apps = plbhec::apps;
namespace core = plbhec::core;
namespace obs = plbhec::obs;
namespace rt = plbhec::rt;
namespace sim = plbhec::sim;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct RunOutcome {
  double makespan = 0.0;
  double best_seconds = 1e300;
  std::size_t events = 0;
};

/// One engine.run() of the scenario, optionally with a sink attached.
RunOutcome run_once(std::size_t genes, obs::EventSink* sink) {
  apps::GrnWorkload w(apps::GrnWorkload::paper_instance(genes));
  sim::SimCluster cluster(sim::scenario(2));
  rt::EngineOptions opts;
  opts.sink = sink;
  rt::SimEngine engine(cluster, opts);
  core::PlbHecScheduler plb;
  const Clock::time_point t0 = Clock::now();
  const rt::RunResult r = engine.run(w, plb);
  RunOutcome out;
  out.best_seconds = seconds_since(t0);
  out.makespan = r.ok ? r.makespan : -1.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else
      out_path = arg;
  }
  // Each run is sub-millisecond, so single measurements wobble well past
  // the 2% gate on a loaded CI core; interleaved best-of-N with a
  // generous N keeps the minimum clean on both sides.
  const std::size_t genes = smoke ? 10'000 : 30'000;
  const std::size_t reps = smoke ? 31 : 51;

  // Interleave traced and untraced repetitions and keep the best of each,
  // so drift (frequency scaling, background load) hits both sides alike.
  RunOutcome base, traced;
  std::size_t events = 0;
  std::vector<std::pair<std::string, std::size_t>> per_kind;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const RunOutcome b = run_once(genes, nullptr);
    obs::EventSink sink;
    const RunOutcome t = run_once(genes, &sink);
    const std::vector<obs::Event> drained = sink.drain();
    if (rep == 0) {
      base.makespan = b.makespan;
      traced.makespan = t.makespan;
      events = drained.size();
      std::vector<std::size_t> counts(obs::kEventKindCount, 0);
      for (const obs::Event& e : drained)
        ++counts[static_cast<std::size_t>(e.kind)];
      for (std::size_t k = 0; k < counts.size(); ++k)
        if (counts[k] > 0)
          per_kind.emplace_back(
              obs::to_string(static_cast<obs::EventKind>(k)), counts[k]);
    }
    base.best_seconds = std::min(base.best_seconds, b.best_seconds);
    traced.best_seconds = std::min(traced.best_seconds, t.best_seconds);
  }

  const bool makespan_equal = base.makespan == traced.makespan;
  const double overhead_pct =
      100.0 * (traced.best_seconds / base.best_seconds - 1.0);

  std::string json = "{\n  \"benchmark\": \"bench_observe\",\n";
  json += std::string("  \"compiled_in\": ") +
          (obs::kCompiledIn ? "true" : "false") + ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"genes\": %zu,\n  \"reps\": %zu,\n"
                "  \"makespan_base\": %.17g,\n  \"makespan_traced\": %.17g,\n"
                "  \"makespan_equal\": %s,\n"
                "  \"run_base_us\": %.1f,\n  \"run_traced_us\": %.1f,\n"
                "  \"overhead_pct\": %.2f,\n  \"events\": %zu,\n",
                genes, reps, base.makespan, traced.makespan,
                makespan_equal ? "true" : "false", 1e6 * base.best_seconds,
                1e6 * traced.best_seconds, overhead_pct, events);
  json += buf;
  json += "  \"events_per_kind\": {";
  for (std::size_t i = 0; i < per_kind.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %zu", i > 0 ? ", " : "",
                  per_kind[i].first.c_str(), per_kind[i].second);
    json += buf;
  }
  json += "}\n}\n";

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    if (std::FILE* out = std::fopen(out_path.c_str(), "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  if (smoke) {
    if (base.makespan < 0.0 || traced.makespan < 0.0) {
      std::fputs("smoke FAIL: run did not finish\n", stderr);
      return 1;
    }
    if (!makespan_equal) {
      std::fprintf(stderr,
                   "smoke FAIL: sink perturbed the run (%.17g != %.17g)\n",
                   base.makespan, traced.makespan);
      return 1;
    }
    if (obs::kCompiledIn && events == 0) {
      std::fputs("smoke FAIL: sink recorded nothing\n", stderr);
      return 1;
    }
    if (!obs::kCompiledIn && events != 0) {
      std::fputs("smoke FAIL: OBS=OFF build recorded events\n", stderr);
      return 1;
    }
    if (overhead_pct > 2.0) {
      std::fprintf(stderr, "smoke FAIL: recording overhead %.2f%% > 2%%\n",
                   overhead_pct);
      return 1;
    }
    std::fputs("smoke OK\n", stderr);
  }
  return 0;
}
