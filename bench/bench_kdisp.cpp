// Kernel-dispatch benchmark for the new workload families. Two claims:
//
//  1. The families genuinely differ as *profiles*: fitting the paper's
//     basis set to each family's noise-free simulated device curve (CPU
//     and GPU unit classes of Table I machine A) reaches R^2 >= 0.95 on
//     at least one class per family, and the winning basis subsets are
//     not all the same across {spmv, stencil, nbody, matmul} — the
//     scheduler has distinct curves to learn, not four copies of one.
//
//  2. The kdisp registry's runtime ISA pick is worth having: on a host
//     with vector units, the best registered variant beats the forced-
//     scalar variant by >= 1.3x on at least one family, while the
//     reduction families (spmv, stencil, nbody) stay byte-identical
//     across variants (gemm is the documented FMA exception and is
//     checked to rounding instead).
//
// Emits JSON (stdout, plus an output path if given); the committed
// numbers live in bench/results/bench_kdisp.json and the absolute gates
// (KdispGate in tools/check_bench.py) hold on every machine. `--smoke`
// shrinks the timing budgets and enforces the same claims via the exit
// code.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "plbhec/apps/matmul.hpp"
#include "plbhec/apps/nbody.hpp"
#include "plbhec/apps/spmv.hpp"
#include "plbhec/apps/stencil.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/exec/gemm_micro.hpp"
#include "plbhec/fit/basis.hpp"
#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/samples.hpp"
#include "plbhec/kdisp/isa.hpp"
#include "plbhec/kdisp/kernels.hpp"
#include "plbhec/kdisp/registry.hpp"
#include "plbhec/sim/device.hpp"
#include "plbhec/sim/machine.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using plbhec::Rng;
namespace apps = plbhec::apps;
namespace fit = plbhec::fit;
namespace kdisp = plbhec::kdisp;
namespace sim = plbhec::sim;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-reps wall time for `fn`, running until ~`budget` seconds elapse.
double time_best(double budget, auto&& fn) {
  fn();  // warm-up
  double best = 1e300;
  double elapsed = 0.0;
  std::size_t reps = 0;
  while (elapsed < budget || reps < 3) {
    const Clock::time_point t0 = Clock::now();
    fn();
    const double s = seconds_since(t0);
    best = std::min(best, s);
    elapsed += s;
    ++reps;
  }
  return best;
}

// --- Part 1: simulated device-curve fits per family. -----------------------

constexpr std::size_t kCurvePoints = 24;

struct ClassFit {
  double r2 = 0.0;
  std::string terms;  ///< winning basis subset, e.g. "1+x+x^2"
};

std::string subset_string(const fit::CurveModel& model) {
  std::string out;
  for (std::size_t i = 0; i < model.terms.size(); ++i) {
    if (i > 0) out += "+";
    out += fit::name(model.terms[i]);
  }
  return out;
}

/// Noise-free execution-time samples of `device` over block fractions
/// quadratically spaced in (0, 1] (dense near 0, where launch overhead and
/// the GPU occupancy ramp curve the profile), fitted with the paper's
/// subset selection.
ClassFit fit_device_curve(const sim::DeviceModel& device,
                          const sim::WorkloadProfile& profile,
                          std::size_t total_grains) {
  fit::SampleSet samples;
  for (std::size_t i = 1; i <= kCurvePoints; ++i) {
    const double want = static_cast<double>(i * i) /
                        static_cast<double>(kCurvePoints * kCurvePoints);
    const std::size_t grains = std::max<std::size_t>(
        1, static_cast<std::size_t>(want * static_cast<double>(total_grains)));
    const double x =
        static_cast<double>(grains) / static_cast<double>(total_grains);
    samples.add(x, device.execution_seconds(profile, grains));
  }
  const fit::FitResult result = fit::select_model(samples);
  return {result.r2, subset_string(result.model)};
}

struct FamilyFit {
  std::string family;
  ClassFit cpu;
  ClassFit gpu;
};

// --- Part 2: forced-scalar vs best-ISA kernel timing on the real host. -----

struct KernelTimes {
  std::string family;
  std::string variant;  ///< best variant's registered symbol name
  kdisp::IsaClass isa = kdisp::IsaClass::kScalar;
  double scalar_ms = 0.0;
  double best_ms = 0.0;
  bool identical = false;   ///< byte-compare of the two result buffers
  double max_rel_diff = -1.0;  ///< gemm only (FMA exception); else unset
};

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

KernelTimes bench_spmv(double budget) {
  constexpr std::size_t kRows = 20'000;
  constexpr std::size_t kNnz = 48;  // kWide: vector row kernel applies
  Rng rng(0x59a125);
  std::vector<std::uint32_t> row_ptr(kRows + 1), cols(kRows * kNnz);
  std::vector<double> vals(kRows * kNnz), x(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    row_ptr[i] = static_cast<std::uint32_t>(i * kNnz);
    for (std::size_t j = 0; j < kNnz; ++j) {
      cols[i * kNnz + j] = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kRows) - 1));
      vals[i * kNnz + j] = rng.uniform(-1.0, 1.0);
    }
    x[i] = rng.uniform(-1.0, 1.0);
  }
  row_ptr[kRows] = static_cast<std::uint32_t>(kRows * kNnz);

  kdisp::KernelRegistry& reg = kdisp::KernelRegistry::instance();
  const auto scalar = *reg.lookup(kdisp::kSpmvKernel, kdisp::WidthClass::kWide,
                                  kdisp::IsaClass::kScalar);
  const auto best = *reg.lookup(kdisp::kSpmvKernel, kdisp::WidthClass::kWide);
  auto* scalar_fn = reinterpret_cast<kdisp::SpmvRowsFn*>(scalar.fn);
  auto* best_fn = reinterpret_cast<kdisp::SpmvRowsFn*>(best.fn);

  std::vector<double> y_scalar(kRows, 0.0), y_best(kRows, 0.0);
  KernelTimes out;
  out.family = "spmv";
  out.variant = std::string(best.variant_name);
  out.isa = best.isa;
  out.scalar_ms = 1e3 * time_best(budget, [&] {
    scalar_fn(row_ptr.data(), cols.data(), vals.data(), x.data(),
              y_scalar.data(), 0, kRows);
  });
  out.best_ms = 1e3 * time_best(budget, [&] {
    best_fn(row_ptr.data(), cols.data(), vals.data(), x.data(), y_best.data(),
            0, kRows);
  });
  out.identical = bytes_equal(y_scalar, y_best);
  return out;
}

KernelTimes bench_stencil(double budget) {
  constexpr std::size_t kNx = 1022;
  constexpr std::size_t kNy = 512;
  const std::size_t stride = kNx + 2;
  Rng rng(0x57e4c11);
  std::vector<double> in((kNy + 2) * stride), out_scalar(in.size(), 0.0),
      out_best(in.size(), 0.0);
  for (double& v : in) v = rng.uniform(-1.0, 1.0);

  kdisp::KernelRegistry& reg = kdisp::KernelRegistry::instance();
  const auto scalar = *reg.lookup(kdisp::kStencilKernel,
                                  kdisp::WidthClass::kWide,
                                  kdisp::IsaClass::kScalar);
  const auto best =
      *reg.lookup(kdisp::kStencilKernel, kdisp::WidthClass::kWide);
  auto* scalar_fn = reinterpret_cast<kdisp::StencilRowsFn*>(scalar.fn);
  auto* best_fn = reinterpret_cast<kdisp::StencilRowsFn*>(best.fn);

  KernelTimes out;
  out.family = "stencil";
  out.variant = std::string(best.variant_name);
  out.isa = best.isa;
  out.scalar_ms = 1e3 * time_best(budget, [&] {
    scalar_fn(in.data(), out_scalar.data(), kNx, 0, kNy,
              apps::StencilWorkload::kC0, apps::StencilWorkload::kC1);
  });
  out.best_ms = 1e3 * time_best(budget, [&] {
    best_fn(in.data(), out_best.data(), kNx, 0, kNy,
            apps::StencilWorkload::kC0, apps::StencilWorkload::kC1);
  });
  out.identical = bytes_equal(out_scalar, out_best);
  return out;
}

KernelTimes bench_nbody(double budget) {
  constexpr std::size_t kBodies = 1536;
  Rng rng(0xb0d1e5);
  std::vector<double> px(kBodies), py(kBodies), pz(kBodies), mass(kBodies);
  for (std::size_t i = 0; i < kBodies; ++i) {
    px[i] = rng.uniform(-1.0, 1.0);
    py[i] = rng.uniform(-1.0, 1.0);
    pz[i] = rng.uniform(-1.0, 1.0);
    mass[i] = rng.uniform(0.1, 1.0);
  }

  kdisp::KernelRegistry& reg = kdisp::KernelRegistry::instance();
  const auto scalar = *reg.lookup(kdisp::kNbodyKernel,
                                  kdisp::WidthClass::kWide,
                                  kdisp::IsaClass::kScalar);
  const auto best = *reg.lookup(kdisp::kNbodyKernel, kdisp::WidthClass::kWide);
  auto* scalar_fn = reinterpret_cast<kdisp::NbodyAccelFn*>(scalar.fn);
  auto* best_fn = reinterpret_cast<kdisp::NbodyAccelFn*>(best.fn);

  std::vector<double> axs(kBodies), ays(kBodies), azs(kBodies);
  std::vector<double> axb(kBodies), ayb(kBodies), azb(kBodies);
  KernelTimes out;
  out.family = "nbody";
  out.variant = std::string(best.variant_name);
  out.isa = best.isa;
  out.scalar_ms = 1e3 * time_best(budget, [&] {
    scalar_fn(px.data(), py.data(), pz.data(), mass.data(), kBodies,
              apps::NbodyWorkload::kEps2, axs.data(), ays.data(), azs.data(),
              0, kBodies);
  });
  out.best_ms = 1e3 * time_best(budget, [&] {
    best_fn(px.data(), py.data(), pz.data(), mass.data(), kBodies,
            apps::NbodyWorkload::kEps2, axb.data(), ayb.data(), azb.data(), 0,
            kBodies);
  });
  out.identical = bytes_equal(axs, axb) && bytes_equal(ays, ayb) &&
                  bytes_equal(azs, azb);
  return out;
}

KernelTimes bench_gemm(double budget) {
  constexpr std::size_t kN = 256;
  Rng rng(0x5eed);
  std::vector<double> a(kN * kN), b(kN * kN);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  std::vector<double> c_scalar(kN * kN), c_best(kN * kN);

  // The gemm micro-kernel is resolved per gemm_packed call, so flipping
  // the effective-ISA ceiling exercises the real dispatch path end to end.
  const kdisp::IsaClass prev =
      kdisp::set_effective_isa_for_testing(kdisp::IsaClass::kScalar);
  const double t_scalar = time_best(budget, [&] {
    std::fill(c_scalar.begin(), c_scalar.end(), 0.0);
    plbhec::exec::gemm_packed(kN, kN, kN, a.data(), b.data(), c_scalar.data());
  });
  kdisp::set_effective_isa_for_testing(prev);
  kdisp::Selection chosen;
  (void)kdisp::KernelRegistry::instance().select<kdisp::GemmMicroFn>(
      kdisp::kGemmMicroKernel, kdisp::WidthClass::kWide, &chosen);
  const double t_best = time_best(budget, [&] {
    std::fill(c_best.begin(), c_best.end(), 0.0);
    plbhec::exec::gemm_packed(kN, kN, kN, a.data(), b.data(), c_best.data());
  });

  KernelTimes out;
  out.family = "gemm";
  out.variant = std::string(chosen.variant_name);
  out.isa = chosen.isa;
  out.scalar_ms = 1e3 * t_scalar;
  out.best_ms = 1e3 * t_best;
  out.identical = bytes_equal(c_scalar, c_best);
  out.max_rel_diff = 0.0;
  for (std::size_t i = 0; i < kN * kN; ++i) {
    const double denom = std::max(1e-12, std::fabs(c_scalar[i]));
    out.max_rel_diff = std::max(out.max_rel_diff,
                                std::fabs(c_scalar[i] - c_best[i]) / denom);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else
      out_path = arg;
  }
  const double budget = smoke ? 0.02 : 0.2;

  // --- Simulated device-curve fits (machine-independent). ---
  const sim::MachineConfig machine = sim::machine_a();
  const sim::DeviceModel& cpu = *machine.units[0].device;
  const sim::DeviceModel& gpu = *machine.units[1].device;

  const std::size_t kSimGrains = 1 << 20;
  std::vector<FamilyFit> fits;
  {
    const apps::SpmvWorkload w(apps::SpmvWorkload::paper_instance(kSimGrains));
    fits.push_back({"spmv", fit_device_curve(cpu, w.profile(), kSimGrains),
                    fit_device_curve(gpu, w.profile(), kSimGrains)});
  }
  {
    const apps::StencilWorkload w(
        apps::StencilWorkload::paper_instance(kSimGrains));
    fits.push_back({"stencil", fit_device_curve(cpu, w.profile(), kSimGrains),
                    fit_device_curve(gpu, w.profile(), kSimGrains)});
  }
  {
    const apps::NbodyWorkload w(
        apps::NbodyWorkload::paper_instance(kSimGrains));
    fits.push_back({"nbody", fit_device_curve(cpu, w.profile(), kSimGrains),
                    fit_device_curve(gpu, w.profile(), kSimGrains)});
  }
  {
    const apps::MatMulWorkload w(65536);
    fits.push_back({"matmul", fit_device_curve(cpu, w.profile(), 65536),
                    fit_device_curve(gpu, w.profile(), 65536)});
  }

  std::set<std::string> cpu_subsets, gpu_subsets;
  double fit_r2_min = 1.0;
  for (const FamilyFit& f : fits) {
    cpu_subsets.insert(f.cpu.terms);
    gpu_subsets.insert(f.gpu.terms);
    fit_r2_min = std::min(fit_r2_min, std::max(f.cpu.r2, f.gpu.r2));
  }
  const std::size_t distinct_subsets =
      std::max(cpu_subsets.size(), gpu_subsets.size());

  // --- Real-host kernel timings. ---
  const std::vector<KernelTimes> kernels = {
      bench_spmv(budget), bench_stencil(budget), bench_nbody(budget),
      bench_gemm(budget)};
  double best_isa_speedup = 0.0;
  bool isa_identical = true;
  for (const KernelTimes& k : kernels) {
    best_isa_speedup = std::max(best_isa_speedup, k.scalar_ms / k.best_ms);
    if (k.family != "gemm") isa_identical = isa_identical && k.identical;
  }
  // Keyed on the *effective* ceiling so the forced-scalar CI leg
  // (PLBHEC_KDISP_FORCE=scalar) is judged as a scalar machine: with
  // dispatch pinned, "best" == scalar and no speedup can exist.
  const bool simd_host = kdisp::effective_isa() >= kdisp::IsaClass::kAvx2;

  // --- JSON. ---
  std::string json = "{\n  \"benchmark\": \"bench_kdisp\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += std::string("  \"host_isa\": \"") +
          kdisp::to_string(kdisp::host_isa()) + "\",\n";
  json += std::string("  \"effective_isa\": \"") +
          kdisp::to_string(kdisp::effective_isa()) + "\",\n";
  json += std::string("  \"simd_host\": ") + (simd_host ? "true" : "false") +
          ",\n";
  json += "  \"variants\": " +
          std::to_string(kdisp::KernelRegistry::instance().variant_count()) +
          ",\n";
  json += "  \"fit\": [\n";
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const FamilyFit& f = fits[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"family\": \"%s\", \"curve_n\": %zu, "
                  "\"cpu_r2\": %.4f, \"cpu_terms\": \"%s\", "
                  "\"gpu_r2\": %.4f, \"gpu_terms\": \"%s\"}%s\n",
                  f.family.c_str(), kCurvePoints, f.cpu.r2,
                  f.cpu.terms.c_str(), f.gpu.r2, f.gpu.terms.c_str(),
                  i + 1 < fits.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"fit_r2_min\": %.4f,\n  \"distinct_subsets\": %zu,\n",
                fit_r2_min, distinct_subsets);
  json += buf;
  json += "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelTimes& k = kernels[i];
    std::string row;
    std::snprintf(buf, sizeof(buf),
                  "    {\"family\": \"%s\", \"variant\": \"%s\", "
                  "\"isa\": \"%s\", \"scalar_ms\": %.3f, \"best_ms\": %.3f, "
                  "\"kernel_speedup\": %.2f, \"identical\": %s",
                  k.family.c_str(), k.variant.c_str(), kdisp::to_string(k.isa),
                  k.scalar_ms, k.best_ms, k.scalar_ms / k.best_ms,
                  k.identical ? "true" : "false");
    row += buf;
    if (k.max_rel_diff >= 0.0) {
      std::snprintf(buf, sizeof(buf), ", \"max_rel_diff\": %.3e",
                    k.max_rel_diff);
      row += buf;
    }
    row += std::string("}") + (i + 1 < kernels.size() ? "," : "") + "\n";
    json += row;
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"best_isa_speedup\": %.2f,\n  \"isa_identical\": %s\n}\n",
                best_isa_speedup, isa_identical ? "true" : "false");
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  if (smoke) {
    int rc = 0;
    if (!isa_identical) {
      std::fprintf(stderr,
                   "smoke FAIL: ISA variants diverge on a reduction family\n");
      rc = 1;
    }
    if (fit_r2_min < 0.95) {
      std::fprintf(stderr, "smoke FAIL: family fit R^2 %.3f < 0.95\n",
                   fit_r2_min);
      rc = 1;
    }
    if (distinct_subsets < 2) {
      std::fprintf(stderr,
                   "smoke FAIL: all families fit the same basis subset\n");
      rc = 1;
    }
    if (simd_host && best_isa_speedup < 1.3) {
      std::fprintf(stderr, "smoke FAIL: best-ISA speedup %.2f < 1.3\n",
                   best_isa_speedup);
      rc = 1;
    }
    if (rc == 0) std::fputs("smoke OK\n", stderr);
    return rc;
  }
  return 0;
}
