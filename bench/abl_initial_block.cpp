/// Ablation: initialBlockSize sensitivity. The paper tunes it empirically
/// "so that the initial phase of the algorithm would take about 10% of the
/// application execution time". Sweeps the probe block size and reports
/// the modeling-phase share and the resulting makespan.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", cli.full() ? 10 : 3));
  const std::size_t n = cli.full() ? 65536 : 16384;

  bench::print_header("Ablation — initialBlockSize (MatMul)",
                      sim::scenario(4, true));

  Table t({"initial (grains)", "1/x of input", "modeling grains %",
           "PLB-HeC makespan [s]", "Greedy makespan [s]"});
  for (std::size_t divisor : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
    const std::size_t initial = std::max<std::size_t>(1, n / divisor);
    RunningStats makespans, modeling, greedy_ms;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      apps::MatMulWorkload w(n);
      sim::SimCluster cluster(sim::scenario(4, true));
      rt::EngineOptions eopts;
      eopts.seed = 6000 + rep;
      eopts.record_trace = false;
      rt::SimEngine engine(cluster, eopts);

      core::PlbHecOptions opts;
      opts.initial_block = initial;
      core::PlbHecScheduler plb(opts);
      const rt::RunResult r = engine.run(w, plb);
      if (r.ok) {
        makespans.add(r.makespan);
        modeling.add(100.0 * plb.stats().modeling_grains /
                     static_cast<double>(n));
      }
      // Greedy with the same piece size (the paper uses the same
      // initialBlockSize for all algorithms).
      baselines::GreedyScheduler greedy(initial);
      const rt::RunResult rg = engine.run(w, greedy);
      if (rg.ok) greedy_ms.add(rg.makespan);
    }
    t.row()
        .add(initial)
        .add(std::string("1/") + std::to_string(divisor))
        .add(modeling.mean(), 1)
        .add(makespans.mean(), 4)
        .add(greedy_ms.mean(), 4);
  }
  t.print();
  std::printf(
      "\nExpected: probes that are too large waste slow-unit time and blow\n"
      "the 20%% modeling budget; probes that are too small under-sample the\n"
      "curve. Greedy degrades monotonically as its piece size grows (tail\n"
      "stalls on the slowest CPU).\n");
  return 0;
}
