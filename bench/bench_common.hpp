#pragma once
/// Shared support for the figure-reproduction benches: scheduler
/// factories, repeated-run aggregation and paper-style table headers.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plbhec/apps/blackscholes.hpp"
#include "plbhec/apps/grn.hpp"
#include "plbhec/apps/matmul.hpp"
#include "plbhec/baselines/acosta.hpp"
#include "plbhec/baselines/greedy.hpp"
#include "plbhec/baselines/hdss.hpp"
#include "plbhec/baselines/static_profile.hpp"
#include "plbhec/common/cli.hpp"
#include "plbhec/common/stats.hpp"
#include "plbhec/common/table.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/metrics/metrics.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace plbhec::bench {

inline const std::vector<std::string> kAlgorithms{"PLB-HeC", "Acosta", "HDSS",
                                                  "Greedy"};

inline std::unique_ptr<rt::Scheduler> make_scheduler(const std::string& name) {
  if (name == "PLB-HeC") return std::make_unique<core::PlbHecScheduler>();
  if (name == "Acosta") return std::make_unique<baselines::AcostaScheduler>();
  if (name == "HDSS") return std::make_unique<baselines::HdssScheduler>();
  return std::make_unique<baselines::GreedyScheduler>();
}

struct RepeatedRun {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs `make_workload()` under `scheduler_name` on `machines` machines,
/// `reps` times with distinct seeds; returns makespan statistics.
inline RepeatedRun run_repeated(
    const std::function<std::unique_ptr<rt::Workload>()>& make_workload,
    const std::string& scheduler_name, std::size_t machines, std::size_t reps,
    bool dual_gpus = false) {
  RunningStats stats;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    sim::SimCluster cluster(sim::scenario(machines, dual_gpus));
    rt::EngineOptions opts;
    opts.seed = 1000 + rep;
    opts.record_trace = false;
    rt::SimEngine engine(cluster, opts);
    auto workload = make_workload();
    auto scheduler = make_scheduler(scheduler_name);
    const rt::RunResult r = engine.run(*workload, *scheduler);
    if (!r.ok) {
      std::fprintf(stderr, "bench run failed (%s, %zu machines): %s\n",
                   scheduler_name.c_str(), machines, r.error.c_str());
      continue;
    }
    stats.add(r.makespan);
  }
  return {stats.mean(), stats.stddev()};
}

inline void print_header(const std::string& title,
                         const std::vector<sim::MachineConfig>& machines) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("%s\n", sim::table1_string(machines).c_str());
}

/// Execution-time + speedup-vs-greedy table for one application across
/// machine counts and input sizes (the layout of Figs. 4 and 5).
inline void exec_time_figure(
    const std::string& app_label,
    const std::vector<std::size_t>& sizes,
    const std::function<std::unique_ptr<rt::Workload>(std::size_t)>& make,
    std::size_t reps, bool dual_gpus) {
  for (std::size_t machines : {1u, 2u, 3u, 4u}) {
    Table t({"Input", "PLB-HeC [s]", "Acosta [s]", "HDSS [s]", "Greedy [s]",
             "sp(PLB)", "sp(Acosta)", "sp(HDSS)"});
    for (std::size_t size : sizes) {
      std::vector<RepeatedRun> results;
      for (const auto& algo : kAlgorithms)
        results.push_back(run_repeated([&] { return make(size); }, algo,
                                       machines, reps, dual_gpus));
      const double greedy = results[3].mean;
      t.row()
          .add(std::to_string(size))
          .add(results[0].mean, 4)
          .add(results[1].mean, 4)
          .add(results[2].mean, 4)
          .add(results[3].mean, 4)
          .add(greedy / results[0].mean, 2)
          .add(greedy / results[1].mean, 2)
          .add(greedy / results[2].mean, 2);
    }
    std::printf("\n%s — %zu machine(s), speedups relative to Greedy:\n",
                app_label.c_str(), machines);
    t.print();
  }
}

}  // namespace plbhec::bench
