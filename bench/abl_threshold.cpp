/// Ablation: the rebalance-threshold sweep. The paper: "Small thresholds
/// may cause excessive rebalancing while large thresholds may tolerate
/// larger imbalances ... values of about 10% of the execution time of a
/// single block results in a good trade-off." Sweeps the threshold on a
/// stable cluster and under mid-run QoS drift.

#include "bench_common.hpp"

namespace {

using namespace plbhec;

void sweep(const char* label, bool drift, std::size_t reps) {
  Table t({"threshold", "makespan [s]", "rebalances", "solves"});
  for (double thr : {0.02, 0.05, 0.10, 0.15, 0.25, 0.50, 1e9}) {
    RunningStats makespans;
    RunningStats rebalances;
    RunningStats solves;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      apps::GrnWorkload w(apps::GrnWorkload::paper_instance(60'000));
      sim::SimCluster cluster(sim::scenario(4, false));
      if (drift) cluster.add_speed_event(7, 0.06, 0.3);
      rt::EngineOptions eopts;
      eopts.seed = 4000 + rep;
      eopts.record_trace = false;
      rt::SimEngine engine(cluster, eopts);
      core::PlbHecOptions opts;
      opts.rebalance_threshold = thr;
      opts.step_fraction = 0.0625;
      core::PlbHecScheduler plb(opts);
      const rt::RunResult r = engine.run(w, plb);
      if (!r.ok) continue;
      makespans.add(r.makespan);
      rebalances.add(static_cast<double>(plb.stats().rebalances));
      solves.add(static_cast<double>(plb.stats().solves));
    }
    t.row()
        .add(thr > 100 ? std::string("off") : format_double(thr, 2))
        .add(makespans.mean(), 4)
        .add(rebalances.mean(), 1)
        .add(solves.mean(), 1);
  }
  std::printf("\n%s:\n", label);
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plbhec;
  const Cli cli(argc, argv);
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", cli.full() ? 10 : 3));
  bench::print_header("Ablation — rebalance threshold sweep (GRN 60k)",
                      sim::scenario(4, false));
  sweep("Stable cluster (paper: threshold should never fire)", false, reps);
  sweep("QoS drift: D.gpu0 drops to 0.3x mid-run", true, reps);
  std::printf(
      "\nExpected: on the stable cluster small thresholds fire spurious\n"
      "rebalances (each costs a drain) while large ones never fire; under\n"
      "drift a moderate threshold reacts without thrashing.\n");
  return 0;
}
