// Tests for the shared execution backbone: the packed GEMM micro-kernel
// against a naive reference on adversarial shapes, the persistent
// work-stealing pool (nesting, exceptions, tiny pools), the reusable
// WorkerSet, and the ThreadEngine regression that probe samples exclude
// thread startup.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "plbhec/apps/synthetic.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/exec/gemm_micro.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/exec/worker_set.hpp"
#include "plbhec/rt/thread_engine.hpp"

namespace plbhec::exec {
namespace {

// ---- Packed GEMM vs. naive reference ---------------------------------------

void naive_gemm(std::size_t m, std::size_t n, std::size_t k, const double* a,
                const double* b, double* c) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t kk = 0; kk < k; ++kk)
      for (std::size_t j = 0; j < n; ++j)
        c[i * n + j] += a[i * k + kk] * b[kk * n + j];
}

void expect_gemm_matches(std::size_t m, std::size_t n, std::size_t k) {
  Rng rng(m * 131 + n * 17 + k);
  std::vector<double> a(m * k), b(k * n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  // Pre-filled C checks the accumulate (C +=) semantics too.
  std::vector<double> expected(m * n), actual;
  for (auto& v : expected) v = rng.uniform(-1.0, 1.0);
  actual = expected;
  naive_gemm(m, n, k, a.data(), b.data(), expected.data());
  gemm_packed(m, n, k, a.data(), b.data(), actual.data());
  for (std::size_t i = 0; i < m * n; ++i)
    ASSERT_NEAR(actual[i], expected[i], 1e-9)
        << "m=" << m << " n=" << n << " k=" << k << " at " << i;
}

TEST(GemmPacked, OddAndPrimeSquareSizes) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 7u, 11u, 17u, 31u, 64u, 97u, 129u})
    expect_gemm_matches(n, n, n);
}

TEST(GemmPacked, RectangularShapes) {
  expect_gemm_matches(1, 8, 3);
  expect_gemm_matches(5, 1, 9);
  expect_gemm_matches(3, 17, 1);   // k = 1
  expect_gemm_matches(2, 3, 64);
  expect_gemm_matches(4, 8, 259);  // crosses the KC panel boundary
  expect_gemm_matches(13, 40, 7);
}

TEST(GemmPacked, EmptyDimensionsAreNoOps) {
  std::vector<double> a{1.0}, b{2.0}, c{5.0};
  gemm_packed(0, 1, 1, a.data(), b.data(), c.data());
  gemm_packed(1, 0, 1, a.data(), b.data(), c.data());
  gemm_packed(1, 1, 0, a.data(), b.data(), c.data());
  EXPECT_DOUBLE_EQ(c[0], 5.0);
}

TEST(GemmPacked, ParallelMatchesSerialIncludingSmallM) {
  ThreadPool pool(3);
  for (const auto [m, n, k] :
       {std::array<std::size_t, 3>{2, 97, 53},   // m < lanes
        std::array<std::size_t, 3>{129, 64, 31},
        std::array<std::size_t, 3>{100, 100, 100}}) {
    Rng rng(m + n + k);
    std::vector<double> a(m * k), b(k * n);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    std::vector<double> c1(m * n, 0.0), c2(m * n, 0.0);
    gemm_packed(m, n, k, a.data(), b.data(), c1.data());
    gemm_packed_parallel(m, n, k, a.data(), b.data(), c2.data(), pool);
    for (std::size_t i = 0; i < m * n; ++i) ASSERT_DOUBLE_EQ(c1[i], c2[i]);
  }
}

// ---- Work-stealing pool -----------------------------------------------------

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t outer = lo; outer < hi; ++outer)
      pool.parallel_for(0, 64, 4, [&](std::size_t ilo, std::size_t ihi) {
        total.fetch_add(ihi - ilo, std::memory_order_relaxed);
      });
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ThreadPool, OneWorkerPoolCompletes) {
  ThreadPool pool(1);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 1000, 7, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.parallel_for(0, 10, 1, [&](std::size_t, std::size_t) {
    executed = std::this_thread::get_id();
  });
  EXPECT_EQ(executed, caller);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after an exception drained the region.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, ConcurrentCallersShareOnePool) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&] {
      for (int r = 0; r < 50; ++r)
        pool.parallel_for(0, 256, 16, [&](std::size_t lo, std::size_t hi) {
          total.fetch_add(hi - lo, std::memory_order_relaxed);
        });
    });
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 50u * 256u);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, StressManySmallRegions) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int r = 0; r < 2000; ++r)
    pool.parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 2000u * 8u);
}

// ---- WorkerSet --------------------------------------------------------------

TEST(WorkerSet, RunsEveryIndexEachRound) {
  WorkerSet set(4, /*pin=*/false);
  std::vector<std::atomic<int>> counts(4);
  for (int round = 0; round < 3; ++round)
    set.run([&](std::size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(counts[i].load(), 3);
}

TEST(WorkerSet, ThreadsCreatedOnceAcrossRounds) {
  WorkerSet set(3, /*pin=*/false);
  EXPECT_EQ(set.threads_created(), 3u);
  for (int round = 0; round < 5; ++round) set.run([](std::size_t) {});
  EXPECT_EQ(set.threads_created(), 3u);  // no per-round spawning
}

// ---- ThreadEngine regression: probes exclude thread startup -----------------

class CountingScheduler final : public rt::Scheduler {
 public:
  std::string name() const override { return "counting"; }
  void start(const std::vector<rt::UnitInfo>&, const rt::WorkInfo&) override {}
  std::size_t next_block(rt::UnitId, double) override { return 100; }
  void on_complete(const rt::TaskObservation& obs) override {
    observations.push_back(obs);
  }
  std::vector<rt::TaskObservation> observations;
};

TEST(ThreadEngine, UnitWorkersPersistAcrossRuns) {
  apps::SyntheticWorkload::Config cfg;
  cfg.grains = 500;
  cfg.spin_iters_per_grain = 20;
  rt::ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.5};
  rt::ThreadEngine engine(opts);

  // The unit workers exist before any run: the first probe block of a run
  // is timed on an already-parked thread, so the F_p(x) samples fitted in
  // Phase 1 contain no OS thread-creation latency.
  EXPECT_EQ(engine.worker_threads_created(), 2u);

  apps::SyntheticWorkload w1(cfg), w2(cfg);
  CountingScheduler s1, s2;
  const rt::RunResult r1 = engine.run(w1, s1);
  const rt::RunResult r2 = engine.run(w2, s2);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;

  // Reusing the engine spawned no further threads.
  EXPECT_EQ(engine.worker_threads_created(), 2u);

  // RunResult contract unchanged: every grain accounted, observations
  // carry strictly positive kernel timings.
  for (const rt::RunResult* r : {&r1, &r2}) {
    std::size_t done = 0;
    for (const auto& s : r->unit_stats) done += s.grains;
    EXPECT_EQ(done, cfg.grains);
  }
  for (const auto& obs : s1.observations) EXPECT_GT(obs.exec_seconds, 0.0);
}

}  // namespace
}  // namespace plbhec::exec
