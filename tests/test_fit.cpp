// Tests for the curve-fitting layer: basis functions and derivatives,
// model evaluation, subset selection (including the degrees-of-freedom and
// physical-plausibility guards) and the transfer-model fit. Property-style
// sweeps check that generated curves from each basis family are recovered.

#include <gtest/gtest.h>

#include <cmath>

#include "plbhec/common/rng.hpp"
#include "plbhec/fit/basis.hpp"
#include "plbhec/fit/least_squares.hpp"
#include "plbhec/fit/model.hpp"

namespace plbhec::fit {
namespace {

TEST(Basis, EvalKnownValues) {
  EXPECT_DOUBLE_EQ(eval(BasisFn::kOne, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(eval(BasisFn::kX, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(eval(BasisFn::kX2, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(eval(BasisFn::kX3, 0.5), 0.125);
  EXPECT_DOUBLE_EQ(eval(BasisFn::kExpX, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(eval(BasisFn::kLnX, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(eval(BasisFn::kXLnX, 1.0), 0.0);
  EXPECT_NEAR(eval(BasisFn::kXExpX, 1.0), std::exp(1.0), 1e-12);
}

TEST(Basis, LnClampsNearZero) {
  EXPECT_TRUE(std::isfinite(eval(BasisFn::kLnX, 0.0)));
  EXPECT_TRUE(std::isfinite(derivative(BasisFn::kLnX, 0.0)));
  EXPECT_TRUE(std::isfinite(second_derivative(BasisFn::kLnX, 0.0)));
}

class BasisDerivatives : public ::testing::TestWithParam<BasisFn> {};

TEST_P(BasisDerivatives, MatchFiniteDifferences) {
  const BasisFn f = GetParam();
  const double h = 1e-6;
  for (double x : {0.05, 0.2, 0.5, 0.9}) {
    const double fd = (eval(f, x + h) - eval(f, x - h)) / (2.0 * h);
    EXPECT_NEAR(derivative(f, x), fd, 1e-5 * std::max(1.0, std::fabs(fd)))
        << name(f) << " at x=" << x;
    const double fd2 =
        (eval(f, x + h) - 2.0 * eval(f, x) + eval(f, x - h)) / (h * h);
    EXPECT_NEAR(second_derivative(f, x), fd2,
                2e-3 * std::max(1.0, std::fabs(fd2)))
        << name(f) << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBasis, BasisDerivatives,
    ::testing::Values(BasisFn::kOne, BasisFn::kLnX, BasisFn::kX, BasisFn::kX2,
                      BasisFn::kX3, BasisFn::kExpX, BasisFn::kXExpX,
                      BasisFn::kXLnX));

TEST(Basis, PaperTermsExcludeIntercept) {
  for (BasisFn f : paper_terms()) EXPECT_NE(f, BasisFn::kOne);
  EXPECT_EQ(paper_terms().size(), 7u);
  EXPECT_EQ(all_terms().size(), 8u);
}

TEST(CurveModel, EvaluatesLinearCombination) {
  CurveModel m;
  m.terms = {BasisFn::kOne, BasisFn::kX};
  m.coefficients = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(m(0.5), 3.5);
  EXPECT_DOUBLE_EQ(m.derivative(0.5), 3.0);
  EXPECT_DOUBLE_EQ(m.second_derivative(0.5), 0.0);
}

TEST(CurveModel, ToStringContainsTerms) {
  CurveModel m;
  m.terms = {BasisFn::kOne, BasisFn::kLnX};
  m.coefficients = {1.0, -2.0};
  const std::string s = m.to_string();
  EXPECT_NE(s.find("ln(x)"), std::string::npos);
}

TEST(CurveModel, InvalidDetected) {
  CurveModel m;
  EXPECT_FALSE(m.valid());
  m.terms = {BasisFn::kX};
  EXPECT_FALSE(m.valid());  // no coefficient
}

TEST(TransferModel, Affine) {
  TransferModel g{2.0, 0.5};
  EXPECT_DOUBLE_EQ(g(0.25), 1.0);
  EXPECT_DOUBLE_EQ(g.derivative(0.1), 2.0);
}

SampleSet sample_curve(const std::vector<double>& xs, auto&& fn,
                       double noise_sigma = 0.0, std::uint64_t seed = 1) {
  Rng rng(seed);
  SampleSet s;
  for (double x : xs)
    s.add(x, fn(x) * rng.lognormal_factor(noise_sigma));
  return s;
}

const std::vector<double> kProbeXs{0.002, 0.004, 0.008, 0.016,
                                   0.032, 0.064, 0.128};

TEST(FitTerms, RecoversLinearCoefficients) {
  auto s = sample_curve(kProbeXs, [](double x) { return 0.1 + 5.0 * x; });
  std::vector<BasisFn> terms{BasisFn::kOne, BasisFn::kX};
  auto fit = fit_terms(s, terms);
  ASSERT_TRUE(fit);
  EXPECT_NEAR(fit->model.coefficients[0], 0.1, 1e-9);
  EXPECT_NEAR(fit->model.coefficients[1], 5.0, 1e-9);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(FitTerms, UnderdeterminedReturnsNullopt) {
  SampleSet s;
  s.add(0.1, 1.0);
  std::vector<BasisFn> terms{BasisFn::kOne, BasisFn::kX};
  EXPECT_FALSE(fit_terms(s, terms).has_value());
}

TEST(FitTerms, RelativeWeightingStillComputesRawR2) {
  auto s = sample_curve(kProbeXs, [](double x) { return 1.0 + 10.0 * x; });
  std::vector<BasisFn> terms{BasisFn::kOne, BasisFn::kX};
  auto fit = fit_terms(s, terms, /*relative_weighting=*/true);
  ASSERT_TRUE(fit);
  EXPECT_GT(fit->r2, 0.999);
}

struct GeneratedCurve {
  const char* label;
  double (*fn)(double);
};

class SelectRecovers : public ::testing::TestWithParam<GeneratedCurve> {};

TEST_P(SelectRecovers, PredictsHeldOutPoints) {
  const auto& gc = GetParam();
  auto s = sample_curve(kProbeXs, gc.fn, 0.01, 7);
  const FitResult fit = select_model(s);
  ASSERT_TRUE(fit.model.valid());
  EXPECT_TRUE(fit.acceptable) << gc.label << " r2=" << fit.r2;
  // Interpolation accuracy on held-out points inside the sampled range.
  for (double x : {0.003, 0.01, 0.05, 0.1}) {
    const double truth = gc.fn(x);
    EXPECT_NEAR(fit.model(x), truth, 0.15 * std::fabs(truth) + 1e-3)
        << gc.label << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Curves, SelectRecovers,
    ::testing::Values(
        GeneratedCurve{"affine", [](double x) { return 0.05 + 3.0 * x; }},
        GeneratedCurve{"quadratic",
                       [](double x) { return 0.01 + 2.0 * x + 8.0 * x * x; }},
        GeneratedCurve{"gpu-like saturating",
                       [](double x) {
                         return 0.02 + 4.0 * x * (x + 0.01) / (x + 0.004);
                       }},
        GeneratedCurve{"log-flavored",
                       [](double x) { return 1.0 + 0.05 * std::log(x) + x; }}),
    [](const auto& info) {
      std::string n = info.param.label;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(SelectModel, FourSamplesDoNotInterpolate) {
  // With 4 samples an interpolating 4-term fit would have R^2 = 1; the
  // dof guard must keep the parameter count at <= 2.
  auto s = sample_curve({0.01, 0.02, 0.04, 0.08},
                        [](double x) { return 0.1 + 2.0 * x; }, 0.02, 3);
  const FitResult fit = select_model(s);
  ASSERT_TRUE(fit.model.valid());
  EXPECT_LE(fit.model.terms.size(), 2u);
}

TEST(SelectModel, SingleSampleFallsBackToConstant) {
  SampleSet s;
  s.add(0.05, 3.0);
  const FitResult fit = select_model(s);
  ASSERT_TRUE(fit.model.valid());
  EXPECT_EQ(fit.model.terms.size(), 1u);
  EXPECT_EQ(fit.model.terms[0], BasisFn::kOne);
  EXPECT_DOUBLE_EQ(fit.model(0.5), 3.0);
}

TEST(SelectModel, EmptySamplesGiveInvalidModel) {
  SampleSet s;
  const FitResult fit = select_model(s);
  EXPECT_FALSE(fit.model.valid());
  EXPECT_FALSE(fit.acceptable);
}

TEST(SelectModel, PhysicalFilterRejectsDecreasingExtrapolation) {
  // Construct samples from an increasing curve; whatever is selected must
  // not decrease substantially over (x_lo, 1].
  auto s = sample_curve(kProbeXs, [](double x) { return 0.02 + x; }, 0.05, 9);
  const FitResult fit = select_model(s);
  ASSERT_TRUE(fit.model.valid());
  double prev = fit.model(0.002);
  double max_drop = 0.0;
  double hi = prev, lo = prev;
  for (double x = 0.002; x <= 1.0; x += 0.02) {
    const double t = fit.model(x);
    max_drop = std::max(max_drop, prev - t);
    hi = std::max(hi, t);
    lo = std::min(lo, t);
    prev = t;
    EXPECT_GE(t, 0.0);
  }
  EXPECT_LE(max_drop, 0.10 * (hi - lo) + 1e-12);
}

TEST(SelectModel, AcceptableReflectsThreshold) {
  // Pure noise cannot be fitted above threshold without overfitting room.
  Rng rng(5);
  SampleSet s;
  for (double x : kProbeXs) s.add(x, 1.0 + rng.uniform(-0.5, 0.5));
  SelectionOptions opts;
  opts.r2_threshold = 0.95;
  opts.max_terms = 1;
  const FitResult fit = select_model(s, opts);
  EXPECT_FALSE(fit.acceptable);
}

TEST(SelectModelFrom, RestrictedCandidates) {
  auto s = sample_curve(kProbeXs, [](double x) { return 2.0 * x; });
  std::vector<BasisFn> only_linear{BasisFn::kX};
  const FitResult fit = select_model_from(s, only_linear);
  ASSERT_TRUE(fit.model.valid());
  for (BasisFn f : fit.model.terms)
    EXPECT_TRUE(f == BasisFn::kX || f == BasisFn::kOne);
}

TEST(FitTransfer, RecoversAffine) {
  auto s = sample_curve(kProbeXs, [](double x) { return 0.01 + 3.0 * x; });
  const TransferModel g = fit_transfer(s);
  EXPECT_NEAR(g.latency, 0.01, 1e-9);
  EXPECT_NEAR(g.slope, 3.0, 1e-9);
}

TEST(FitTransfer, ClampsNegativeLatency) {
  // Data through the origin with negative-intercept noise.
  SampleSet s;
  s.add(0.1, 0.95);
  s.add(0.2, 2.05);
  s.add(0.3, 3.1);
  const TransferModel g = fit_transfer(s);
  EXPECT_GE(g.latency, 0.0);
  EXPECT_GT(g.slope, 0.0);
}

TEST(FitTransfer, SingleSampleAssumesBandwidthOnly) {
  SampleSet s;
  s.add(0.5, 1.0);
  const TransferModel g = fit_transfer(s);
  EXPECT_DOUBLE_EQ(g.latency, 0.0);
  EXPECT_DOUBLE_EQ(g.slope, 2.0);
}

TEST(FitTransfer, EmptyIsZero) {
  SampleSet s;
  const TransferModel g = fit_transfer(s);
  EXPECT_EQ(g.slope, 0.0);
  EXPECT_EQ(g.latency, 0.0);
}

TEST(FitTransfer, FlatDataFallsBackToMeanLatency) {
  SampleSet s;  // decreasing times => negative slope => clamp
  s.add(0.1, 2.0);
  s.add(0.5, 1.0);
  const TransferModel g = fit_transfer(s);
  EXPECT_GE(g.slope, 0.0);
  EXPECT_NEAR(g(0.3), 1.5, 0.6);
}

TEST(PerfModel, TotalsAndDerivatives) {
  PerfModel m;
  m.exec.terms = {BasisFn::kOne, BasisFn::kX2};
  m.exec.coefficients = {1.0, 4.0};
  m.transfer = {2.0, 0.5};
  EXPECT_DOUBLE_EQ(m.total_time(0.5), 1.0 + 1.0 + 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(m.total_derivative(0.5), 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(m.total_second_derivative(0.5), 8.0);
}

// ---------------------------------------------------------------------------
// Incremental moments: the cached Gram matrix / moment vectors must equal
// the quantities computed directly from the stored samples.

TEST(MomentSet, MatchesDirectComputation) {
  Rng rng(11);
  SampleSet s;
  for (int i = 0; i < 40; ++i)
    s.add(rng.uniform(0.001, 0.9), rng.uniform(0.01, 5.0));

  const MomentSet& m = s.moments();
  ASSERT_EQ(m.count(), s.size());
  const auto terms = all_terms();
  for (BasisFn a : terms) {
    double direct_xty = 0.0;
    for (const auto& it : s.items()) direct_xty += eval(a, it.x) * it.time;
    EXPECT_NEAR(m.xty(a), direct_xty,
                1e-12 * std::max(1.0, std::fabs(direct_xty)))
        << name(a);
    for (BasisFn b : terms) {
      double direct = 0.0;
      for (const auto& it : s.items()) direct += eval(a, it.x) * eval(b, it.x);
      EXPECT_NEAR(m.gram(a, b), direct,
                  1e-12 * std::max(1.0, std::fabs(direct)))
          << name(a) << "*" << name(b);
      EXPECT_DOUBLE_EQ(m.gram(a, b), m.gram(b, a));
    }
  }
  double direct_yty = 0.0;
  double direct_wyty = 0.0;
  for (const auto& it : s.items()) {
    direct_yty += it.time * it.time;
    const double w = 1.0 / std::max(it.time, 1e-9);
    direct_wyty += w * w * it.time * it.time;
  }
  EXPECT_NEAR(m.yty(), direct_yty, 1e-12 * direct_yty);
  EXPECT_NEAR(m.yty(/*weighted=*/true), direct_wyty, 1e-12 * direct_wyty);
}

TEST(MomentSet, ClearResets) {
  SampleSet s;
  s.add(0.1, 1.0);
  s.clear();
  EXPECT_EQ(s.moments().count(), 0u);
  EXPECT_EQ(s.moments().yty(), 0.0);
  EXPECT_EQ(s.moments().gram(BasisFn::kOne, BasisFn::kOne), 0.0);
}

// ---------------------------------------------------------------------------
// Gram/Cholesky vs QR equivalence: every subset the selection pipeline can
// visit (sizes 1..4 over the full basis) must produce the same coefficients,
// R^2 and BIC from the cached-moment path as from the design-matrix path,
// across the whole sample-count range the scheduler sees.

class GramQrEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GramQrEquivalence, AllSubsetsAgree) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  SampleSet s;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.002, 0.9);
    const double t = (0.03 + 2.0 * x + 5.0 * x * x) *
                     rng.lognormal_factor(0.05);
    s.add(x, t);
  }

  const auto terms = all_terms();
  std::size_t compared = 0;
  for (unsigned mask = 1; mask < (1u << terms.size()); ++mask) {
    std::vector<BasisFn> subset;
    for (std::size_t i = 0; i < terms.size(); ++i)
      if (mask & (1u << i)) subset.push_back(terms[i]);
    if (subset.size() > 4) continue;  // selection caps at max_terms+intercept

    for (bool weighted : {false, true}) {
      FitCounters qr_counters, gram_counters;
      const auto via_qr =
          fit_terms(s, subset, weighted, FitEngine::kQr, &qr_counters);
      const auto via_gram =
          fit_terms(s, subset, weighted, FitEngine::kGram, &gram_counters);
      ASSERT_EQ(via_qr.has_value(), via_gram.has_value())
          << "n=" << n << " mask=" << mask << " weighted=" << weighted;
      if (!via_qr) continue;
      EXPECT_EQ(qr_counters.qr_solves, 1u);
      // The Gram engine either solved from moments or certifiably fell back
      // to QR; in both cases the result must match the pure-QR fit.
      EXPECT_EQ(gram_counters.gram_solves + gram_counters.qr_fallbacks, 1u);

      ASSERT_EQ(via_gram->model.coefficients.size(),
                via_qr->model.coefficients.size());
      double scale = 1.0;
      for (double c : via_qr->model.coefficients)
        scale = std::max(scale, std::fabs(c));
      for (std::size_t i = 0; i < via_qr->model.coefficients.size(); ++i)
        EXPECT_NEAR(via_gram->model.coefficients[i],
                    via_qr->model.coefficients[i], 1e-8 * scale)
            << "n=" << n << " mask=" << mask << " weighted=" << weighted;
      EXPECT_NEAR(via_gram->r2, via_qr->r2, 1e-8)
          << "n=" << n << " mask=" << mask << " weighted=" << weighted;
      // BIC contains log(rss); skip the comparison when the fit is exact
      // enough that rss sits at the cancellation floor and its log is noise.
      const double rss_guard = 1e-10 * s.moments().yty();
      if (via_qr->r2 < 1.0 - 1e-10 || rss_guard == 0.0)
        EXPECT_NEAR(via_gram->bic, via_qr->bic,
                    1e-8 * std::max(1.0, std::fabs(via_qr->bic)))
            << "n=" << n << " mask=" << mask << " weighted=" << weighted;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

INSTANTIATE_TEST_SUITE_P(SampleCounts, GramQrEquivalence,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16, 24, 32, 48,
                                           64, 96, 128, 192, 256),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(GramQrEquivalenceSelect, FullSelectionAgrees) {
  // End-to-end: select_model must pick models whose predictions agree
  // between the two engines (term identity can legitimately differ only on
  // exact BIC ties, which noisy data rules out).
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    SampleSet s;
    for (std::size_t i = 0; i < 24; ++i) {
      const double x = rng.uniform(0.002, 0.6);
      s.add(x, (0.05 + 1.5 * x + 3.0 * x * x) * rng.lognormal_factor(0.03));
    }
    SelectionOptions qr_opts, gram_opts;
    qr_opts.engine = FitEngine::kQr;
    gram_opts.engine = FitEngine::kGram;
    const FitResult a = select_model(s, qr_opts);
    const FitResult b = select_model(s, gram_opts);
    ASSERT_TRUE(a.model.valid());
    ASSERT_TRUE(b.model.valid());
    EXPECT_EQ(a.acceptable, b.acceptable) << "seed=" << seed;
    EXPECT_NEAR(a.r2, b.r2, 1e-8) << "seed=" << seed;
    for (double x : {0.01, 0.05, 0.2, 0.5})
      EXPECT_NEAR(b.model(x), a.model(x),
                  1e-6 * std::max(1.0, std::fabs(a.model(x))))
          << "seed=" << seed << " x=" << x;
  }
}

TEST(FitEngineAuto, UsesQrBelowCutoverAndGramAbove) {
  std::vector<BasisFn> terms{BasisFn::kOne, BasisFn::kX};
  {
    auto s = sample_curve({0.01, 0.02, 0.04, 0.08},
                          [](double x) { return 0.1 + 2.0 * x; });
    FitCounters c;
    ASSERT_TRUE(fit_terms(s, terms, false, FitEngine::kAuto, &c));
    EXPECT_EQ(c.qr_solves, 1u);
    EXPECT_EQ(c.gram_solves, 0u);
  }
  {
    auto s = sample_curve(
        {0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1},
        [](double x) { return 0.1 + 2.0 * x; }, 0.02, 13);
    FitCounters c;
    ASSERT_TRUE(fit_terms(s, terms, false, FitEngine::kAuto, &c));
    EXPECT_EQ(c.gram_solves + c.qr_fallbacks, 1u);
  }
}

}  // namespace
}  // namespace plbhec::fit
