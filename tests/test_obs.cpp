// Observability-layer tests: the event sink under concurrent recording,
// the counter registry under the work-stealing pool, exporter round-trips
// (Chrome trace-event JSON and CSV re-parsed back to the original counts
// and timestamps), and the end-to-end event streams of each scheduler on
// the simulated cluster. All tests also pass in a PLBHEC_OBS=OFF build,
// where the sink compiles to no-ops and streams are empty.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "plbhec/apps/grn.hpp"
#include "plbhec/baselines/acosta.hpp"
#include "plbhec/baselines/hdss.hpp"
#include "plbhec/core/plb_hec.hpp"
#include "plbhec/exec/thread_pool.hpp"
#include "plbhec/obs/counters.hpp"
#include "plbhec/obs/exporters.hpp"
#include "plbhec/obs/sink.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace plbhec {
namespace {

obs::Event make_event(double time, obs::EventKind kind,
                      std::uint32_t unit = obs::kNoUnit) {
  obs::Event e;
  e.time = time;
  e.kind = kind;
  e.unit = unit;
  return e;
}

std::size_t count_kind(const std::vector<obs::Event>& events,
                       obs::EventKind kind) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const obs::Event& e) { return e.kind == kind; }));
}

bool time_sorted(const std::vector<obs::Event>& events) {
  return std::is_sorted(
      events.begin(), events.end(),
      [](const obs::Event& a, const obs::Event& b) { return a.time < b.time; });
}

/// One small traced PLB-HeC run on the 2-machine scenario.
struct TracedRun {
  rt::RunResult result;
  std::vector<obs::Event> events;
};

TracedRun traced_plbhec_run() {
  apps::GrnWorkload w(apps::GrnWorkload::paper_instance(10'000));
  sim::SimCluster cluster(sim::scenario(2));
  obs::EventSink sink;
  rt::EngineOptions opts;
  opts.sink = &sink;
  rt::SimEngine engine(cluster, opts);
  core::PlbHecScheduler plb;
  TracedRun out;
  out.result = engine.run(w, plb);
  out.events = sink.drain();
  return out;
}

TEST(EventSink, RecordsAndDrainsSortedByTime) {
  obs::EventSink sink;
  sink.record(make_event(3.0, obs::EventKind::kBarrier));
  sink.record(make_event(1.0, obs::EventKind::kProbeIssued, 0));
  sink.record(make_event(2.0, obs::EventKind::kSolve));
  const std::vector<obs::Event> events = sink.drain();
  if (!obs::kCompiledIn) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(time_sorted(events));
  EXPECT_EQ(events.front().kind, obs::EventKind::kProbeIssued);
  EXPECT_EQ(events.front().unit, 0u);
  EXPECT_EQ(events.back().kind, obs::EventKind::kBarrier);
}

TEST(EventSink, DrainClearsAndRuntimeDisableDrops) {
  obs::EventSink sink;
  sink.record(make_event(1.0, obs::EventKind::kBarrier));
  (void)sink.drain();
  EXPECT_TRUE(sink.drain().empty());

  sink.set_enabled(false);
  sink.record(make_event(2.0, obs::EventKind::kBarrier));
  EXPECT_TRUE(sink.drain().empty());
  sink.set_enabled(true);
  sink.record(make_event(3.0, obs::EventKind::kBarrier));
  EXPECT_EQ(sink.drain().size(), obs::kCompiledIn ? 1u : 0u);
}

TEST(EventSink, NullSinkMacroIsSafe) {
  obs::EventSink* sink = nullptr;
  PLBHEC_OBS_RECORD(sink, {1.0, obs::EventKind::kBarrier, obs::kNoUnit, 0.0,
                           0.0, 0, 0});
  SUCCEED();
}

TEST(EventSink, ConcurrentRecordingUnderThePool) {
  exec::ThreadPool pool(3);
  obs::EventSink sink;
  constexpr std::size_t kEvents = 20'000;
  pool.parallel_for(0, kEvents, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      sink.record(make_event(static_cast<double>(i),
                             obs::EventKind::kBlockDispatched,
                             static_cast<std::uint32_t>(i % 4)));
  });
  const std::vector<obs::Event> events = sink.drain();
  if (!obs::kCompiledIn) {
    EXPECT_TRUE(events.empty());
    return;
  }
  ASSERT_EQ(events.size(), kEvents);
  EXPECT_TRUE(time_sorted(events));
  // Every index recorded exactly once, regardless of which thread took it.
  std::vector<bool> seen(kEvents, false);
  for (const obs::Event& e : events) {
    const auto idx = static_cast<std::size_t>(e.time);
    ASSERT_LT(idx, kEvents);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(CounterRegistry, CreateOrGetAddSetSnapshot) {
  obs::CounterRegistry reg;
  obs::CounterRegistry::Counter& c = reg.counter("alpha");
  c.add(3);
  EXPECT_EQ(&c, &reg.counter("alpha"));  // stable reference
  reg.add("beta", 2);
  reg.set("beta", 7);
  EXPECT_EQ(reg.value("alpha"), 3u);
  EXPECT_EQ(reg.value("beta"), 7u);
  EXPECT_EQ(reg.value("never-registered"), 0u);
  const auto snapshot = reg.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "alpha");   // name-sorted
  EXPECT_EQ(snapshot[1].first, "beta");
  EXPECT_EQ(snapshot[1].second, 7u);
}

TEST(CounterRegistry, ConcurrentIncrementsUnderThePool) {
  exec::ThreadPool pool(3);
  obs::CounterRegistry reg;
  constexpr std::size_t kIncrements = 100'000;
  obs::CounterRegistry::Counter& hot = reg.counter("hot");
  pool.parallel_for(0, kIncrements, 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      hot.add();                      // cached-reference hot path
      reg.add("bucket" + std::to_string(i % 7));  // registration races
    }
  });
  EXPECT_EQ(reg.value("hot"), kIncrements);
  std::uint64_t bucket_total = 0;
  for (const auto& [name, value] : reg.snapshot())
    if (name != "hot") bucket_total += value;
  EXPECT_EQ(bucket_total, kIncrements);
}

TEST(ThreadPool, StatsCountWorkDistribution) {
  exec::ThreadPool pool(2);
  std::atomic<std::size_t> ran{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  pool.parallel_for(0, 10'000, 16,
                    [&](std::size_t lo, std::size_t hi) { ran += hi - lo; });
  const exec::PoolStats stats = pool.stats();
  EXPECT_GT(stats.tasks_executed, 0u);
  EXPECT_GE(stats.injected, 32u);  // submits came from this non-worker thread
  EXPECT_EQ(stats.parallel_fors, 1u);

  obs::CounterRegistry reg;
  pool.publish_counters(reg, "pool.");
  EXPECT_EQ(reg.value("pool.tasks_executed"), stats.tasks_executed);
  EXPECT_EQ(reg.value("pool.injected"), stats.injected);
  EXPECT_EQ(reg.value("pool.parallel_fors"), stats.parallel_fors);
  EXPECT_EQ(reg.value("pool.steals"), pool.stats().steals);
}

TEST(EngineIntegration, PlbHecRunEmitsDecisionStream) {
  const TracedRun run = traced_plbhec_run();
  ASSERT_TRUE(run.result.ok) << run.result.error;
  if (!obs::kCompiledIn) {
    EXPECT_TRUE(run.events.empty());
    return;
  }
  EXPECT_TRUE(time_sorted(run.events));
  EXPECT_GT(count_kind(run.events, obs::EventKind::kProbeIssued), 0u);
  EXPECT_GT(count_kind(run.events, obs::EventKind::kModelFitted), 0u);
  EXPECT_GT(count_kind(run.events, obs::EventKind::kSolve), 0u);
  EXPECT_GT(count_kind(run.events, obs::EventKind::kPhaseChange), 0u);
  // One dispatch event per engine-issued task.
  std::size_t tasks = 0;
  for (const rt::UnitStats& s : run.result.unit_stats) tasks += s.tasks;
  EXPECT_EQ(count_kind(run.events, obs::EventKind::kBlockDispatched), tasks);
  for (const obs::Event& e : run.events) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LE(e.time, run.result.makespan);
    if (e.unit != obs::kNoUnit) EXPECT_LT(e.unit, run.result.units.size());
  }
}

TEST(EngineIntegration, BaselineSchedulersEmitTheirOwnKinds) {
  apps::GrnWorkload w(apps::GrnWorkload::paper_instance(10'000));
  sim::SimCluster cluster(sim::scenario(2));
  {
    obs::EventSink sink;
    rt::EngineOptions opts;
    opts.sink = &sink;
    rt::SimEngine engine(cluster, opts);
    baselines::HdssScheduler hdss;
    ASSERT_TRUE(engine.run(w, hdss).ok);
    const std::vector<obs::Event> events = sink.drain();
    if (obs::kCompiledIn) {
      EXPECT_GT(count_kind(events, obs::EventKind::kWeightUpdate), 0u);
      EXPECT_EQ(count_kind(events, obs::EventKind::kPhaseChange), 1u);
    } else {
      EXPECT_TRUE(events.empty());
    }
  }
  {
    obs::EventSink sink;
    rt::EngineOptions opts;
    opts.sink = &sink;
    rt::SimEngine engine(cluster, opts);
    baselines::AcostaScheduler acosta;
    ASSERT_TRUE(engine.run(w, acosta).ok);
    const std::vector<obs::Event> events = sink.drain();
    if (obs::kCompiledIn) {
      EXPECT_GT(count_kind(events, obs::EventKind::kIterationSync), 0u);
      EXPECT_EQ(count_kind(events, obs::EventKind::kBarrier),
                count_kind(events, obs::EventKind::kIterationSync));
    } else {
      EXPECT_TRUE(events.empty());
    }
  }
}

TEST(Exporters, ChromeTraceRoundTrip) {
  const TracedRun run = traced_plbhec_run();
  ASSERT_TRUE(run.result.ok) << run.result.error;
  const std::string json = obs::chrome_trace_json(run.result, run.events);

  const obs::ChromeTraceScan scan = obs::scan_chrome_trace(json);
  ASSERT_TRUE(scan.parse_ok);
  EXPECT_EQ(scan.slices, run.result.trace.segments().size());
  EXPECT_EQ(scan.instants, run.events.size());
  EXPECT_EQ(scan.metadata, run.result.units.size() + 1);  // + scheduler track
  EXPECT_TRUE(scan.ts_monotonic);
  EXPECT_GE(scan.min_ts, 0.0);
  EXPECT_NEAR(scan.max_ts, run.result.makespan * 1e6,
              1e-3 * run.result.makespan * 1e6);
}

TEST(Exporters, CsvRoundTrip) {
  const TracedRun run = traced_plbhec_run();
  ASSERT_TRUE(run.result.ok) << run.result.error;
  const std::string csv = obs::events_csv(run.events);

  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "time,kind,unit,a,b,i,j");

  std::size_t rows = 0;
  double prev_time = -1.0;
  std::array<std::size_t, obs::kEventKindCount> by_kind{};
  while (std::getline(in, line)) {
    ASSERT_EQ(std::count(line.begin(), line.end(), ','), 6)
        << "row " << rows << ": " << line;
    const double time = std::strtod(line.c_str(), nullptr);
    EXPECT_GE(time, prev_time);  // drain order survives the export
    prev_time = time;
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k)
      if (line.find(obs::to_string(static_cast<obs::EventKind>(k))) !=
          std::string::npos)
        ++by_kind[k];
    ++rows;
  }
  EXPECT_EQ(rows, run.events.size());
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k)
    EXPECT_GE(by_kind[k],
              count_kind(run.events, static_cast<obs::EventKind>(k)))
        << obs::to_string(static_cast<obs::EventKind>(k));
}

TEST(Exporters, RunSummaryNamesUnitsAndCounters) {
  const TracedRun run = traced_plbhec_run();
  ASSERT_TRUE(run.result.ok) << run.result.error;
  obs::CounterRegistry reg;
  reg.set("plbhec.solves", 5);
  const std::string summary =
      obs::run_summary(run.result, run.events, &reg);
  for (const rt::UnitInfo& u : run.result.units)
    EXPECT_NE(summary.find(u.name), std::string::npos) << u.name;
  EXPECT_NE(summary.find("makespan"), std::string::npos);
  EXPECT_NE(summary.find("plbhec.solves"), std::string::npos);
  if (obs::kCompiledIn)
    EXPECT_NE(summary.find("block_dispatched"), std::string::npos);
  else
    EXPECT_NE(summary.find("(none recorded)"), std::string::npos);
}

TEST(Exporters, EventArgNamesAreDefinedForEveryKind) {
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    EXPECT_NE(std::string(obs::to_string(kind)), "unknown");
    (void)obs::arg_names(kind);  // must not crash / assert
  }
}

}  // namespace
}  // namespace plbhec
