// Tests for the common utilities: RNG determinism and distribution
// moments, Welford statistics, percentiles, R^2, tables, CSV and CLI.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "plbhec/common/cli.hpp"
#include "plbhec/common/csv.hpp"
#include "plbhec/common/rng.hpp"
#include "plbhec/common/stats.hpp"
#include "plbhec/common/table.hpp"

namespace plbhec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentAdvance) {
  Rng parent(7);
  Rng child1 = parent.fork(42);
  const std::uint64_t first = child1.next();
  parent.next();  // advancing the parent must not change the fork
  Rng child2 = Rng(7).fork(42);
  EXPECT_EQ(child2.next(), first);
}

TEST(Rng, ForksWithDifferentIdsDiffer) {
  Rng parent(7);
  auto a = parent.fork(1);
  auto b = parent.fork(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalFactorMedianOne) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 50'001; ++i) xs.push_back(rng.lognormal_factor(0.3));
  EXPECT_NEAR(percentile(xs, 0.5), 1.0, 0.02);
}

TEST(Rng, LognormalZeroSigmaIsOne) {
  Rng rng(12);
  EXPECT_EQ(rng.lognormal_factor(0.0), 1.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Summary, Basic) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
}

TEST(RSquared, PerfectFitIsOne) {
  std::vector<double> obs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  std::vector<double> obs{1.0, 2.0, 3.0};
  std::vector<double> pred{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, pred), 0.0);
}

TEST(RSquared, ConstantObservations) {
  std::vector<double> obs{2.0, 2.0};
  std::vector<double> exact{2.0, 2.0};
  std::vector<double> off{2.0, 3.0};
  EXPECT_EQ(r_squared(obs, exact), 1.0);
  EXPECT_EQ(r_squared(obs, off), 0.0);
}

TEST(Table, RendersAllCells) {
  Table t({"a", "bb"});
  t.row().add("x").add(1.5, 1);
  t.row().add("long-cell").add(std::size_t{42});
  const std::string s = t.render();
  EXPECT_NE(s.find("long-cell"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = "/tmp/plbhec_test_csv.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row({"x,y", "plain"});
    csv.row_values({1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",plain");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--flag", "--key=value", "--num", "3",
                        "positional"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("key", ""), "value");
  EXPECT_EQ(cli.get_int("num", 0), 3);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_FALSE(cli.full());
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
}

TEST(Cli, FullFlag) {
  const char* argv[] = {"prog", "--full"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_TRUE(cli.full());
}

}  // namespace
}  // namespace plbhec
