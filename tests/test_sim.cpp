// Tests for the cluster simulator: device cost models (monotonicity, wave
// quantization, roofline blend), transfer links, Table I machine presets,
// cluster construction, noise model and speed/failure timelines.

#include <gtest/gtest.h>

#include <cmath>

#include "plbhec/common/rng.hpp"
#include "plbhec/common/stats.hpp"
#include "plbhec/sim/cluster.hpp"
#include "plbhec/sim/device.hpp"
#include "plbhec/sim/link.hpp"
#include "plbhec/sim/machine.hpp"
#include "plbhec/sim/noise.hpp"

namespace plbhec::sim {
namespace {

WorkloadProfile basic_profile() {
  WorkloadProfile p;
  p.name = "test";
  p.flops_per_grain = 1e6;
  p.bytes_per_grain = 1024;
  p.device_bytes_per_grain = 512;
  p.gpu_threads_per_grain = 64;
  p.cpu_parallel_fraction = 0.95;
  p.gpu_efficiency = 0.5;
  p.cpu_efficiency = 0.5;
  return p;
}

GpuModel test_gpu() {
  return GpuModel({.name = "TestGPU",
                   .cores = 1024,
                   .sm_count = 8,
                   .resident_threads_per_sm = 1024,
                   .clock_ghz = 1.0,
                   .mem_bandwidth_bps = 100e9,
                   .launch_overhead_s = 20e-6});
}

CpuModel test_cpu() {
  return CpuModel({.name = "TestCPU",
                   .cores = 4,
                   .clock_ghz = 3.0,
                   .flops_per_core_per_cycle = 8.0,
                   .mem_bandwidth_bps = 30e9,
                   .dispatch_overhead_s = 5e-6});
}

TEST(GpuModel, ZeroGrainsIsFree) {
  EXPECT_EQ(test_gpu().execution_seconds(basic_profile(), 0.0), 0.0);
}

TEST(GpuModel, MonotoneNonDecreasing) {
  const GpuModel gpu = test_gpu();
  auto p = basic_profile();
  p.gpu_saturation_grains = 64.0;
  double prev = 0.0;
  for (double g = 1; g <= 200'000; g = g * 1.37 + 1.0) {
    const double t = gpu.execution_seconds(p, g);
    EXPECT_GE(t, prev) << "grains " << g;
    prev = t;
  }
  EXPECT_GT(gpu.execution_seconds(p, 100'000.0),
            10.0 * gpu.execution_seconds(p, 100.0));
}

TEST(GpuModel, LaunchOverheadDominatesTinyBlocks) {
  const GpuModel gpu = test_gpu();
  auto p = basic_profile();
  p.flops_per_grain = 1.0;
  p.device_bytes_per_grain = 1.0;
  EXPECT_NEAR(gpu.execution_seconds(p, 1.0), 20e-6, 5e-6);
}

TEST(GpuModel, WaveQuantization) {
  // capacity = 8 SMs * 1024 threads = 8192 threads = 128 grains.
  const GpuModel gpu = test_gpu();
  auto p = basic_profile();
  p.gpu_saturation_grains = 0.0;
  const double t_full_wave = gpu.execution_seconds(p, 128.0);
  const double t_just_over = gpu.execution_seconds(p, 129.0);
  // Crossing a wave boundary must cost a visible jump.
  EXPECT_GT(t_just_over, t_full_wave * 1.3);
}

TEST(GpuModel, PerGrainTimeImprovesWithOccupancy) {
  const GpuModel gpu = test_gpu();
  const auto p = basic_profile();
  const double per_grain_small = gpu.execution_seconds(p, 8.0) / 8.0;
  const double per_grain_large = gpu.execution_seconds(p, 4096.0) / 4096.0;
  EXPECT_GT(per_grain_small, per_grain_large);
}

TEST(GpuModel, SaturationWarmupSlowsSmallBlocksRelatively) {
  const GpuModel gpu = test_gpu();
  auto with = basic_profile();
  with.gpu_saturation_grains = 256.0;
  auto without = basic_profile();
  without.gpu_saturation_grains = 0.0;
  // Small blocks pay a large relative warmup penalty...
  const double small_ratio = gpu.execution_seconds(with, 128.0) /
                             gpu.execution_seconds(without, 128.0);
  EXPECT_GT(small_ratio, 1.3);
  // ...which washes out on large blocks.
  const double large_ratio = gpu.execution_seconds(with, 1e6) /
                             gpu.execution_seconds(without, 1e6);
  EXPECT_LT(large_ratio, 1.05);
}

TEST(GpuModel, MemoryBoundBlendsToBandwidth) {
  const GpuModel gpu = test_gpu();
  auto p = basic_profile();
  p.flops_per_grain = 1.0;           // no compute
  p.device_bytes_per_grain = 1e6;    // heavy traffic
  const double grains = 1000.0;
  const double expected = grains * 1e6 / 100e9;
  EXPECT_NEAR(gpu.execution_seconds(p, grains), expected + 20e-6,
              0.05 * expected);
}

TEST(GpuModel, PeakFlops) {
  EXPECT_DOUBLE_EQ(test_gpu().peak_flops(), 1024 * 1e9 * 2.0);
  EXPECT_EQ(test_gpu().kind(), DeviceKind::kGpu);
  EXPECT_NE(test_gpu().description().find("TestGPU"), std::string::npos);
}

TEST(CpuModel, LinearInGrains) {
  const CpuModel cpu = test_cpu();
  const auto p = basic_profile();
  const double t1 = cpu.execution_seconds(p, 100.0);
  const double t2 = cpu.execution_seconds(p, 200.0);
  EXPECT_NEAR(t2 - cpu.params().dispatch_overhead_s,
              2.0 * (t1 - cpu.params().dispatch_overhead_s), 1e-9);
}

TEST(CpuModel, AmdahlLimitsSpeedup) {
  auto serial = basic_profile();
  serial.cpu_parallel_fraction = 0.0;
  auto parallel = basic_profile();
  parallel.cpu_parallel_fraction = 1.0;
  const CpuModel cpu = test_cpu();
  const double t_serial = cpu.execution_seconds(serial, 1000.0);
  const double t_parallel = cpu.execution_seconds(parallel, 1000.0);
  EXPECT_NEAR(t_serial / t_parallel, 4.0, 0.05);  // 4 cores
}

TEST(CpuModel, KindAndPeak) {
  EXPECT_EQ(test_cpu().kind(), DeviceKind::kCpu);
  EXPECT_DOUBLE_EQ(test_cpu().peak_flops(), 4 * 3.0e9 * 8.0);
}

TEST(Link, TransferSeconds) {
  LinkModel l{1e-3, 1e9};
  EXPECT_DOUBLE_EQ(l.transfer_seconds(1e9), 1.0 + 1e-3);
  EXPECT_DOUBLE_EQ(l.transfer_seconds(0.0), 1e-3);
}

TEST(Link, SerialComposition) {
  LinkModel a{1e-3, 1e9};
  LinkModel b{2e-3, 1e9};
  const LinkModel c = a.then(b);
  EXPECT_DOUBLE_EQ(c.latency_s, 3e-3);
  EXPECT_DOUBLE_EQ(c.bandwidth_bps, 0.5e9);  // harmonic composition
}

TEST(Link, Presets) {
  EXPECT_GT(pcie3_x16().bandwidth_bps, pcie2_x16().bandwidth_bps);
  EXPECT_GT(pcie2_x16().bandwidth_bps, gigabit_ethernet().bandwidth_bps);
}

TEST(Machines, TableOneShapes) {
  EXPECT_EQ(machine_a().units.size(), 2u);  // CPU + K20c
  EXPECT_EQ(machine_b(false).units.size(), 2u);
  EXPECT_EQ(machine_b(true).units.size(), 3u);  // GTX 295 has two halves
  EXPECT_EQ(machine_c(true).units.size(), 3u);
  EXPECT_EQ(machine_d().units.size(), 2u);
}

TEST(Machines, ScenarioComposition) {
  EXPECT_EQ(scenario(1).size(), 1u);
  EXPECT_EQ(scenario(4).size(), 4u);
  const auto s = scenario(4, true);
  std::size_t units = 0;
  for (const auto& m : s) units += m.units.size();
  EXPECT_EQ(units, 10u);  // 4 CPUs + 6 GPUs
}

TEST(Machines, GpuSpeedOrderingMatchesHardware) {
  // Titan > K20c > GTX680 > half a GTX295 on a compute-bound profile.
  auto p = basic_profile();
  p.gpu_threads_per_grain = 1024.0;  // saturate everything
  const double g = 100000.0;
  const auto time_of = [&](const MachineConfig& m) {
    return m.units[1].device->execution_seconds(p, g);
  };
  const double titan = time_of(machine_d());
  const double k20 = time_of(machine_a());
  const double gtx680 = time_of(machine_c());
  const double gtx295 = time_of(machine_b());
  EXPECT_LT(titan, k20);
  EXPECT_LT(k20, gtx680);
  EXPECT_LT(gtx680, gtx295);
}

TEST(Machines, Table1Renders) {
  const std::string t = table1_string(scenario(4));
  EXPECT_NE(t.find("Tesla K20c"), std::string::npos);
  EXPECT_NE(t.find("GTX Titan"), std::string::npos);
}

TEST(Cluster, FlattensUnits) {
  SimCluster cluster(scenario(2));
  EXPECT_EQ(cluster.size(), 4u);
  EXPECT_EQ(cluster.unit(0).name, "A.cpu");
  EXPECT_EQ(cluster.unit(3).name, "B.gpu0");
  EXPECT_EQ(cluster.unit(3).machine_index, 1u);
}

TEST(Cluster, SpeedTimeline) {
  SimCluster cluster(scenario(1));
  cluster.add_speed_event(0, 10.0, 0.5);
  cluster.add_speed_event(0, 20.0, 1.0);
  const auto& u = cluster.unit(0);
  EXPECT_DOUBLE_EQ(u.speed_factor(5.0), 1.0);
  EXPECT_DOUBLE_EQ(u.speed_factor(10.0), 0.5);
  EXPECT_DOUBLE_EQ(u.speed_factor(15.0), 0.5);
  EXPECT_DOUBLE_EQ(u.speed_factor(25.0), 1.0);
  EXPECT_FALSE(u.failure_time().has_value());
}

TEST(Cluster, FailureTimeline) {
  SimCluster cluster(scenario(1));
  cluster.fail_unit(1, 42.0);
  const auto& u = cluster.unit(1);
  ASSERT_TRUE(u.failure_time().has_value());
  EXPECT_DOUBLE_EQ(*u.failure_time(), 42.0);
  EXPECT_FALSE(u.failed_at(41.0));
  EXPECT_TRUE(u.failed_at(42.0));
}

TEST(Cluster, EventsSortedEvenIfAddedOutOfOrder) {
  SimCluster cluster(scenario(1));
  cluster.add_speed_event(0, 20.0, 0.25);
  cluster.add_speed_event(0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(cluster.unit(0).speed_factor(15.0), 0.5);
}

TEST(Noise, NoneIsIdentity) {
  Rng rng(1);
  const NoiseModel none = NoiseModel::none();
  EXPECT_DOUBLE_EQ(none.perturb_exec(1.5, rng), 1.5);
  EXPECT_DOUBLE_EQ(none.perturb_transfer(0.5, rng), 0.5);
}

TEST(Noise, MultiplicativeAroundTruth) {
  Rng rng(2);
  NoiseModel noise;
  noise.jitter_s = 0.0;
  RunningStats s;
  for (int i = 0; i < 20'000; ++i) s.add(noise.perturb_exec(1.0, rng));
  EXPECT_NEAR(s.mean(), 1.0, 0.01);
  EXPECT_GT(s.stddev(), 0.005);
}

TEST(Noise, JitterIsAdditivePositive) {
  Rng rng(3);
  NoiseModel noise;
  noise.exec_sigma = 0.0;
  noise.jitter_s = 1e-3;
  RunningStats s;
  for (int i = 0; i < 20'000; ++i) s.add(noise.perturb_exec(1.0, rng));
  EXPECT_NEAR(s.mean(), 1.0 + 1e-3, 2e-4);
  EXPECT_GE(s.min(), 1.0);
}

}  // namespace
}  // namespace plbhec::sim
