// Tests for the task runtime: the discrete-event engine's dispatch /
// barrier / failure semantics (driven by scripted stub schedulers), the
// profiling database, trace accounting, and the real-threaded engine
// (actual kernels on host threads, schedule-independent results).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "plbhec/apps/synthetic.hpp"
#include "plbhec/rt/engine.hpp"
#include "plbhec/rt/profile_db.hpp"
#include "plbhec/rt/thread_engine.hpp"
#include "plbhec/sim/machine.hpp"

namespace plbhec::rt {
namespace {

apps::SyntheticWorkload::Config small_config() {
  apps::SyntheticWorkload::Config c;
  c.grains = 1000;
  c.flops_per_grain = 1e7;
  c.bytes_per_grain = 4096;
  c.spin_iters_per_grain = 50;
  return c;
}

/// Hands out fixed-size chunks forever (greedy-like).
class FixedScheduler final : public Scheduler {
 public:
  explicit FixedScheduler(std::size_t block) : block_(block) {}
  std::string name() const override { return "fixed"; }
  void start(const std::vector<UnitInfo>& units, const WorkInfo& work) override {
    units_seen = units.size();
    work_seen = work;
  }
  std::size_t next_block(UnitId, double) override { return block_; }
  void on_complete(const TaskObservation& obs) override {
    completions.push_back(obs);
  }
  std::size_t units_seen = 0;
  WorkInfo work_seen;
  std::vector<TaskObservation> completions;

 private:
  std::size_t block_;
};

/// Parks everyone after the first round until a barrier, N times.
class BarrierScheduler final : public Scheduler {
 public:
  std::string name() const override { return "barrier"; }
  void start(const std::vector<UnitInfo>& units, const WorkInfo&) override {
    pending_.assign(units.size(), 10);
  }
  std::size_t next_block(UnitId u, double) override {
    const std::size_t b = pending_[u];
    pending_[u] = 0;
    return b;
  }
  void on_complete(const TaskObservation&) override {}
  void on_barrier(double) override {
    ++barriers;
    for (auto& p : pending_) p = 10;
  }
  std::size_t barriers = 0;

 private:
  std::vector<std::size_t> pending_;
};

/// Refuses to schedule anything (engine must error out, not hang).
class RefusingScheduler final : public Scheduler {
 public:
  std::string name() const override { return "refuse"; }
  void start(const std::vector<UnitInfo>&, const WorkInfo&) override {}
  std::size_t next_block(UnitId, double) override { return 0; }
  void on_complete(const TaskObservation&) override {}
};

sim::SimCluster one_machine() { return sim::SimCluster(sim::scenario(1)); }

TEST(SimEngine, CompletesAllGrains) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(64);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok) << r.error;
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
  EXPECT_GT(r.makespan, 0.0);
}

TEST(SimEngine, SchedulerSeesClusterAndWork) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(64);
  (void)engine.run(w, sched);
  EXPECT_EQ(sched.units_seen, 2u);
  EXPECT_EQ(sched.work_seen.total_grains, 1000u);
  EXPECT_GT(sched.work_seen.initial_block, 0u);
}

TEST(SimEngine, LastBlockClamped) {
  auto cluster = one_machine();
  auto cfg = small_config();
  cfg.grains = 100;
  apps::SyntheticWorkload w(cfg);
  SimEngine engine(cluster, {});
  FixedScheduler sched(64);  // 64 + 64 would exceed 100
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok);
  std::size_t total = 0;
  for (const auto& obs : sched.completions) {
    EXPECT_LE(obs.grains, 64u);
    total += obs.grains;
  }
  EXPECT_EQ(total, 100u);
}

TEST(SimEngine, ObservationsHaveConsistentTimes) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(100);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok);
  for (const auto& obs : sched.completions) {
    EXPECT_GT(obs.exec_seconds, 0.0);
    EXPECT_GT(obs.transfer_seconds, 0.0);
    EXPECT_NEAR(obs.finish_time - obs.start_time,
                obs.exec_seconds + obs.transfer_seconds, 1e-12);
  }
}

TEST(SimEngine, DeterministicForSameSeed) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  EngineOptions opts;
  opts.seed = 99;
  SimEngine engine(cluster, opts);
  FixedScheduler s1(64), s2(64);
  const RunResult r1 = engine.run(w, s1);
  const RunResult r2 = engine.run(w, s2);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
}

TEST(SimEngine, SeedChangesNoise) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  EngineOptions a, b;
  a.seed = 1;
  b.seed = 2;
  FixedScheduler s1(64), s2(64);
  const RunResult r1 = SimEngine(cluster, a).run(w, s1);
  const RunResult r2 = SimEngine(cluster, b).run(w, s2);
  EXPECT_NE(r1.makespan, r2.makespan);
}

TEST(SimEngine, NoNoiseIsExactlyDeterministic) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  EngineOptions opts;
  opts.noise = sim::NoiseModel::none();
  SimEngine engine(cluster, opts);
  FixedScheduler sched(64);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok);
  // Two identical units (CPU vs GPU differ, but each task of the same size
  // on the same unit must take exactly the same time).
  for (std::size_t i = 1; i + 1 < sched.completions.size(); ++i) {
    const auto& a = sched.completions[i - 1];
    const auto& b = sched.completions[i];
    if (a.unit == b.unit && a.grains == b.grains)
      EXPECT_DOUBLE_EQ(a.exec_seconds, b.exec_seconds);
  }
}

TEST(SimEngine, BarrierProtocol) {
  auto cluster = one_machine();
  auto cfg = small_config();
  cfg.grains = 100;  // 2 units x 10 grains per round -> 5 barriers expected
  apps::SyntheticWorkload w(cfg);
  SimEngine engine(cluster, {});
  BarrierScheduler sched;
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(sched.barriers, 4u);  // rounds 2..5 each preceded by a barrier
  EXPECT_EQ(r.barriers, 4u);
}

TEST(SimEngine, RefusingSchedulerErrorsOut) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  RefusingScheduler sched;
  const RunResult r = engine.run(w, sched);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(SimEngine, TraceAccountsEveryExecGrain) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(128);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok);
  std::size_t traced = 0;
  for (const auto& seg : r.trace.segments())
    if (seg.kind == SegmentKind::kExec) traced += seg.grains;
  EXPECT_EQ(traced, w.total_grains());
}

TEST(SimEngine, TraceSegmentsAreOrderedPerUnit) {
  auto cluster = one_machine();
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(64);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok);
  std::vector<double> last_end(cluster.size(), 0.0);
  for (const auto& seg : r.trace.segments()) {
    EXPECT_GE(seg.start, last_end[seg.unit] - 1e-12);
    EXPECT_GE(seg.end, seg.start);
    last_end[seg.unit] = seg.end;
  }
}

TEST(SimEngine, IdleFractionInUnitRange) {
  auto cluster = sim::SimCluster(sim::scenario(2));
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(32);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok);
  for (UnitId u = 0; u < cluster.size(); ++u) {
    EXPECT_GE(r.idle_fraction(u), -1e-9);
    EXPECT_LE(r.idle_fraction(u), 1.0 + 1e-9);
  }
}

TEST(SimEngine, FailedUnitWorkIsReassigned) {
  auto cluster = one_machine();
  cluster.fail_unit(0, 1e-5);  // CPU dies almost immediately
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(64);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.unit_stats[0].failed);
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
  EXPECT_EQ(r.unit_stats[0].grains, 0u);  // its in-flight task was lost
}

TEST(SimEngine, AllUnitsFailedIsError) {
  auto cluster = one_machine();
  cluster.fail_unit(0, 1e-6);
  cluster.fail_unit(1, 1e-6);
  apps::SyntheticWorkload w(small_config());
  SimEngine engine(cluster, {});
  FixedScheduler sched(64);
  const RunResult r = engine.run(w, sched);
  EXPECT_FALSE(r.ok);
}

TEST(SimEngine, SlowdownEventStretchesRun) {
  auto cluster_fast = one_machine();
  auto cluster_slow = one_machine();
  cluster_slow.add_speed_event(1, 0.0, 0.25);  // GPU at quarter speed
  apps::SyntheticWorkload w(small_config());
  EngineOptions opts;
  opts.noise = sim::NoiseModel::none();
  FixedScheduler s1(64), s2(64);
  const RunResult fast = SimEngine(cluster_fast, opts).run(w, s1);
  const RunResult slow = SimEngine(cluster_slow, opts).run(w, s2);
  ASSERT_TRUE(fast.ok && slow.ok);
  EXPECT_GT(slow.makespan, fast.makespan);
}

TEST(ProfileDb, RecordsAndFits) {
  ProfileDb db(2, 1000);
  for (std::size_t g : {10u, 20u, 40u, 80u, 160u}) {
    TaskObservation obs;
    obs.unit = 0;
    obs.grains = g;
    obs.exec_seconds = 0.01 + 0.002 * static_cast<double>(g);
    obs.transfer_seconds = 0.001 * static_cast<double>(g);
    db.record(obs);
  }
  EXPECT_EQ(db.exec_samples(0).size(), 5u);
  EXPECT_EQ(db.exec_samples(1).size(), 0u);
  const fit::PerfModel m = db.fit_unit(0);
  ASSERT_TRUE(m.valid());
  // exec(x) = 0.01 + 2.0 * x with x = grains/1000.
  EXPECT_NEAR(m.execution_time(0.1), 0.21, 0.02);
  EXPECT_NEAR(m.transfer(0.1), 0.1, 0.01);
}

TEST(ProfileDb, GrainsToFraction) {
  ProfileDb db(1, 200);
  EXPECT_DOUBLE_EQ(db.grains_to_fraction(50), 0.25);
}

TEST(ProfileDb, AllAcceptableRequiresEveryUnit) {
  ProfileDb db(2, 1000);
  TaskObservation obs;
  obs.unit = 0;
  for (std::size_t g : {10u, 20u, 40u, 80u}) {
    obs.grains = g;
    obs.exec_seconds = 0.002 * static_cast<double>(g);
    obs.transfer_seconds = 1e-4;
    db.record(obs);
  }
  EXPECT_FALSE(db.all_acceptable());  // unit 1 has no samples
}

TEST(ProfileDb, ZeroGrainObservationIgnored) {
  ProfileDb db(1, 100);
  TaskObservation obs;
  obs.unit = 0;
  obs.grains = 0;
  db.record(obs);
  EXPECT_TRUE(db.exec_samples(0).empty());
  // No sample was added, so cached fits must stay valid.
  EXPECT_EQ(db.version(0), db.version(0));
  const std::uint64_t v = db.version(0);
  db.record(obs);
  EXPECT_EQ(db.version(0), v);
}

// ---- Fit cache --------------------------------------------------------------

ProfileDb seeded_db(std::size_t units = 2, std::size_t samples = 6) {
  ProfileDb db(units, 1000);
  TaskObservation obs;
  for (UnitId u = 0; u < units; ++u) {
    obs.unit = u;
    std::size_t g = 10;
    for (std::size_t i = 0; i < samples; ++i, g += 10 + 7 * u) {
      obs.grains = g;
      obs.exec_seconds =
          (0.01 + 0.002 * static_cast<double>(g)) * (1.0 + 0.2 * u);
      obs.transfer_seconds = 0.001 * static_cast<double>(g);
      db.record(obs);
    }
  }
  return db;
}

TEST(ProfileDbFitCache, HitOnUnchangedSamples) {
  ProfileDb db = seeded_db(1);
  const fit::FitResult a = db.exec_fit(0);
  const fit::FitResult b = db.exec_fit(0);
  const FitStats s = db.fit_stats();
  EXPECT_EQ(s.fits_computed, 1u);
  EXPECT_EQ(s.fits_cached, 1u);
  EXPECT_EQ(a.model.terms, b.model.terms);
  EXPECT_EQ(a.model.coefficients, b.model.coefficients);
  EXPECT_DOUBLE_EQ(a.bic, b.bic);
}

TEST(ProfileDbFitCache, RecordInvalidates) {
  ProfileDb db = seeded_db(1);
  const std::uint64_t v0 = db.version(0);
  (void)db.exec_fit(0);
  TaskObservation obs;
  obs.unit = 0;
  obs.grains = 500;
  obs.exec_seconds = 1.1;
  obs.transfer_seconds = 0.5;
  db.record(obs);
  EXPECT_GT(db.version(0), v0);
  (void)db.exec_fit(0);
  const FitStats s = db.fit_stats();
  EXPECT_EQ(s.fits_computed, 2u);
  EXPECT_EQ(s.fits_cached, 0u);
}

TEST(ProfileDbFitCache, ResetClearsCacheAndCounters) {
  ProfileDb db = seeded_db(1);
  (void)db.exec_fit(0);
  (void)db.exec_fit(0);
  db.reset(1, 1000);
  const FitStats s = db.fit_stats();
  EXPECT_EQ(s.fits_computed, 0u);
  EXPECT_EQ(s.fits_cached, 0u);
  EXPECT_EQ(s.gram_solves, 0u);
  EXPECT_EQ(s.qr_solves, 0u);
}

TEST(ProfileDbFitCache, DistinctOptionsAreSeparateEntries) {
  ProfileDb db = seeded_db(1);
  fit::SelectionOptions weighted;
  weighted.relative_weighting = true;
  (void)db.exec_fit(0);
  (void)db.exec_fit(0, weighted);
  EXPECT_EQ(db.fit_stats().fits_computed, 2u);
  EXPECT_EQ(db.fit_stats().fits_cached, 0u);
  // Both entries stay live: repeated calls with either key hit the cache.
  (void)db.exec_fit(0);
  (void)db.exec_fit(0, weighted);
  EXPECT_EQ(db.fit_stats().fits_computed, 2u);
  EXPECT_EQ(db.fit_stats().fits_cached, 2u);
}

TEST(ProfileDbFitCache, FitUnitSharesExecFitAndCachesTransfer) {
  ProfileDb db = seeded_db(1);
  const fit::FitResult f = db.exec_fit(0);
  const fit::PerfModel m1 = db.fit_unit(0);
  const fit::PerfModel m2 = db.fit_unit(0);
  const FitStats s = db.fit_stats();
  EXPECT_EQ(s.fits_computed, 1u);  // exec_fit + both fit_unit calls share it
  EXPECT_EQ(s.fits_cached, 2u);
  EXPECT_EQ(m1.exec.terms, f.model.terms);
  EXPECT_DOUBLE_EQ(m1.transfer.slope, m2.transfer.slope);
  EXPECT_DOUBLE_EQ(m1.transfer.latency, m2.transfer.latency);
}

TEST(ProfileDbFitCache, ClearFitCacheForcesRefit) {
  ProfileDb db = seeded_db(1);
  (void)db.exec_fit(0);
  db.clear_fit_cache();
  (void)db.exec_fit(0);
  EXPECT_EQ(db.fit_stats().fits_computed, 1u);
  EXPECT_EQ(db.fit_stats().fits_cached, 0u);
}

TEST(ProfileDbFitCache, ParallelFitAllMatchesSerialFits) {
  // 16 units fitted on the global pool; every unit touches only its own
  // cache slot, which this test exercises under TSan (see ci.yml).
  ProfileDb db = seeded_db(16, 12);
  const std::vector<fit::PerfModel> models = db.fit_all();
  ASSERT_EQ(models.size(), 16u);
  EXPECT_EQ(db.fit_stats().fits_computed, 16u);
  for (UnitId u = 0; u < 16; ++u) {
    ASSERT_TRUE(models[u].valid()) << "unit " << u;
    const fit::PerfModel serial = db.fit_unit(u);
    EXPECT_EQ(serial.exec.terms, models[u].exec.terms) << "unit " << u;
    EXPECT_EQ(serial.exec.coefficients, models[u].exec.coefficients);
  }
  // The verification pass was served entirely from the cache.
  EXPECT_EQ(db.fit_stats().fits_computed, 16u);
  EXPECT_EQ(db.fit_stats().fits_cached, 16u);
}

TEST(RunResultDeathTest, OutOfRangeUnitIdAbortsInsteadOfReadingPastTheEnd) {
  RunResult result;
  result.unit_stats.resize(2);
  result.makespan = 1.0;
  EXPECT_EQ(result.stats_for(1).grains, 0u);        // in range: fine
  EXPECT_DOUBLE_EQ(result.idle_fraction(0), 1.0);
  EXPECT_DEATH((void)result.stats_for(2), "precondition");
  EXPECT_DEATH((void)result.idle_fraction(7), "precondition");
}

TEST(TraceLog, Accounting) {
  TraceLog log;
  log.add({0, SegmentKind::kTransfer, 0.0, 1.0, 10});
  log.add({0, SegmentKind::kExec, 1.0, 3.0, 10});
  log.add({1, SegmentKind::kExec, 0.0, 5.0, 20});
  EXPECT_DOUBLE_EQ(log.busy_seconds(0), 3.0);
  EXPECT_DOUBLE_EQ(log.busy_seconds(1), 5.0);
  EXPECT_EQ(log.grains_processed(0), 10u);  // transfer grains not counted
  EXPECT_EQ(log.task_count(0), 1u);
  EXPECT_EQ(log.task_count(1), 1u);
}

// ---- Real-threaded engine ---------------------------------------------------

TEST(ThreadEngine, RunsRealKernelToCompletion) {
  apps::SyntheticWorkload w(small_config());
  ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.5};
  ThreadEngine engine(opts);
  FixedScheduler sched(100);
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(w.executed_grains(), w.total_grains());
  EXPECT_GT(r.makespan, 0.0);
  std::size_t done = 0;
  for (const auto& s : r.unit_stats) done += s.grains;
  EXPECT_EQ(done, w.total_grains());
}

TEST(ThreadEngine, ChecksumIndependentOfSchedule) {
  apps::SyntheticWorkload w1(small_config());
  apps::SyntheticWorkload w2(small_config());
  ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 2.0, 3.0};
  FixedScheduler s1(37), s2(200);
  const RunResult r1 = ThreadEngine(opts).run(w1, s1);
  const RunResult r2 = ThreadEngine(opts).run(w2, s2);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_NEAR(w1.checksum(), w2.checksum(), 1e-6 * std::fabs(w1.checksum()));
}

TEST(ThreadEngine, BarrierSchedulerWorks) {
  auto cfg = small_config();
  cfg.grains = 60;  // 3 units x 10 per round -> barriers
  apps::SyntheticWorkload w(cfg);
  ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.0, 1.0};
  ThreadEngine engine(opts);
  BarrierScheduler sched;
  const RunResult r = engine.run(w, sched);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(sched.barriers, 1u);
  EXPECT_EQ(w.executed_grains(), 60u);
}

TEST(ThreadEngine, RefusingSchedulerFailsGracefully) {
  apps::SyntheticWorkload w(small_config());
  ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 1.0};
  ThreadEngine engine(opts);
  RefusingScheduler sched;
  const RunResult r = engine.run(w, sched);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(ThreadEngine, UnitNamesAndKinds) {
  ThreadEngineOptions opts;
  opts.slowdowns = {1.0, 2.0};
  ThreadEngine engine(opts);
  ASSERT_EQ(engine.units().size(), 2u);
  EXPECT_EQ(engine.units()[0].name, "host.cpu0");
  EXPECT_EQ(engine.units()[1].kind, ProcKind::kCpu);
}

}  // namespace
}  // namespace plbhec::rt
